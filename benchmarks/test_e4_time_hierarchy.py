"""E4 — Theorem 2: the deterministic time hierarchy.

Executes the miniature pipeline (enumerate protocols, pick the first
hard function, run the broadcast decider on the simulator) and prints
the large-scale counting certificates.
"""

from repro.analysis.report import magnitude
from repro.core.time_hierarchy import separation_table, time_hierarchy_miniature


def run_miniature():
    return time_hierarchy_miniature(n=2, L=2, b=1)


def test_e4_time_hierarchy(benchmark, report):
    audit = benchmark.pedantic(run_miniature, rounds=1, iterations=1)

    report(
        [
            {
                "n (nodes)": audit.n,
                "b (bits/round)": audit.b,
                "L (input bits)": audit.L,
                "#functions": audit.num_functions,
                "#computable in 1 round": audit.num_computable_one_round,
                "first hard f (lex index)": audit.f_index,
                "decider rounds": audit.decider_rounds,
                "decider correct": audit.decider_correct,
                "CLIQUE(1) != CLIQUE(2)": audit.separates,
            }
        ],
        title="E4 / Theorem 2 - executable miniature",
    )
    rows = separation_table([64, 256, 1024, 4096], "theorem2")
    for row in rows:
        row["log2_protocols"] = magnitude(row["log2_protocols"])
        row["log2_functions"] = magnitude(row["log2_functions"])
    report(rows, title="E4 / Theorem 2 - counting certificates at scale")

    assert audit.separates
    assert audit.decider_correct
    assert not audit.one_round_computable
