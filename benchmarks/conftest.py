"""Shared fixtures for the experiment benchmarks (E1-E14, see DESIGN.md).

Each benchmark regenerates one of the paper's tables/figures/theorem
audits and prints the rows through the ``report`` fixture (bypassing
pytest's capture so ``pytest benchmarks/ --benchmark-only | tee ...``
records them).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.report import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Print a table to the real terminal and archive it under
    benchmarks/results/<test_name>.txt."""
    chunks: list[str] = []

    def _report(rows, columns=None, title=""):
        text = format_table(rows, columns, title)
        chunks.append(text)
        with capsys.disabled():
            print("\n" + text)

    yield _report

    if chunks:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text("\n\n".join(chunks) + "\n")


def measured_load(result) -> int:
    """Max per-node routed payload bits — the exponent-bearing load,
    read from the run's :class:`repro.obs.RunMetrics` (metrics are on by
    default for every engine run; the raw-counter fallback only covers
    explicit ``observer=False`` runs)."""
    if result.metrics is not None:
        return result.metrics.routed_payload_load()
    return max(
        result.max_counter("route_payload_in_bits"),
        result.max_counter("route_payload_out_bits"),
    )
