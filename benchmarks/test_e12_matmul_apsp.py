"""E12 — the matrix multiplication / APSP arrows of Figure 1.

Load scaling of the cube-partitioned distributed MM (semiring bound
delta <= 1/3: busiest-node payload ~ n^(4/3) entries) for all three
semirings, plus APSP by repeated (min,+) squaring and transitive
closure by Boolean squaring, verified against the reference solvers.
"""

import numpy as np
from conftest import measured_load

from repro.algorithms.matmul import (
    BOOLEAN,
    MINPLUS,
    RING,
    distributed_matmul,
    run_matmul,
)
from repro.analysis import fit_metric_exponent
from repro.clique.graph import INF
from repro.engine import RunSpec, run_sweep
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.algorithms.spanner import approx_apsp_via_spanner
from repro.clique.algorithm import run_algorithm
from repro.reductions import apsp_via_minplus_mm, transitive_closure_via_boolean_mm


def ring_mm_point(config: dict) -> RunSpec:
    """Sweep factory: cube-partitioned ring MM on random int matrices."""
    n = config["n"]
    rng = gen.rng_from(n)
    a = rng.integers(0, 8, (n, n)).astype(np.int64)
    b = rng.integers(0, 8, (n, n)).astype(np.int64)
    rows = [(a[i].copy(), b[i].copy()) for i in range(n)]

    def prog(node):
        a_row, b_row = node.input
        row = yield from distributed_matmul(node, a_row, b_row, RING, 8)
        return row

    def post(result):
        c = np.stack([result.outputs[i] for i in range(n)])
        return np.array_equal(c, a @ b)

    return RunSpec(
        program=prog,
        node_input=rows,
        n=n,
        bandwidth_multiplier=2,
        postprocess=post,
    )


def mm_sweep() -> list[dict]:
    outcomes = run_sweep(
        ring_mm_point,
        [{"n": n} for n in (27, 64, 125, 216)],
        workers=2,
        engine="fast",
    )
    return [
        {
            "semiring": "ring",
            "n": o.config["n"],
            "rounds": o.result.rounds,
            "payload load (bits)": measured_load(o.result),
            "correct": o.value,
            "metrics": o.result.metrics,
        }
        for o in outcomes
    ]


def semiring_comparison(n: int = 64) -> list[dict]:
    rng = gen.rng_from(7)
    rows = []
    a = (rng.random((n, n)) < 0.3).astype(np.int64)
    b = (rng.random((n, n)) < 0.3).astype(np.int64)
    c, result = run_matmul(a, b, BOOLEAN)
    rows.append(
        {
            "semiring": "boolean",
            "n": n,
            "rounds": result.rounds,
            "correct": np.array_equal(c.astype(bool), ref.boolean_matmul(a, b)),
        }
    )
    aw = rng.integers(0, 30, (n, n)).astype(np.int64)
    bw = rng.integers(0, 30, (n, n)).astype(np.int64)
    c, result = run_matmul(aw, bw, MINPLUS, max_entry=30)
    rows.append(
        {
            "semiring": "minplus",
            "n": n,
            "rounds": result.rounds,
            "correct": np.array_equal(
                np.minimum(c, INF), np.minimum(ref.minplus_matmul(aw, bw), INF)
            ),
        }
    )
    ar = rng.integers(0, 8, (n, n)).astype(np.int64)
    br = rng.integers(0, 8, (n, n)).astype(np.int64)
    c, result = run_matmul(ar, br, RING, max_entry=8)
    rows.append(
        {
            "semiring": "ring",
            "n": n,
            "rounds": result.rounds,
            "correct": np.array_equal(c, ar @ br),
        }
    )
    return rows


def apsp_and_tc() -> list[dict]:
    rows = []
    for n in (16, 32):
        g = gen.random_weighted_graph(n, 0.3, 15, seed=n)
        dist, rounds = apsp_via_minplus_mm(g, max_weight=15)
        want = ref.apsp_matrix(g)
        rows.append(
            {
                "problem": "APSP (log n minplus squarings)",
                "n": n,
                "total rounds": rounds,
                "correct": np.array_equal(
                    np.minimum(dist, INF), np.minimum(want, INF)
                ),
            }
        )
        gu = gen.random_graph(n, 0.15, seed=n)
        reach, rounds = transitive_closure_via_boolean_mm(gu)
        rows.append(
            {
                "problem": "transitive closure (boolean squarings)",
                "n": n,
                "total rounds": rounds,
                "correct": np.array_equal(
                    reach, ref.transitive_closure(gu.adjacency)
                ),
            }
        )
    return rows


def spanner_rows() -> list[dict]:
    """Section 7's constant-approximation escape hatch: 3-approx
    unweighted APSP via the Baswana-Sen 3-spanner, gathered and solved
    locally — sublinear communication on dense graphs."""
    rows = []
    for n in (32, 64):
        g = gen.random_graph(n, 0.5, seed=n)

        def prog(node):
            row = yield from approx_apsp_via_spanner(node, seed=n)
            return row

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        d_g = ref.apsp_matrix(g)
        ok = True
        for i in range(n):
            approx = result.outputs[i]
            for j in range(n):
                if d_g[i, j] < INF and not (
                    d_g[i, j] <= approx[j] <= 3 * d_g[i, j]
                ):
                    ok = False
        rows.append(
            {
                "problem": "3-approx APSP (spanner)",
                "n": n,
                "rounds": result.rounds,
                "stretch <= 3 verified": ok,
            }
        )
    return rows


def test_e12_matmul_apsp(benchmark, report):
    sweep = benchmark.pedantic(mm_sweep, rounds=1, iterations=1)
    comparison = semiring_comparison()
    closure = apsp_and_tc()

    fit = fit_metric_exponent([r.pop("metrics") for r in sweep])
    report(sweep, title="E12 - cube-partitioned ring MM scaling")
    report(
        [
            {
                "load exponent (fit)": round(fit.slope, 3),
                "implied delta": round(fit.slope - 1, 3),
                "semiring MM bound": round(1 / 3, 3),
                "r^2": round(fit.r_squared, 4),
            }
        ],
        title="E12 - fitted MM exponent vs 1/3",
    )
    report(comparison, title="E12 - all three semirings at n=64")
    report(closure, title="E12 - APSP / transitive closure via squaring")
    spanner = spanner_rows()
    report(spanner, title="E12 - 3-approx APSP via 3-spanner (Section 7)")

    assert all(r["correct"] for r in sweep + comparison + closure)
    assert all(r["stretch <= 3 verified"] for r in spanner)
    assert abs((fit.slope - 1) - 1 / 3) < 0.2
