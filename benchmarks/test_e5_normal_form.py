"""E5 — Theorem 3: the NCLIQUE normal form.

For each NCLIQUE(1) verifier and a range of sizes: extract transcripts
from an accepting run, run the transformed algorithm B on them, and
table the label sizes against the O(T(n) n log n) bound.
"""

from repro.core.normal_form import (
    normal_form_label_bound,
    to_normal_form,
    transcript_labelling,
)
from repro.core.nondeterminism import run_with_labelling
from repro.core.verifiers import (
    k_colouring_verifier,
    k_independent_set_verifier,
    triangle_verifier,
)
from repro.problems import generators as gen


def make_cases():
    cases = []
    for n in (8, 16, 32):
        g, _ = gen.planted_colouring(n, 3, 0.6, 1)
        cases.append((k_colouring_verifier(3), g, n))
        g2, _ = gen.planted_independent_set(n, 2, 0.5, 2)
        cases.append((k_independent_set_verifier(2), g2, n))
    g3 = gen.random_graph(12, 0.6, 3)
    cases.append((triangle_verifier(), g3, 12))
    return cases


def run_experiment() -> list[dict]:
    rows = []
    for vp, g, n in make_cases():
        if not vp.problem.contains(g):
            continue
        base = vp.prover(g)
        labels, accepted = transcript_labelling(vp.algorithm, g, base)
        b = to_normal_form(vp.algorithm)
        result = run_with_labelling(b, g, labels)
        b_accepts = all(o == 1 for o in result.outputs.values())
        T = vp.algorithm.running_time(n)
        bw = max(1, (n - 1).bit_length())
        bound = normal_form_label_bound(n, T, bw)
        max_label = max(len(lab) for lab in labels)
        rows.append(
            {
                "verifier": vp.algorithm.name,
                "n": n,
                "T(n)": T,
                "A accepts": accepted,
                "B accepts transcripts": b_accepts,
                "B rounds == T": result.rounds == T,
                "max |z_v| (bits)": max_label,
                "O(T n log n) bound": bound,
                "within bound": max_label <= bound,
            }
        )
    return rows


def test_e5_normal_form(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows, title="E5 / Theorem 3 - transcript normal form")
    assert rows, "no yes-instances generated"
    for r in rows:
        assert r["A accepts"] and r["B accepts transcripts"]
        assert r["B rounds == T"]
        assert r["within bound"]
