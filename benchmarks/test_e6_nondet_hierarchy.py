"""E6 — Theorem 4 / Corollary 5: the nondeterministic hierarchy.

Prints the exact parameter inequality the proof checks
(``4M + 4L + T(n-1)log n < 3nL`` with ``L = T log n``,
``M = T n log n / 4``), plus the exhaustive miniature facts about
one-round nondeterministic protocols (deterministic subset inclusion,
and the L=1 collapse where a single guessed bit makes everything easy).
"""

from repro.core.counting import theorem4_inequality
from repro.core.protocols import (
    computable_functions,
    nondet_computable_functions,
)


def inequality_rows() -> list[dict]:
    rows = []
    for n in (16, 64, 256, 1024, 4096):
        import math

        T = max(2, n // (8 * math.ceil(math.log2(n))))
        q = theorem4_inequality(n, T)
        rows.append(
            {
                "n": n,
                "T": T,
                "L = T log n": q.L,
                "M = Tn log n/4": q.M,
                "lhs (x4)": q.lhs,
                "rhs = 3nL": q.rhs,
                "holds": q.holds,
            }
        )
    return rows


def miniature_rows() -> list[dict]:
    det = computable_functions(2, 1, 1)
    nondet = nondet_computable_functions(2, 1, 1, 1)
    return [
        {
            "setting": "(n=2, b=1, L=1, t=1)",
            "#functions": 16,
            "#det computable": len(det),
            "#nondet computable (M=1)": len(nondet),
            "det subset of nondet": det <= nondet,
        }
    ]


def test_e6_nondet_hierarchy(benchmark, report):
    rows = benchmark.pedantic(inequality_rows, rounds=1, iterations=1)
    mini = miniature_rows()

    report(rows, title="E6 / Theorem 4 - nondeterministic counting margin")
    report(mini, title="E6 - exhaustive one-round nondet protocols (miniature)")

    assert all(r["holds"] for r in rows if r["n"] >= 16)
    assert mini[0]["det subset of nondet"]
    # At L=1 everything is computable even deterministically (one bit
    # fits in one message) — hardness needs L > b, exactly the regime
    # Theorem 4's parameters create at scale.
    assert mini[0]["#det computable"] == 16
