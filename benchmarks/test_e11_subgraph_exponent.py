"""E11 — the Dolev et al. subgraph-detection bounds used by Figure 1.

Load scaling for triangle detection (= 3-IS detection = size-3
subgraph) and 4-IS / 4-cycle detection; fitted exponents against the
``1 - 2/k`` family (busiest-node payload = n^(2-2/k) bits, implied
delta = slope - 1).
"""

from conftest import measured_load

from repro.algorithms import k_independent_set_detection, triangle_detection
from repro.analysis import fit_metric_exponent
from repro.engine import RunSpec, run_sweep
from repro.problems import generators as gen
from repro.problems import reference as ref


def triangle_point(config: dict) -> RunSpec:
    """Sweep factory: triangle detection vs brute force on G(n, p)."""
    n = config["n"]
    g = gen.random_graph(n, config.get("p", 0.2), seed=n)

    def prog(node):
        return (yield from triangle_detection(node))

    def post(result):
        found, _ = result.common_output()
        return {"found": found, "correct": found == ref.has_triangle(g)}

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def four_is_point(config: dict) -> RunSpec:
    """Sweep factory: planted 4-IS instance (brute-force reference is
    infeasible at n=256; correctness = the witness is a real 4-IS)."""
    n = config["n"]
    g, _ = gen.planted_independent_set(n, 4, 0.55, seed=n)

    def prog(node):
        return (yield from k_independent_set_detection(node, 4))

    def post(result):
        found, witness = result.common_output()
        return {
            "found": found,
            "correct": bool(found)
            and ref.is_independent_set(g, witness)
            and len(set(witness)) == 4,
        }

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def _rows(outcomes) -> list[dict]:
    return [
        {
            "n": o.config["n"],
            "rounds": o.result.rounds,
            "payload load (bits)": measured_load(o.result),
            "found": o.value["found"],
            "correct": o.value["correct"],
            "metrics": o.result.metrics,
        }
        for o in outcomes
    ]


def triangle_sweep():
    return _rows(
        run_sweep(
            triangle_point,
            [{"n": n} for n in (27, 64, 125, 216)],
            workers=2,
            engine="fast",
        )
    )


def four_is_sweep():
    return _rows(
        run_sweep(
            four_is_point,
            [{"n": n} for n in (16, 81, 256)],
            workers=2,
            engine="fast",
        )
    )


def test_e11_subgraph_exponent(benchmark, report):
    tri = benchmark.pedantic(triangle_sweep, rounds=1, iterations=1)
    fis = four_is_sweep()

    fits = []
    for name, k, rows, regime in (
        ("triangle (k=3)", 3, tri, "asymptotic"),
        ("4-IS (k=4)", 4, fis, "degenerate (n <= k^k)"),
    ):
        fit = fit_metric_exponent([r.pop("metrics") for r in rows])
        fits.append(
            {
                "problem": name,
                "load exponent (fit)": round(fit.slope, 3),
                "implied delta": round(fit.slope - 1, 3),
                "Dolev et al. 1 - 2/k": round(1 - 2 / k, 3),
                "regime": regime,
            }
        )

    report(tri, title="E11 - triangle detection scaling")
    report(fis, title="E11 - 4-IS detection scaling")
    report(fits, title="E11 - fitted exponents vs 1 - 2/k")

    assert all(r["correct"] for r in tri + fis)
    # Triangle (k=3) is in its asymptotic regime at these sizes and must
    # match 1 - 2/3.  For k=4 the group unions S_v degenerate to all of V
    # until n > k^k = 256 (|S_v| = min(k ceil(n/g), n)), so the measured
    # load is ~n^2 by design — the bench documents the boundary rather
    # than pretending the asymptotic exponent is visible (EXPERIMENTS.md).
    tri_fit = fits[0]
    assert abs(tri_fit["implied delta"] - tri_fit["Dolev et al. 1 - 2/k"]) < 0.2
    fis_fit = fits[1]
    assert fis_fit["load exponent (fit)"] > 1.8  # the documented n^2 regime
