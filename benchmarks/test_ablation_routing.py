"""Ablation — routing scheme and bandwidth choices (DESIGN.md §5.8).

Two design choices the library makes are isolated here:

* **router scheme**: the default ``lenzen`` cost model vs the executable
  ``relay`` store-and-forward vs naive ``direct`` per-link chunking, on
  the Theorem 9 workload (all schemes must produce identical results;
  the cost model matches the theorem's bound, direct pays for skew),
* **bandwidth multiplier**: the model folds constant bandwidth factors
  into the running time — doubling B should roughly halve data rounds.
"""


from repro.algorithms import k_dominating_set, triangle_detection
from repro.clique import run_algorithm
from repro.problems import generators as gen
from repro.problems import reference as ref


def router_ablation() -> list[dict]:
    rows = []
    g = gen.random_graph(64, 0.2, seed=5)
    want = None
    for scheme in ("lenzen", "relay", "direct"):
        def prog(node, scheme=scheme):
            return (yield from k_dominating_set(node, 2, scheme=scheme))

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        found, witness = result.common_output()
        if want is None:
            want = found
        rows.append(
            {
                "scheme": scheme,
                "n": 64,
                "rounds": result.rounds,
                "bulk channel bits": result.bulk_bits,
                "checked message bits": result.total_message_bits,
                "decision": found,
                "agrees": found == want,
            }
        )
    return rows


def bandwidth_ablation() -> list[dict]:
    rows = []
    g = gen.random_graph(64, 0.15, seed=9)
    for mult in (2, 4, 8):
        def prog(node):
            return (yield from triangle_detection(node))

        result = run_algorithm(prog, g, bandwidth_multiplier=mult)
        found, _ = result.common_output()
        rows.append(
            {
                "bandwidth multiplier": mult,
                "B (bits/link/round)": mult * 6,
                "rounds": result.rounds,
                "correct": found == ref.has_triangle(g),
            }
        )
    return rows


def test_ablation_routing(benchmark, report):
    routers = benchmark.pedantic(router_ablation, rounds=1, iterations=1)
    bandwidth = bandwidth_ablation()

    report(routers, title="Ablation - router scheme on Theorem 9's workload")
    report(bandwidth, title="Ablation - bandwidth multiplier on triangle detection")

    assert all(r["agrees"] for r in routers)
    assert all(r["correct"] for r in bandwidth)
    # cost model charges fewer or equal rounds than executable schemes
    by_scheme = {r["scheme"]: r["rounds"] for r in routers}
    assert by_scheme["lenzen"] <= by_scheme["relay"]
    assert by_scheme["lenzen"] <= by_scheme["direct"]
    # only the cost model uses the bulk channel
    assert all(
        (r["scheme"] == "lenzen") == (r["bulk channel bits"] > 0)
        for r in routers
    )
    # more bandwidth, fewer (or equal) rounds
    rounds = [r["rounds"] for r in bandwidth]
    assert rounds[0] >= rounds[1] >= rounds[2]
