"""E16 — the CLIQUE(1) vs NCLIQUE(1) gap (Section 6.1's open question).

The paper's P-vs-NP analogue: every NCLIQUE(1) problem is trivially in
CLIQUE(n / log n) (gather the graph, search certificates locally — local
computation is free), and nothing better is known *in general*, while
verification takes one round.  This harness measures that gap for the
catalog problems: verifier rounds (constant) vs the deterministic
gather-decider rounds (Theta(n / log n)), plus the fastest known
specialised deterministic algorithms from Figure 1 sitting in between.
"""

from repro.algorithms import (
    decide_by_gathering,
    k_dominating_set,
    triangle_detection,
)
from repro.clique import run_algorithm
from repro.core.nondeterminism import run_with_labelling
from repro.core.verifiers import (
    k_dominating_set_verifier,
    triangle_verifier,
)
from repro.problems import generators as gen


def gap_rows() -> list[dict]:
    rows = []
    for n in (16, 32, 64, 128):
        # triangle: verify vs gather vs the Dolev et al. algorithm
        g, _ = gen.planted_k_cycle(n, 3, 0.1, seed=n)
        vp = triangle_verifier()
        cert = vp.prover(g)
        verify = run_with_labelling(vp.algorithm, g, cert)

        gather = run_algorithm(
            decide_by_gathering(vp.problem.predicate), g
        )

        def tri(node):
            return (yield from triangle_detection(node))

        special = run_algorithm(tri, g, bandwidth_multiplier=2)

        rows.append(
            {
                "problem": "triangle",
                "n": n,
                "verify rounds (NCLIQUE(1))": verify.rounds,
                "gather rounds (CLIQUE(n/log n))": gather.rounds,
                "specialised rounds (Fig. 1)": special.rounds,
                "all agree": verify.common_output() == 1
                and gather.common_output() == 1
                and special.common_output()[0],
            }
        )
    return rows


def kds_gap_rows() -> list[dict]:
    rows = []
    for n in (16, 64):
        g, _ = gen.planted_dominating_set(n, 2, 0.1, seed=n)
        vp = k_dominating_set_verifier(2)
        cert = vp.prover(g)
        verify = run_with_labelling(vp.algorithm, g, cert)
        gather = run_algorithm(
            decide_by_gathering(vp.problem.predicate), g
        )

        def kds(node):
            return (yield from k_dominating_set(node, 2))

        special = run_algorithm(kds, g, bandwidth_multiplier=2)
        rows.append(
            {
                "problem": "2-dominating-set",
                "n": n,
                "verify rounds (NCLIQUE(1))": verify.rounds,
                "gather rounds (CLIQUE(n/log n))": gather.rounds,
                "Thm 9 rounds (n^(1/2))": special.rounds,
                "all agree": verify.common_output() == 1
                and gather.common_output() == 1
                and special.common_output()[0],
            }
        )
    return rows


def test_e16_nclique1_gap(benchmark, report):
    tri = benchmark.pedantic(gap_rows, rounds=1, iterations=1)
    kds = kds_gap_rows()

    report(tri, title="E16 - verify vs decide: triangle")
    report(kds, title="E16 - verify vs decide: 2-dominating-set")

    assert all(r["all agree"] for r in tri + kds)
    # verification is constant-round at every size
    assert len({r["verify rounds (NCLIQUE(1))"] for r in tri}) == 1
    # the deterministic gather decider grows with n (the gap the open
    # question CLIQUE(1) != NCLIQUE(1) is about)
    gathers = [r["gather rounds (CLIQUE(n/log n))"] for r in tri]
    assert gathers[-1] > gathers[0]
    assert gathers[-1] > tri[-1]["verify rounds (NCLIQUE(1))"]
