"""E9 — Theorem 9: k-dominating set in O(n^(1-1/k)) rounds.

Round/load scaling for k in {2, 3} over n = g^k grid points (exact group
sizes), fitted load exponents against the theorem's 1 - 1/k (the load of
the busiest node is n * n^(1-1/k) payload bits), plus correctness
against brute force at small sizes.
"""

from conftest import measured_load

from repro.algorithms import k_dominating_set
from repro.analysis import fit_metric_exponent
from repro.engine import RunSpec, run_sweep
from repro.problems import generators as gen
from repro.problems import reference as ref


def kds_planted_point(config: dict) -> RunSpec:
    """Sweep factory: one planted k-DS instance per (n, k) grid point."""
    n, k = config["n"], config["k"]
    g, _ = gen.planted_dominating_set(n, k, 0.1, seed=n)

    def prog(node):
        return (yield from k_dominating_set(node, k))

    def post(result):
        found, witness = result.common_output()
        return {
            "found": found,
            "witness dominates": ref.is_dominating_set(g, witness)
            if found
            else None,
        }

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def kds_random_point(config: dict) -> RunSpec:
    """Sweep factory: k-DS decision vs brute force on a random graph."""
    g = gen.random_graph(config["n"], 0.3, config["seed"])
    k = config["k"]

    def prog(node):
        return (yield from k_dominating_set(node, k))

    def post(result):
        found, _ = result.common_output()
        return found == ref.has_dominating_set(g, k)

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def scaling(k: int, ns: list[int]) -> list[dict]:
    outcomes = run_sweep(
        kds_planted_point,
        [{"k": k, "n": n} for n in ns],
        workers=2,
        engine="fast",
    )
    return [
        {
            "k": k,
            "n": o.config["n"],
            "rounds": o.result.rounds,
            "payload load (bits)": measured_load(o.result),
            "found": o.value["found"],
            "witness dominates": o.value["witness dominates"],
            "metrics": o.result.metrics,
        }
        for o in outcomes
    ]


def correctness_sweep(k: int = 2) -> int:
    outcomes = run_sweep(
        kds_random_point,
        [{"n": 9, "k": k, "seed": seed} for seed in range(8)],
        workers=2,
        engine="fast",
    )
    return sum(1 for o in outcomes if not o.value)


def test_e9_kds_upper(benchmark, report):
    rows2 = scaling(2, [16, 36, 64, 100, 144])
    rows3 = benchmark.pedantic(
        scaling, args=(3, [27, 64, 125, 216]), rounds=1, iterations=1
    )

    fits = []
    for k, rows in ((2, rows2), (3, rows3)):
        # exponent comes straight from the collected RunMetrics
        fit = fit_metric_exponent([r.pop("metrics") for r in rows])
        fits.append(
            {
                "k": k,
                "load exponent (fit)": round(fit.slope, 3),
                "implied delta (= fit - 1)": round(fit.slope - 1, 3),
                "Theorem 9 bound 1 - 1/k": round(1 - 1 / k, 3),
                "r^2": round(fit.r_squared, 4),
            }
        )

    report(rows2 + rows3, title="E9 / Theorem 9 - k-DS scaling")
    report(fits, title="E9 - fitted exponents vs 1 - 1/k")
    wrong = correctness_sweep()
    report(
        [{"random 9-node graphs": 8, "wrong decisions": wrong}],
        title="E9 - correctness vs brute force",
    )

    assert wrong == 0
    assert all(r["found"] for r in rows2 + rows3)  # planted instances
    assert all(r["witness dominates"] for r in rows2 + rows3)
    for f in fits:
        # shape agreement: within 0.15 of the theorem's exponent
        assert abs(f["implied delta (= fit - 1)"] - f["Theorem 9 bound 1 - 1/k"]) < 0.15
