"""E9 — Theorem 9: k-dominating set in O(n^(1-1/k)) rounds.

Round/load scaling for k in {2, 3} over n = g^k grid points (exact group
sizes), fitted load exponents against the theorem's 1 - 1/k (the load of
the busiest node is n * n^(1-1/k) payload bits), plus correctness
against brute force at small sizes.
"""

from conftest import measured_load

from repro.algorithms import k_dominating_set
from repro.analysis import fit_exponent
from repro.clique import run_algorithm
from repro.problems import generators as gen
from repro.problems import reference as ref


def scaling(k: int, ns: list[int]) -> list[dict]:
    rows = []
    for n in ns:
        g, _ = gen.planted_dominating_set(n, k, 0.1, seed=n)

        def prog(node):
            return (yield from k_dominating_set(node, k))

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        found, witness = result.common_output()
        rows.append(
            {
                "k": k,
                "n": n,
                "rounds": result.rounds,
                "payload load (bits)": measured_load(result),
                "found": found,
                "witness dominates": ref.is_dominating_set(g, witness)
                if found
                else None,
            }
        )
    return rows


def correctness_sweep(k: int = 2) -> int:
    wrong = 0
    for seed in range(8):
        g = gen.random_graph(9, 0.3, seed)

        def prog(node):
            return (yield from k_dominating_set(node, k))

        found, _ = run_algorithm(prog, g, bandwidth_multiplier=2).common_output()
        if found != ref.has_dominating_set(g, k):
            wrong += 1
    return wrong


def test_e9_kds_upper(benchmark, report):
    rows2 = scaling(2, [16, 36, 64, 100, 144])
    rows3 = benchmark.pedantic(
        scaling, args=(3, [27, 64, 125, 216]), rounds=1, iterations=1
    )

    fits = []
    for k, rows in ((2, rows2), (3, rows3)):
        fit = fit_exponent(
            [r["n"] for r in rows], [r["payload load (bits)"] for r in rows]
        )
        fits.append(
            {
                "k": k,
                "load exponent (fit)": round(fit.slope, 3),
                "implied delta (= fit - 1)": round(fit.slope - 1, 3),
                "Theorem 9 bound 1 - 1/k": round(1 - 1 / k, 3),
                "r^2": round(fit.r_squared, 4),
            }
        )

    report(rows2 + rows3, title="E9 / Theorem 9 - k-DS scaling")
    report(fits, title="E9 - fitted exponents vs 1 - 1/k")
    wrong = correctness_sweep()
    report(
        [{"random 9-node graphs": 8, "wrong decisions": wrong}],
        title="E9 - correctness vs brute force",
    )

    assert wrong == 0
    assert all(r["found"] for r in rows2 + rows3)  # planted instances
    assert all(r["witness dominates"] for r in rows2 + rows3)
    for f in fits:
        # shape agreement: within 0.15 of the theorem's exponent
        assert abs(f["implied delta (= fit - 1)"] - f["Theorem 9 bound 1 - 1/k"]) < 0.15
