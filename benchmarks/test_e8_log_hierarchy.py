"""E8 — Theorem 8: the logarithmic hierarchy does not capture everything.

Prints the level-by-level counting inequality
``4kM + 4L + T^2 (n-1) log n < 3nL`` (with ``L = T^2 log n`` and
``M = T n log n / 4``) showing that a single hard language escapes every
level ``k <= T`` simultaneously — and that the inequality flips for
absurdly large ``k``, which is why the proof caps the level at ``T``.
"""

import math

from repro.core.counting import theorem8_inequality


def level_rows() -> list[dict]:
    rows = []
    for n in (256, 1024, 4096):
        T = max(2, math.isqrt(n) // 4)
        for k in sorted({1, 2, T // 2, T}):
            if k < 1:
                continue
            q = theorem8_inequality(n, T, k)
            rows.append(
                {
                    "n": n,
                    "T": T,
                    "level k": k,
                    "L = T^2 log n": q.L,
                    "lhs (x4)": q.lhs,
                    "rhs = 3nL": q.rhs,
                    "hard language escapes level": q.holds,
                }
            )
    return rows


def flip_rows() -> list[dict]:
    n, T = 1024, 8
    rows = []
    for k in (T, 8 * T, 64 * T, n * T):
        q = theorem8_inequality(n, T, k)
        rows.append(
            {
                "n": n,
                "T": T,
                "k": k,
                "holds": q.holds,
            }
        )
    return rows


def test_e8_log_hierarchy(benchmark, report):
    rows = benchmark.pedantic(level_rows, rounds=1, iterations=1)
    flips = flip_rows()

    report(rows, title="E8 / Theorem 8 - escape from every level k <= T")
    report(flips, title="E8 - the inequality flips beyond k ~ T (proof's cap)")

    assert all(r["hard language escapes level"] for r in rows)
    assert flips[0]["holds"] and not flips[-1]["holds"]
