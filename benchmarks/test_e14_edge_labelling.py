"""E14 — Theorem 6 / Section 6.1: the canonical edge labelling family.

Compiles NCLIQUE(1) verifiers into edge labelling problems and checks
the defining equivalence — solvable iff the graph is in the language —
exhaustively over all 3-node graphs, plus solution/label-size audits.
"""

from repro.clique.graph import CliqueGraph
from repro.core.edge_labelling import compile_verifier
from repro.core.verifiers import (
    k_dominating_set_verifier,
    k_independent_set_verifier,
    k_vertex_cover_verifier,
)
from repro.problems import all_graphs


def compile_sweep() -> list[dict]:
    rows = []
    for vp in (
        k_independent_set_verifier(2),
        k_dominating_set_verifier(2),
        k_vertex_cover_verifier(1),
    ):
        problem = compile_verifier(vp)
        total = agree = 0
        for g in all_graphs(3):
            total += 1
            if problem.solvable(g) == vp.problem.contains(g):
                agree += 1
        rows.append(
            {
                "verifier": vp.algorithm.name,
                "compiled problem": problem.name,
                "graphs tested": total,
                "solvable == in L": agree,
                "equivalence holds": agree == total,
            }
        )
    return rows


def label_audit() -> list[dict]:
    vp = k_independent_set_verifier(2)
    problem = compile_verifier(vp)
    rows = []
    for edges, name in (
        ([(0, 1), (2, 3)], "yes-instance (2-IS exists)"),
        ([(u, v) for u in range(4) for v in range(u + 1, 4)], "K4 (no 2-IS)"),
    ):
        g = CliqueGraph.from_edges(4, edges)
        sol = problem.solve(g)
        row = {
            "instance": name,
            "solvable": sol is not None,
            "labels": len(sol) if sol else 0,
        }
        if sol:
            bw = max(1, 3 .bit_length())
            max_bits = max(
                sum(len(m) for m in half if m)
                for lab in sol.values()
                for half in lab
            )
            row["max half-label bits"] = max_bits
            row["<= T log n"] = max_bits <= vp.algorithm.running_time(4) * bw
            row["passes check"] = problem.check(g, sol)
        rows.append(row)
    return rows


def test_e14_edge_labelling(benchmark, report):
    sweep = benchmark.pedantic(compile_sweep, rounds=1, iterations=1)
    audit = label_audit()

    report(sweep, title="E14 / Theorem 6 - compiled edge labelling problems")
    report(audit, title="E14 - solution audit on 4-node instances")

    assert all(r["equivalence holds"] for r in sweep)
    assert audit[0]["solvable"] and not audit[1]["solvable"]
    assert audit[0]["passes check"]
    assert audit[0]["<= T log n"]
