"""E2 — Figure 2 / Theorem 10: the k-IS -> k-DS gadget.

Sweeps the construction over random graphs, verifying the equivalence
and both witness maps, and runs the full pipeline (build G', run the
Theorem 9 algorithm on the simulator, map the witness back) end to end.
"""


from repro.algorithms import k_dominating_set
from repro.clique import run_algorithm
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.reductions import (
    ds_witness_to_is,
    is_to_ds_instance,
    is_witness_to_ds,
    simulation_overhead,
)


def gadget_sweep() -> list[dict]:
    rows = []
    for k in (2, 3):
        for seed in range(5):
            g = gen.random_graph(6, 0.45, seed)
            gp, info = is_to_ds_instance(g, k)
            has_is = ref.has_independent_set(g, k)
            has_ds = ref.has_dominating_set(gp, k)
            fwd = bwd = None
            if has_is:
                from repro.problems.catalog import k_independent_set_problem

                witness = k_independent_set_problem(k).certifier(g)
                fwd = ref.is_dominating_set(gp, is_witness_to_ds(witness, info))
            rows.append(
                {
                    "k": k,
                    "seed": seed,
                    "n": g.n,
                    "n'": gp.n,
                    "bound (k^2+k+2)n": (k * k + k + 2) * g.n,
                    "IS(G)": has_is,
                    "DS(G')": has_ds,
                    "equivalent": has_is == has_ds,
                    "fwd witness ok": fwd,
                }
            )
    return rows


def end_to_end() -> list[dict]:
    rows = []
    for seed in range(3):
        k = 2
        g = gen.random_graph(6, 0.45, seed)
        gp, info = is_to_ds_instance(g, k)

        def prog(node):
            return (yield from k_dominating_set(node, k))

        result = run_algorithm(prog, gp, bandwidth_multiplier=2)
        found, witness = result.common_output()
        ok = found == ref.has_independent_set(g, k)
        back_ok = None
        if found:
            back = ds_witness_to_is(witness, info)
            back_ok = ref.is_independent_set(g, back)
        rows.append(
            {
                "seed": seed,
                "G' nodes": gp.n,
                "simulator rounds": result.rounds,
                "decision correct": ok,
                "witness maps back": back_ok,
            }
        )
    return rows


def test_e2_figure2_gadget(benchmark, report):
    sweep = benchmark.pedantic(gadget_sweep, rounds=1, iterations=1)
    pipeline = end_to_end()

    report(sweep, title="E2 / Figure 2 - gadget equivalence sweep")
    report(pipeline, title="E2 - end-to-end simulation (Theorem 9 on G')")
    report(
        [
            {
                "k": k,
                "delta(k-DS)": round(1 - 1 / k, 3),
                "overhead factor k^(2d+4)": round(k ** (2 * (1 - 1 / k) + 4), 1),
                "model factor": round(
                    simulation_overhead(k * k + k + 2, k * k, 1 - 1 / k), 1
                ),
            }
            for k in (2, 3, 4)
        ],
        title="E2 - Theorem 10 overhead accounting",
    )

    assert all(r["equivalent"] for r in sweep)
    assert all(r["fwd witness ok"] in (True, None) for r in sweep)
    assert all(r["decision correct"] for r in pipeline)
    assert all(r["witness maps back"] in (True, None) for r in pipeline)
