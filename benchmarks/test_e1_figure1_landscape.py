"""E1 — Figure 1: the fine-grained landscape.

Regenerates the figure as (a) the delta-bound table for every problem
node and (b) the arrow list, and *executes* a representative arrow from
each family to confirm the inequality direction is real:

* triangle <= Boolean MM (matmul family),
* k-COL <= MaxIS (blow-up family),
* k-IS <= k-DS (Theorem 10),
* Boolean MM <= (2-eps)-APSP (Dor et al.).
"""

import numpy as np
import pytest

from repro.algorithms import triangle_detection
from repro.clique import run_algorithm
from repro.core.exponents import OMEGA, figure1_registry
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.reductions import (
    approximate_apsp,
    apsp_to_product,
    bmm_to_apsp_instance,
    col_to_is_instance,
    is_to_ds_instance,
    triangle_via_boolean_mm,
)


def verify_arrows(seed: int = 3) -> list[dict]:
    rows = []

    # triangle <= Boolean MM
    g = gen.random_graph(12, 0.3, seed)
    via_mm, _ = triangle_via_boolean_mm(g)

    def tri_prog(node):
        return (yield from triangle_detection(node))

    direct, _ = run_algorithm(tri_prog, g, bandwidth_multiplier=2).common_output()
    rows.append(
        {
            "arrow": "triangle <= Boolean MM",
            "instance": "G(12, .3)",
            "agrees": via_mm == direct == ref.has_triangle(g),
        }
    )

    # k-COL <= MaxIS
    g = gen.random_graph(7, 0.45, seed)
    gp, _ = col_to_is_instance(g, 3)
    rows.append(
        {
            "arrow": "3-COL <= MaxIS",
            "instance": "G(7, .45) -> 21 nodes",
            "agrees": ref.is_k_colourable(g, 3)
            == (ref.max_independent_set_size(gp) >= 7),
        }
    )

    # k-IS <= k-DS (Theorem 10)
    g = gen.random_graph(6, 0.5, seed)
    gp, _ = is_to_ds_instance(g, 2)
    rows.append(
        {
            "arrow": "2-IS <= 2-DS (Thm 10)",
            "instance": f"G(6, .5) -> {gp.n} nodes",
            "agrees": ref.has_independent_set(g, 2)
            == ref.has_dominating_set(gp, 2),
        }
    )

    # Boolean MM <= (2-eps)-APSP (Dor et al.)
    rng = gen.rng_from(seed)
    a = rng.random((6, 6)) < 0.4
    b = rng.random((6, 6)) < 0.4
    gg, info = bmm_to_apsp_instance(a, b)
    approx = approximate_apsp(gg, ratio=1.5, seed=seed)
    rows.append(
        {
            "arrow": "Boolean MM <= (2-eps)-APSP",
            "instance": "6x6 -> 18 nodes",
            "agrees": np.array_equal(
                apsp_to_product(approx, info, eps=0.5),
                ref.boolean_matmul(a, b),
            ),
        }
    )
    return rows


def test_e1_figure1_landscape(benchmark, report):
    registry = figure1_registry(k=3, omega=OMEGA)
    arrow_rows = benchmark.pedantic(verify_arrows, rounds=1, iterations=1)

    report(
        registry.table(),
        columns=["problem", "delta_upper", "direct_bound", "source"],
        title="E1 / Figure 1 - problem exponents (k=3)",
    )
    report(
        [
            {"arrow": f"delta({e.frm}) <= delta({e.to})", "source": e.source or "-"}
            for e in registry.arrows()
        ],
        title=f"E1 / Figure 1 - {len(registry.arrows())} arrows",
    )
    report(arrow_rows, title="E1 - executed arrow spot-checks")

    assert all(r["agrees"] for r in arrow_rows)
    bounds = registry.all_bounds()
    assert bounds["triangle"] == pytest.approx(1 - 2 / OMEGA)
    assert bounds["k-ds"] == pytest.approx(2 / 3)
    assert bounds["k-vc"] == 0.0
