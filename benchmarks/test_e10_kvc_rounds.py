"""E10 — Theorem 11: k-vertex cover in O(k) rounds.

Two sweeps: rounds vs n at fixed k (flat — no n-dependence at all), and
rounds vs k at fixed n (growing like ceil((log k + k log n) / B) = O(k)),
plus correctness against brute force.
"""

from repro.algorithms import k_vertex_cover
from repro.engine import RunSpec, run_sweep
from repro.problems import generators as gen
from repro.problems import reference as ref


def kvc_planted_point(config: dict) -> RunSpec:
    """Sweep factory: planted k-VC instance per (n, k, p, seed) point."""
    n, k = config["n"], config["k"]
    g, _ = gen.planted_vertex_cover(n, k, config["p"], seed=config["seed"])

    def prog(node):
        return (yield from k_vertex_cover(node, k))

    def post(result):
        found, witness = result.common_output()
        return {
            "found": found,
            "cover valid": ref.is_vertex_cover(g, witness) if found else None,
        }

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def kvc_random_point(config: dict) -> RunSpec:
    """Sweep factory: k-VC decision vs brute force on a random graph."""
    g = gen.random_graph(config["n"], 0.3, config["seed"])
    k = config["k"]

    def prog(node):
        return (yield from k_vertex_cover(node, k))

    def post(result):
        found, witness = result.common_output()
        ok = found == ref.has_vertex_cover(g, k)
        if found and not ref.is_vertex_cover(g, witness):
            ok = False
        return ok

    return RunSpec(
        program=prog, node_input=g, bandwidth_multiplier=2, postprocess=post
    )


def n_sweep(k: int = 3) -> list[dict]:
    outcomes = run_sweep(
        kvc_planted_point,
        [{"k": k, "n": n, "p": 0.4, "seed": n} for n in (16, 32, 64, 128, 256)],
        workers=2,
        engine="fast",
    )
    return [
        {
            "k": k,
            "n": o.config["n"],
            "rounds": o.result.rounds,
            "found": o.value["found"],
            "cover valid": o.value["cover valid"],
        }
        for o in outcomes
    ]


def k_sweep(n: int = 64) -> list[dict]:
    # k capped at 12: the local kernel solve is a 2^k bounded search
    # tree, and the planted instances get adversarial beyond that.
    outcomes = run_sweep(
        kvc_planted_point,
        [{"k": k, "n": n, "p": 0.35, "seed": k} for k in (2, 4, 8, 12)],
        workers=2,
        engine="fast",
    )
    return [
        {
            "n": n,
            "k": o.config["k"],
            "rounds": o.result.rounds,
            "found": o.value["found"],
        }
        for o in outcomes
    ]


def correctness() -> int:
    outcomes = run_sweep(
        kvc_random_point,
        [{"n": 9, "k": 3, "seed": seed} for seed in range(8)],
        workers=2,
        engine="fast",
    )
    return sum(1 for o in outcomes if not o.value)


def test_e10_kvc_rounds(benchmark, report):
    by_n = benchmark.pedantic(n_sweep, rounds=1, iterations=1)
    by_k = k_sweep()
    wrong = correctness()

    report(by_n, title="E10 / Theorem 11 - rounds vs n at k=3 (flat)")
    report(by_k, title="E10 / Theorem 11 - rounds vs k at n=64 (O(k))")
    report(
        [{"random graphs": 8, "wrong": wrong}],
        title="E10 - correctness vs brute force",
    )

    assert wrong == 0
    # flat in n: 16x more nodes, rounds within +/- 2 (log n enters only
    # through the bandwidth denominator, shrinking rounds if anything)
    assert max(r["rounds"] for r in by_n) <= min(r["rounds"] for r in by_n) + 2
    # linear-ish in k: monotone and boundedly super-linear
    rounds_k = [r["rounds"] for r in by_k]
    assert rounds_k == sorted(rounds_k)
    assert rounds_k[-1] <= 4 * 6 * rounds_k[0] + 8  # O(k) at k ratio 6
    assert all(r["found"] for r in by_n + by_k)
