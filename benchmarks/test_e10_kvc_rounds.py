"""E10 — Theorem 11: k-vertex cover in O(k) rounds.

Two sweeps: rounds vs n at fixed k (flat — no n-dependence at all), and
rounds vs k at fixed n (growing like ceil((log k + k log n) / B) = O(k)),
plus correctness against brute force.
"""

from conftest import measured_load

from repro.algorithms import k_vertex_cover
from repro.clique import run_algorithm
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_kvc(g, k):
    def prog(node):
        return (yield from k_vertex_cover(node, k))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


def n_sweep(k: int = 3) -> list[dict]:
    rows = []
    for n in (16, 32, 64, 128, 256):
        g, _ = gen.planted_vertex_cover(n, k, 0.4, seed=n)
        result = run_kvc(g, k)
        found, witness = result.common_output()
        rows.append(
            {
                "k": k,
                "n": n,
                "rounds": result.rounds,
                "found": found,
                "cover valid": ref.is_vertex_cover(g, witness)
                if found
                else None,
            }
        )
    return rows


def k_sweep(n: int = 64) -> list[dict]:
    rows = []
    # k capped at 12: the local kernel solve is a 2^k bounded search
    # tree, and the planted instances get adversarial beyond that.
    for k in (2, 4, 8, 12):
        g, _ = gen.planted_vertex_cover(n, k, 0.35, seed=k)
        result = run_kvc(g, k)
        found, witness = result.common_output()
        rows.append(
            {
                "n": n,
                "k": k,
                "rounds": result.rounds,
                "found": found,
            }
        )
    return rows


def correctness() -> int:
    wrong = 0
    for seed in range(8):
        g = gen.random_graph(9, 0.3, seed)
        found, witness = run_kvc(g, 3).common_output()
        if found != ref.has_vertex_cover(g, 3):
            wrong += 1
        if found and not ref.is_vertex_cover(g, witness):
            wrong += 1
    return wrong


def test_e10_kvc_rounds(benchmark, report):
    by_n = benchmark.pedantic(n_sweep, rounds=1, iterations=1)
    by_k = k_sweep()
    wrong = correctness()

    report(by_n, title="E10 / Theorem 11 - rounds vs n at k=3 (flat)")
    report(by_k, title="E10 / Theorem 11 - rounds vs k at n=64 (O(k))")
    report(
        [{"random graphs": 8, "wrong": wrong}],
        title="E10 - correctness vs brute force",
    )

    assert wrong == 0
    # flat in n: 16x more nodes, rounds within +/- 2 (log n enters only
    # through the bandwidth denominator, shrinking rounds if anything)
    assert max(r["rounds"] for r in by_n) <= min(r["rounds"] for r in by_n) + 2
    # linear-ish in k: monotone and boundedly super-linear
    rounds_k = [r["rounds"] for r in by_k]
    assert rounds_k == sorted(rounds_k)
    assert rounds_k[-1] <= 4 * 6 * rounds_k[0] + 8  # O(k) at k ratio 6
    assert all(r["found"] for r in by_n + by_k)
