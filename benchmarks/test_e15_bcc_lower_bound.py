"""E15 — broadcast congested clique lower bounds (Section 2 context).

The paper's related work: "for the broadcast congested clique ... lower
bounds have been proven using communication complexity arguments [19]".
This harness regenerates that reasoning executably:

* exact deterministic CC and fooling-set bounds for EQ_k / DISJ_k,
* the BCC -> two-party simulation: an equality instance embedded across
  a cut, the algorithm's broadcast transcript measured against the CC
  lower bound, and the derived round lower bound T >= (D-1)/(nB)
  compared to measured rounds.
"""


from repro.clique.network import CongestedClique
from repro.core.two_party import (
    bcc_cut_bits,
    bcc_round_lower_bound,
    disjointness_matrix,
    equality_bcc_program,
    equality_matrix,
    exact_communication_complexity,
    fooling_set_bound,
)


def cc_table() -> list[dict]:
    rows = []
    for name, matrix_fn, ks in (
        ("EQ", equality_matrix, (1, 2, 3)),
        ("DISJ", disjointness_matrix, (1, 2)),
    ):
        for k in ks:
            m = matrix_fn(k)
            rows.append(
                {
                    "function": f"{name}_{k}",
                    "matrix": f"{m.shape[0]}x{m.shape[1]}",
                    "fooling bound": fooling_set_bound(m),
                    "exact D(f)": exact_communication_complexity(m),
                }
            )
    return rows


def simulation_table() -> list[dict]:
    rows = []
    for n, k in ((4, 8), (4, 16), (8, 16)):
        program = equality_bcc_program(k)
        aux = {0: (1 << k) - 3, 1: (1 << k) - 3}
        clique = CongestedClique(n, broadcast_only=True)
        result = clique.run(program, None, aux=lambda v: aux.get(v, 0))
        bandwidth = max(1, (n - 1).bit_length())
        d_lower = k + 1  # fooling set: D(EQ_k) = k + 1
        rows.append(
            {
                "n": n,
                "k": k,
                "verdict": result.common_output(),
                "broadcast bits across cut": bcc_cut_bits(result, [0]),
                "D(EQ_k) lower bound": d_lower,
                "round LB (D-1)/(nB)": bcc_round_lower_bound(
                    d_lower, n, bandwidth
                ),
                "measured rounds": result.rounds,
                "cut bits >= D - 2": bcc_cut_bits(result, [0]) >= d_lower - 2,
            }
        )
    return rows


def test_e15_bcc_lower_bound(benchmark, report):
    cc = benchmark.pedantic(cc_table, rounds=1, iterations=1)
    sim = simulation_table()

    report(cc, title="E15 - two-party communication complexity (exact)")
    report(sim, title="E15 - BCC equality vs the simulation lower bound")

    for row in cc:
        assert row["fooling bound"] <= row["exact D(f)"]
    eq = {r["function"]: r["exact D(f)"] for r in cc}
    assert eq["EQ_1"] == 2 and eq["EQ_2"] == 3 and eq["EQ_3"] == 4
    for row in sim:
        assert row["verdict"] == 1
        assert row["measured rounds"] >= row["round LB (D-1)/(nB)"]
        assert row["cut bits >= D - 2"]
