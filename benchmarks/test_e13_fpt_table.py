"""E13 — the Section 7.3 fixed-parameter tractability comparison.

Regenerates the paper's FPT discussion as a measured table:

* k-VC: O(k) rounds — polynomial in k, independent of n,
* k-path: exp(k) rounds — exponential in k, independent of n,
* k-IS: O(n^(1-2/k)) rounds — n-dependence grows with k,
* k-DS: O(n^(1-1/k)) rounds — n-dependence grows with k,

mirroring the centralised FPT / W[1] / W[2] split the paper draws.
"""

from conftest import measured_load

from repro.algorithms import (
    k_dominating_set,
    k_independent_set_detection,
    k_path_detection,
    k_vertex_cover,
)
from repro.clique import run_algorithm
from repro.problems import generators as gen


def fpt_rows() -> list[dict]:
    rows = []
    k = 3
    for n in (27, 64, 125):
        g_vc, _ = gen.planted_vertex_cover(n, k, 0.4, seed=n)

        def vc_prog(node):
            return (yield from k_vertex_cover(node, k))

        r_vc = run_algorithm(vc_prog, g_vc, bandwidth_multiplier=2)

        g_path, _ = gen.planted_hamiltonian_path(n, 0.05, seed=n)

        def path_prog(node):
            return (yield from k_path_detection(node, k, trials=3, seed=n))

        r_path = run_algorithm(path_prog, g_path, bandwidth_multiplier=2)

        g_is, _ = gen.planted_independent_set(n, k, 0.5, seed=n)

        def is_prog(node):
            return (yield from k_independent_set_detection(node, k))

        r_is = run_algorithm(is_prog, g_is, bandwidth_multiplier=2)

        g_ds, _ = gen.planted_dominating_set(n, k, 0.1, seed=n)

        def ds_prog(node):
            return (yield from k_dominating_set(node, k))

        r_ds = run_algorithm(ds_prog, g_ds, bandwidth_multiplier=2)

        rows.append(
            {
                "n": n,
                "k": k,
                "k-VC rounds (O(k))": r_vc.rounds,
                "k-path rounds (exp(k))": r_path.rounds,
                "k-IS rounds (n^(1-2/k))": r_is.rounds,
                "k-IS load": measured_load(r_is),
                "k-DS rounds (n^(1-1/k))": r_ds.rounds,
                "k-DS load": measured_load(r_ds),
            }
        )
    return rows


def k_growth_rows(n: int = 32) -> list[dict]:
    rows = []
    for k in (2, 3, 4):
        g_vc, _ = gen.planted_vertex_cover(n, k, 0.4, seed=k)

        def vc_prog(node):
            return (yield from k_vertex_cover(node, k))

        r_vc = run_algorithm(vc_prog, g_vc, bandwidth_multiplier=2)

        g_path, _ = gen.planted_hamiltonian_path(n, 0.05, seed=k)

        def path_prog(node):
            return (yield from k_path_detection(node, k, trials=2, seed=k))

        r_path = run_algorithm(path_prog, g_path, bandwidth_multiplier=2)
        rows.append(
            {
                "k": k,
                "n": n,
                "k-VC rounds": r_vc.rounds,
                "k-path rounds": r_path.rounds,
                "k-path DP table bits (2^k)": 1 << k,
            }
        )
    return rows


def test_e13_fpt_table(benchmark, report):
    rows = benchmark.pedantic(fpt_rows, rounds=1, iterations=1)
    growth = k_growth_rows()

    report(rows, title="E13 / Section 7.3 - FPT comparison across n (k=3)")
    report(growth, title="E13 - growth in k at n=32")

    # k-VC flat in n
    vc = [r["k-VC rounds (O(k))"] for r in rows]
    assert max(vc) <= min(vc) + 2
    # k-path flat in n (exp(k) but n-independent)
    kp = [r["k-path rounds (exp(k))"] for r in rows]
    assert max(kp) <= min(kp) + 4
    # k-DS load grows faster than k-IS load (1-1/k > 1-2/k)
    assert rows[-1]["k-DS load"] > rows[-1]["k-IS load"]
    # k-path rounds grow with k (the 2^k DP tables)
    kp_growth = [r["k-path rounds"] for r in growth]
    assert kp_growth[-1] > kp_growth[0]
