"""E3 — Lemma 1: protocols vs functions.

Regenerates the counting table behind all the paper's lower bounds:
log2(#protocols) vs log2(#functions) across an (n, b, L, t) grid, the
hard-round-budget threshold (~ L/b - 1), and — at miniature scale — the
*exact* exhaustive protocol counts against the bound.
"""

import math

from repro.analysis.report import magnitude
from repro.core.counting import (
    log2_num_functions,
    log2_num_protocols,
    max_hard_round_budget,
    protocols_fewer_than_functions,
)
from repro.core.protocols import computable_functions


def counting_grid() -> list[dict]:
    rows = []
    for n in (8, 64, 256):
        b = max(1, math.ceil(math.log2(n)))
        for L in (2 * b, 8 * b):
            for t in (0, 1, L // b - 2, L // b):
                if t < 0:
                    continue
                lp = log2_num_protocols(n, b, L, t)
                lf = log2_num_functions(n, L)
                rows.append(
                    {
                        "n": n,
                        "b": b,
                        "L": L,
                        "t": t,
                        "log2 #protocols": magnitude(lp),
                        "log2 #functions": magnitude(lf),
                        "hard f exists": lp < lf,
                    }
                )
    return rows


def threshold_rows() -> list[dict]:
    rows = []
    for n in (8, 64, 256, 1024):
        b = max(1, math.ceil(math.log2(n)))
        L = 10 * b
        rows.append(
            {
                "n": n,
                "b": b,
                "L": L,
                "max hard t": max_hard_round_budget(n, b, L),
                "paper's L/b - 1": L // b - 1,
            }
        )
    return rows


def exact_miniature() -> list[dict]:
    rows = []
    for n, L in ((2, 1), (2, 2), (3, 1)):
        exact = len(computable_functions(n, L, 1))
        bound = log2_num_protocols(n, 1, L, 1)
        rows.append(
            {
                "n": n,
                "L": L,
                "exact #computable (exhaustive)": exact,
                "log2 of Lemma 1 bound": bound,
                "#functions": 1 << (1 << (n * L)),
                "bound sound": math.log2(exact) <= bound,
            }
        )
    return rows


def test_e3_lemma1_counting(benchmark, report):
    grid = benchmark.pedantic(counting_grid, rounds=1, iterations=1)
    thresholds = threshold_rows()
    exact = exact_miniature()

    report(grid, title="E3 / Lemma 1 - protocols vs functions")
    report(thresholds, title="E3 - hard-round-budget threshold (= L/b - 1)")
    report(exact, title="E3 - exact exhaustive counts vs Lemma 1 bound")

    for row in thresholds:
        assert row["max hard t"] == row["paper's L/b - 1"]
    assert all(r["bound sound"] for r in exact)
    # the headline: in the paper's regime protocols are outnumbered
    assert protocols_fewer_than_functions(256, 8, 64, 4)
