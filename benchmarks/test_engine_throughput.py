"""Engine micro-benchmarks — performance tracking for the simulator.

Not a paper experiment: the acceptance gates here (fast engine >= 2x on
fan-out, default-on metrics <= 10% overhead) guard the throughput the
exponent experiments (E9-E12) depend on.  The timed workload and the
timing loop both come from :mod:`repro.bench` — the same implementation
the ``repro bench`` suite and the CI perf ratchet use — so there is one
definition of "how we time the engine" in the repository.
"""

import gc

import numpy as np
import pytest

from repro.algorithms.common import decode_bool_row, encode_bool_row
from repro.bench import all_to_all_chatter, measure
from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.clique.routing import route
from repro.engine import FastEngine
from repro.engine.columnar import ColumnarEngine
from repro.engine.diff import catalog_factory
from repro.engine.pool import available_cpus, run_spec
from repro.problems import generators as gen


def test_message_fanout_throughput(benchmark):
    n, rounds = 64, 16

    def work():
        return all_to_all_chatter(n, rounds)

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_message_fanout_reference_engine(benchmark):
    """Fan-out on the explicit reference backend (baseline for the
    fast-engine speedup tracked in the benchmark history)."""
    n, rounds = 64, 16

    def work():
        return all_to_all_chatter(n, rounds, engine="reference")

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_message_fanout_fast_engine(benchmark):
    """Fan-out on the fast backend (check="bandwidth", transcripts off)."""
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    def work():
        return all_to_all_chatter(n, rounds, engine=engine)

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_fast_engine_speedup_on_fanout():
    """Acceptance gate: the fast engine is >= 2x faster than the
    reference engine on the n=64, 16-round all-to-all fan-out with
    check="bandwidth" and transcripts off (best-of-5 wall clock)."""
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    ref = measure(lambda: all_to_all_chatter(n, rounds), repeats=5, warmup=0)
    fast = measure(
        lambda: all_to_all_chatter(n, rounds, engine=engine),
        repeats=5,
        warmup=0,
    )
    # Identical observable results ...
    assert fast.result.rounds == ref.result.rounds
    assert fast.result.total_message_bits == ref.result.total_message_bits
    assert fast.result.sent_bits == ref.result.sent_bits
    assert fast.result.received_bits == ref.result.received_bits
    # ... at least twice as fast.
    assert fast.best * 2 <= ref.best, (
        f"fast engine not 2x faster: reference {ref.best * 1e3:.1f}ms, "
        f"fast {fast.best * 1e3:.1f}ms"
    )


def test_sharded_columnar_speedup_on_fanout_work():
    """Acceptance gate: on a multicore runner, the shard-parallel
    columnar engine is >= 1.5x faster than single-instance columnar on
    the n=1024 compute-heavy fan-out (best-of-3 wall clock), with
    bit-identical results.  Auto-skips where the process may only
    schedule on one core — there is nothing to parallelise into.
    """
    cores = available_cpus()
    if cores < 2:
        pytest.skip(f"sharded speedup needs >= 2 usable cores, have {cores}")
    config = {
        "algorithm": "fanout_work",
        "n": 1024,
        "rounds": 4,
        "state": 4096,
        "passes": 6,
        "seed": 0,
    }
    single = ColumnarEngine(check="bandwidth")
    sharded = ColumnarEngine(check="bandwidth", shards=2, executor="process")

    base = measure(
        lambda: run_spec(catalog_factory(dict(config)), single)[0],
        repeats=3,
        warmup=1,
    )
    split = measure(
        lambda: run_spec(catalog_factory(dict(config)), sharded)[0],
        repeats=3,
        warmup=1,
    )
    # Identical observable results ...
    assert split.result.outputs == base.result.outputs
    assert split.result.rounds == base.result.rounds
    assert split.result.total_message_bits == base.result.total_message_bits
    assert split.result.sent_bits == base.result.sent_bits
    assert split.result.received_bits == base.result.received_bits
    # ... at least 1.5x faster on two shards.
    assert split.best * 1.5 <= base.best, (
        f"sharded columnar not 1.5x faster: single {base.best * 1e3:.1f}ms, "
        f"shards=2 {split.best * 1e3:.1f}ms"
    )


def test_metrics_overhead_on_fanout():
    """Acceptance gate: default-on RunMetrics collection costs <= 10%
    wall clock on the fast engine's batched fan-out hot path, relative
    to an explicit ``observer=False`` run.

    Measurement design, chosen so scheduler noise cannot masquerade as
    collector overhead:

    - The two arms are timed in *interleaved pairs* so a load spike or
      frequency shift mid-test lands on both arms alike.
    - GC is disabled across the timed region (and restored after): the
      observed arm allocates more, so collection pauses would otherwise
      bias it specifically.
    - The overhead ratio is estimated independently in three blocks of
      ten pairs (best-of-10 per arm per block) and the gate takes the
      *cleanest* block.  Noise only ever inflates a block's ratio, so
      the minimum over blocks is the tightest observed bound on the
      true overhead — the same best-of-k logic the suite applies to a
      single wall-clock quantity.
    """
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    block_ratios: list[float] = []
    blocks: list[tuple[float, float]] = []
    off_result = on_result = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(3):
            off_times: list[float] = []
            on_times: list[float] = []
            for _ in range(10):
                timing = measure(
                    lambda: all_to_all_chatter(
                        n, rounds, engine=engine, observer=False
                    ),
                    repeats=1,
                    warmup=0,
                )
                off_times += timing.times
                off_result = timing.result
                timing = measure(
                    lambda: all_to_all_chatter(n, rounds, engine=engine),
                    repeats=1,
                    warmup=0,
                )
                on_times += timing.times
                on_result = timing.result
            blocks.append((min(off_times), min(on_times)))
            block_ratios.append(min(on_times) / min(off_times))
    finally:
        gc.enable()
    assert off_result.metrics is None
    assert on_result.metrics is not None
    assert on_result.metrics.rounds == rounds
    assert on_result.metrics.message_bits == n * (n - 1) * rounds
    best_block = min(range(3), key=block_ratios.__getitem__)
    off_best, on_best = blocks[best_block]
    assert on_best <= off_best * 1.10, (
        f"default-on metrics cost > 10% in every block: "
        f"ratios {[f'{r:.3f}' for r in block_ratios]}, cleanest block "
        f"off {off_best * 1e3:.2f}ms, on {on_best * 1e3:.2f}ms"
    )


def test_bool_row_codec_throughput(benchmark):
    rng = gen.rng_from(1)
    row = rng.random(4096) < 0.5

    def work():
        bits = encode_bool_row(row)
        back = decode_bool_row(bits, row.size)
        return back

    back = benchmark(work)
    assert np.array_equal(back, row)


def test_relay_router_throughput(benchmark):
    n = 16
    payload = BitString.zeros(512)

    def work():
        def prog(node):
            flows = {(node.id + 1) % n: payload, (node.id + 5) % n: payload}
            got = yield from route(node, flows, scheme="relay")
            return sum(len(b) for b in got.values())

        clique = CongestedClique(n, bandwidth_multiplier=2, max_rounds=10**5)
        return clique.run(prog)

    result = benchmark(work)
    assert all(v == 1024 for v in result.outputs.values())
