"""Engine micro-benchmarks — performance tracking for the simulator.

Not a paper experiment: tracks the throughput of the engine's hot paths
(message fan-out, bit packing, routing) so regressions show up in the
benchmark history.  The exponent experiments (E9-E12) depend on being
able to run n in the hundreds.
"""

import numpy as np

from repro.algorithms.common import decode_bool_row, encode_bool_row
from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.clique.routing import route
from repro.problems import generators as gen


def all_to_all_chatter(n: int, rounds: int):
    def prog(node):
        payload = BitString(node.id % 2, 1)
        for _ in range(rounds):
            node.send_to_all(payload)
            yield
        return None

    return CongestedClique(n).run(prog)


def test_message_fanout_throughput(benchmark):
    n, rounds = 64, 16

    def work():
        return all_to_all_chatter(n, rounds)

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_bool_row_codec_throughput(benchmark):
    rng = gen.rng_from(1)
    row = rng.random(4096) < 0.5

    def work():
        bits = encode_bool_row(row)
        back = decode_bool_row(bits, row.size)
        return back

    back = benchmark(work)
    assert np.array_equal(back, row)


def test_relay_router_throughput(benchmark):
    n = 16
    payload = BitString.zeros(512)

    def work():
        def prog(node):
            flows = {(node.id + 1) % n: payload, (node.id + 5) % n: payload}
            got = yield from route(node, flows, scheme="relay")
            return sum(len(b) for b in got.values())

        clique = CongestedClique(n, bandwidth_multiplier=2, max_rounds=10**5)
        return clique.run(prog)

    result = benchmark(work)
    assert all(v == 1024 for v in result.outputs.values())
