"""Engine micro-benchmarks — performance tracking for the simulator.

Not a paper experiment: tracks the throughput of the engine's hot paths
(message fan-out, bit packing, routing) so regressions show up in the
benchmark history.  The exponent experiments (E9-E12) depend on being
able to run n in the hundreds.
"""

import time

import numpy as np

from repro.algorithms.common import decode_bool_row, encode_bool_row
from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.clique.routing import route
from repro.engine import FastEngine
from repro.problems import generators as gen


def all_to_all_chatter(n: int, rounds: int, engine=None, observer=None):
    def prog(node):
        payload = BitString(node.id % 2, 1)
        for _ in range(rounds):
            node.send_to_all(payload)
            yield
        return None

    return CongestedClique(n).run(prog, engine=engine, observer=observer)


def _best_of(work, reps=5):
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        result = work()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_message_fanout_throughput(benchmark):
    n, rounds = 64, 16

    def work():
        return all_to_all_chatter(n, rounds)

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_message_fanout_reference_engine(benchmark):
    """Fan-out on the explicit reference backend (baseline for the
    fast-engine speedup tracked in the benchmark history)."""
    n, rounds = 64, 16

    def work():
        return all_to_all_chatter(n, rounds, engine="reference")

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_message_fanout_fast_engine(benchmark):
    """Fan-out on the fast backend (check="bandwidth", transcripts off)."""
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    def work():
        return all_to_all_chatter(n, rounds, engine=engine)

    result = benchmark(work)
    assert result.rounds == rounds
    assert result.total_message_bits == n * (n - 1) * rounds


def test_fast_engine_speedup_on_fanout():
    """Acceptance gate: the fast engine is >= 2x faster than the
    reference engine on the n=64, 16-round all-to-all fan-out with
    check="bandwidth" and transcripts off (best-of-5 wall clock)."""
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    ref_time, ref_result = _best_of(lambda: all_to_all_chatter(n, rounds))
    fast_time, fast_result = _best_of(
        lambda: all_to_all_chatter(n, rounds, engine=engine)
    )
    # Identical observable results ...
    assert fast_result.rounds == ref_result.rounds
    assert fast_result.total_message_bits == ref_result.total_message_bits
    assert fast_result.sent_bits == ref_result.sent_bits
    assert fast_result.received_bits == ref_result.received_bits
    # ... at least twice as fast.
    assert fast_time * 2 <= ref_time, (
        f"fast engine not 2x faster: reference {ref_time*1e3:.1f}ms, "
        f"fast {fast_time*1e3:.1f}ms"
    )


def test_metrics_overhead_on_fanout():
    """Acceptance gate: default-on RunMetrics collection costs <= 10%
    wall clock on the fast engine's batched fan-out hot path, relative
    to an explicit ``observer=False`` run (best-of-9 wall clock)."""
    n, rounds = 64, 16
    engine = FastEngine(check="bandwidth")

    off_time, off_result = _best_of(
        lambda: all_to_all_chatter(n, rounds, engine=engine, observer=False),
        reps=9,
    )
    on_time, on_result = _best_of(
        lambda: all_to_all_chatter(n, rounds, engine=engine), reps=9
    )
    assert off_result.metrics is None
    assert on_result.metrics is not None
    assert on_result.metrics.rounds == rounds
    assert on_result.metrics.message_bits == n * (n - 1) * rounds
    assert on_time <= off_time * 1.10, (
        f"default-on metrics cost > 10%: off {off_time*1e3:.2f}ms, "
        f"on {on_time*1e3:.2f}ms"
    )


def test_bool_row_codec_throughput(benchmark):
    rng = gen.rng_from(1)
    row = rng.random(4096) < 0.5

    def work():
        bits = encode_bool_row(row)
        back = decode_bool_row(bits, row.size)
        return back

    back = benchmark(work)
    assert np.array_equal(back, row)


def test_relay_router_throughput(benchmark):
    n = 16
    payload = BitString.zeros(512)

    def work():
        def prog(node):
            flows = {(node.id + 1) % n: payload, (node.id + 5) % n: payload}
            got = yield from route(node, flows, scheme="relay")
            return sum(len(b) for b in got.values())

        clique = CongestedClique(n, bandwidth_multiplier=2, max_rounds=10**5)
        return clique.run(prog)

    result = benchmark(work)
    assert all(v == 1024 for v in result.outputs.values())
