"""E7 — Theorem 7: the unlimited hierarchy collapses to Sigma_2.

Runs the guess-and-probe Sigma_2 algorithm on problems of very
different character — including a non-isomorphism-closed language —
exhaustively over all 3-node graphs, and confirms constant round count
at larger sizes.
"""

from repro.clique.bits import BitString, uint_width
from repro.clique.network import CongestedClique
from repro.core.hierarchy import (
    graph_encoding_bits,
    sigma2_decides,
    sigma2_honest_guess,
    sigma2_universal_algorithm,
)
from repro.problems import (
    all_graphs,
    connectivity_problem,
    parity_of_edges_problem,
    triangle_problem,
)
from repro.problems import generators as gen
from repro.problems.base import DecisionProblem


def collapse_sweep() -> list[dict]:
    problems = [
        triangle_problem(),
        connectivity_problem(),
        parity_of_edges_problem(),
        DecisionProblem(
            name="edge-01-present (not isomorphism-closed)",
            predicate=lambda g: g.has_edge(0, 1),
        ),
    ]
    rows = []
    for problem in problems:
        total = correct = 0
        for g in all_graphs(3):
            total += 1
            if sigma2_decides(problem, g) == problem.contains(g):
                correct += 1
        rows.append(
            {
                "problem": problem.name,
                "graphs tested": total,
                "decided correctly": correct,
                "all correct": correct == total,
            }
        )
    return rows


def constant_round_rows() -> list[dict]:
    problem = parity_of_edges_problem()
    rows = []
    for n in (6, 12, 24, 48):
        g = gen.random_graph(n, 0.5, 1)
        program = sigma2_universal_algorithm(problem)
        honest = sigma2_honest_guess(g)
        slot_w = uint_width(max(1, graph_encoding_bits(n) - 1))
        z2 = [BitString(0, slot_w)] * n

        def aux(v):
            return {"labels": (honest[v], z2[v])}

        clique = CongestedClique(n, bandwidth_multiplier=2)
        result = clique.run(program, g, aux=aux)
        rows.append(
            {
                "n": n,
                "guess label bits": graph_encoding_bits(n),
                "probe label bits": slot_w,
                "rounds": result.rounds,
                "verdict matches L": set(result.outputs.values())
                == {int(problem.contains(g))},
            }
        )
    return rows


def test_e7_sigma2_collapse(benchmark, report):
    sweep = benchmark.pedantic(collapse_sweep, rounds=1, iterations=1)
    rounds = constant_round_rows()

    report(sweep, title="E7 / Theorem 7 - Sigma_2 decides everything (3-node exhaustive)")
    report(rounds, title="E7 - the Sigma_2 verifier runs in O(1) rounds")

    assert all(r["all correct"] for r in sweep)
    assert all(r["verdict matches L"] for r in rounds)
    assert len({r["rounds"] for r in rounds}) == 1  # constant in n
