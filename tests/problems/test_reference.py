"""Tests for centralised reference solvers against networkx ground truth."""


import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.graph import INF, CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


def small_random(n, p, seed):
    return gen.random_graph(n, p, seed)


class TestSetChecks:
    def test_independent_set(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2)])
        assert ref.is_independent_set(g, [0, 2, 3])
        assert not ref.is_independent_set(g, [0, 1])

    def test_dominating_set(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert ref.is_dominating_set(g, [0])
        assert not ref.is_dominating_set(g, [1])

    def test_vertex_cover(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        assert ref.is_vertex_cover(g, [0, 2])
        assert not ref.is_vertex_cover(g, [0])

    def test_empty_set_cases(self):
        e = CliqueGraph.empty(3)
        assert ref.is_independent_set(e, [])
        assert ref.is_vertex_cover(e, [])
        assert not ref.is_dominating_set(e, [])  # isolated nodes undominated


class TestBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_max_is_matches_networkx_complement_clique(self, seed):
        g = small_random(8, 0.5, seed)
        gx = g.to_networkx()
        want = max(
            len(c) for c in nx.find_cliques(nx.complement(gx))
        )
        assert ref.max_independent_set_size(g) == want

    @pytest.mark.parametrize("seed", range(5))
    def test_gallai_identity(self, seed):
        """max IS + min VC = n (Gallai)."""
        g = small_random(7, 0.4, seed)
        assert (
            ref.max_independent_set_size(g) + ref.min_vertex_cover_size(g)
            == g.n
        )

    def test_min_dominating_set(self):
        star = CliqueGraph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert ref.min_dominating_set_size(star) == 1
        path = CliqueGraph.from_edges(6, [(i, i + 1) for i in range(5)])
        assert ref.min_dominating_set_size(path) == 2

    def test_has_k_variants_monotone(self):
        g = small_random(7, 0.5, 3)
        mis = ref.max_independent_set_size(g)
        assert ref.has_independent_set(g, mis)
        assert not ref.has_independent_set(g, mis + 1)


class TestColouring:
    def test_bipartite(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert ref.is_k_colourable(g, 2)

    def test_odd_cycle_not_2col(self):
        g = CliqueGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert not ref.is_k_colourable(g, 2)
        assert ref.is_k_colourable(g, 3)

    def test_complete_needs_n(self):
        g = CliqueGraph.complete(5)
        assert not ref.is_k_colourable(g, 4)
        assert ref.is_k_colourable(g, 5)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_planted(self, seed):
        g, _ = gen.planted_colouring(8, 3, 0.7, seed)
        assert ref.is_k_colourable(g, 3)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_chromatic_lower(self, seed):
        g = small_random(7, 0.5, seed)
        # networkx greedy gives an upper bound on chi
        gx = g.to_networkx()
        greedy = max(nx.greedy_color(gx).values(), default=-1) + 1
        assert ref.is_k_colourable(g, greedy)


class TestHamiltonianPath:
    def test_path_graph(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert ref.has_hamiltonian_path(g)

    def test_star_has_none(self):
        g = CliqueGraph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert not ref.has_hamiltonian_path(g)

    def test_tiny(self):
        assert ref.has_hamiltonian_path(CliqueGraph.empty(1))

    @pytest.mark.parametrize("seed", range(3))
    def test_planted(self, seed):
        g, _ = gen.planted_hamiltonian_path(8, 0.1, seed)
        assert ref.has_hamiltonian_path(g)


class TestSubgraphs:
    def test_triangle(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (0, 2)])
        assert ref.has_triangle(g)
        assert ref.count_triangles(g) == 1

    def test_triangle_free(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not ref.has_triangle(g)

    def test_count_triangles_k4(self):
        assert ref.count_triangles(CliqueGraph.complete(4)) == 4

    def test_k_cycle(self):
        g = CliqueGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert ref.has_k_cycle(g, 5)
        assert not ref.has_k_cycle(g, 3)
        assert not ref.has_k_cycle(g, 4)

    def test_k_cycle_bad_k(self):
        with pytest.raises(ValueError):
            ref.has_k_cycle(CliqueGraph.empty(3), 2)

    def test_k_path(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2)])
        assert ref.has_k_path(g, 3)
        assert not ref.has_k_path(g, 4)

    def test_has_subgraph(self):
        g = CliqueGraph.from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3)])
        tri = CliqueGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        p4 = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert ref.has_subgraph(g, tri)
        assert ref.has_subgraph(g, p4)
        k4 = CliqueGraph.complete(4)
        assert not ref.has_subgraph(g, k4)

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_cycle(self, seed):
        g, _ = gen.planted_k_cycle(9, 4, 0.05, seed)
        assert ref.has_k_cycle(g, 4)


class TestMatrices:
    def test_boolean_matmul(self):
        a = np.array([[1, 0], [1, 1]], dtype=bool)
        b = np.array([[0, 1], [0, 0]], dtype=bool)
        out = ref.boolean_matmul(a, b)
        assert out.tolist() == [[False, True], [False, True]]

    def test_minplus_identity(self):
        n = 4
        ident = np.full((n, n), INF, dtype=np.int64)
        np.fill_diagonal(ident, 0)
        a = np.array(
            [[0, 3, INF, INF]] + [[INF] * 4] * 3, dtype=np.int64
        )
        out = ref.minplus_matmul(a, ident)
        assert np.array_equal(out, a)

    def test_minplus_path(self):
        # 0 -3-> 1 -4-> 2
        a = np.full((3, 3), INF, dtype=np.int64)
        np.fill_diagonal(a, 0)
        a[0, 1] = 3
        a[1, 2] = 4
        out = ref.minplus_matmul(a, a)
        assert out[0, 2] == 7

    def test_transitive_closure(self):
        a = np.zeros((4, 4), dtype=bool)
        a[0, 1] = a[1, 2] = True
        tc = ref.transitive_closure(a)
        assert tc[0, 2]
        assert not tc[2, 0]
        assert tc[3, 3]

    @pytest.mark.parametrize("seed", range(4))
    def test_apsp_matches_networkx(self, seed):
        g = gen.random_weighted_graph(8, 0.4, 20, seed)
        dist = ref.apsp_matrix(g)
        gx = g.to_networkx()
        nxdist = dict(nx.all_pairs_dijkstra_path_length(gx))
        for u in range(8):
            for v in range(8):
                if v in nxdist.get(u, {}):
                    assert dist[u, v] == nxdist[u][v]
                else:
                    assert dist[u, v] >= INF

    @pytest.mark.parametrize("seed", range(3))
    def test_apsp_unweighted_matches_bfs(self, seed):
        g = gen.random_graph(9, 0.3, seed)
        dist = ref.apsp_matrix(g)
        gx = g.to_networkx()
        for u in range(9):
            lengths = nx.single_source_shortest_path_length(gx, u)
            for v in range(9):
                if v in lengths:
                    assert dist[u, v] == lengths[v]
                else:
                    assert dist[u, v] >= INF

    def test_sssp_vector(self):
        g = CliqueGraph.from_weighted_edges(3, [(0, 1, 5), (1, 2, 2)])
        d = ref.sssp_vector(g, 0)
        assert d.tolist() == [0, 5, 7]

    @given(st.integers(2, 6), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_minplus_matches_bruteforce(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 10, (n, n)).astype(np.int64)
        b = rng.integers(0, 10, (n, n)).astype(np.int64)
        out = ref.minplus_matmul(a, b)
        for i in range(n):
            for j in range(n):
                assert out[i, j] == min(a[i, k] + b[k, j] for k in range(n))
