"""Tests for seeded graph generators."""

import numpy as np
import pytest

from repro.clique.graph import CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


class TestDeterminism:
    def test_same_seed_same_graph(self):
        assert gen.random_graph(10, 0.5, 7) == gen.random_graph(10, 0.5, 7)

    def test_different_seed_differs(self):
        assert gen.random_graph(10, 0.5, 7) != gen.random_graph(10, 0.5, 8)

    def test_weighted_deterministic(self):
        a = gen.random_weighted_graph(8, 0.5, 50, 3)
        b = gen.random_weighted_graph(8, 0.5, 50, 3)
        assert a == b


class TestRandomGraph:
    def test_density_extremes(self):
        assert gen.random_graph(6, 0.0, 1).num_edges() == 0
        assert gen.random_graph(6, 1.0, 1).num_edges() == 15

    def test_undirected(self):
        g = gen.random_graph(8, 0.5, 2)
        assert not g.directed
        assert np.array_equal(g.adjacency, g.adjacency.T)

    def test_directed(self):
        g = gen.random_directed_graph(8, 0.5, 2)
        assert g.directed

    def test_weighted_in_range(self):
        g = gen.random_weighted_graph(8, 0.8, 9, 4)
        for u, v in g.edges():
            assert 1 <= g.weight(u, v) <= 9


class TestPlanted:
    @pytest.mark.parametrize("seed", range(4))
    def test_planted_is(self, seed):
        g, witness = gen.planted_independent_set(12, 4, 0.6, seed)
        assert len(witness) == 4
        assert ref.is_independent_set(g, witness)

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_ds(self, seed):
        g, witness = gen.planted_dominating_set(12, 3, 0.1, seed)
        assert ref.is_dominating_set(g, witness)

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_vc(self, seed):
        g, witness = gen.planted_vertex_cover(12, 3, 0.5, seed)
        assert ref.is_vertex_cover(g, witness)

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_colouring(self, seed):
        g, colours = gen.planted_colouring(12, 3, 0.7, seed)
        for u, v in g.edges():
            assert colours[u] != colours[v]

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_ham_path(self, seed):
        g, path = gen.planted_hamiltonian_path(9, 0.1, seed)
        assert sorted(path) == list(range(9))
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_cycle(self, seed):
        g, cyc = gen.planted_k_cycle(10, 5, 0.05, seed)
        assert len(set(cyc)) == 5
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert g.has_edge(a, b)


class TestAllGraphs:
    def test_count(self):
        assert sum(1 for _ in gen.all_graphs(3)) == 8
        assert sum(1 for _ in gen.all_graphs(4)) == 64

    def test_distinct(self):
        graphs = list(gen.all_graphs(3))
        assert len({hash(g) for g in graphs}) == 8

    def test_includes_extremes(self):
        graphs = list(gen.all_graphs(3))
        assert CliqueGraph.empty(3) in graphs
        assert CliqueGraph.complete(3) in graphs


class TestRandomBits:
    def test_length_and_range(self):
        bits = gen.random_bits(100, 5)
        assert len(bits) == 100
        assert set(bits) <= {0, 1}

    def test_deterministic(self):
        assert gen.random_bits(50, 1) == gen.random_bits(50, 1)
