"""Tests for the decision-problem catalog and certifiers."""

import pytest

from repro.clique.graph import CliqueGraph
from repro.problems import (
    complement,
    connectivity_problem,
    diameter_at_most_problem,
    hamiltonian_path_problem,
    k_colouring_problem,
    k_cycle_problem,
    k_dominating_set_problem,
    k_independent_set_problem,
    k_vertex_cover_problem,
    parity_of_edges_problem,
    triangle_problem,
)
from repro.problems import generators as gen
from repro.problems import reference as ref


def c5():
    return CliqueGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])


class TestMembership:
    def test_colouring(self):
        p = k_colouring_problem(3)
        assert p.contains(c5())
        assert not k_colouring_problem(2).contains(c5())
        assert c5() in p

    def test_triangle(self):
        p = triangle_problem()
        assert CliqueGraph.complete(3) in p
        assert c5() not in p

    def test_hamiltonian(self):
        assert c5() in hamiltonian_path_problem()

    def test_sets(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        assert g in k_independent_set_problem(2)
        assert g in k_vertex_cover_problem(2)
        assert g in k_dominating_set_problem(2)
        assert g not in k_vertex_cover_problem(1)

    def test_connectivity(self):
        assert c5() in connectivity_problem()
        assert CliqueGraph.empty(3) not in connectivity_problem()

    def test_diameter(self):
        assert c5() in diameter_at_most_problem(2)
        assert c5() not in diameter_at_most_problem(1)

    def test_parity(self):
        assert c5() in parity_of_edges_problem()
        assert CliqueGraph.complete(4) not in parity_of_edges_problem()

    def test_complement(self):
        p = complement(triangle_problem())
        assert c5() in p
        assert CliqueGraph.complete(3) not in p
        assert p.name == "co-triangle"


class TestCertifiers:
    @pytest.mark.parametrize("seed", range(3))
    def test_colouring_certificate_valid(self, seed):
        g, _ = gen.planted_colouring(8, 3, 0.6, seed)
        p = k_colouring_problem(3)
        cert = p.certifier(g)
        assert cert is not None
        for u, v in g.edges():
            assert cert[u] != cert[v]

    def test_colouring_certificate_none_on_no(self):
        p = k_colouring_problem(2)
        assert p.certifier(c5()) is None

    def test_hamiltonian_certificate(self):
        p = hamiltonian_path_problem()
        path = p.certifier(c5())
        assert sorted(path) == list(range(5))
        for a, b in zip(path, path[1:]):
            assert c5().has_edge(a, b)

    def test_triangle_certificate(self):
        g = CliqueGraph.from_edges(5, [(1, 2), (2, 4), (1, 4)])
        tri = triangle_problem().certifier(g)
        assert set(tri) == {1, 2, 4}

    @pytest.mark.parametrize("seed", range(3))
    def test_set_certificates(self, seed):
        g, _ = gen.planted_independent_set(9, 3, 0.7, seed)
        cert = k_independent_set_problem(3).certifier(g)
        assert cert is not None and ref.is_independent_set(g, cert)

        g2, _ = gen.planted_dominating_set(9, 2, 0.1, seed)
        cert2 = k_dominating_set_problem(2).certifier(g2)
        assert cert2 is not None and ref.is_dominating_set(g2, cert2)

    def test_k_cycle_certificate(self):
        g, _ = gen.planted_k_cycle(8, 4, 0.0, 1)
        cyc = k_cycle_problem(4).certifier(g)
        assert cyc is not None and len(cyc) == 4
        for a, b in zip(cyc, cyc[1:] + cyc[:1]):
            assert g.has_edge(a, b)

    def test_certifier_agrees_with_predicate(self):
        for seed in range(5):
            g = gen.random_graph(7, 0.4, seed)
            for prob in (
                triangle_problem(),
                k_independent_set_problem(3),
                k_colouring_problem(3),
            ):
                has = prob.contains(g)
                cert = prob.certifier(g)
                assert (cert is not None) == has
