"""Smoke tests: the fast example scripts run end to end.

(The two heavier sweeps — fine_grained_landscape and cluster_routing —
are exercised by the benchmark harness instead.)
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "nondeterminism_demo.py",
        "time_hierarchy_miniature.py",
        "search_problems_and_broadcast.py",
        "model_zoo.py",
    ],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_present():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "fine_grained_landscape.py",
        "nondeterminism_demo.py",
        "cluster_routing.py",
        "time_hierarchy_miniature.py",
        "search_problems_and_broadcast.py",
        "model_zoo.py",
    } <= found
