"""Executable checks of Section 6.2's "basic properties".

The paper lists: Sigma_k, Pi_k are in Delta_k and the next level, and
complementation swaps Sigma and Pi.  Beyond the structural checks in
``classes.py``, this exercises the complement flip on a real problem:
triangle (Sigma_1 = NCLIQUE(1)) vs triangle-freeness (Pi_1 = co-nondet).
"""


from repro.clique.bits import BitReader, BitString, uint_width
from repro.clique.graph import CliqueGraph
from repro.clique.primitives import all_broadcast
from repro.core.hierarchy import evaluate_alternation
from repro.problems import all_graphs
from repro.problems import reference as ref


def anti_triangle_program(node):
    """The Pi_1 verifier for triangle-freeness: REJECT iff the (single,
    universally-quantified) labelling names a real triangle.  Then
    ``forall z : A(G, z) = 1`` holds exactly on triangle-free graphs."""
    n = node.n
    vw = uint_width(max(1, n - 1))
    (label,) = node.aux["labels"]
    if len(label) != 3 * vw:
        yield from all_broadcast(node, BitString.zeros(3 * vw))
        return 1  # malformed universal guess never refutes
    labels = yield from all_broadcast(node, label)
    if any(lab != label for lab in labels):
        return 1  # inconsistent guesses never refute
    r = BitReader(label)
    a, b, c = (r.read_uint(vw) for _ in range(3))
    if len({a, b, c}) != 3 or max(a, b, c) >= n:
        return 1
    row = node.input
    me = node.id
    # Round 2: each endpoint votes whether its incident claimed edges
    # are real (no single node sees all three edges of the guess).
    confirmed = 1
    for x, y in ((a, b), (a, c), (b, c)):
        if me == x and not row[y]:
            confirmed = 0
        if me == y and not row[x]:
            confirmed = 0
    votes = yield from all_broadcast(node, BitString(confirmed, 1))
    if all(votes[v].value == 1 for v in (a, b, c)):
        # z names a real triangle, refuting triangle-freeness
        return 0
    return 1


def label_space(n):
    vw = uint_width(max(1, n - 1))
    width = 3 * vw
    # same label at every node (guesses are cross-checked anyway; this
    # keeps the exhaustive space small)
    return [
        [BitString(v, width)] * n for v in range(1 << width)
    ]


class TestComplementFlip:
    def test_pi1_decides_triangle_freeness_exhaustively(self):
        for g in all_graphs(3):
            holds = evaluate_alternation(
                anti_triangle_program,
                g,
                ["forall"],
                [label_space(3)],
                bandwidth_multiplier=2,
            )
            assert holds == (not ref.has_triangle(g)), sorted(g.edges())

    def test_sigma1_on_the_complement_program(self):
        """exists z refuting <=> triangle exists: the same verifier,
        negated acceptance, is the Sigma_1 view of the complement."""
        k3 = CliqueGraph.complete(3)
        # evaluate "exists z : A(G,z) = 0" by checking the forall fails
        assert not evaluate_alternation(
            anti_triangle_program,
            k3,
            ["forall"],
            [label_space(3)],
            bandwidth_multiplier=2,
        )
        path = CliqueGraph.from_edges(3, [(0, 1), (1, 2)])
        assert evaluate_alternation(
            anti_triangle_program,
            path,
            ["forall"],
            [label_space(3)],
            bandwidth_multiplier=2,
        )
