"""Tests for the randomised extension (Section 8)."""

import pytest

from repro.clique.bits import BitReader, BitString, uint_width
from repro.clique.graph import CliqueGraph
from repro.clique.primitives import all_broadcast
from repro.core.randomness import (
    MonteCarloAlgorithm,
    estimate_acceptance,
    monte_carlo_to_nondeterministic,
    run_with_randomness,
)
from repro.problems import all_graphs


def guess_triangle_mc() -> MonteCarloAlgorithm:
    """A deliberately naive one-sided Monte Carlo triangle detector:
    every node interprets its random bits as a guessed triangle; accept
    iff all nodes guessed the same, real triangle.  Acceptance
    probability is tiny but positive on yes-instances and exactly zero
    on no-instances — ideal for exercising the Section 8 conversion."""

    def program(node):
        n = node.n
        vw = uint_width(max(1, n - 1))
        rand: BitString = node.aux["random"]
        guesses = yield from all_broadcast(node, rand)
        # node 0's broadcast string is the shared guess
        r = BitReader(guesses[0])
        a, b, c = (r.read_uint(vw) % n for _ in range(3))
        if len({a, b, c}) != 3:
            return 0
        row = node.input
        me = node.id
        for x, y in ((a, b), (a, c), (b, c)):
            if me == x and not row[y]:
                return 0
            if me == y and not row[x]:
                return 0
        return 1

    return MonteCarloAlgorithm(
        name="guess-triangle",
        program=program,
        randomness=lambda n: 3 * uint_width(max(1, n - 1)),
        running_time=lambda n: 3,
    )


class TestMonteCarloExecution:
    def test_one_sided_soundness(self):
        """No-instance: zero acceptance over many trials."""
        algo = guess_triangle_mc()
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert estimate_acceptance(algo, g, trials=40) == 0.0

    def test_yes_instance_sometimes_accepts(self):
        algo = guess_triangle_mc()
        g = CliqueGraph.complete(3)  # every distinct triple is a triangle
        assert estimate_acceptance(algo, g, trials=60) > 0.0

    def test_trial_determinism(self):
        algo = guess_triangle_mc()
        g = CliqueGraph.complete(4)
        a = run_with_randomness(algo, g, seed=5).outputs
        b = run_with_randomness(algo, g, seed=5).outputs
        assert a == b


class TestConversion:
    def test_two_sided_rejected(self):
        algo = MonteCarloAlgorithm(
            name="x",
            program=lambda node: iter(()),
            randomness=lambda n: 1,
            running_time=lambda n: 1,
            one_sided=False,
        )
        with pytest.raises(ValueError):
            monte_carlo_to_nondeterministic(algo)

    def test_converted_verifier_decides_triangle(self):
        """The paper's remark, executed: reading the random string as a
        certificate turns the Monte Carlo detector into an NCLIQUE
        verifier.  Completeness: the certificate naming a real triangle
        is accepted.  Soundness: on no-instances, a large certificate
        sample is uniformly rejected (full soundness follows from
        one-sidedness, which TestMonteCarloExecution checks directly)."""
        from repro.clique.bits import BitWriter
        from repro.core.nondeterminism import run_with_labelling
        from repro.problems.catalog import triangle_problem

        nd = monte_carlo_to_nondeterministic(guess_triangle_mc())
        certifier = triangle_problem().certifier
        for g in list(all_graphs(4))[::5]:
            tri = certifier(g)
            if tri is not None:
                vw = uint_width(3)
                w = BitWriter()
                for v in tri:
                    w.write_uint(v, vw)
                label = w.finish()
                result = run_with_labelling(
                    nd, g, tuple(label for _ in range(4))
                )
                assert all(o == 1 for o in result.outputs.values())
            else:
                for seed in range(10):
                    result = run_with_randomness(
                        guess_triangle_mc(), g, seed
                    )
                    assert not all(
                        o == 1 for o in result.outputs.values()
                    )

    def test_label_size_matches_randomness(self):
        algo = guess_triangle_mc()
        nd = monte_carlo_to_nondeterministic(algo)
        assert nd.label_size(8) == algo.randomness(8)
        assert nd.running_time(8) == algo.running_time(8)
