"""Tests for the executable time hierarchy miniature (Theorem 2)."""

import itertools

import pytest

from repro.core.protocols import computable_functions
from repro.core.time_hierarchy import (
    TimeHierarchyMiniature,
    decider_program,
    decider_rounds,
    evaluate_language,
    find_hard_function_miniature,
    separation_table,
    time_hierarchy_miniature,
)


class TestHardFunctionMiniature:
    def test_exists(self):
        f = find_hard_function_miniature()
        assert len(f) == 16

    def test_raises_when_none(self):
        with pytest.raises(ValueError):
            find_hard_function_miniature(n=2, L=1, b=1)


class TestDecider:
    def test_decider_computes_f(self):
        f = find_hard_function_miniature()
        decided = evaluate_language(f, 2, 2, bandwidth=1)
        inputs = list(itertools.product(range(4), repeat=2))
        for i, x in enumerate(inputs):
            assert decided[x] == f[i]

    def test_decider_round_count(self):
        """The decider takes ceil(L/b) rounds — more than the 1-round
        budget the hard function evades."""
        assert decider_rounds(2, 1) == 2
        from repro.clique.network import CongestedClique

        f = find_hard_function_miniature()
        program = decider_program(f, 2)
        clique = CongestedClique(2, bandwidth=1)
        result = clique.run(program, None, aux=[1, 2])
        assert result.rounds == 2


class TestMiniatureSeparation:
    def test_full_audit(self):
        """The complete Theorem 2 pipeline at (n=2, b=1, L=2):
        CLIQUE(1 round) != CLIQUE(2 rounds), executably."""
        audit = time_hierarchy_miniature()
        assert isinstance(audit, TimeHierarchyMiniature)
        assert audit.separates
        assert not audit.one_round_computable
        assert audit.decider_correct
        assert audit.decider_rounds == 2
        # counting sanity: strictly fewer computable functions than all
        assert audit.num_computable_one_round < audit.num_functions

    def test_f_is_lexicographically_first(self):
        audit = time_hierarchy_miniature()
        computable = computable_functions(2, 2, 1)
        for idx in range(audit.f_index):
            assert idx in computable
        assert audit.f_index not in computable


class TestSeparationTables:
    def test_theorem2_rows(self):
        rows = separation_table([64, 256], "theorem2")
        assert len(rows) == 2
        for row in rows:
            assert row["hard_function_exists"]
            assert row["log2_protocols"] < row["log2_functions"]

    def test_theorem4_rows(self):
        rows = separation_table([64, 256, 1024], "theorem4")
        assert all(row["holds"] for row in rows)

    def test_theorem8_rows(self):
        rows = separation_table([256, 1024], "theorem8")
        assert all(row["holds"] for row in rows)
        ks = {row["k"] for row in rows}
        assert 1 in ks and 2 in ks

    def test_unknown_table(self):
        with pytest.raises(ValueError):
            separation_table([8], "theorem99")
