"""Tests for the nondeterministic congested clique and its verifiers."""

import pytest

from repro.clique.bits import BitString
from repro.clique.graph import CliqueGraph
from repro.core.nondeterminism import (
    all_labellings,
    decide_nondeterministic,
    run_with_labelling,
)
from repro.core.verifiers import (
    hamiltonian_path_verifier,
    k_colouring_verifier,
    k_dominating_set_verifier,
    k_independent_set_verifier,
    k_vertex_cover_verifier,
    triangle_verifier,
)
from repro.problems import all_graphs
from repro.problems import generators as gen


def c5():
    return CliqueGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])


def accepts(result):
    return all(v == 1 for v in result.outputs.values())


class TestAllLabellings:
    def test_count(self):
        assert sum(1 for _ in all_labellings(2, 2)) == 16
        assert sum(1 for _ in all_labellings(3, 1)) == 8

    def test_fixed_width(self):
        for lab in all_labellings(2, 3):
            assert all(len(b) == 3 for b in lab)


class TestProverVerifierAgreement:
    """For every catalog problem: the prover's labelling is accepted on
    yes-instances; the prover returns None exactly on no-instances."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: k_colouring_verifier(3),
            hamiltonian_path_verifier,
            triangle_verifier,
            lambda: k_independent_set_verifier(2),
            lambda: k_dominating_set_verifier(2),
            lambda: k_vertex_cover_verifier(2),
        ],
    )
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, factory, seed):
        vp = factory()
        g = gen.random_graph(7, 0.4, seed)
        is_yes = vp.problem.contains(g)
        labelling = vp.prover(g)
        assert (labelling is not None) == is_yes
        if is_yes:
            result = run_with_labelling(vp.algorithm, g, labelling)
            assert accepts(result)

    def test_colouring_bad_certificate_rejected(self):
        vp = k_colouring_verifier(2)
        g = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        # constant colouring violates properness
        bad = tuple(BitString(0, 1) for _ in range(4))
        assert not accepts(run_with_labelling(vp.algorithm, g, bad))

    def test_triangle_inconsistent_labels_rejected(self):
        vp = triangle_verifier()
        g = CliqueGraph.complete(4)
        good = vp.prover(g)
        bad = list(good)
        bad[2] = BitString(0, len(good[2]))  # claims triangle (0,0,0)
        assert not accepts(run_with_labelling(vp.algorithm, g, tuple(bad)))

    def test_ham_path_non_permutation_rejected(self):
        vp = hamiltonian_path_verifier()
        g = c5()
        width = vp.algorithm.label_size(5)
        bad = tuple(BitString(0, width) for _ in range(5))
        assert not accepts(run_with_labelling(vp.algorithm, g, bad))

    def test_oversized_label_rejected(self):
        vp = k_independent_set_verifier(2)
        g = CliqueGraph.empty(3)
        with pytest.raises(ValueError):
            run_with_labelling(
                vp.algorithm, g, tuple(BitString(0, 5) for _ in range(3))
            )


class TestExhaustiveSoundness:
    """The defining equivalence, checked exhaustively: exists z accepted
    iff the graph is a yes-instance — over ALL graphs on 4 nodes."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: k_independent_set_verifier(2),
            lambda: k_dominating_set_verifier(2),
            lambda: k_vertex_cover_verifier(1),
        ],
    )
    def test_membership_verifiers_all_4node_graphs(self, factory):
        vp = factory()
        for g in all_graphs(4):
            decided, witness = decide_nondeterministic(vp.algorithm, g)
            assert decided == vp.problem.contains(g), (
                f"{vp.problem.name} wrong on {sorted(g.edges())}"
            )
            if decided:
                assert accepts(
                    run_with_labelling(vp.algorithm, g, witness)
                )

    def test_colouring_exhaustive_small(self):
        vp = k_colouring_verifier(2)
        for g in all_graphs(3):
            decided, _ = decide_nondeterministic(vp.algorithm, g)
            assert decided == vp.problem.contains(g)

    def test_nclique_rounds_constant(self):
        """NCLIQUE(1) verifiers run in O(1) rounds at every size."""
        vp = k_independent_set_verifier(2)
        rounds = []
        for n in (8, 32):
            g, _ = gen.planted_independent_set(n, 2, 0.5, 1)
            labelling = vp.prover(g)
            result = run_with_labelling(vp.algorithm, g, labelling)
            assert accepts(result)
            rounds.append(result.rounds)
        assert rounds[0] == rounds[1] == 1
