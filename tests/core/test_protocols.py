"""Tests for the non-uniform protocol model and exhaustive enumeration."""



from repro.core.protocols import (
    acceptance_computable,
    computable_functions,
    enumerate_message_schemes,
    first_hard_function,
    function_from_index,
    index_of_function,
    nondet_computable_functions,
    two_round_protocol_computes,
    views_for_scheme,
)


class TestFunctionIndexing:
    def test_roundtrip(self):
        for idx in range(256):
            table = function_from_index(idx, 8)
            assert index_of_function(table) == idx

    def test_lexicographic_convention(self):
        # index 0 is the all-zero function; the first bit of the table is
        # the most significant bit of the index.
        assert function_from_index(0, 4) == (0, 0, 0, 0)
        assert function_from_index(8, 4) == (1, 0, 0, 0)
        assert function_from_index(1, 4) == (0, 0, 0, 1)


class TestMessageSchemes:
    def test_count_n2_L1(self):
        # per ordered pair: (2^b)^(2^L) = 2^2 = 4; two pairs -> 16
        schemes = list(enumerate_message_schemes(2, 1, 1))
        assert len(schemes) == 16

    def test_count_n2_L2(self):
        schemes = list(enumerate_message_schemes(2, 2, 1))
        assert len(schemes) == 256

    def test_views_shape(self):
        scheme = next(enumerate_message_schemes(2, 1, 1))
        views = views_for_scheme(2, 1, scheme)
        assert len(views) == 2
        assert len(views[0]) == 4  # 2^(nL) global inputs


class TestComputableFunctions:
    def test_n2_L1_everything_computable(self):
        """With L = b = 1 a node can forward its whole input in one
        round, so every function of 2 bits is computable."""
        computable = computable_functions(2, 1, 1)
        assert len(computable) == 16

    def test_n2_L2_most_functions_hard(self):
        """The miniature of Theorem 2's counting core: at (n=2, b=1,
        L=2, t=1) only a small fraction of the 65536 functions have a
        protocol."""
        computable = computable_functions(2, 2, 1)
        assert len(computable) < (1 << 16)
        # sanity: constants and single-node dictators are computable
        assert 0 in computable  # f == 0
        assert (1 << 16) - 1 in computable  # f == 1

    def test_dictator_computable(self):
        """f(x1, x2) = first bit of x1 is a view function of node 1 and
        is broadcastable in one bit."""
        # input index layout: x1 (2 bits) then x2 (2 bits), MSB first
        table = [0] * 16
        for x1 in range(4):
            for x2 in range(4):
                table[(x1 << 2) | x2] = (x1 >> 1) & 1
        computable = computable_functions(2, 2, 1)
        assert index_of_function(table) in computable

    def test_inner_product_hard(self):
        """IP(x1, x2) = <x1, x2> mod 2 needs 2 bits of communication, so
        it is not computable at (2, 1, 2, 1)."""
        table = [0] * 16
        for x1 in range(4):
            for x2 in range(4):
                ip = ((x1 & 1) * (x2 & 1) + ((x1 >> 1) & (x2 >> 1))) % 2
                table[(x1 << 2) | x2] = ip
        computable = computable_functions(2, 2, 1)
        assert index_of_function(table) not in computable


class TestFirstHardFunction:
    def test_none_when_all_computable(self):
        assert first_hard_function(2, 1, 1) is None

    def test_exists_at_miniature_parameters(self):
        f = first_hard_function(2, 2, 1)
        assert f is not None
        assert len(f) == 16
        # hard functions are not constant
        assert 0 < sum(f) < 16

    def test_first_means_minimal(self):
        f = first_hard_function(2, 2, 1)
        idx = index_of_function(f)
        computable = computable_functions(2, 2, 1)
        for smaller in range(idx):
            assert smaller in computable

    def test_hard_function_solvable_in_two_rounds(self):
        """The time hierarchy miniature: the function with no 1-round
        protocol is computed by the trivial 2-round streaming protocol."""
        f = first_hard_function(2, 2, 1)
        assert two_round_protocol_computes(f, 2, 2, 1)

    def test_n3_L1_all_computable(self):
        """Sanity: with L = 1 every bit fits in one message, so there is
        no hard function even for n = 3."""
        assert first_hard_function(3, 1, 1) is None


class TestAcceptanceSemantics:
    def test_empty_yes_set(self):
        scheme = next(enumerate_message_schemes(2, 1, 1))
        views = views_for_scheme(2, 1, scheme)
        assert acceptance_computable(frozenset(), views, 4)

    def test_full_yes_set(self):
        scheme = next(enumerate_message_schemes(2, 1, 1))
        views = views_for_scheme(2, 1, scheme)
        assert acceptance_computable(frozenset(range(4)), views, 4)

    def test_and_function_acceptable(self):
        """AND(x1, x2) is acceptance-computable without communication:
        each node outputs its own bit."""
        # constant-message scheme (sends 0 regardless)
        scheme = {(0, 1): (0, 0), (1, 0): (0, 0)}
        views = views_for_scheme(2, 1, scheme)
        # inputs indexed x1(1bit)||x2(1bit): AND yes-set = {3}
        assert acceptance_computable(frozenset({3}), views, 4)

    def test_or_function_not_silent_acceptable(self):
        """OR needs communication: with constant messages each node only
        knows its own bit, and saturating {01,10,11} pulls in 00."""
        scheme = {(0, 1): (0, 0), (1, 0): (0, 0)}
        views = views_for_scheme(2, 1, scheme)
        assert not acceptance_computable(frozenset({1, 2, 3}), views, 4)


class TestNondetComputable:
    def test_deterministic_subset(self):
        """Everything deterministically computable is nondeterministically
        computable (with M = 1 guess bit)."""
        det = computable_functions(2, 1, 1)
        nondet = nondet_computable_functions(2, 1, 1, 1)
        assert det <= nondet

    def test_all_16_functions_nondet_computable_at_L1(self):
        nondet = nondet_computable_functions(2, 1, 1, 1)
        assert len(nondet) == 16
