"""Tests for the Pi_2 side of Theorem 7 and acceptance complementation."""

import pytest

from repro.clique.bits import BitString
from repro.clique.graph import CliqueGraph
from repro.core.hierarchy import (
    complement_acceptance,
    pi2_decides,
    run_k_labelling,
)
from repro.problems import (
    all_graphs,
    parity_of_edges_problem,
    triangle_problem,
)


class TestComplementAcceptance:
    def make_program(self, verdicts):
        """An inner 1-labelling program with fixed per-node verdicts."""

        def program(node):
            yield
            return verdicts[node.id]

        return program

    def test_all_accept_becomes_reject(self):
        inner = self.make_program([1, 1, 1])
        wrapped = complement_acceptance(inner)
        g = CliqueGraph.empty(3)
        assert not run_k_labelling(wrapped, g, [[BitString(0, 1)] * 3])

    def test_one_reject_becomes_accept(self):
        inner = self.make_program([1, 0, 1])
        wrapped = complement_acceptance(inner)
        g = CliqueGraph.empty(3)
        assert run_k_labelling(wrapped, g, [[BitString(0, 1)] * 3])

    def test_per_node_negation_would_be_wrong(self):
        """The subtlety the wrapper exists for: negating outputs
        per-node does NOT complement acceptance when verdicts are
        mixed."""
        verdicts = [1, 0, 1]
        # naive per-node negation: [0, 1, 0] -> not all 1 -> reject,
        # but the complement of "not all 1" should ACCEPT.
        naive = self.make_program([1 - v for v in verdicts])
        g = CliqueGraph.empty(3)
        assert not run_k_labelling(naive, g, [[BitString(0, 1)] * 3])
        proper = complement_acceptance(self.make_program(verdicts))
        assert run_k_labelling(proper, g, [[BitString(0, 1)] * 3])


class TestPi2Collapse:
    """Theorem 7's corollary: every decision problem is in Pi_2 too."""

    @pytest.mark.parametrize(
        "problem_factory", [triangle_problem, parity_of_edges_problem]
    )
    def test_all_3node_graphs(self, problem_factory):
        problem = problem_factory()
        for g in all_graphs(3):
            assert pi2_decides(problem, g) == problem.contains(g), sorted(
                g.edges()
            )
