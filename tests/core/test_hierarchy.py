"""Tests for the constant-round decision hierarchy and Theorem 7."""


import pytest

from repro.clique.bits import BitString
from repro.clique.graph import CliqueGraph
from repro.core.hierarchy import (
    decode_graph_guess,
    encode_graph_guess,
    evaluate_alternation,
    graph_encoding_bits,
    run_k_labelling,
    sigma2_decides,
    sigma2_honest_guess,
    sigma2_universal_algorithm,
    _pair_of_slot,
)
from repro.problems import (
    all_graphs,
    connectivity_problem,
    parity_of_edges_problem,
    triangle_problem,
)
from repro.problems.base import DecisionProblem


class TestGraphEncoding:
    def test_bits(self):
        assert graph_encoding_bits(4) == 6

    def test_pair_of_slot(self):
        n = 4
        pairs = [_pair_of_slot(s, n) for s in range(6)]
        assert pairs == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]

    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip(self, seed):
        from repro.problems import generators as gen

        g = gen.random_graph(6, 0.5, seed)
        assert decode_graph_guess(encode_graph_guess(g), 6) == g


class TestEvaluateAlternation:
    def test_exists_semantics(self):
        """A 1-labelling program that accepts iff node 0's label is 1."""

        def program(node):
            (z,) = node.aux["labels"]
            yield
            return int(node.id != 0 or z.value == 1)

        g = CliqueGraph.empty(2)
        space = [
            [BitString(a, 1), BitString(b, 1)]
            for a in (0, 1)
            for b in (0, 1)
        ]
        assert evaluate_alternation(program, g, ["exists"], [space])
        # forall fails: the labelling with z_0 = 0 rejects
        assert not evaluate_alternation(program, g, ["forall"], [space])

    def test_exists_forall(self):
        """exists z1 forall z2 : z1[0] >= z2[0]  — true (pick z1[0]=1)."""

        def program(node):
            z1, z2 = node.aux["labels"]
            yield
            if node.id != 0:
                return 1
            return int(z1.value >= z2.value)

        g = CliqueGraph.empty(2)
        space = [
            [BitString(a, 1), BitString(b, 1)]
            for a in (0, 1)
            for b in (0, 1)
        ]
        assert evaluate_alternation(
            program, g, ["exists", "forall"], [space, space]
        )
        # forall z1 exists z2 : z1[0] > z2[0] — false (z1[0]=0 beats none)
        def program2(node):
            z1, z2 = node.aux["labels"]
            yield
            if node.id != 0:
                return 1
            return int(z1.value > z2.value)

        assert not evaluate_alternation(
            program2, g, ["forall", "exists"], [space, space]
        )

    def test_mismatched_args(self):
        with pytest.raises(ValueError):
            evaluate_alternation(None, CliqueGraph.empty(2), ["exists"], [])


class TestSigma2Collapse:
    """Theorem 7: EVERY decision problem is decided by the Sigma_2
    guess-and-probe algorithm — verified exhaustively on 3-node graphs
    for problems of very different character."""

    @pytest.mark.parametrize(
        "problem_factory",
        [
            triangle_problem,
            connectivity_problem,
            parity_of_edges_problem,
            # an arbitrary non-isomorphism-closed language:
            lambda: DecisionProblem(
                name="edge-01-present",
                predicate=lambda g: g.has_edge(0, 1),
            ),
        ],
    )
    def test_all_3node_graphs(self, problem_factory):
        problem = problem_factory()
        for g in all_graphs(3):
            want = problem.contains(g)
            got = sigma2_decides(problem, g)
            assert got == want, f"{problem.name} wrong on {sorted(g.edges())}"

    def test_honest_guess_accepted_under_all_probes(self):
        """Completeness direction: for a yes-instance, the honest guess
        survives every universal probe."""
        problem = triangle_problem()
        g = CliqueGraph.complete(3)
        program = sigma2_universal_algorithm(problem)
        honest = sigma2_honest_guess(g)
        from repro.core.hierarchy import all_index_labellings

        for z2 in all_index_labellings(3):
            assert run_k_labelling(
                program, g, [honest, z2], bandwidth_multiplier=2
            )

    def test_wrong_guess_caught_by_some_probe(self):
        """Soundness direction: a lying guess (claiming a triangle that
        is not there) is rejected by at least one universal probe."""
        problem = triangle_problem()
        g = CliqueGraph.from_edges(3, [(0, 1), (1, 2)])  # no triangle
        lie = encode_graph_guess(CliqueGraph.complete(3))
        liar_labelling = [lie for _ in range(3)]
        program = sigma2_universal_algorithm(problem)
        from repro.core.hierarchy import all_index_labellings

        rejected = [
            not run_k_labelling(
                program, g, [liar_labelling, z2], bandwidth_multiplier=2
            )
            for z2 in all_index_labellings(3)
        ]
        assert any(rejected)

    def test_inconsistent_guesses_caught(self):
        """Guesses that differ between nodes are caught by cross-checks."""
        problem = parity_of_edges_problem()
        g = CliqueGraph.from_edges(3, [(0, 1)])
        guess_a = encode_graph_guess(g)
        guess_b = encode_graph_guess(CliqueGraph.empty(3))
        mixed = [guess_a, guess_b, guess_a]
        program = sigma2_universal_algorithm(problem)
        from repro.core.hierarchy import all_index_labellings

        assert not all(
            run_k_labelling(
                program, g, [mixed, z2], bandwidth_multiplier=2
            )
            for z2 in all_index_labellings(3)
        )

    def test_rounds_constant(self):
        """The Sigma_2 verifier runs in O(1) rounds regardless of n."""
        from repro.clique.network import CongestedClique

        problem = parity_of_edges_problem()
        rounds = []
        for n in (6, 18):
            from repro.problems import generators as gen

            g = gen.random_graph(n, 0.5, 1)
            program = sigma2_universal_algorithm(problem)
            honest = sigma2_honest_guess(g)
            enc_bits = graph_encoding_bits(n)
            from repro.clique.bits import uint_width

            z2 = [BitString(0, uint_width(max(1, enc_bits - 1)))] * n

            def aux(v):
                return {"labels": (honest[v], z2[v])}

            clique = CongestedClique(n, bandwidth_multiplier=2)
            result = clique.run(program, g, aux=aux)
            want = int(problem.contains(g))
            assert set(result.outputs.values()) == {want}
            rounds.append(result.rounds)
        assert rounds[0] == rounds[1] <= 3
