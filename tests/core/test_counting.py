"""Tests for Lemma 1 counting and the hierarchy parameter inequalities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counting import (
    log2_num_functions,
    log2_num_protocols,
    max_hard_round_budget,
    protocols_fewer_than_functions,
    theorem2_parameters,
    theorem4_inequality,
    theorem8_inequality,
)
from repro.core.protocols import computable_functions


class TestLemma1:
    def test_formula(self):
        # 2bn + (n-1) 2^(L + bt(n-1))
        assert log2_num_protocols(2, 1, 2, 1) == 4 + 1 * (1 << 3)
        assert log2_num_protocols(3, 1, 1, 1) == 6 + 2 * (1 << 3)

    def test_functions(self):
        assert log2_num_functions(2, 2) == 16

    def test_bad_args(self):
        with pytest.raises(ValueError):
            log2_num_protocols(0, 1, 1, 1)

    def test_bound_is_sound_at_miniature_scale(self):
        """The exhaustively computed number of computable functions never
        exceeds Lemma 1's protocol bound."""
        for n, L in ((2, 1), (2, 2), (3, 1)):
            exact = len(computable_functions(n, L, 1))
            assert math.log2(exact) <= log2_num_protocols(n, 1, L, 1)

    def test_gap_predicts_hardness(self):
        """Where Lemma 1 says protocols < functions, exhaustive search
        indeed finds uncomputable functions."""
        n, L, b, t = 2, 2, 1, 1
        assert protocols_fewer_than_functions(n, b, L, t)
        exact = len(computable_functions(n, L, b))
        assert exact < (1 << log2_num_functions(n, L).bit_length() - 1) or exact < 2 ** log2_num_functions(n, L)
        assert exact < 2 ** log2_num_functions(n, L)

    @given(st.integers(2, 64), st.integers(1, 6), st.integers(1, 12))
    def test_monotone_in_t(self, n, b, L):
        """More rounds, more protocols."""
        assert log2_num_protocols(n, b, L, 1) <= log2_num_protocols(n, b, L, 2)


class TestHardRoundBudget:
    def test_roughly_L_over_b(self):
        """The paper: hard functions exist while t < L/b - 1."""
        for n in (8, 64, 256):
            b = max(1, math.ceil(math.log2(n)))
            L = 10 * b
            t_max = max_hard_round_budget(n, b, L)
            assert L // b - 3 <= t_max <= L // b

    def test_no_budget_when_L_tiny(self):
        assert max_hard_round_budget(4, 4, 1) <= 0


class TestTheorem2Parameters:
    @pytest.mark.parametrize("n", [64, 256, 1024, 4096])
    def test_hard_function_exists_at_scale(self, n):
        """For T < n/(4 log n), the (n, log n, T log n, T/2)-protocols are
        outnumbered — Theorem 2's selection step is well-defined."""
        log_n = math.ceil(math.log2(n))
        T = max(2, n // (8 * log_n))
        params = theorem2_parameters(n, T)
        assert params.hard_function_exists
        assert params.log2_gap > 0

    def test_gap_grows_with_n(self):
        gaps = [theorem2_parameters(n, 4).log2_gap for n in (64, 256, 1024)]
        assert gaps[0] < gaps[1] < gaps[2]


class TestTheorem4Inequality:
    @pytest.mark.parametrize("n", [64, 256, 4096])
    def test_holds_at_scale(self, n):
        T = max(2, n // (8 * math.ceil(math.log2(n))))
        ineq = theorem4_inequality(n, T)
        assert ineq.holds

    def test_components_match_paper(self):
        n, T = 256, 4
        log_n = 8
        ineq = theorem4_inequality(n, T)
        assert ineq.L == T * log_n
        assert ineq.M == (T * n * log_n) // 4
        assert ineq.rhs == 3 * n * ineq.L


class TestTheorem8Inequality:
    @pytest.mark.parametrize("n", [256, 4096])
    def test_holds_for_all_levels_up_to_T(self, n):
        T = max(2, math.isqrt(n) // 4)
        for k in range(1, T + 1):
            assert theorem8_inequality(n, T, k).holds

    def test_eventually_fails_for_huge_k(self):
        """The inequality is what limits the level: for k far beyond T it
        must flip (that is why the proof caps k <= T)."""
        n, T = 256, 4
        ineq = theorem8_inequality(n, T, 10**6)
        assert not ineq.holds
