"""Tests for the NCLIQUE(1)-labelling search problems (Section 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString, uint_width
from repro.clique.graph import CliqueGraph
from repro.core.labelling_problems import (
    colouring_search_problem,
    maximal_independent_set_problem,
    maximal_matching_problem,
)
from repro.problems import generators as gen


class TestColouringSearch:
    @pytest.mark.parametrize("seed", range(4))
    def test_solver_output_verifies(self, seed):
        g, _ = gen.planted_colouring(9, 3, 0.6, seed)
        p = colouring_search_problem(3)
        assert p.solve_and_verify(g) is True

    def test_unsolvable_returns_none(self):
        p = colouring_search_problem(2)
        c5 = CliqueGraph.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert p.solve_and_verify(c5) is None

    def test_improper_colouring_rejected(self):
        p = colouring_search_problem(2)
        g = CliqueGraph.from_edges(3, [(0, 1)])
        bad = [BitString(0, 1), BitString(0, 1), BitString(1, 1)]
        assert not p.verify(g, bad)

    def test_out_of_range_colour_rejected(self):
        p = colouring_search_problem(2)
        g = CliqueGraph.empty(3)
        bad = [BitString(1, 1)] * 3  # colour 1 < 2 fine; now force >= k
        assert p.verify(g, bad)  # colour 1 is legal for k=2
        p3 = colouring_search_problem(3)
        g3 = CliqueGraph.empty(3)
        too_big = [BitString(3, 2)] * 3  # colour 3 >= k=3
        assert not p3.verify(g3, too_big)


class TestMaximalIndependentSet:
    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_solution_verifies(self, seed):
        g = gen.random_graph(10, 0.4, seed)
        p = maximal_independent_set_problem()
        assert p.solve_and_verify(g) is True

    def test_non_independent_rejected(self):
        p = maximal_independent_set_problem()
        g = CliqueGraph.from_edges(3, [(0, 1)])
        bad = [BitString(1, 1), BitString(1, 1), BitString(1, 1)]
        assert not p.verify(g, bad)

    def test_non_maximal_rejected(self):
        p = maximal_independent_set_problem()
        g = CliqueGraph.from_edges(3, [(0, 1)])
        # node 2 is isolated from the set and not in it: not maximal
        bad = [BitString(1, 1), BitString(0, 1), BitString(0, 1)]
        assert not p.verify(g, bad)

    def test_empty_set_on_empty_graph_rejected(self):
        p = maximal_independent_set_problem()
        g = CliqueGraph.empty(3)
        assert not p.verify(g, [BitString(0, 1)] * 3)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_greedy_always_valid(self, seed):
        g = gen.random_graph(8, 0.5, seed)
        p = maximal_independent_set_problem()
        assert p.solve_and_verify(g) is True


class TestMaximalMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_solution_verifies(self, seed):
        g = gen.random_graph(10, 0.35, seed)
        p = maximal_matching_problem()
        assert p.solve_and_verify(g) is True

    def test_asymmetric_claim_rejected(self):
        p = maximal_matching_problem()
        g = CliqueGraph.from_edges(3, [(0, 1), (1, 2)])
        pw = uint_width(3)
        # 0 claims 1, but 1 claims 2
        bad = [BitString(2, pw), BitString(3, pw), BitString(2, pw)]
        assert not p.verify(g, bad)

    def test_non_edge_claim_rejected(self):
        p = maximal_matching_problem()
        g = CliqueGraph.from_edges(3, [(0, 1)])
        pw = uint_width(3)
        bad = [BitString(3, pw), BitString(0, pw), BitString(1, pw)]
        assert not p.verify(g, bad)

    def test_non_maximal_rejected(self):
        p = maximal_matching_problem()
        g = CliqueGraph.from_edges(2, [(0, 1)])
        pw = uint_width(2)
        bad = [BitString(0, pw), BitString(0, pw)]  # both unmatched
        assert not p.verify(g, bad)

    def test_self_match_rejected(self):
        p = maximal_matching_problem()
        g = CliqueGraph.complete(2)
        pw = uint_width(2)
        bad = [BitString(1, pw), BitString(2, pw)]  # node 0 claims itself
        assert not p.verify(g, bad)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_greedy_matching_valid(self, seed):
        g = gen.random_graph(9, 0.4, seed)
        p = maximal_matching_problem()
        assert p.solve_and_verify(g) is True

    def test_matching_is_actually_maximal(self):
        """Cross-check the solver against networkx maximality."""
        import networkx as nx

        g = gen.random_graph(10, 0.4, 3)
        p = maximal_matching_problem()
        labelling = p.solver(g)
        pw = uint_width(10)
        matched = {
            (v, lab.value - 1)
            for v, lab in enumerate(labelling)
            if lab.value > 0 and v < lab.value - 1
        }
        assert nx.is_maximal_matching(g.to_networkx(), matched)
