"""Tests for the Theorem 3 normal form transformation."""

import pytest

from repro.clique.bits import BitString
from repro.clique.graph import CliqueGraph
from repro.core.nondeterminism import run_with_labelling
from repro.core.normal_form import (
    normal_form_label_bound,
    simulate_node_locally,
    to_normal_form,
    transcript_labelling,
)
from repro.core.verifiers import (
    k_colouring_verifier,
    k_dominating_set_verifier,
    k_independent_set_verifier,
    triangle_verifier,
)
from repro.problems import all_graphs
from repro.problems import generators as gen


def accepts(result):
    return all(v == 1 for v in result.outputs.values())


class TestSimulateNodeLocally:
    def test_matches_engine_execution(self):
        """Local simulation of one node reproduces exactly what the
        engine's run produced (sent messages and output)."""
        vp = k_independent_set_verifier(2)
        g, _ = gen.planted_independent_set(6, 2, 0.5, 1)
        labelling = vp.prover(g)
        result = run_with_labelling(
            vp.algorithm, g, labelling, record_transcripts=True
        )
        for v in range(6):
            t = result.transcripts[v]
            sent, output, completed = simulate_node_locally(
                vp.algorithm.program,
                v,
                6,
                3,  # ceil(log2 6)
                g.local_view(v),
                {"label": labelling[v]},
                [dict(r.received) for r in t.rounds],
            )
            assert completed
            assert output == result.outputs[v]
            for r in range(t.num_rounds()):
                assert sent[r] == dict(t.rounds[r].sent)

    def test_incomplete_sequence_detected(self):
        def needy(node):
            yield
            yield
            return 1

        sent, output, completed = simulate_node_locally(
            needy, 0, 2, 1, None, None, [{}]
        )
        assert not completed


class TestTranscriptLabelling:
    def test_accepting_run_extracted(self):
        vp = triangle_verifier()
        g = CliqueGraph.complete(4)
        base = vp.prover(g)
        labels, accepted = transcript_labelling(vp.algorithm, g, base)
        assert accepted
        assert len(labels) == 4

    def test_label_size_within_theorem3_bound(self):
        """|z_v| = O(T(n) n log n) — the point of Theorem 3."""
        vp = k_colouring_verifier(3)
        for n in (6, 12, 24):
            g, _ = gen.planted_colouring(n, 3, 0.6, 1)
            base = vp.prover(g)
            labels, accepted = transcript_labelling(vp.algorithm, g, base)
            assert accepted
            T = vp.algorithm.running_time(n)
            bw = max(1, (n - 1).bit_length())
            bound = normal_form_label_bound(n, T, bw)
            for lab in labels:
                assert len(lab) <= bound


class TestNormalFormEquivalence:
    @pytest.mark.parametrize(
        "factory,graph_gen",
        [
            (
                lambda: k_independent_set_verifier(2),
                lambda seed: gen.random_graph(6, 0.5, seed),
            ),
            (
                lambda: k_dominating_set_verifier(2),
                lambda seed: gen.random_graph(6, 0.3, seed),
            ),
            (
                lambda: k_colouring_verifier(2),
                lambda seed: gen.random_graph(5, 0.4, seed),
            ),
            (
                triangle_verifier,
                lambda seed: gen.random_graph(6, 0.35, seed),
            ),
        ],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_yes_instances_accepted_via_transcripts(self, factory, graph_gen, seed):
        """B accepts the transcript labelling of an accepting run of A."""
        vp = factory()
        g = None
        for probe in range(seed, seed + 50):  # deterministic yes-instance
            candidate = graph_gen(probe)
            if vp.problem.contains(candidate):
                g = candidate
                break
        assert g is not None, "no yes-instance found in 50 probes"
        base = vp.prover(g)
        labels, accepted = transcript_labelling(vp.algorithm, g, base)
        assert accepted
        b = to_normal_form(vp.algorithm)
        result = run_with_labelling(b, g, labels)
        assert accepts(result)
        assert result.rounds == vp.algorithm.running_time(g.n)

    def test_no_instance_rejects_all_transcript_labels_exhaustively(self):
        """On a miniature no-instance, *no* normal-form label is accepted
        (exhaustive over a reduced transcript label space would be huge;
        instead we check that transcripts of rejecting runs and corrupted
        accepting transcripts are all rejected)."""
        vp = k_independent_set_verifier(2)
        g = CliqueGraph.complete(4)  # no 2-IS
        b = to_normal_form(vp.algorithm)

        # transcripts of (rejecting) runs of A under every base labelling
        from repro.core.nondeterminism import all_labellings

        for base in all_labellings(4, 1):
            labels, accepted = transcript_labelling(vp.algorithm, g, base)
            assert not accepted
            result = run_with_labelling(b, g, labels)
            assert not accepts(result)

    def test_forged_transcript_rejected(self):
        """A transcript claiming different messages than any real run is
        caught by the replay consistency check."""
        vp = k_independent_set_verifier(2)
        g, _ = gen.planted_independent_set(5, 2, 0.5, 3)
        base = vp.prover(g)
        labels, _ = transcript_labelling(vp.algorithm, g, base)
        b = to_normal_form(vp.algorithm)

        # corrupt node 0's claimed transcript: flip a received message
        from repro.clique.transcript import RoundRecord, Transcript

        t0 = Transcript.decode(0, 5, labels[0])
        rec0 = dict(t0.rounds[0].received)
        src = next(iter(rec0))
        flipped = BitString(1 - rec0[src].value, len(rec0[src]))
        rec0[src] = flipped
        bad = Transcript(
            node=0,
            n=5,
            rounds=(RoundRecord(sent=dict(t0.rounds[0].sent), received=rec0),)
            + t0.rounds[1:],
        )
        forged = (bad.encode(),) + labels[1:]
        assert not accepts(run_with_labelling(b, g, forged))

    def test_garbage_label_rejected(self):
        vp = k_independent_set_verifier(2)
        g, _ = gen.planted_independent_set(5, 2, 0.5, 3)
        b = to_normal_form(vp.algorithm)
        garbage = tuple(BitString(0, 40) for _ in range(5))
        assert not accepts(run_with_labelling(b, g, garbage))

    def test_normal_form_decides_same_language_miniature(self):
        """Full equivalence on all 4-node graphs: B (searched over real
        transcript candidates, i.e. transcripts of all runs of A) accepts
        exactly the yes-instances."""
        vp = k_vertex = k_independent_set_verifier(2)
        b = to_normal_form(vp.algorithm)
        from repro.core.nondeterminism import all_labellings

        for g in list(all_graphs(4))[::7]:  # subsample for speed
            is_yes = vp.problem.contains(g)
            # B accepts some transcript label iff A accepts some label.
            any_accepted = False
            for base in all_labellings(4, 1):
                labels, accepted = transcript_labelling(vp.algorithm, g, base)
                if accepted:
                    result = run_with_labelling(b, g, labels)
                    if accepts(result):
                        any_accepted = True
                        break
            assert any_accepted == is_yes
