"""Tests for the Figure 1 exponent registry and class descriptors."""

import pytest

from repro.core.classes import (
    CLIQUE,
    NCLIQUE,
    Pi,
    Sigma,
    contains_structurally,
    quantifier_prefix,
)
from repro.core.exponents import OMEGA, ExponentRegistry, ProblemEntry, figure1_registry


class TestRegistryMechanics:
    def test_duplicate_problem_rejected(self):
        r = ExponentRegistry()
        r.add_problem(ProblemEntry("a", "A"))
        with pytest.raises(ValueError):
            r.add_problem(ProblemEntry("a", "A"))

    def test_unknown_edge_rejected(self):
        r = ExponentRegistry()
        r.add_problem(ProblemEntry("a", "A"))
        with pytest.raises(ValueError):
            r.add_reduction("a", "b")

    def test_propagation_chain(self):
        r = ExponentRegistry()
        r.add_problem(ProblemEntry("x", "X"))
        r.add_problem(ProblemEntry("y", "Y"))
        r.add_problem(ProblemEntry("z", "Z", 0.25))
        r.add_reduction("x", "y")
        r.add_reduction("y", "z")
        assert r.delta_upper("x") == 0.25
        assert r.delta_upper("y") == 0.25

    def test_default_is_gather_bound(self):
        r = ExponentRegistry()
        r.add_problem(ProblemEntry("x", "X"))
        assert r.delta_upper("x") == 1.0

    def test_cycle_handled(self):
        r = ExponentRegistry()
        r.add_problem(ProblemEntry("a", "A", 0.5))
        r.add_problem(ProblemEntry("b", "B"))
        r.add_reduction("a", "b")
        r.add_reduction("b", "a")
        assert r.delta_upper("a") == 0.5
        assert r.delta_upper("b") == 0.5


class TestFigure1:
    def test_all_nodes_present(self):
        r = figure1_registry()
        assert len(r.problems) == 28  # Figure 1 + k-VC (Thm 11) + 3-approx spanner APSP

    def test_k_validation(self):
        with pytest.raises(ValueError):
            figure1_registry(k=2)

    def test_headline_bounds(self):
        """The bounds the paper quotes, out of the propagated registry."""
        r = figure1_registry(k=3)
        mm = 1 - 2 / OMEGA
        assert r.delta_upper("ring-mm") == pytest.approx(mm)
        assert r.delta_upper("boolean-mm") == pytest.approx(mm)
        assert r.delta_upper("triangle") == pytest.approx(mm)
        assert r.delta_upper("transitive-closure") == pytest.approx(mm)
        assert r.delta_upper("apsp-uw-d") == pytest.approx(0.2096)
        assert r.delta_upper("apsp-w-d") == pytest.approx(1 / 3)  # via (min,+) MM
        assert r.delta_upper("k-ds") == pytest.approx(2 / 3)
        assert r.delta_upper("k-is") == pytest.approx(1 / 3)
        assert r.delta_upper("k-vc") == 0.0
        assert r.delta_upper("sssp-w-ud-1eps") == 0.0

    def test_theorem10_arrow_matters(self):
        """k-IS inherits the k-DS bound through Theorem 10 for large k
        (where 1-1/k beats trivial but 1-2/k is better still, the direct
        Dolev bound should win)."""
        r = figure1_registry(k=5)
        assert r.delta_upper("k-is") == pytest.approx(1 - 2 / 5)
        assert r.delta_upper("k-ds") == pytest.approx(1 - 1 / 5)

    def test_approx_apsp_beats_exact(self):
        r = figure1_registry()
        assert r.delta_upper("apsp-w-ud-1eps") < r.delta_upper("apsp-w-ud")

    def test_2eps_apsp_lower_bounded_by_bmm_conditionally(self):
        """The Dor et al. arrow: delta(BMM) <= delta((2-eps)-APSP); in
        the registry this flows a *bound on BMM* from any bound on the
        approximation, and the edge is present with its source."""
        r = figure1_registry()
        edges = {(e.frm, e.to): e for e in r.arrows()}
        assert ("boolean-mm", "apsp-w-ud-2eps") in edges
        assert "Dor" in edges[("boolean-mm", "apsp-w-ud-2eps")].source

    def test_table_shape(self):
        rows = figure1_registry().table()
        assert len(rows) == 28
        for row in rows:
            assert 0.0 <= row["delta_upper"] <= 1.0

    def test_sssp_chain(self):
        r = figure1_registry()
        assert r.delta_upper("bfs-tree") <= r.delta_upper("sssp-uw-ud")
        assert r.delta_upper("sssp-uw-ud") <= r.delta_upper("sssp-w-ud")
        assert r.delta_upper("sssp-w-ud") <= r.delta_upper("sssp-w-d")


class TestClassDescriptors:
    def test_str_forms(self):
        assert str(CLIQUE("1")) == "CLIQUE(1)"
        assert str(NCLIQUE("T")) == "NCLIQUE(T)"
        assert str(Sigma(2)) == "Sigma_2"
        assert str(Pi(3, "log")) == "Pilog_3"

    def test_quantifier_prefixes(self):
        assert quantifier_prefix(Sigma(1)) == ["exists"]
        assert quantifier_prefix(Sigma(3)) == ["exists", "forall", "exists"]
        assert quantifier_prefix(Pi(2)) == ["forall", "exists"]
        with pytest.raises(ValueError):
            quantifier_prefix(CLIQUE("1"))

    def test_structural_containments(self):
        assert contains_structurally(Sigma(1), Sigma(2))
        assert contains_structurally(Sigma(1), Pi(2))
        assert contains_structurally(Pi(2), Sigma(3))
        assert not contains_structurally(Sigma(2), Sigma(1))
        assert not contains_structurally(Sigma(1), Pi(1))
        assert contains_structurally(CLIQUE("1"), NCLIQUE("1"))
        assert not contains_structurally(Sigma(1), Sigma(2, "log"))
        assert contains_structurally(Sigma(2, "log"), Pi(3, "log"))
