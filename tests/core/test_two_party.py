"""Tests for the two-party CC substrate and BCC simulation bounds."""

import numpy as np
import pytest

from repro.clique.network import CongestedClique
from repro.core.two_party import (
    bcc_cut_bits,
    bcc_round_lower_bound,
    disjointness_matrix,
    equality_bcc_program,
    equality_matrix,
    exact_communication_complexity,
    fooling_set_bound,
)


class TestExactCC:
    def test_monochromatic_is_free(self):
        assert exact_communication_complexity(np.ones((4, 4))) == 0
        assert exact_communication_complexity(np.zeros((3, 5))) == 0

    def test_single_bit_function(self):
        # f(x, y) = x (Alice announces her bit): D = 1... plus output
        # agreement is implicit in the rectangle partition model: D = 1.
        m = np.array([[0, 0], [1, 1]], dtype=np.int8)
        assert exact_communication_complexity(m) == 1

    def test_equality_small(self):
        """D(EQ_k) = k + 1 in the rectangle model; our recursion counts
        partition bits (protocol-tree depth to monochromatic), giving
        k + 1 for k >= 1 on the identity matrix of size 2^k."""
        assert exact_communication_complexity(equality_matrix(1)) == 2
        assert exact_communication_complexity(equality_matrix(2)) == 3

    def test_xor_function(self):
        m = np.array([[0, 1], [1, 0]], dtype=np.int8)
        assert exact_communication_complexity(m) == 2

    def test_disjointness_monotone_in_k(self):
        d1 = exact_communication_complexity(disjointness_matrix(1))
        d2 = exact_communication_complexity(disjointness_matrix(2))
        assert 1 <= d1 <= d2


class TestFoolingSet:
    def test_equality_fooling_set_is_diagonal(self):
        """The diagonal of EQ_k is a fooling set of size 2^k: bound k."""
        for k in (1, 2, 3):
            assert fooling_set_bound(equality_matrix(k)) == k

    def test_bound_is_sound(self):
        for m in (equality_matrix(2), disjointness_matrix(2)):
            assert fooling_set_bound(m) <= exact_communication_complexity(m)

    def test_monochromatic_zero(self):
        assert fooling_set_bound(np.zeros((4, 4), dtype=np.int8)) == 0


class TestMatrices:
    def test_equality_shape(self):
        m = equality_matrix(2)
        assert m.shape == (4, 4)
        assert m.trace() == 4

    def test_disjointness_values(self):
        m = disjointness_matrix(2)
        assert m[0b01, 0b10] == 1
        assert m[0b01, 0b01] == 0
        assert m[0, 3] == 1  # empty set disjoint from anything


class TestBccSimulation:
    def run_equality(self, n, k, x, y):
        program = equality_bcc_program(k)
        aux = {0: x, 1: y}
        clique = CongestedClique(n, broadcast_only=True)
        return clique.run(program, None, aux=lambda v: aux.get(v, 0))

    @pytest.mark.parametrize(
        "x,y,want", [(5, 5, 1), (5, 6, 0), (0, 0, 1), (7, 0, 0)]
    )
    def test_equality_program_correct(self, x, y, want):
        result = self.run_equality(4, 3, x, y)
        assert result.common_output() == want

    def test_transcript_respects_cc_lower_bound(self):
        """The broadcast bits of any run solving EQ_k must carry at
        least ~D(EQ_k) bits across every cut separating the inputs."""
        k = 8
        result = self.run_equality(4, k, 173, 173)
        cut_bits = bcc_cut_bits(result, cut=[0])
        # fooling set bound: D(EQ_8) >= 8
        assert cut_bits >= 8 - 1

    def test_round_lower_bound_formula(self):
        # D >= k across the cut; n B broadcast bits per round
        assert bcc_round_lower_bound(cc_bits=65, n=8, bandwidth=4) == 2
        assert bcc_round_lower_bound(cc_bits=1, n=8, bandwidth=4) == 0

    def test_measured_rounds_vs_simulation_bound(self):
        """Executable lower-bound reasoning: measured rounds of the
        equality algorithm respect ceil((D-1)/(nB)) for D = k + 1."""
        n, k = 4, 16
        result = self.run_equality(n, k, 2**15, 2**15)
        bandwidth = 2  # ceil(log2 4)
        bound = bcc_round_lower_bound(k + 1, n, bandwidth)
        assert result.rounds >= bound
        # and the algorithm is near-optimal: within a factor ~n of it
        assert result.rounds <= n * max(1, bound) + 2
