"""Tests for the canonical edge labelling family (Theorem 6)."""

import pytest

from repro.clique.graph import CliqueGraph
from repro.core.edge_labelling import compile_verifier
from repro.core.verifiers import (
    k_dominating_set_verifier,
    k_independent_set_verifier,
    k_vertex_cover_verifier,
)
from repro.problems import all_graphs


class TestCompiledSolvability:
    """The Theorem 6 equivalence, checked exhaustively on miniatures:
    the compiled edge labelling problem is solvable iff G is in L."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: k_independent_set_verifier(2),
            lambda: k_dominating_set_verifier(2),
            lambda: k_vertex_cover_verifier(1),
        ],
    )
    def test_all_3node_graphs(self, factory):
        vp = factory()
        problem = compile_verifier(vp)
        for g in all_graphs(3):
            assert problem.solvable(g) == vp.problem.contains(g), (
                f"{problem.name} wrong on {sorted(g.edges())}"
            )

    def test_selected_4node_graphs(self):
        vp = k_independent_set_verifier(2)
        problem = compile_verifier(vp)
        yes = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        no = CliqueGraph.complete(4)
        assert problem.solvable(yes)
        assert not problem.solvable(no)

    def test_solution_passes_check(self):
        """The solver's output satisfies every node's local constraint."""
        vp = k_independent_set_verifier(2)
        problem = compile_verifier(vp)
        g = CliqueGraph.from_edges(3, [(0, 1)])
        labelling = problem.solve(g)
        assert labelling is not None
        assert problem.check(g, labelling)

    def test_corrupted_solution_fails_check(self):
        vp = k_independent_set_verifier(2)
        problem = compile_verifier(vp)
        g = CliqueGraph.from_edges(3, [(0, 1)])
        labelling = problem.solve(g)
        # corrupt one channel half: claim node 0 sent '1' when it sent '0'
        (edge, lab) = next(iter(labelling.items()))
        flipped_first = tuple(
            ("1" if m == "0" else "0") if m is not None else None
            for m in lab[0]
        )
        corrupted = dict(labelling)
        corrupted[edge] = (flipped_first, lab[1])
        assert not problem.check(g, corrupted)

    def test_labels_are_logarithmic(self):
        """Compiled labels carry O(T log n) bits per edge: per round, at
        most a bandwidth-sized message in each direction."""
        vp = k_independent_set_verifier(2)
        problem = compile_verifier(vp)
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        labelling = problem.solve(g)
        assert labelling is not None
        T = vp.algorithm.running_time(4)
        bw = max(1, 3 .bit_length())
        for (a, b), (half_ab, half_ba) in labelling.items():
            for half in (half_ab, half_ba):
                assert len(half) == T
                for msg in half:
                    assert msg is None or len(msg) <= bw
