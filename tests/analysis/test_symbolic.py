"""The symbolic cost model and its exact cross-validation gate."""

import pytest

from repro.analysis import symbolic
from repro.clique.errors import CliqueError


class TestRegistryCoverage:
    def test_every_catalog_entry_declares_a_registered_model(self):
        from repro.engine.diff import CATALOG, COST_DECLARATIONS

        assert sorted(COST_DECLARATIONS) == sorted(CATALOG)
        assert symbolic.missing_cost_models() == []
        for declared in COST_DECLARATIONS.values():
            assert declared in symbolic.COST_MODELS

    def test_names_sorted(self):
        names = symbolic.cost_model_names()
        assert names == sorted(names) and len(names) >= 13

    def test_duplicate_registration_rejected(self):
        model = symbolic.COST_MODELS["broadcast"]
        with pytest.raises(CliqueError, match="already registered"):
            symbolic.cost_model(model)

    def test_unknown_name_gets_did_you_mean_hint(self):
        with pytest.raises(CliqueError, match="did you mean 'sorting'"):
            symbolic.get_cost_model("sortign")

    def test_unknown_name_without_close_match(self):
        with pytest.raises(CliqueError, match="unknown cost model"):
            symbolic.get_cost_model("zzz-no-such-model")


class TestEvaluation:
    def test_broadcast_closed_form(self):
        point = symbolic.get_cost_model("broadcast").evaluate({"n": 8})
        # B = 2 ceil(log2 8) = 6: ceil(8/6) = 2 rounds, n^2 (n-1) bits.
        assert point.rounds == 2
        assert point.message_bits == 8 * 8 * 7
        assert point.bulk_bits == 0
        assert point.total_bits == point.message_bits

    def test_evaluate_returns_exact_python_ints(self):
        for name in symbolic.cost_model_names():
            point = symbolic.get_cost_model(name).evaluate({"n": 11})
            assert isinstance(point.rounds, int)
            assert isinstance(point.message_bits, int)
            assert isinstance(point.bulk_bits, int)

    def test_domain_pins_win_over_caller_config(self):
        model = symbolic.get_cost_model("routing")
        cfg = model.config({"scheme": "relay", "n": 8})
        assert cfg["scheme"] == "lenzen"

    def test_predict_points_extrapolates_to_a_million(self):
        points = symbolic.predict_points("matmul", [10**6])
        (point,) = points
        assert point.n == 10**6
        assert point.rounds > 0 and point.total_bits > 0

    def test_huge_n_broadcast_is_closed_form_exact(self):
        # B = 2 ceil(log2 10^6) = 40; rounds = ceil(10^6 / 40).
        point = symbolic.get_cost_model("broadcast").evaluate({"n": 10**6})
        assert point.rounds == 25000
        assert point.message_bits == 10**12 * (10**6 - 1)

    def test_describe_model_is_jsonable_text(self):
        import json

        desc = symbolic.describe_model("kds")
        json.dumps(desc)
        assert "ceiling" in desc["rounds"]
        assert desc["algorithm"] == "kds"


class TestValidation:
    def test_full_catalog_exact_gate(self):
        # The acceptance criterion: every catalog algorithm, >= 3 swept
        # n values, zero tolerance on rounds and bit totals.
        report = symbolic.validate_symbolic(engines=("reference",))
        assert report.errors == []
        assert report.ok, report.table()
        per_algo = {}
        for check in report.checks:
            per_algo.setdefault(check.algorithm, set()).add(check.n)
        from repro.engine.diff import CATALOG

        assert sorted(per_algo) == sorted(CATALOG)
        assert all(len(ns) >= 3 for ns in per_algo.values())

    def test_fit_consistency_rows_present(self):
        report = symbolic.validate_symbolic(names=["broadcast"], engines=("reference",))
        assert report.ok
        quantities = {f["quantity"] for f in report.fits}
        assert quantities == {"rounds", "total_bits"}

    def test_fast_engine_agrees_too(self):
        report = symbolic.validate_symbolic(
            names=["fanout", "routing"], ns=(8, 11), engines=("fast",)
        )
        assert report.ok, report.table()

    def test_mismatch_is_reported_not_swallowed(self):
        # Sabotage one model copy and make sure the gate trips.
        broken = symbolic.CostModel(
            name="broadcast",
            rounds=symbolic.get_cost_model("broadcast").rounds + 1,
            message_bits=symbolic.get_cost_model("broadcast").message_bits,
            bulk_bits=symbolic.get_cost_model("broadcast").bulk_bits,
            binder=symbolic.get_cost_model("broadcast").binder,
        )
        saved = symbolic.COST_MODELS["broadcast"]
        symbolic.COST_MODELS["broadcast"] = broken
        try:
            report = symbolic.validate_symbolic(
                names=["broadcast"], ns=(8,), engines=("reference",)
            )
        finally:
            symbolic.COST_MODELS["broadcast"] = saved
        assert not report.ok
        assert any("rounds" in m for c in report.mismatched for m in c.mismatches)
        assert "FAILURES" in report.summary()

    def test_table_and_markdown_render(self):
        report = symbolic.validate_symbolic(
            names=["dolev"], ns=(8, 11), engines=("reference",)
        )
        text = report.table()
        assert "dolev" in text and "symbolic gate" in text
        md = report.markdown()
        assert md.startswith("## Symbolic cost gate")
        assert "| dolev |" in md


class TestDiffSurfaceFold:
    def test_diff_engines_symbolic_row(self):
        from repro.engine.diff import catalog_factory, diff_engines

        report = diff_engines(
            catalog_factory,
            {"algorithm": "fanout", "n": 8},
            engines=("reference",),
            symbolic=True,
        )
        assert report.ok, report.summary()
        assert "symbolic" in report.engines
        assert report.rounds["symbolic"] == report.rounds["reference"]

    def test_diff_engines_symbolic_pins_domain(self):
        from repro.engine.diff import catalog_factory, diff_engines

        # routing's closed form exists only for the lenzen scheme; the
        # fold must pin it for the engines as well, or the comparison
        # would race two different instances.
        report = diff_engines(
            catalog_factory,
            {"algorithm": "routing", "n": 8, "scheme": "relay"},
            engines=("reference", "fast"),
            symbolic=True,
        )
        assert report.ok, report.summary()

    def test_diff_catalog_symbolic_full(self):
        from repro.engine.diff import diff_catalog

        reports = diff_catalog(
            names=["broadcast", "kvc"],
            config={"n": 8},
            engines=("reference",),
            symbolic=True,
        )
        assert all(r.ok for r in reports)
        assert all("symbolic" in r.engines for r in reports)

    def test_diff_engines_symbolic_detects_drift(self):
        from repro.engine.diff import catalog_factory, diff_engines

        broken = symbolic.CostModel(
            name="fanout",
            rounds=symbolic.get_cost_model("fanout").rounds,
            message_bits=symbolic.get_cost_model("fanout").message_bits + 1,
            bulk_bits=symbolic.get_cost_model("fanout").bulk_bits,
            binder=symbolic.get_cost_model("fanout").binder,
        )
        saved = symbolic.COST_MODELS["fanout"]
        symbolic.COST_MODELS["fanout"] = broken
        try:
            report = diff_engines(
                catalog_factory,
                {"algorithm": "fanout", "n": 8},
                engines=("reference",),
                symbolic=True,
            )
        finally:
            symbolic.COST_MODELS["fanout"] = saved
        assert not report.ok
        assert any("symbolic message bits" in m for m in report.mismatches)

    def test_catalog_factory_did_you_mean(self):
        from repro.engine.diff import catalog_factory

        with pytest.raises(CliqueError, match="did you mean 'matmul'"):
            catalog_factory({"algorithm": "matmull", "n": 8})


class TestLazyExports:
    def test_symbolic_names_reachable_from_package(self):
        import repro.analysis as analysis

        assert analysis.validate_symbolic is symbolic.validate_symbolic
        assert analysis.CostModel is symbolic.CostModel

    def test_unknown_package_attr_raises(self):
        import repro.analysis as analysis

        with pytest.raises(AttributeError):
            analysis.no_such_symbol


class TestBenchWorkload:
    def test_symbolic_validate_workload_runs_and_is_deterministic(self):
        from repro.bench.workloads import get_workloads

        workload = get_workloads(["symbolic-validate"])[0]
        params = workload.resolved_params(quick=True)
        info = workload.run(params, {})
        assert info["algorithms"] >= 13
        assert info == workload.run(params, {})
