"""Tests for exponent fitting and table rendering."""

import pytest

from repro.analysis.fitting import fit_exponent
from repro.analysis.report import format_table


class TestFitExponent:
    def test_exact_power_law(self):
        ns = [8, 16, 32, 64, 128]
        rounds = [int(4 * n**0.5) for n in ns]
        fit = fit_exponent(ns, rounds)
        assert fit.slope == pytest.approx(0.5, abs=0.05)
        assert fit.r_squared > 0.99

    def test_linear(self):
        ns = [10, 20, 40, 80]
        fit = fit_exponent(ns, [3 * n for n in ns])
        assert fit.slope == pytest.approx(1.0, abs=0.01)

    def test_constant(self):
        fit = fit_exponent([8, 16, 32], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == 1.0

    def test_prediction(self):
        ns = [8, 16, 32]
        fit = fit_exponent(ns, [2 * n for n in ns])
        assert fit.predicted(64) == pytest.approx(128, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponent([8], [3])
        with pytest.raises(ValueError):
            fit_exponent([8, 16], [0, 3])
        with pytest.raises(ValueError):
            fit_exponent([1, 16], [2, 3])
        with pytest.raises(ValueError):
            fit_exponent([8, 16, 32], [1, 2])


class TestFormatTable:
    def test_basic(self):
        rows = [{"n": 8, "rounds": 3.14159, "ok": True}]
        out = format_table(rows, title="T")
        assert "T" in out
        assert "3.142" in out
        assert "yes" in out

    def test_empty(self):
        assert "(empty)" in format_table([])

    def test_column_selection_and_missing(self):
        rows = [{"a": 1}, {"a": 2, "b": 5}]
        out = format_table(rows, columns=["a", "b"])
        assert "-" in out  # missing value placeholder

    def test_alignment(self):
        rows = [{"name": "x", "v": 1}, {"name": "longer", "v": 22}]
        lines = format_table(rows).splitlines()
        assert len({len(line) for line in lines}) == 1  # all lines same width
