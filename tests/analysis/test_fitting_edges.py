"""Edge cases of the exponent-fitting estimators.

The symbolic gate leans on ``fit_metric_exponent`` for its consistency
check, so its failure modes — single-point sweeps, zero-cost metrics,
non-monotone series — must be pinned down, not just the happy path.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.fitting import fit_exponent, fit_metric_exponent


def _point(n, rounds=1, message_bits=0, total_bits=0):
    return SimpleNamespace(
        n=n, rounds=rounds, message_bits=message_bits, total_bits=total_bits
    )


class TestFitExponentEdges:
    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_exponent([8], [3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_exponent([8, 16], [3])

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError, match="positive rounds"):
            fit_exponent([8, 16], [0, 4])

    def test_n_of_one_rejected(self):
        # log(1) = 0 would silently degenerate the design matrix.
        with pytest.raises(ValueError, match="n > 1"):
            fit_exponent([1, 16], [2, 4])

    def test_non_monotone_series_fits_with_low_r_squared(self):
        # A zig-zag series is legal input; the fit just explains it badly.
        fit = fit_exponent([8, 16, 32, 64], [10, 3, 12, 2])
        assert fit.r_squared < 0.5
        assert fit.ns == (8, 16, 32, 64)

    def test_constant_series_has_zero_slope_and_perfect_r2(self):
        fit = fit_exponent([8, 16, 32], [7, 7, 7])
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == 1.0


class TestFitMetricExponentEdges:
    def test_single_distinct_n_rejected(self):
        # Many metrics, one clique size: still a single-point sweep.
        points = [_point(16, rounds=r) for r in (3, 4, 5)]
        with pytest.raises(ValueError, match=">= 2 distinct clique sizes"):
            fit_metric_exponent(points, "rounds")

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match=">= 2 distinct clique sizes"):
            fit_metric_exponent([], "rounds")

    def test_none_metrics_skipped(self):
        # Failed sweep points surface as None; they must not count as data.
        points = [None, _point(8, rounds=2), None, _point(16, rounds=4)]
        fit = fit_metric_exponent(points, "rounds")
        assert fit.ns == (8, 16)

    def test_all_none_rejected(self):
        with pytest.raises(ValueError, match=">= 2 distinct clique sizes"):
            fit_metric_exponent([None, None], "rounds")

    def test_zero_cost_metric_clamped_to_one(self):
        # A metric that measures 0 (e.g. bulk_bits of a pure message
        # algorithm) is clamped to 1, not passed to log().
        points = [_point(8, total_bits=0), _point(16, total_bits=0)]
        fit = fit_metric_exponent(points, "total_bits")
        assert fit.rounds == (1, 1)
        assert fit.slope == pytest.approx(0.0, abs=1e-12)

    def test_means_average_per_clique_size(self):
        points = [
            _point(8, rounds=2),
            _point(8, rounds=4),
            _point(16, rounds=6),
        ]
        fit = fit_metric_exponent(points, "rounds")
        assert fit.rounds == (3, 6)

    def test_callable_quantity(self):
        points = [_point(8, rounds=2), _point(16, rounds=4)]
        fit = fit_metric_exponent(points, lambda m: m.rounds * 10)
        assert fit.rounds == (20, 40)

    def test_non_monotone_metric_series_survives(self):
        points = [
            _point(8, rounds=10),
            _point(16, rounds=2),
            _point(32, rounds=9),
        ]
        fit = fit_metric_exponent(points, "rounds")
        assert fit.r_squared < 1.0
