"""Structured tracing: event streams, sinks, and sampling."""

import json

import pytest

from repro.clique.bits import BitString
from repro.clique.errors import CliqueError
from repro.clique.network import CongestedClique
from repro.obs import JSONLSink, RingBufferSink, TraceEvent, Tracer


def chatter(rounds=2):
    def prog(node):
        for _ in range(rounds):
            node.send_to_all(BitString(node.id % 2, 1))
            yield
        return node.id

    return prog


class TestTracer:
    def test_event_stream_shape(self):
        sink = RingBufferSink()
        result = CongestedClique(3).run(chatter(2), observer=Tracer(sink))
        events = sink.events()
        assert events[0].kind == "run_start"
        assert events[0].detail["n"] == 3
        assert events[-1].kind == "run_end"
        assert events[-1].round == result.rounds
        kinds = [e.kind for e in events]
        # 2 rounds x 6 deliveries, plus boundaries and 3 outputs.
        assert kinds.count("deliver") == 12
        assert kinds.count("round_end") == 2
        assert kinds.count("output") == 3

    def test_deliver_events_carry_endpoints(self):
        sink = RingBufferSink()
        CongestedClique(3).run(chatter(1), observer=Tracer(sink))
        delivers = [e for e in sink.events() if e.kind == "deliver"]
        assert {(e.src, e.dst) for e in delivers} == {
            (s, d) for s in range(3) for d in range(3) if s != d
        }
        assert all(e.bits == 1 for e in delivers)
        assert all(e.channel in ("unicast", "broadcast") for e in delivers)

    def test_sampling_keeps_boundaries(self):
        sink = RingBufferSink()
        CongestedClique(3).run(chatter(2), observer=Tracer(sink, sample=4))
        kinds = [e.kind for e in sink.events()]
        # Every 4th of 12 messages -> 3 kept; boundaries never sampled.
        assert kinds.count("deliver") == 3
        assert kinds.count("round_end") == 2
        assert kinds.count("output") == 3
        run_end = sink.events()[-1]
        assert run_end.detail["sampled_out"] == 9

    def test_invalid_sample_rejected(self):
        with pytest.raises(CliqueError):
            Tracer(sample=0)

    def test_default_sink_is_ring_buffer(self):
        tracer = Tracer()
        assert isinstance(tracer.sink, RingBufferSink)


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(TraceEvent(kind="deliver", round=i))
        assert sink.dropped == 2
        assert len(sink) == 3
        assert [e.round for e in sink.events()] == [2, 3, 4]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(CliqueError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        CongestedClique(3).run(chatter(1), observer=Tracer(JSONLSink(path)))
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "run_start"
        assert records[-1]["kind"] == "run_end"
        # None-valued fields are dropped from the JSON objects.
        assert "src" not in records[0]

    def test_accepts_file_object(self, tmp_path):
        with open(tmp_path / "t.jsonl", "w", encoding="utf-8") as fh:
            sink = JSONLSink(fh)
            sink.emit(TraceEvent(kind="run_start", round=0))
            sink.close()  # must not close a caller-owned handle
            assert not fh.closed
        assert sink.emitted == 1
