"""Phase timing: PhaseTimer bookkeeping and the Profiler observer."""

import pytest

from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.obs import PhaseTimer, Profiler


def prog(node):
    node.send((node.id + 1) % node.n, BitString(1, 1))
    yield
    return None


class TestPhaseTimer:
    def test_accumulates_per_phase(self):
        timer = PhaseTimer()
        timer.start("a")
        timer.start("b")  # implicitly closes "a"
        timer.stop()
        seconds = timer.flush()
        assert set(seconds) == {"a", "b"}
        assert all(s >= 0 for s in seconds.values())
        assert timer.flush() == {}  # flush resets

    def test_stop_without_start_is_noop(self):
        timer = PhaseTimer()
        timer.stop()
        assert timer.flush() == {}


@pytest.mark.parametrize("engine", ["reference", "fast"])
class TestProfiler:
    def test_collects_rounds_and_totals(self, engine):
        profiler = Profiler()
        result = CongestedClique(4).run(prog, engine=engine, observer=profiler)
        # Round 0 is the pre-round spawn phase; then one entry per round.
        assert [r for r, _ in profiler.rounds] == list(range(result.rounds + 1))
        assert "spawn" in profiler.rounds[0][1]
        assert {"deliver", "advance"} <= set(profiler.totals)
        assert profiler.total_seconds() == pytest.approx(
            sum(sum(s.values()) for _, s in profiler.rounds)
        )

    def test_phase_rows_ordered_by_cost(self, engine):
        profiler = Profiler()
        CongestedClique(4).run(prog, engine=engine, observer=profiler)
        rows = profiler.phase_rows()
        seconds = [r["seconds"] for r in rows]
        assert seconds == sorted(seconds, reverse=True)
        assert all(r["share"].endswith("%") for r in rows)

    def test_resets_between_runs(self, engine):
        profiler = Profiler()
        CongestedClique(4).run(prog, engine=engine, observer=profiler)
        first = list(profiler.rounds)
        CongestedClique(4).run(prog, engine=engine, observer=profiler)
        assert len(profiler.rounds) == len(first)
