"""RunMetrics: agreement with transcript-derived totals across the
catalog, per-round consistency, serialisation, and aggregation."""

import json

import pytest

from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.engine import run_spec
from repro.engine.diff import catalog_factory
from repro.obs import MetricsCollector, RunMetrics, summarise_metrics

ALGORITHMS = ["broadcast", "bfs", "subgraph", "sorting", "kds"]


def ring_prog(node):
    node.send((node.id + 1) % node.n, BitString(1, 1))
    yield
    return None


class TestTranscriptAgreement:
    """The collector's totals must equal what the bit-exact transcripts
    independently record — on every family in the diff catalog."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_metrics_match_transcript_totals(self, name):
        spec = catalog_factory({"algorithm": name, "n": 9, "seed": 1})
        spec.record_transcripts = True
        result, _ = run_spec(spec, engine="reference")
        m, ts = result.metrics, result.transcripts
        assert m is not None and ts is not None
        for v, t in enumerate(ts):
            sent = sum(len(b) for rec in t.rounds for b in rec.sent.values())
            received = sum(len(b) for rec in t.rounds for b in rec.received.values())
            assert m.sent_bits[v] == sent == result.sent_bits[v]
            assert m.received_bits[v] == received == result.received_bits[v]
        assert m.message_bits + m.bulk_bits == sum(m.sent_bits)
        assert m.rounds == result.rounds == ts[0].num_rounds()

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_engines_agree_on_totals(self, name):
        config = {"algorithm": name, "n": 9, "seed": 1}
        ref, _ = run_spec(catalog_factory(config), engine="reference")
        fast, _ = run_spec(catalog_factory(config), engine="fast")
        a, b = ref.metrics, fast.metrics
        assert a.rounds == b.rounds
        # The reference engine sees broadcasts as n-1 queued unicasts,
        # the fast engine counts expanded recipient-messages: the split
        # differs, the totals must not.
        assert a.messages == b.messages
        assert a.message_bits == b.message_bits
        assert a.bulk_bits == b.bulk_bits
        assert a.sent_bits == b.sent_bits
        assert a.received_bits == b.received_bits
        assert a.max_node_load() == b.max_node_load()
        assert a.routed_payload_load() == b.routed_payload_load()


class TestConsistency:
    def test_per_round_sums_to_run_totals(self):
        result, _ = run_spec(
            catalog_factory({"algorithm": "bfs", "n": 9, "seed": 0}),
            engine="fast",
        )
        m = result.metrics
        assert len(m.per_round) == m.rounds
        assert sum(r.message_bits for r in m.per_round) == m.message_bits
        assert sum(r.bulk_bits for r in m.per_round) == m.bulk_bits
        assert sum(r.messages for r in m.per_round) == m.messages
        assert [r.round for r in m.per_round] == list(range(1, m.rounds + 1))

    def test_matches_run_result_accounting(self):
        result, _ = run_spec(
            catalog_factory({"algorithm": "broadcast", "n": 8, "seed": 0}),
            engine="fast",
        )
        m = result.metrics
        assert m.message_bits == result.total_message_bits
        assert m.bulk_bits == result.bulk_bits
        assert m.sent_bits == result.sent_bits
        assert m.received_bits == result.received_bits
        assert m.counters == result.counters

    def test_max_node_load_ties_break_low(self):
        m = RunMetrics(
            n=3,
            bandwidth=2,
            engine="fast",
            rounds=1,
            message_bits=4,
            bulk_bits=0,
            unicast_messages=2,
            broadcast_messages=0,
            bulk_messages=0,
            per_round=(),
            sent_bits=(2, 2, 0),
            received_bits=(0, 0, 4),
        )
        # Loads are (2, 2, 4): node 2 wins outright.
        assert m.max_node_load() == (2, 4)
        tied = RunMetrics(
            n=2,
            bandwidth=1,
            engine="fast",
            rounds=1,
            message_bits=2,
            bulk_bits=0,
            unicast_messages=2,
            broadcast_messages=0,
            bulk_messages=0,
            per_round=(),
            sent_bits=(1, 1),
            received_bits=(1, 1),
        )
        assert tied.max_node_load() == (0, 2)


class TestLinksAndProfile:
    def test_link_matrix_and_busiest_links(self):
        obs = MetricsCollector(links=True)
        result = CongestedClique(4).run(ring_prog, observer=obs)
        m = result.metrics
        assert m.link_bits == {(v, (v + 1) % 4): 1 for v in range(4)}
        assert m.busiest_links(2) == [(0, 1, 1), (1, 2, 1)]

    def test_links_off_by_default(self):
        result = CongestedClique(4).run(ring_prog)
        assert result.metrics.link_bits is None
        assert result.metrics.busiest_links() == []

    def test_profile_collects_phase_totals(self):
        obs = MetricsCollector(profile=True)
        result = CongestedClique(4).run(ring_prog, engine="reference", observer=obs)
        phases = result.metrics.phases
        assert phases is not None
        assert {"spawn", "validate", "deliver", "advance"} <= set(phases)
        assert all(secs >= 0 for secs in phases.values())


class TestSerialisation:
    def test_round_trip_through_json(self):
        obs = MetricsCollector(links=True, profile=True)
        result = CongestedClique(5).run(ring_prog, engine="reference", observer=obs)
        m = result.metrics
        back = RunMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m

    def test_round_trip_without_extras(self):
        result = CongestedClique(4).run(ring_prog)
        m = result.metrics
        assert RunMetrics.from_dict(m.to_dict()) == m


class TestCollectorLifecycle:
    def test_collector_resets_between_runs(self):
        obs = MetricsCollector()
        r1 = CongestedClique(4).run(ring_prog, observer=obs)
        r2 = CongestedClique(6).run(ring_prog, observer=obs)
        assert r1.metrics.n == 4
        assert r2.metrics.n == 6
        assert r1.metrics is not r2.metrics


class TestSummarise:
    def test_empty(self):
        assert summarise_metrics([]) == {"runs": 0}
        assert summarise_metrics([None]) == {"runs": 0}

    def test_aggregates(self):
        results = [CongestedClique(n).run(ring_prog).metrics for n in (4, 6)]
        summary = summarise_metrics(results)
        assert summary["runs"] == 2
        assert summary["total_rounds"] == sum(m.rounds for m in results)
        assert summary["total_message_bits"] == sum(m.message_bits for m in results)
        assert summary["max_node_load_bits"] == max(
            m.max_node_load()[1] for m in results
        )
