"""The unified run API: observer/check/transcripts keywords, the
deprecation shims, engine resolution conflicts, and sweep integration."""

import pytest

from repro.clique import run_algorithm
from repro.clique.bits import BitString
from repro.clique.errors import CliqueError
from repro.clique.network import CongestedClique, RunResult
from repro.engine import (
    FastEngine,
    ReferenceEngine,
    RunSpec,
    aggregate_sweep_metrics,
    canonical_check,
    resolve_engine,
    run_sweep,
)
from repro.obs import (
    CompositeObserver,
    MetricsCollector,
    Profiler,
    Tracer,
    describe_observer,
    resolve_observer,
)
from repro.problems import generators as gen


def ring_prog(node):
    node.send((node.id + 1) % node.n, BitString(1, 1))
    yield
    return node.id


def ring_factory(config):
    return RunSpec(program=ring_prog, n=config["n"])


class TestObserverSpecs:
    def test_default_is_metrics(self):
        assert isinstance(resolve_observer(None), MetricsCollector)
        assert isinstance(resolve_observer(True), MetricsCollector)
        assert isinstance(resolve_observer("metrics"), MetricsCollector)

    def test_off(self):
        assert resolve_observer(False) is None
        assert resolve_observer("off") is None

    def test_instance_passes_through(self):
        obs = Profiler()
        assert resolve_observer(obs) is obs

    def test_bad_spec_rejected(self):
        with pytest.raises(CliqueError):
            resolve_observer("everything")
        with pytest.raises(CliqueError):
            resolve_observer(42)

    def test_describe_observer(self):
        assert describe_observer(False) == {"observer": "off"}
        assert describe_observer(None)["observer"] == "metrics"
        assert describe_observer(Tracer())["observer"] == "tracer"

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_run_metrics_on_by_default_off_on_request(self, engine):
        on = CongestedClique(4).run(ring_prog, engine=engine)
        off = CongestedClique(4).run(ring_prog, engine=engine, observer=False)
        assert on.metrics is not None
        assert on.metrics.engine == engine
        assert off.metrics is None
        assert on.rounds == off.rounds

    def test_composite_observer(self):
        tracer, profiler, collector = Tracer(), Profiler(), MetricsCollector()
        composite = CompositeObserver(tracer, profiler, collector)
        assert composite.wants_messages and composite.wants_timing
        result = CongestedClique(4).run(ring_prog, observer=composite)
        assert result.metrics is not None  # from the collector part
        assert profiler.totals
        assert len(tracer.sink.events()) > 0


class TestCheckVocabulary:
    def test_canonical_levels_pass_through(self):
        for level in ("full", "bandwidth", "off"):
            assert canonical_check(level) == level
        assert canonical_check(None) is None

    def test_legacy_booleans_warn(self):
        with pytest.warns(DeprecationWarning):
            assert canonical_check(True) == "full"
        with pytest.warns(DeprecationWarning):
            assert canonical_check(False) == "off"

    def test_unknown_level_rejected(self):
        with pytest.raises(CliqueError):
            canonical_check("paranoid")

    def test_run_accepts_check(self):
        result = CongestedClique(4).run(
            ring_prog, engine="reference", check="bandwidth"
        )
        assert result.rounds == 1


class TestEngineResolution:
    def test_check_configures_named_engine(self):
        engine = resolve_engine("fast", check="off")
        assert isinstance(engine, FastEngine) and engine.check == "off"
        assert resolve_engine(None, check="bandwidth").check == "bandwidth"

    def test_instance_passes_through(self):
        engine = FastEngine(check="off")
        assert resolve_engine(engine) is engine
        assert resolve_engine(engine, check="off") is engine

    def test_conflicting_instance_check_rejected(self):
        with pytest.raises(CliqueError):
            resolve_engine(FastEngine(check="off"), check="full")

    def test_reference_describe_is_stable(self):
        # Frozen shape: existing cache entries are keyed on it.
        assert ReferenceEngine().describe() == {"engine": "reference"}
        assert ReferenceEngine(check="off").describe() == {
            "engine": "reference",
            "check": "off",
        }


class TestDeprecatedForms:
    def test_positional_aux_warns_but_works(self):
        def prog(node):
            return node.aux
            yield

        clique = CongestedClique(3)
        with pytest.warns(DeprecationWarning):
            result = clique.run(prog, None, 7)
        assert result.outputs == {v: 7 for v in range(3)}

    def test_positional_and_keyword_aux_conflict(self):
        def prog(node):
            return node.aux
            yield

        with pytest.raises(TypeError):
            CongestedClique(3).run(prog, None, 7, aux=7)

    def test_record_transcripts_keyword_warns(self):
        g = gen.random_graph(6, 0.4, 0)

        def prog(node):
            return node.id
            yield

        with pytest.warns(DeprecationWarning):
            result = run_algorithm(prog, g, record_transcripts=True)
        assert result.transcripts is not None

    def test_record_transcripts_conflicts_with_transcripts(self):
        g = gen.random_graph(6, 0.4, 0)

        def prog(node):
            return node.id
            yield

        with pytest.raises(TypeError):
            run_algorithm(prog, g, record_transcripts=True, transcripts=False)

    def test_transcripts_keyword_overrides_clique_default(self):
        clique = CongestedClique(4, record_transcripts=True)
        off = clique.run(ring_prog, transcripts=False)
        on = clique.run(ring_prog)
        assert off.transcripts is None
        assert on.transcripts is not None


class TestRunResultStability:
    def test_dict_round_trip(self):
        result = CongestedClique(4, record_transcripts=True).run(ring_prog)
        back = RunResult.from_dict(result.to_dict())
        assert back == result
        assert back.metrics == result.metrics
        assert back.transcripts == result.transcripts


class TestSweepIntegration:
    def test_observer_instance_rejected(self):
        with pytest.raises(CliqueError):
            run_sweep(
                ring_factory,
                [{"n": 4}],
                workers=1,
                observer=MetricsCollector(),
            )

    def test_metrics_flow_through_sweep(self):
        outcomes = run_sweep(ring_factory, [{"n": 4}, {"n": 6}], workers=1)
        assert all(o.result.metrics is not None for o in outcomes)
        summary = aggregate_sweep_metrics(outcomes)
        assert summary["runs"] == 2
        assert summary["total_message_bits"] == sum(
            o.result.metrics.message_bits for o in outcomes
        )

    def test_observer_off_in_sweep(self):
        outcomes = run_sweep(ring_factory, [{"n": 4}], workers=1, observer=False)
        assert outcomes[0].result.metrics is None
        assert aggregate_sweep_metrics(outcomes) == {"runs": 0}
