"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.k == 3 and not args.arrows

    def test_run_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1", "--k", "4", "--arrows"]) == 0
        out = capsys.readouterr().out
        assert "Ring MM" in out
        assert "delta(k-is) <= delta(k-ds)" in out

    def test_miniature(self, capsys):
        assert main(["miniature"]) == 0
        out = capsys.readouterr().out
        assert "separates" in out and "yes" in out

    @pytest.mark.parametrize("theorem", ["2", "4", "8"])
    def test_counting(self, theorem, capsys):
        assert main(["counting", "--theorem", theorem, "--sizes", "256"]) == 0
        assert "yes" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algo", ["triangle", "kvc", "kis", "bfs", "maxis", "median"]
    )
    def test_run_algorithms(self, algo, capsys):
        assert main(["run", algo, "--n", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rounds:" in out

    def test_run_kds(self, capsys):
        assert main(["run", "kds", "--n", "10", "--k", "2"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_run_mst(self, capsys):
        assert main(["run", "mst", "--n", "10", "--p", "0.5"]) == 0
        assert "MST edges" in capsys.readouterr().out

    def test_demo_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "nope"])

    def test_demo_quickstart(self, capsys):
        assert main(["demo", "quickstart"]) == 0
        assert "triangle detection" in capsys.readouterr().out
