"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.k == 3 and not args.arrows

    def test_run_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])

    def test_sweep_choices_match_catalog(self):
        from repro.engine import CATALOG

        action = next(
            a
            for a in build_parser()._subparsers._group_actions[0]
            .choices["sweep"]
            ._actions
            if a.dest == "algorithm"
        )
        assert sorted(action.choices) == sorted(CATALOG)

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "bfs"])
        assert args.engine == "fast" and args.check == "bandwidth"
        assert args.cache is None and args.workers is None

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "broadcast"])
        assert args.n == 16 and args.engine == "fast"
        assert args.links == 0 and not args.profile

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "bfs"])
        assert args.limit == 40 and args.sample == 1
        assert args.jsonl is None

    def test_stats_choices_match_catalog(self):
        from repro.engine import CATALOG

        for command in ("stats", "trace"):
            action = next(
                a
                for a in build_parser()._subparsers._group_actions[0]
                .choices[command]
                ._actions
                if a.dest == "algorithm"
            )
            assert sorted(action.choices) == sorted(CATALOG)


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1", "--k", "4", "--arrows"]) == 0
        out = capsys.readouterr().out
        assert "Ring MM" in out
        assert "delta(k-is) <= delta(k-ds)" in out

    def test_miniature(self, capsys):
        assert main(["miniature"]) == 0
        out = capsys.readouterr().out
        assert "separates" in out and "yes" in out

    @pytest.mark.parametrize("theorem", ["2", "4", "8"])
    def test_counting(self, theorem, capsys):
        assert main(["counting", "--theorem", theorem, "--sizes", "256"]) == 0
        assert "yes" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algo", ["triangle", "kvc", "kis", "bfs", "maxis", "median"]
    )
    def test_run_algorithms(self, algo, capsys):
        assert main(["run", algo, "--n", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rounds:" in out

    def test_run_kds(self, capsys):
        assert main(["run", "kds", "--n", "10", "--k", "2"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_run_mst(self, capsys):
        assert main(["run", "mst", "--n", "10", "--p", "0.5"]) == 0
        assert "MST edges" in capsys.readouterr().out

    def test_run_with_fast_engine(self, capsys):
        assert main(["run", "triangle", "--n", "12", "--engine", "fast"]) == 0
        assert "rounds:" in capsys.readouterr().out

    def test_predict_prints_extrapolation_table(self, capsys):
        assert main(["predict", "broadcast", "--n", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "closed-form extrapolation" in out
        assert "1000000" in out and "ceiling" in out

    def test_predict_unknown_algorithm_hints(self, capsys):
        assert main(["predict", "sortign"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sorting'" in err

    def test_predict_without_algorithm_or_validate(self, capsys):
        assert main(["predict"]) == 2
        assert "needs an algorithm" in capsys.readouterr().err

    def test_predict_validate_single_algorithm(self, capsys):
        code = main(
            ["predict", "dolev", "--validate", "--ns", "8", "11",
             "--engines", "reference"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "symbolic gate" in out and "checks exact" in out

    def test_predict_validate_markdown(self, capsys):
        code = main(
            ["predict", "fanout", "--validate", "--ns", "8",
             "--engines", "reference", "--markdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## Symbolic cost gate" in out and "| fanout |" in out

    def test_sweep_prints_table_and_fit(self, capsys):
        code = main(
            ["sweep", "subgraph", "--ns", "8", "16", "--seeds", "2",
             "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: subgraph" in out
        assert "fitted exponents" in out

    def test_sweep_single_n_skips_fit(self, capsys):
        assert main(["sweep", "bfs", "--ns", "8", "--workers", "1"]) == 0
        assert "need >= 2 distinct n" in capsys.readouterr().out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        argv = ["sweep", "bfs", "--ns", "8", "--seeds", "1", "--workers", "1",
                "--cache", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hit(s), 1 miss(es)" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "yes" in out  # the cached column on the second run
        assert "cache: 1 hit(s), 0 miss(es)" in out

    def test_stats_cache_round_trip(self, capsys, tmp_path):
        argv = ["stats", "bfs", "--n", "8", "--cache", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "per-round metrics: bfs" in out
        assert "cache: 0 hit(s), 1 miss(es)" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "per-round metrics: bfs" in out  # served from the cache
        assert "cache: 1 hit(s), 0 miss(es)" in out

    def test_stats_cache_shared_with_sweep(self, capsys, tmp_path):
        assert main(
            ["sweep", "bfs", "--ns", "8", "--seeds", "1", "--workers", "1",
             "--cache", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(["stats", "bfs", "--n", "8", "--cache", str(tmp_path)]) == 0
        assert "cache: 1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_stats_prints_per_round_table(self, capsys):
        assert main(["stats", "broadcast", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "per-round metrics: broadcast" in out
        assert "max_load_bits" in out
        assert "run totals" in out
        assert "routed payload load" in out

    def test_stats_links_and_profile(self, capsys):
        assert (
            main(
                ["stats", "bfs", "--n", "9", "--links", "3", "--profile",
                 "--engine", "reference"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "busiest links (top 3)" in out
        assert "phase profile" in out
        assert "validate" in out  # the reference engine's extra phase

    def test_trace_prints_event_table(self, capsys):
        assert main(["trace", "bfs", "--n", "9", "--limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "trace: bfs" in out
        assert "run_end" in out

    def test_trace_jsonl(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert (
            main(["trace", "bfs", "--n", "9", "--jsonl", str(path)]) == 0
        )
        assert "wrote" in capsys.readouterr().out
        import json

        records = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert records[0]["kind"] == "run_start"
        assert records[-1]["kind"] == "run_end"

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "benchmark suite" in out
        assert "fanout/fast" in out and "sweep/cached" in out

    def test_bench_run_writes_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_dev.json"
        code = main(
            ["bench", "run", "--quick", "--only", "codec/bool-row",
             "--repeats", "1", "--warmup", "0", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench: 1 workloads" in out
        assert out_path.exists()
        import json

        assert "codec/bool-row" in json.loads(out_path.read_text())["results"]

    def test_bench_run_unknown_workload_lists_valid_names(
        self, capsys, tmp_path
    ):
        code = main(
            ["bench", "run", "--only", "nope/bogus",
             "--out", str(tmp_path / "b.json")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown workload(s)" in err
        assert "codec/bool-row" in err  # the valid names are listed
        assert not (tmp_path / "b.json").exists()

    def test_bench_compare_ok_round_trip(self, capsys, tmp_path):
        out_path = tmp_path / "b.json"
        main(
            ["bench", "run", "--quick", "--only", "codec/bool-row",
             "--repeats", "1", "--warmup", "0", "--out", str(out_path)]
        )
        capsys.readouterr()
        code = main(
            ["bench", "compare", str(out_path), str(out_path), "--markdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark ratchet" in out and "stable" in out

    def test_bench_update_baseline(self, capsys, tmp_path, monkeypatch):
        from repro.bench import SUITE

        for name in list(SUITE):
            if name != "codec/bool-row":
                monkeypatch.delitem(SUITE, name)
        out_path = tmp_path / "baseline.json"
        code = main(
            ["bench", "update-baseline", "--out", str(out_path),
             "--repeats", "1"]
        )
        assert code == 0
        assert "baseline: 1 workloads (quick mode)" in capsys.readouterr().out
        assert out_path.exists()

    def test_demo_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "nope"])

    def test_demo_quickstart(self, capsys):
        assert main(["demo", "quickstart"]) == 0
        assert "triangle detection" in capsys.readouterr().out
