"""Tests for Theorem 10 (k-IS <= k-DS, the Figure 2 gadget)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dominating_set import k_dominating_set
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import CliqueGraph
from repro.problems import all_graphs
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.reductions.base import simulation_overhead
from repro.reductions.is_to_ds import (
    ds_witness_to_is,
    is_to_ds_instance,
    is_to_ds_reduction,
    is_witness_to_ds,
)


class TestConstruction:
    def test_node_count(self):
        g = gen.random_graph(5, 0.5, 1)
        gp, info = is_to_ds_instance(g, 3)
        assert info.num_nodes == 3 * 5 + 3 * 5 + 6
        assert gp.n == info.num_nodes
        assert info.num_nodes <= (3 * 3 + 3 + 2) * 5

    def test_decode_roundtrip(self):
        g = gen.random_graph(4, 0.5, 1)
        _, info = is_to_ds_instance(g, 3)
        for i in range(3):
            for v in range(4):
                assert info.decode(info.clique_node(i, v)) == ("clique", (i, v))
        for i in range(3):
            for j in range(i + 1, 3):
                for v in range(4):
                    assert info.decode(info.gadget_node(i, j, v)) == (
                        "gadget",
                        (i, j, v),
                    )
        for i in range(3):
            for w in (0, 1):
                assert info.decode(info.special_node(i, w)) == ("special", (i, w))

    def test_cliques_are_cliques(self):
        g = gen.random_graph(4, 0.3, 2)
        gp, info = is_to_ds_instance(g, 2)
        for i in range(2):
            for v in range(4):
                for u in range(v + 1, 4):
                    assert gp.has_edge(
                        info.clique_node(i, v), info.clique_node(i, u)
                    )

    def test_specials_touch_only_their_clique(self):
        g = gen.random_graph(4, 0.3, 2)
        gp, info = is_to_ds_instance(g, 2)
        x0 = info.special_node(0, 0)
        neighbours = {u for u in range(gp.n) if gp.has_edge(x0, u)}
        expect = {info.clique_node(0, v) for v in range(4)}
        assert neighbours == expect

    def test_gadget_edge_rule(self):
        """v_j adjacent to u_{i,j} iff u is neither v nor a G-neighbour."""
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        gp, info = is_to_ds_instance(g, 2)
        v = 0
        vj = info.clique_node(1, v)
        for u in range(4):
            uij = info.gadget_node(0, 1, u)
            want = u != v and not g.has_edge(v, u)
            assert gp.has_edge(vj, uij) == want
        # and the K_i side: v_i adjacent to all u_{i,j} with u != v
        vi = info.clique_node(0, v)
        for u in range(4):
            uij = info.gadget_node(0, 1, u)
            assert gp.has_edge(vi, uij) == (u != v)


class TestEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, k, seed):
        g = gen.random_graph(6, 0.5, seed)
        gp, info = is_to_ds_instance(g, k)
        has_is = ref.has_independent_set(g, k)
        has_ds = ref.has_dominating_set(gp, k)
        assert has_is == has_ds

    def test_exhaustive_4node_k2(self):
        for g in all_graphs(4):
            gp, info = is_to_ds_instance(g, 2)
            assert ref.has_independent_set(g, 2) == ref.has_dominating_set(
                gp, 2
            ), sorted(g.edges())

    @pytest.mark.parametrize("seed", range(3))
    def test_forward_witness_dominates(self, seed):
        g, planted = gen.planted_independent_set(7, 3, 0.6, seed)
        gp, info = is_to_ds_instance(g, 3)
        ds = is_witness_to_ds(tuple(planted), info)
        assert ref.is_dominating_set(gp, ds)

    @pytest.mark.parametrize("seed", range(3))
    def test_backward_witness_independent(self, seed):
        g, planted = gen.planted_independent_set(6, 2, 0.6, seed)
        gp, info = is_to_ds_instance(g, 2)
        # find any size-2 dominating set of G' by brute force
        import itertools

        found = None
        for combo in itertools.combinations(range(gp.n), 2):
            if ref.is_dominating_set(gp, combo):
                found = combo
                break
        assert found is not None
        back = ds_witness_to_is(found, info)
        assert ref.is_independent_set(g, back)
        assert len(set(back)) == 2

    def test_map_back_rejects_non_clique_nodes(self):
        g = gen.random_graph(4, 0.5, 1)
        _, info = is_to_ds_instance(g, 2)
        with pytest.raises(ValueError):
            ds_witness_to_is((info.gadget_node(0, 1, 0), 0), info)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_equivalence(self, seed):
        g = gen.random_graph(5, 0.5, seed)
        gp, _ = is_to_ds_instance(g, 2)
        assert ref.has_independent_set(g, 2) == ref.has_dominating_set(gp, 2)


class TestEndToEndSimulation:
    """delta(k-IS) <= delta(k-DS) executed: build G', run the Theorem 9
    algorithm on the simulator, map the witness back."""

    @pytest.mark.parametrize("seed", range(3))
    def test_pipeline(self, seed):
        k = 2
        g = gen.random_graph(6, 0.45, seed)
        gp, info = is_to_ds_instance(g, k)

        def prog(node):
            return (yield from k_dominating_set(node, k))

        found, witness = run_algorithm(
            prog, gp, bandwidth_multiplier=2
        ).common_output()
        assert found == ref.has_independent_set(g, k)
        if found:
            back = ds_witness_to_is(witness, info)
            assert ref.is_independent_set(g, back)

    def test_reduction_object(self):
        red = is_to_ds_reduction(2)
        g = gen.random_graph(5, 0.4, 7)
        gp, info = red.transform(g)
        assert gp.n == info.num_nodes

    def test_overhead_formula(self):
        """Theorem 10's O(k^(2 delta + 4)): nodes factor k^2-ish, each
        node simulating O(k^2) virtual nodes."""
        k, delta = 3, 2 / 3
        factor = simulation_overhead(k * k + k + 2, k * k, delta)
        assert factor <= (k ** (2 * delta + 4)) * 20  # constant slack
