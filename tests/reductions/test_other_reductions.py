"""Tests for the k-COL, Dor-Halperin-Zwick, and matmul reductions."""

import numpy as np
import pytest

from repro.clique.graph import INF
from repro.problems import all_graphs
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.reductions.bmm_to_apsp import (
    approximate_apsp,
    apsp_to_product,
    bmm_to_apsp_instance,
)
from repro.reductions.col_to_is import (
    col_to_is_instance,
    colouring_to_is_witness,
    is_witness_to_colouring,
)
from repro.reductions.matmul_reductions import (
    apsp_via_minplus_mm,
    boolean_mm_via_ring_mm,
    matmul_reductions,
    transitive_closure_via_boolean_mm,
    triangle_via_boolean_mm,
)


class TestColToIs:
    def test_node_count(self):
        g = gen.random_graph(5, 0.5, 1)
        gp, info = col_to_is_instance(g, 3)
        assert gp.n == 15

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, k, seed):
        g = gen.random_graph(6, 0.5, seed)
        gp, info = col_to_is_instance(g, k)
        colourable = ref.is_k_colourable(g, k)
        big_is = ref.max_independent_set_size(gp) >= g.n
        assert colourable == big_is

    def test_exhaustive_small(self):
        for g in all_graphs(4):
            gp, _ = col_to_is_instance(g, 2)
            assert ref.is_k_colourable(g, 2) == (
                ref.max_independent_set_size(gp) >= 4
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_witness_roundtrip(self, seed):
        g, colours = gen.planted_colouring(6, 3, 0.6, seed)
        gp, info = col_to_is_instance(g, 3)
        witness = colouring_to_is_witness(colours, info)
        assert ref.is_independent_set(gp, witness)
        back = is_witness_to_colouring(witness, info)
        assert back == list(colours)
        for u, v in g.edges():
            assert back[u] != back[v]

    def test_bad_witness_mapped_to_none(self):
        g = gen.random_graph(4, 0.5, 1)
        gp, info = col_to_is_instance(g, 2)
        assert is_witness_to_colouring((0, 1), info) is None  # two copies of v=0
        assert is_witness_to_colouring((0,), info) is None  # wrong size


class TestBmmToApsp:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_distances_recover_product(self, seed):
        rng = gen.rng_from(seed)
        n = 6
        a = rng.random((n, n)) < 0.4
        b = rng.random((n, n)) < 0.4
        g, info = bmm_to_apsp_instance(a, b)
        dist = ref.apsp_matrix(g)
        got = apsp_to_product(dist, info, eps=0.5)
        assert np.array_equal(got, ref.boolean_matmul(a, b))

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0])
    def test_approximate_distances_still_work(self, seed, eps):
        """Any (2-eps)-approximation separates distance 2 from >= 4."""
        rng = gen.rng_from(seed + 100)
        n = 5
        a = rng.random((n, n)) < 0.5
        b = rng.random((n, n)) < 0.5
        g, info = bmm_to_apsp_instance(a, b)
        approx = approximate_apsp(g, ratio=2 - eps, seed=seed)
        got = apsp_to_product(approx, info, eps=eps)
        assert np.array_equal(got, ref.boolean_matmul(a, b))

    def test_distance_structure(self):
        """Product pairs at distance exactly 2; non-product at >= 4."""
        a = np.array([[1, 0], [0, 0]], dtype=bool)
        b = np.array([[1, 0], [0, 0]], dtype=bool)
        g, info = bmm_to_apsp_instance(a, b)
        dist = ref.apsp_matrix(g)
        assert dist[info.x(0), info.z(0)] == 2
        assert dist[info.x(1), info.z(0)] >= 4
        assert dist[info.x(0), info.z(1)] >= 4

    def test_eps_zero_rejected(self):
        """The paper's point: the reduction breaks down at 2-approx."""
        a = np.zeros((2, 2), dtype=bool)
        g, info = bmm_to_apsp_instance(a, a)
        dist = ref.apsp_matrix(g)
        with pytest.raises(ValueError):
            apsp_to_product(dist, info, eps=0.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            bmm_to_apsp_instance(np.zeros((2, 3)), np.zeros((3, 2)))


class TestMatmulReductions:
    @pytest.mark.parametrize("seed", range(4))
    def test_triangle_via_bmm(self, seed):
        g = gen.random_graph(9, 0.3, seed)
        has, rounds = triangle_via_boolean_mm(g)
        assert has == ref.has_triangle(g)
        assert rounds > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_transitive_closure_via_bmm(self, seed):
        g = gen.random_graph(8, 0.2, seed)
        reach, rounds = transitive_closure_via_boolean_mm(g)
        assert np.array_equal(reach, ref.transitive_closure(g.adjacency))

    @pytest.mark.parametrize("seed", range(3))
    def test_apsp_via_minplus(self, seed):
        g = gen.random_weighted_graph(8, 0.4, 9, seed)
        dist, rounds = apsp_via_minplus_mm(g, max_weight=9)
        want = ref.apsp_matrix(g)
        assert np.array_equal(
            np.minimum(dist, INF), np.minimum(want, INF)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_boolean_via_ring(self, seed):
        rng = gen.rng_from(seed)
        a = (rng.random((7, 7)) < 0.4).astype(np.int64)
        b = (rng.random((7, 7)) < 0.4).astype(np.int64)
        c, rounds = boolean_mm_via_ring_mm(a, b)
        assert np.array_equal(c, ref.boolean_matmul(a, b))

    def test_reduction_catalog(self):
        reds = matmul_reductions()
        assert {r.source for r in reds} == {
            "triangle",
            "transitive-closure",
            "apsp-w-d",
            "boolean-mm",
        }
        for r in reds:
            assert r.paper_source
