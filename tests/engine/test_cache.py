"""Tests for the content-addressed run cache and its input digests."""

import numpy as np
import pytest

from repro.clique.bits import BitString
from repro.clique.errors import CacheCorruption
from repro.engine import RunCache, content_digest
from repro.problems import generators as gen


class TestContentDigest:
    def test_equal_content_equal_digest(self):
        assert content_digest({"n": 4, "p": 0.3}) == content_digest({"p": 0.3, "n": 4})

    def test_scalars_are_type_tagged(self):
        assert content_digest(1) != content_digest(True)
        assert content_digest(1) != content_digest(1.0)
        assert content_digest("1") != content_digest(1)
        assert content_digest(b"x") != content_digest("x")
        assert content_digest(None) != content_digest(0)

    def test_graphs_hash_by_matrix(self):
        g1 = gen.random_graph(8, 0.3, 1)
        g2 = gen.random_graph(8, 0.3, 1)
        g3 = gen.random_graph(8, 0.3, 2)
        assert content_digest(g1) == content_digest(g2)
        assert content_digest(g1) != content_digest(g3)

    def test_numpy_arrays(self):
        a = np.arange(12).reshape(3, 4)
        assert content_digest(a) == content_digest(a.copy())
        assert content_digest(a) != content_digest(a.T)
        assert content_digest(a) != content_digest(a.astype(np.float64))

    def test_bitstrings(self):
        assert content_digest(BitString(5, 4)) == content_digest(BitString(5, 4))
        # Same value, different declared width -> different content.
        assert content_digest(BitString(5, 4)) != content_digest(BitString(5, 8))

    def test_callables_hash_by_qualified_name(self):
        assert content_digest(gen.random_graph) == content_digest(gen.random_graph)
        assert content_digest(gen.random_graph) != content_digest(gen.rng_from)


class TestRunCache:
    def key(self, cache, **overrides):
        fields = {
            "program": "tests.echo",
            "n": 8,
            "bandwidth": 2,
            "input_digest": content_digest({"seed": 0}),
            "engine": {"engine": "fast", "check": "bandwidth"},
        }
        fields.update(overrides)
        return cache.key_for(**fields)

    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        key = self.key(cache)
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"rounds": 3})
        assert key in cache
        assert cache.get(key) == {"rounds": 3}
        assert len(cache) == 1

    def test_key_sensitivity(self, tmp_path):
        cache = RunCache(tmp_path)
        base = self.key(cache)
        assert self.key(cache, n=16) != base
        assert self.key(cache, bandwidth=4) != base
        assert self.key(cache, program="tests.other") != base
        assert self.key(cache, engine={"engine": "reference"}) != base
        assert (self.key(cache, input_digest=content_digest({"seed": 1})) != base)
        assert self.key(cache, extra="v2") != base

    def test_observer_config_is_part_of_the_key(self, tmp_path):
        """Runs that observe differently carry different metrics payloads;
        an entry cached with metrics off must not satisfy a metrics-on
        lookup (and vice versa)."""
        from repro.obs import MetricsCollector, Tracer

        cache = RunCache(tmp_path)
        default = self.key(cache)  # observer omitted -> default metrics
        assert self.key(cache, observer=None) == default
        assert self.key(cache, observer=False) != default
        assert self.key(cache, observer="metrics") == default
        assert self.key(cache, observer=MetricsCollector()) == default
        assert (self.key(cache, observer=MetricsCollector(links=True)) != default)
        assert self.key(cache, observer=Tracer()) != default
        # Pre-normalised dict descriptions are accepted as-is.
        assert (
            self.key(cache, observer={"observer": "off"})
            == self.key(cache, observer=False)
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = self.key(cache)
        cache.put(key, "payload")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="evicted"):
            assert cache.get(key) is None
        assert not path.exists()

    def test_wrong_key_inside_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        a, b = self.key(cache), self.key(cache, n=16)
        cache.put(a, "payload")
        # Simulate a mis-filed entry by copying a's bytes to b's slot.
        cache._path(b).parent.mkdir(parents=True, exist_ok=True)
        cache._path(b).write_bytes(cache._path(a).read_bytes())
        with pytest.warns(RuntimeWarning, match="mismatched key"):
            assert cache.get(b) is None
        assert not cache._path(b).exists()
        assert cache.get(a) == "payload"  # the real entry is untouched

    def test_truncated_entry_is_evicted_with_warning(self, tmp_path):
        cache = RunCache(tmp_path)
        key = self.key(cache)
        cache.put(key, {"rounds": 3})
        path = cache._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write
        with pytest.warns(RuntimeWarning, match="corrupt run-cache entry"):
            assert cache.get(key) is None
        # Self-healed: the bad file is gone and the slot is writable again.
        assert not path.exists()
        assert cache.get(key) is None
        cache.put(key, {"rounds": 4})
        assert cache.get(key) == {"rounds": 4}

    def test_strict_get_raises_cache_corruption(self, tmp_path):
        cache = RunCache(tmp_path)
        key = self.key(cache)
        cache.put(key, "payload")
        path = cache._path(key)
        path.write_bytes(b"junk")
        with pytest.raises(CacheCorruption) as excinfo:
            cache.get(key, strict=True)
        assert excinfo.value.key == key
        assert excinfo.value.path == str(path)
        assert not path.exists()  # evicted even on the strict path

    def test_clean_miss_does_not_warn(self, tmp_path):
        import warnings

        cache = RunCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(self.key(cache)) is None

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        for n in (4, 8, 16):
            cache.put(self.key(cache, n=n), n)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_missing_root_is_empty(self, tmp_path):
        cache = RunCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0

    def test_env_var_default(self, tmp_path, monkeypatch):
        from repro.engine.cache import CACHE_DIR_ENV, default_cache_dir

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert RunCache().root == tmp_path / "alt"

    def test_repr_names_the_root(self, tmp_path):
        assert str(tmp_path) in repr(RunCache(tmp_path))


def _put_same_key_repeatedly(root, key, payload, count):
    """Child-process body for the concurrent-writer test."""
    cache = RunCache(root)
    for _ in range(count):
        assert cache.put(key, payload)
        cache.get(key)


class TestRunCacheBounds:
    """LRU bound, admission control and the stats() rollup."""

    def key(self, cache, **overrides):
        fields = {
            "program": "tests.echo",
            "n": 8,
            "bandwidth": 2,
            "input_digest": content_digest({"seed": 0}),
            "engine": {"engine": "fast", "check": "bandwidth"},
        }
        fields.update(overrides)
        return cache.key_for(**fields)

    def test_bounds_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            RunCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError, match="max_entry_bytes"):
            RunCache(tmp_path, max_entry_bytes=0)

    def test_lru_evicts_oldest(self, tmp_path):
        import os

        cache = RunCache(tmp_path, max_entries=2)
        k1, k2 = self.key(cache, n=1), self.key(cache, n=2)
        cache.put(k1, "one")
        cache.put(k2, "two")
        # Pin distinct mtimes so the LRU order is unambiguous.
        os.utime(cache._path(k1), (100, 100))
        os.utime(cache._path(k2), (200, 200))
        k3 = self.key(cache, n=3)
        cache.put(k3, "three")
        assert k1 not in cache  # oldest mtime loses
        assert k2 in cache and k3 in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_hit_refreshes_lru_clock(self, tmp_path):
        import os

        cache = RunCache(tmp_path, max_entries=2)
        k1, k2 = self.key(cache, n=1), self.key(cache, n=2)
        cache.put(k1, "one")
        cache.put(k2, "two")
        os.utime(cache._path(k1), (100, 100))
        os.utime(cache._path(k2), (200, 200))
        assert cache.get(k1) == "one"  # refreshes k1's mtime to now
        cache.put(self.key(cache, n=3), "three")
        assert k1 in cache  # survived because the hit refreshed it
        assert k2 not in cache

    def test_admission_rejects_oversize_payload(self, tmp_path):
        cache = RunCache(tmp_path, max_entry_bytes=256)
        small, big = self.key(cache, n=1), self.key(cache, n=2)
        assert cache.put(small, "tiny") is True
        assert cache.put(big, b"x" * 4096) is False
        assert big not in cache
        assert cache.rejections == 1
        assert cache.get(big) is None  # a refusal is just a future miss

    def test_stats_rollup(self, tmp_path):
        cache = RunCache(tmp_path, max_entries=8, max_entry_bytes=1 << 20)
        key = self.key(cache)
        cache.get(key)
        cache.put(key, "payload")
        cache.get(key)
        stats = cache.stats()
        assert stats == {
            "root": str(tmp_path),
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "rejections": 0,
            "max_entries": 8,
            "max_entry_bytes": 1 << 20,
        }

    def test_concurrent_same_key_writers_never_corrupt(self, tmp_path):
        """Two processes hammering the same key must leave one intact
        winner: every concurrent read sees either a miss or the full
        payload, never a torn entry (atomic temp-file + rename)."""
        import multiprocessing
        import warnings

        cache = RunCache(tmp_path)
        key = self.key(cache)
        payload = {"rounds": 7, "bits": list(range(64))}
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(
                target=_put_same_key_repeatedly,
                args=(tmp_path, key, payload, 100),
            )
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # corruption would warn
                for _ in range(200):
                    value = cache.get(key)
                    assert value is None or value == payload
        finally:
            for proc in workers:
                proc.join(timeout=30)
        assert all(proc.exitcode == 0 for proc in workers)
        assert cache.get(key) == payload

    def test_corrupt_eviction_race_is_a_clean_miss(self, tmp_path):
        """Regression: when another process evicts a corrupt entry
        between our read and our unlink, the failed unlink must not
        escape — the lookup is still just a miss."""
        cache = RunCache(tmp_path)
        key = self.key(cache)
        cache.put(key, "payload")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        path.unlink()  # the other process won the eviction race
        with pytest.warns(RuntimeWarning, match="eviction failed"):
            cache._evict_corrupt(key, path, "unreadable", strict=False)
        assert cache.get(key) is None  # plain miss afterwards
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
