"""Tests for the multiprocess sweep runner: determinism, worker/serial
equivalence, cache integration, factory pickling fallbacks, and the
failure-containment layer (crashing points, hanging points, retries)."""

import time

import pytest

from repro.clique.bits import BitString
from repro.clique.errors import CliqueError, SweepPointFailed
from repro.engine import (
    RunCache,
    RunSpec,
    aggregate_sweep_metrics,
    derive_seed,
    run_spec,
    run_sweep,
)


def echo_factory(config: dict) -> RunSpec:
    """Module-level (hence picklable) factory: one broadcast round where
    every node learns the config-dependent parity bits of its peers."""
    n = config["n"]
    bit = config["seed"] % 2

    def prog(node):
        node.send_to_all(BitString((node.id + bit) % 2, 1))
        yield
        return sorted((src, msg.value) for src, msg in node.inbox.items())

    def post(result):
        return result.total_message_bits

    return RunSpec(program=prog, n=n, postprocess=post)


def chaos_factory(config: dict) -> RunSpec:
    """Module-level factory with deliberately bad grid points: ``mode``
    selects a healthy run, a crash, or a hang (for timeout tests)."""
    mode = config.get("mode", "ok")
    if mode == "crash":
        raise RuntimeError("injected factory crash")
    if mode == "hang":
        time.sleep(60)

    def prog(node):
        node.send_to_all(BitString(node.id % 2, 1))
        yield
        return len(node.inbox)

    return RunSpec(program=prog, n=config.get("n", 4))


_FLAKY_STATE = {"failures_left": 0}


def flaky_factory(config: dict) -> RunSpec:
    """Fails the first ``failures_left`` calls, then behaves."""
    if _FLAKY_STATE["failures_left"] > 0:
        _FLAKY_STATE["failures_left"] -= 1
        raise RuntimeError("transient failure")
    return chaos_factory(config)


class TestRunSpec:
    def test_n_inferred_from_graph(self):
        from repro.problems import generators as gen

        g = gen.random_graph(7, 0.3, 0)
        assert RunSpec(program=None, node_input=g).resolved_n() == 7

    def test_n_required_otherwise(self):
        with pytest.raises(CliqueError, match="explicit n"):
            RunSpec(program=None).resolved_n()

    def test_n_error_names_the_program_and_input(self):
        def my_prog(node):
            yield

        with pytest.raises(CliqueError, match="my_prog"):
            RunSpec(program=my_prog, node_input=[1, 2]).resolved_n()
        with pytest.raises(CliqueError, match="list"):
            RunSpec(program=my_prog, node_input=[1, 2]).resolved_n()

    def test_run_spec_returns_postprocess_value(self):
        result, value = run_spec(echo_factory({"n": 4, "seed": 0}), "fast")
        assert result.rounds == 1
        assert value == result.total_message_bits


class TestDeterminism:
    def test_derive_seed_is_stable(self):
        a = derive_seed(0, 3, {"n": 16})
        assert a == derive_seed(0, 3, {"n": 16})
        assert a != derive_seed(0, 4, {"n": 16})
        assert a != derive_seed(1, 3, {"n": 16})
        assert a != derive_seed(0, 3, {"n": 32})

    def test_configs_get_deterministic_seeds(self):
        configs = [{"n": 4}, {"n": 4}, {"n": 5}]
        first = run_sweep(echo_factory, configs, workers=1)
        second = run_sweep(echo_factory, configs, workers=1)
        assert [o.config for o in first] == [o.config for o in second]
        assert all("seed" in o.config for o in first)
        # Same n, different grid index -> different derived seed.
        assert first[0].config["seed"] != first[1].config["seed"]

    def test_explicit_seeds_are_kept(self):
        outcomes = run_sweep(echo_factory, [{"n": 4, "seed": 99}], workers=1)
        assert outcomes[0].config["seed"] == 99


class TestWorkers:
    CONFIGS = [{"n": n, "seed": s} for n in (4, 6, 8) for s in (0, 1)]

    def test_parallel_equals_serial(self):
        serial = run_sweep(echo_factory, self.CONFIGS, workers=1)
        parallel = run_sweep(echo_factory, self.CONFIGS, workers=3)
        assert len(serial) == len(parallel) == len(self.CONFIGS)
        for a, b in zip(serial, parallel):
            assert a.config == b.config
            assert a.result.outputs == b.result.outputs
            assert a.result.rounds == b.result.rounds
            assert a.value == b.value

    def test_unpicklable_factory_degrades_to_serial(self):
        # A closure can't be pickled by qualified name; the sweep must
        # still complete (serial fallback), not crash.
        def local_factory(config):
            return echo_factory(config)

        with pytest.warns(RuntimeWarning, match="not picklable"):
            outcomes = run_sweep(local_factory, self.CONFIGS[:3], workers=2)
        assert len(outcomes) == 3
        assert all(o.result.rounds == 1 for o in outcomes)

    def test_engine_choice_applies(self):
        ref = run_sweep(echo_factory, self.CONFIGS, workers=1, engine="reference")
        fast = run_sweep(echo_factory, self.CONFIGS, workers=1, engine="fast")
        for a, b in zip(ref, fast):
            assert a.result.outputs == b.result.outputs
            assert a.result.total_message_bits == b.result.total_message_bits


class TestCacheIntegration:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"n": 4, "seed": 0}, {"n": 6, "seed": 1}]
        first = run_sweep(echo_factory, configs, workers=1, cache=cache)
        assert all(not o.from_cache for o in first)
        assert len(cache) == 2

        second = run_sweep(echo_factory, configs, workers=1, cache=cache)
        assert all(o.from_cache for o in second)
        for a, b in zip(first, second):
            assert a.result.outputs == b.result.outputs
            assert a.value == b.value

    def test_engine_config_partitions_the_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"n": 4, "seed": 0}]
        run_sweep(echo_factory, configs, workers=1, cache=cache, engine="fast")
        run_sweep(echo_factory, configs, workers=1, cache=cache, engine="reference")
        assert len(cache) == 2  # one entry per engine config

    def test_config_change_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(echo_factory, [{"n": 4, "seed": 0}], workers=1, cache=cache)
        outcomes = run_sweep(
            echo_factory, [{"n": 4, "seed": 1}], workers=1, cache=cache
        )
        assert not outcomes[0].from_cache

    def test_fault_plan_partitions_the_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"n": 4, "seed": 0}]
        run_sweep(echo_factory, configs, workers=1, cache=cache)
        outcomes = run_sweep(
            echo_factory,
            configs,
            workers=1,
            cache=cache,
            fault_plan="drop=0.5,seed=1",
        )
        assert not outcomes[0].from_cache
        assert len(cache) == 2  # one entry per fault-plan config

    def test_failed_points_are_not_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"mode": "ok", "seed": 0}, {"mode": "crash", "seed": 0}]
        outcomes = run_sweep(chaos_factory, configs, workers=1, cache=cache)
        assert [o.failed for o in outcomes] == [False, True]
        assert len(cache) == 1  # only the healthy point landed on disk
        again = run_sweep(chaos_factory, configs, workers=1, cache=cache)
        assert again[0].from_cache
        assert again[1].failed and not again[1].from_cache


class TestFailureContainment:
    CONFIGS = [
        {"mode": "ok", "seed": 0},
        {"mode": "crash", "seed": 0},
        {"mode": "ok", "seed": 1},
    ]

    def test_crashing_point_is_marked_failed(self):
        outcomes = run_sweep(chaos_factory, self.CONFIGS, workers=1)
        assert [o.failed for o in outcomes] == [False, True, False]
        bad = outcomes[1]
        assert bad.result is None
        assert isinstance(bad.error, SweepPointFailed)
        assert bad.error.index == 1
        assert bad.error.config == bad.config
        assert "injected factory crash" in str(bad.error)
        # The healthy points are untouched by their neighbour's failure.
        assert outcomes[0].result.rounds == 1
        assert outcomes[2].result.rounds == 1

    def test_crash_in_pool_mode_does_not_kill_the_sweep(self):
        outcomes = run_sweep(chaos_factory, self.CONFIGS, workers=2)
        assert [o.failed for o in outcomes] == [False, True, False]

    def test_on_error_raise_aborts(self):
        with pytest.raises(SweepPointFailed, match="injected factory crash"):
            run_sweep(chaos_factory, self.CONFIGS, workers=1, on_error="raise")

    def test_hanging_point_is_killed_at_the_timeout(self):
        configs = [
            {"mode": "ok", "seed": 0},
            {"mode": "hang", "seed": 0},
            {"mode": "ok", "seed": 1},
        ]
        start = time.monotonic()
        outcomes = run_sweep(chaos_factory, configs, timeout=2.0)
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60s sleep
        assert [o.failed for o in outcomes] == [False, True, False]
        assert "timeout" in str(outcomes[1].error)

    def test_retries_recover_a_transient_failure(self):
        _FLAKY_STATE["failures_left"] = 2
        outcomes = run_sweep(
            flaky_factory,
            [{"mode": "ok", "seed": 0}],
            workers=1,
            retries=2,
            retry_backoff=0.0,
        )
        assert not outcomes[0].failed
        assert outcomes[0].result.rounds == 1

    def test_retries_exhausted_still_fails(self):
        _FLAKY_STATE["failures_left"] = 10
        outcomes = run_sweep(
            flaky_factory,
            [{"mode": "ok", "seed": 0}],
            workers=1,
            retries=1,
            retry_backoff=0.0,
        )
        _FLAKY_STATE["failures_left"] = 0
        assert outcomes[0].failed
        assert "2 attempt(s)" in str(outcomes[0].error)

    def test_aggregate_reports_failures_without_raising(self):
        outcomes = run_sweep(chaos_factory, self.CONFIGS, workers=1, observer=True)
        summary = aggregate_sweep_metrics(outcomes)
        assert summary["runs"] == 2
        assert summary["failed_points"] == 1
        assert summary["failed_indices"] == [1]

    def test_aggregate_shape_unchanged_without_failures(self):
        outcomes = run_sweep(
            chaos_factory,
            [{"mode": "ok", "seed": 0}],
            workers=1,
            observer=False,
        )
        assert aggregate_sweep_metrics(outcomes) == {"runs": 0}

    def test_parameter_validation(self):
        with pytest.raises(CliqueError, match="on_error"):
            run_sweep(chaos_factory, [], on_error="explode")
        with pytest.raises(CliqueError, match="retries"):
            run_sweep(chaos_factory, [], retries=-1)
        with pytest.raises(CliqueError, match="timeout"):
            run_sweep(chaos_factory, [], timeout=0)
        with pytest.raises(CliqueError, match="retry_backoff"):
            run_sweep(chaos_factory, [], retry_backoff=-0.5)
