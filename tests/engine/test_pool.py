"""Tests for the multiprocess sweep runner: determinism, worker/serial
equivalence, cache integration and factory pickling fallbacks."""

import pytest

from repro.clique.bits import BitString
from repro.clique.errors import CliqueError
from repro.engine import (
    RunCache,
    RunSpec,
    derive_seed,
    run_spec,
    run_sweep,
)


def echo_factory(config: dict) -> RunSpec:
    """Module-level (hence picklable) factory: one broadcast round where
    every node learns the config-dependent parity bits of its peers."""
    n = config["n"]
    bit = config["seed"] % 2

    def prog(node):
        node.send_to_all(BitString((node.id + bit) % 2, 1))
        yield
        return sorted((src, msg.value) for src, msg in node.inbox.items())

    def post(result):
        return result.total_message_bits

    return RunSpec(program=prog, n=n, postprocess=post)


class TestRunSpec:
    def test_n_inferred_from_graph(self):
        from repro.problems import generators as gen

        g = gen.random_graph(7, 0.3, 0)
        assert RunSpec(program=None, node_input=g).resolved_n() == 7

    def test_n_required_otherwise(self):
        with pytest.raises(CliqueError, match="explicit n"):
            RunSpec(program=None).resolved_n()

    def test_run_spec_returns_postprocess_value(self):
        result, value = run_spec(echo_factory({"n": 4, "seed": 0}), "fast")
        assert result.rounds == 1
        assert value == result.total_message_bits


class TestDeterminism:
    def test_derive_seed_is_stable(self):
        a = derive_seed(0, 3, {"n": 16})
        assert a == derive_seed(0, 3, {"n": 16})
        assert a != derive_seed(0, 4, {"n": 16})
        assert a != derive_seed(1, 3, {"n": 16})
        assert a != derive_seed(0, 3, {"n": 32})

    def test_configs_get_deterministic_seeds(self):
        configs = [{"n": 4}, {"n": 4}, {"n": 5}]
        first = run_sweep(echo_factory, configs, workers=1)
        second = run_sweep(echo_factory, configs, workers=1)
        assert [o.config for o in first] == [o.config for o in second]
        assert all("seed" in o.config for o in first)
        # Same n, different grid index -> different derived seed.
        assert first[0].config["seed"] != first[1].config["seed"]

    def test_explicit_seeds_are_kept(self):
        outcomes = run_sweep(echo_factory, [{"n": 4, "seed": 99}], workers=1)
        assert outcomes[0].config["seed"] == 99


class TestWorkers:
    CONFIGS = [{"n": n, "seed": s} for n in (4, 6, 8) for s in (0, 1)]

    def test_parallel_equals_serial(self):
        serial = run_sweep(echo_factory, self.CONFIGS, workers=1)
        parallel = run_sweep(echo_factory, self.CONFIGS, workers=3)
        assert len(serial) == len(parallel) == len(self.CONFIGS)
        for a, b in zip(serial, parallel):
            assert a.config == b.config
            assert a.result.outputs == b.result.outputs
            assert a.result.rounds == b.result.rounds
            assert a.value == b.value

    def test_unpicklable_factory_degrades_to_serial(self):
        # A closure can't be pickled by qualified name; the sweep must
        # still complete (serial fallback), not crash.
        def local_factory(config):
            return echo_factory(config)

        outcomes = run_sweep(local_factory, self.CONFIGS[:3], workers=2)
        assert len(outcomes) == 3
        assert all(o.result.rounds == 1 for o in outcomes)

    def test_engine_choice_applies(self):
        ref = run_sweep(echo_factory, self.CONFIGS, workers=1, engine="reference")
        fast = run_sweep(echo_factory, self.CONFIGS, workers=1, engine="fast")
        for a, b in zip(ref, fast):
            assert a.result.outputs == b.result.outputs
            assert a.result.total_message_bits == b.result.total_message_bits


class TestCacheIntegration:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"n": 4, "seed": 0}, {"n": 6, "seed": 1}]
        first = run_sweep(echo_factory, configs, workers=1, cache=cache)
        assert all(not o.from_cache for o in first)
        assert len(cache) == 2

        second = run_sweep(echo_factory, configs, workers=1, cache=cache)
        assert all(o.from_cache for o in second)
        for a, b in zip(first, second):
            assert a.result.outputs == b.result.outputs
            assert a.value == b.value

    def test_engine_config_partitions_the_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        configs = [{"n": 4, "seed": 0}]
        run_sweep(echo_factory, configs, workers=1, cache=cache, engine="fast")
        run_sweep(
            echo_factory, configs, workers=1, cache=cache, engine="reference"
        )
        assert len(cache) == 2  # one entry per engine config

    def test_config_change_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(echo_factory, [{"n": 4, "seed": 0}], workers=1, cache=cache)
        outcomes = run_sweep(
            echo_factory, [{"n": 4, "seed": 1}], workers=1, cache=cache
        )
        assert not outcomes[0].from_cache
