"""The columnar whole-round engine: array programs, validation levels,
and the differential gate against the reference backend."""

import numpy as np
import pytest

from repro.clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    InvalidAddress,
    RoundLimitExceeded,
)
from repro.clique.network import CongestedClique
from repro.engine import (
    COLUMNAR_CATALOG,
    ColumnarEngine,
    DualProgram,
    array_program,
    diff_columnar,
    resolve_engine,
)
from repro.engine.diff import (
    COLUMNAR_FAULT_CATALOG,
    catalog_factory,
)
from repro.engine.pool import run_spec


class TestDiffGate:
    """The acceptance gate: reference and columnar agree everywhere."""

    def test_full_catalog_all_check_levels(self):
        reports = diff_columnar()
        bad = [r.summary() for r in reports if not r.ok]
        assert not bad, bad
        # Every ported algorithm ran at every check level, plus one
        # faulty comparison per fault-catalog entry.
        expected = 3 * len(COLUMNAR_CATALOG) + len(COLUMNAR_FAULT_CATALOG)
        assert len(reports) == expected

    def test_catalog_lists_the_ported_algorithms(self):
        assert set(COLUMNAR_CATALOG) >= {
            "fanout",
            "matmul",
            "routing",
            "sorting",
        }

    def test_single_entry_with_config_override(self):
        reports = diff_columnar(["fanout"], {"n": 16, "seed": 5})
        assert all(r.ok for r in reports), [r.summary() for r in reports]


class TestColumnarExecution:
    def test_fanout_matches_fast_engine(self):
        cfg = {"algorithm": "fanout", "n": 32, "rounds": 4, "seed": 2}
        fast, _ = run_spec(catalog_factory(dict(cfg)), "fast")
        col, _ = run_spec(catalog_factory(dict(cfg)), "columnar")
        assert col.outputs == fast.outputs
        assert col.rounds == fast.rounds
        assert col.total_message_bits == fast.total_message_bits
        assert col.metrics.engine == "columnar"

    def test_plain_generator_program_is_rejected(self):
        def prog(node):
            yield

        clique = CongestedClique(4)
        with pytest.raises(CliqueError, match="array"):
            clique.run(prog, engine="columnar")

    def test_dual_program_runs_on_generator_engines(self):
        cfg = {"algorithm": "fanout", "n": 8, "seed": 0}
        spec = catalog_factory(dict(cfg))
        assert isinstance(spec.program, DualProgram)
        ref, _ = run_spec(catalog_factory(dict(cfg)), "reference")
        fast, _ = run_spec(catalog_factory(dict(cfg)), "fast")
        assert ref.outputs == fast.outputs

    def test_round_limit_is_enforced(self):
        cfg = {"algorithm": "fanout", "n": 6, "rounds": 5, "seed": 0}
        spec = catalog_factory(dict(cfg))
        clique = CongestedClique(6, bandwidth_multiplier=2, max_rounds=2)
        with pytest.raises(RoundLimitExceeded):
            clique.run(spec.program, spec.node_input, aux=spec.aux, engine="columnar")

    def test_resolve_by_name_and_check(self):
        engine = resolve_engine("columnar", check="off")
        assert isinstance(engine, ColumnarEngine)
        assert engine.check == "off"
        assert engine.describe()["engine"] == "columnar"


@array_program
def _duplicate_sender(ctx):
    # Node 0 sends two messages to node 1 in the same round.
    src = np.zeros(2, dtype=np.int64)
    dst = np.ones(2, dtype=np.int64)
    ctx.send(src, dst, np.array([1, 2], dtype=np.uint64), 1)
    yield
    return None


@array_program
def _self_sender(ctx):
    ctx.send(
        np.array([1], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([3], dtype=np.uint64),
        1,
    )
    yield
    return None


class TestCheckLevels:
    def test_full_check_rejects_duplicate_slots(self):
        clique = CongestedClique(3)
        with pytest.raises(DuplicateMessage):
            clique.run(_duplicate_sender, engine=ColumnarEngine(check="full"))

    def test_lax_checks_keep_the_last_duplicate(self):
        result = CongestedClique(3).run(
            _duplicate_sender, engine=ColumnarEngine(check="bandwidth")
        )
        assert result.rounds == 1

    def test_full_check_rejects_self_addressing(self):
        clique = CongestedClique(3)
        with pytest.raises(InvalidAddress):
            clique.run(_self_sender, engine=ColumnarEngine(check="full"))

    def test_bandwidth_is_enforced_at_every_level(self):
        @array_program
        def oversend(ctx):
            width = ctx.bandwidth + 1
            ctx.send(
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([0], dtype=np.uint64),
                width,
            )
            yield
            return None

        for check in ("full", "bandwidth"):
            with pytest.raises(BandwidthExceeded):
                CongestedClique(4).run(
                    oversend, engine=ColumnarEngine(check=check)
                )
