"""Differential tests: the fast backend must be observationally
equivalent to the reference backend on the whole algorithm catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.errors import CliqueError
from repro.engine import (
    CATALOG,
    FastEngine,
    assert_engines_agree,
    catalog_factory,
    diff_catalog,
    diff_engines,
    run_spec,
)
from repro.clique.network import _outputs_equal


class TestCatalogAgreement:
    @pytest.mark.parametrize("algorithm", sorted(CATALOG))
    def test_reference_and_fast_agree(self, algorithm):
        report = assert_engines_agree(
            catalog_factory, {"algorithm": algorithm, "n": 8, "seed": 3}
        )
        assert report.ok
        assert report.engines == ("reference", "fast")
        assert report.rounds["reference"] == report.rounds["fast"]

    @pytest.mark.parametrize("algorithm", ["broadcast", "bfs", "kds", "subgraph"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_agreement_across_seeds(self, algorithm, seed):
        assert_engines_agree(
            catalog_factory, {"algorithm": algorithm, "n": 9, "seed": seed}
        )

    def test_catalog_covers_required_families(self):
        # The acceptance criterion: at least eight distinct families.
        assert len(CATALOG) >= 8
        for name in (
            "broadcast",
            "bfs",
            "apsp",
            "matmul",
            "kds",
            "kvc",
            "subgraph",
            "sorting",
        ):
            assert name in CATALOG

    def test_diff_catalog_all_ok(self):
        reports = diff_catalog(config={"n": 6, "seed": 1})
        assert len(reports) == len(CATALOG)
        assert all(r.ok for r in reports), [r.summary() for r in reports]

    def test_fast_check_levels_agree(self):
        for check in ("full", "bandwidth", "off"):
            assert_engines_agree(
                catalog_factory,
                {"algorithm": "bfs", "n": 8, "seed": 0},
                engines=("reference", FastEngine(check=check)),
                label=f"bfs/{check}",
            )

    def test_mismatch_is_reported(self):
        # Same algorithm, different configs -> a rigged "engine pair"
        # is not possible through the public API, so check the report
        # machinery directly on unequal specs.
        report = diff_engines(
            catalog_factory,
            {"algorithm": "broadcast", "n": 6, "seed": 0},
        )
        assert report.ok and "agree" in report.summary()
        report.mismatches.append("rounds: reference=1 fast=2")
        assert not report.ok and "MISMATCH" in report.summary()


class TestShuffleInvariance:
    """Message delivery is an unordered set: permuting the order in
    which one round's messages land must not change any output."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_sorting_invariant_under_delivery_permutation(self, seed):
        config = {"algorithm": "sorting", "n": 6, "seed": 4}
        baseline, _ = run_spec(catalog_factory(dict(config)), "fast")
        shuffled, _ = run_spec(
            catalog_factory(dict(config)), FastEngine(shuffle_seed=seed)
        )
        assert shuffled.rounds == baseline.rounds
        assert sorted(shuffled.outputs) == sorted(baseline.outputs)
        for v in baseline.outputs:
            assert _outputs_equal(shuffled.outputs[v], baseline.outputs[v])
        assert shuffled.total_message_bits == baseline.total_message_bits

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_bfs_invariant_under_delivery_permutation(self, seed):
        config = {"algorithm": "bfs", "n": 8, "seed": 2}
        baseline, _ = run_spec(catalog_factory(dict(config)), "reference")
        shuffled, _ = run_spec(
            catalog_factory(dict(config)), FastEngine(shuffle_seed=seed)
        )
        assert shuffled.rounds == baseline.rounds
        for v in baseline.outputs:
            assert _outputs_equal(shuffled.outputs[v], baseline.outputs[v])


class TestCatalogFactory:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(CliqueError, match="unknown catalog algorithm"):
            catalog_factory({"algorithm": "nope"})

    def test_specs_are_self_contained(self):
        spec = catalog_factory({"algorithm": "broadcast", "n": 5, "seed": 0})
        assert spec.resolved_n() == 5
