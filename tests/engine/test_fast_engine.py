"""Behavioural tests for the fast backend: validation levels, model
variants it refuses, transcripts and bit accounting."""

import pytest

from repro.clique.bits import BitString
from repro.clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    InvalidAddress,
    ProtocolViolation,
)
from repro.clique.graph import CliqueGraph
from repro.clique.network import CongestedClique
from repro.engine import (
    ENGINES,
    FastEngine,
    ReferenceEngine,
    resolve_engine,
)


def one_round(send_phase):
    """A program that runs ``send_phase(node)`` then one round."""

    def prog(node):
        send_phase(node)
        yield
        return None

    return prog


class TestCheckLevels:
    def test_invalid_level_rejected(self):
        with pytest.raises(CliqueError, match="check must be one of"):
            FastEngine(check="paranoid")

    def test_full_catches_duplicates(self):
        clique = CongestedClique(4)

        def phase(node):
            if node.id == 0:
                node.send(1, BitString(1, 1))
                node.send(1, BitString(0, 1))

        with pytest.raises(DuplicateMessage):
            clique.run(one_round(phase), engine=FastEngine(check="full"))

    def test_full_catches_bad_address(self):
        clique = CongestedClique(4)

        def phase(node):
            if node.id == 0:
                node.send(7, BitString(1, 1))

        with pytest.raises(InvalidAddress):
            clique.run(one_round(phase), engine=FastEngine(check="full"))

    def test_full_catches_self_address(self):
        clique = CongestedClique(4)

        def phase(node):
            node.send(node.id, BitString(1, 1))

        with pytest.raises(InvalidAddress):
            clique.run(one_round(phase), engine=FastEngine(check="full"))

    def test_full_catches_empty_payload(self):
        clique = CongestedClique(4)

        def phase(node):
            if node.id == 0:
                node.send(1, BitString(0, 0))

        with pytest.raises(ProtocolViolation):
            clique.run(one_round(phase), engine=FastEngine(check="full"))

    @pytest.mark.parametrize("check", ["full", "bandwidth"])
    def test_bandwidth_enforced(self, check):
        clique = CongestedClique(4)  # B = 2 bits
        big = BitString(0, clique.bandwidth + 1)

        def phase(node):
            if node.id == 0:
                node.send(1, big)

        with pytest.raises(BandwidthExceeded):
            clique.run(one_round(phase), engine=FastEngine(check=check))

    @pytest.mark.parametrize("check", ["full", "bandwidth"])
    def test_broadcast_bandwidth_enforced(self, check):
        clique = CongestedClique(4)
        big = BitString(0, clique.bandwidth + 1)

        def phase(node):
            node.send_to_all(big)

        with pytest.raises(BandwidthExceeded):
            clique.run(one_round(phase), engine=FastEngine(check=check))

    def test_bandwidth_level_skips_duplicate_check(self):
        clique = CongestedClique(4)

        def phase(node):
            if node.id == 0:
                node.send(1, BitString(1, 1))
                node.send(1, BitString(0, 1))

        # Permissive by design: last write wins, no exception.
        result = clique.run(one_round(phase), engine=FastEngine(check="bandwidth"))
        assert result.rounds == 1

    def test_off_trusts_the_program(self):
        clique = CongestedClique(4)
        big = BitString(0, 64)  # way over budget

        def phase(node):
            if node.id == 0:
                node.send(1, big)

        result = clique.run(one_round(phase), engine=FastEngine(check="off"))
        assert result.total_message_bits == 64


class TestModelVariants:
    def test_broadcast_only_clique_rejected(self):
        clique = CongestedClique(4, broadcast_only=True)

        def prog(node):
            node.send_to_all(BitString(1, 1))
            yield
            return None

        with pytest.raises(CliqueError, match="plain congested clique"):
            clique.run(prog, engine="fast")
        # ... but the reference engine runs it fine.
        assert clique.run(prog, engine="reference").rounds == 1

    def test_congest_topology_rejected(self):
        path = CliqueGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        clique = CongestedClique(4, topology=path)

        def prog(node):
            yield
            return None

        with pytest.raises(CliqueError, match="plain congested clique"):
            clique.run(prog, engine="fast")


class TestTranscriptsAndAccounting:
    def prog(self, node):
        node.send_to_all(BitString(node.id % 2, 1))
        yield
        node.send((node.id + 1) % node.n, BitString(1, 1))
        yield
        return sorted(node.inbox)

    def test_transcripts_off_by_default(self):
        result = CongestedClique(4).run(self.prog, engine="fast")
        assert result.transcripts is None

    def test_clique_request_turns_transcripts_on(self):
        result = CongestedClique(4, record_transcripts=True).run(
            self.prog, engine="fast"
        )
        assert result.transcripts is not None
        assert len(result.transcripts) == 4
        assert all(len(t.rounds) == result.rounds for t in result.transcripts)

    def test_engine_flag_turns_transcripts_on(self):
        result = CongestedClique(4).run(
            self.prog, engine=FastEngine(record_transcripts=True)
        )
        assert result.transcripts is not None

    def test_transcripts_match_reference(self):
        clique = CongestedClique(5, record_transcripts=True)
        ref = clique.run(self.prog, engine="reference")
        fast = clique.run(self.prog, engine="fast")
        for tr, tf in zip(ref.transcripts, fast.transcripts):
            assert tr == tf

    def test_accounting_matches_reference(self):
        clique = CongestedClique(6)
        ref = clique.run(self.prog, engine="reference")
        fast = clique.run(self.prog, engine="fast")
        assert fast.rounds == ref.rounds
        assert fast.total_message_bits == ref.total_message_bits
        assert fast.bulk_bits == ref.bulk_bits
        assert fast.sent_bits == ref.sent_bits
        assert fast.received_bits == ref.received_bits
        assert fast.outputs == ref.outputs

    def test_single_node_broadcast_is_a_noop(self):
        def prog(node):
            node.send_to_all(BitString(1, 1))
            yield
            return "done"

        result = CongestedClique(1).run(prog, engine="fast")
        assert result.outputs == {0: "done"}
        assert result.total_message_bits == 0


class TestRegistry:
    def test_default_is_reference(self):
        assert isinstance(resolve_engine(None), ReferenceEngine)

    def test_names_resolve(self):
        assert resolve_engine("fast").name == "fast"
        assert resolve_engine("reference").name == "reference"
        assert set(ENGINES) >= {"fast", "reference"}

    def test_instances_pass_through(self):
        engine = FastEngine(check="off")
        assert resolve_engine(engine) is engine

    def test_unknown_name_rejected(self):
        with pytest.raises(CliqueError, match="unknown engine"):
            resolve_engine("warp")

    def test_describe_is_cache_key_material(self):
        assert FastEngine().describe() != FastEngine(check="off").describe()
        assert ReferenceEngine().describe() == {"engine": "reference"}
