"""Shard-parallel columnar execution: bit-identical results at every
shard count, transparent fallback everywhere the shard contract cannot
express the run, and the ``shards`` knob across the spec/CLI surface."""

import numpy as np
import pytest

from repro.clique.errors import CliqueError
from repro.clique.network import CongestedClique
from repro.engine import (
    ColumnarEngine,
    ExecutionSpec,
    FastEngine,
    array_program,
    resolve_engine,
)
from repro.engine.diff import catalog_factory
from repro.engine.pool import run_spec
from repro.service import kernel as service_kernel

FANOUT = {"algorithm": "fanout", "n": 24, "rounds": 3, "seed": 4}
FANOUT_WORK = {
    "algorithm": "fanout_work",
    "n": 24,
    "rounds": 3,
    "state": 64,
    "passes": 2,
    "seed": 4,
}


def _run_columnar(config, **engine_kwargs):
    engine = ColumnarEngine(check="bandwidth", **engine_kwargs)
    return run_spec(catalog_factory(dict(config)), engine)[0]


def _assert_identical(base, other):
    assert other.outputs == base.outputs
    assert other.rounds == base.rounds
    assert other.total_message_bits == base.total_message_bits
    assert other.sent_bits == base.sent_bits
    assert other.received_bits == base.received_bits
    assert other.metrics == base.metrics


class TestShardedParity:
    """Sharded runs are bit-identical to single-instance columnar."""

    @pytest.mark.parametrize("config", [FANOUT, FANOUT_WORK], ids=["fanout", "work"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 64])
    def test_inline_shards_match_single_instance(self, config, shards):
        base = _run_columnar(config)
        split = _run_columnar(config, shards=shards, executor="inline")
        _assert_identical(base, split)

    @pytest.mark.parametrize("transport", ["direct", "pickle"])
    def test_transports_agree(self, transport):
        base = _run_columnar(FANOUT_WORK)
        split = _run_columnar(
            FANOUT_WORK, shards=3, executor="inline", transport=transport
        )
        _assert_identical(base, split)

    def test_process_executor_matches_single_instance(self):
        if service_kernel._fork_context() is None:
            pytest.skip("no usable fork start method on this platform")
        base = _run_columnar(FANOUT_WORK)
        split = _run_columnar(FANOUT_WORK, shards=2, executor="process")
        _assert_identical(base, split)

    def test_shared_memory_broadcast_image(self, monkeypatch):
        # Force every broadcast round through the shm descriptor path
        # (the default threshold keeps rounds this small inline).
        if service_kernel._fork_context() is None:
            pytest.skip("no usable fork start method on this platform")
        monkeypatch.setattr(service_kernel, "_SHM_MIN_BCAST", 1)
        base = _run_columnar(FANOUT)
        split = _run_columnar(FANOUT, shards=3, executor="process")
        _assert_identical(base, split)

    def test_matches_fast_engine_too(self):
        fast, _ = run_spec(
            catalog_factory(dict(FANOUT_WORK)), FastEngine(check="bandwidth")
        )
        split = _run_columnar(FANOUT_WORK, shards=3, executor="inline")
        assert split.outputs == fast.outputs
        assert split.rounds == fast.rounds
        assert split.total_message_bits == fast.total_message_bits


@array_program(shardable=True)
def _bulk_echo(ctx):
    # Round 1: every owned node bulk-sends its input to node 0 and
    # broadcasts one bit; round 2: node 0 (if owned) reads the bulk
    # inbox.  Exercises the bulk channel across the shard boundary.
    lo, hi = ctx.lo, ctx.hi
    for v in range(lo, hi):
        ctx.bulk_send(v, 0, int(ctx.inputs[v]), 64)
    ctx.broadcast(
        np.asarray(ctx.ids[lo:hi], dtype=np.uint64) & np.uint64(1),
        1,
        senders=ctx.ids[lo:hi],
    )
    yield
    total = sum(val for (_, dst, val, _) in ctx._in_bulk if dst == 0)
    out = {v: 0 for v in range(lo, hi)}
    if lo <= 0 < hi:
        out[0] = total
    return out


@array_program(shardable=True)
def _foreign_sender(ctx):
    # Violates the owned-source contract: every shard emits for node 0.
    ctx.send(
        np.zeros(1, dtype=np.int64),
        np.ones(1, dtype=np.int64),
        np.zeros(1, dtype=np.uint64),
        1,
    )
    yield
    return None


class TestShardContract:
    def test_bulk_channel_crosses_shards(self):
        n = 9
        inputs = [3 * v + 1 for v in range(n)]
        clique = CongestedClique(n, max_rounds=10)
        base = clique.run(
            _bulk_echo, inputs, engine=ColumnarEngine(check="bandwidth")
        )
        split = clique.run(
            _bulk_echo,
            inputs,
            engine=ColumnarEngine(
                check="bandwidth", shards=4, executor="inline"
            ),
        )
        assert base.outputs[0] == sum(inputs)
        _assert_identical(base, split)

    def test_owned_source_violation_raises(self):
        clique = CongestedClique(6, max_rounds=10)
        engine = ColumnarEngine(check="bandwidth", shards=3, executor="inline")
        with pytest.raises(CliqueError, match="non-owned sender"):
            clique.run(_foreign_sender, engine=engine)


@array_program
def _plain_fanout(ctx):
    ctx.broadcast(np.asarray(ctx.ids, dtype=np.uint64), 3)
    yield
    return {v: int(ctx._in_bcast[1][v]) for v in range(ctx.n)}


class TestFallback:
    """Runs the shard contract cannot express fall back transparently."""

    def _ran_sharded(self, monkeypatch):
        calls = []
        original = ColumnarEngine._execute_sharded

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ColumnarEngine, "_execute_sharded", spy)
        return calls

    def test_shardable_program_dispatches_sharded(self, monkeypatch):
        calls = self._ran_sharded(monkeypatch)
        _run_columnar(FANOUT, shards=2, executor="inline")
        assert calls

    def test_non_shardable_program_falls_back(self, monkeypatch):
        calls = self._ran_sharded(monkeypatch)
        clique = CongestedClique(6, max_rounds=10)
        engine = ColumnarEngine(check="bandwidth", shards=3, executor="inline")
        result = clique.run(_plain_fanout, engine=engine)
        assert not calls
        assert result.outputs == {v: v for v in range(6)}

    def test_fault_plan_falls_back_and_stays_identical(self, monkeypatch):
        calls = self._ran_sharded(monkeypatch)
        plan = "drop=0.2,corrupt=0.1,duplicate=0.1,seed=3"
        engine = ColumnarEngine(check="bandwidth", shards=3, executor="inline")
        split, _ = run_spec(
            catalog_factory(dict(FANOUT)), engine, fault_plan=plan
        )
        base, _ = run_spec(
            catalog_factory(dict(FANOUT)),
            ColumnarEngine(check="bandwidth"),
            fault_plan=plan,
        )
        assert not calls
        assert split.outputs == base.outputs
        assert split.received_bits == base.received_bits

    def test_shards_one_stays_single_instance(self, monkeypatch):
        calls = self._ran_sharded(monkeypatch)
        _run_columnar(FANOUT, shards=1)
        assert not calls


class TestEngineKnobs:
    def test_shards_clamped_to_n(self):
        engine = ColumnarEngine(shards=64)
        assert engine._effective_shards(5) == 5

    def test_shards_zero_is_auto(self):
        from repro.engine.pool import available_cpus

        engine = ColumnarEngine(shards=0)
        assert engine._effective_shards(1024) == min(available_cpus(), 1024)

    def test_shards_none_is_one(self):
        assert ColumnarEngine()._effective_shards(1024) == 1

    @pytest.mark.parametrize("bad", [-1, 1.5, "two", True])
    def test_invalid_shards_rejected(self, bad):
        with pytest.raises(CliqueError, match="shards"):
            ColumnarEngine(shards=bad)

    def test_invalid_executor_and_transport_rejected(self):
        with pytest.raises(CliqueError, match="executor"):
            ColumnarEngine(shards=2, executor="threads")
        with pytest.raises(CliqueError, match="transport"):
            ColumnarEngine(shards=2, transport="json")

    def test_describe_mentions_shards_only_when_set(self):
        plain = ColumnarEngine().describe()
        assert "shards" not in plain
        sharded = ColumnarEngine(
            shards=4, executor="inline", transport="pickle"
        ).describe()
        assert sharded["shards"] == 4
        assert sharded["executor"] == "inline"
        assert sharded["transport"] == "pickle"


class TestSpecSurface:
    def test_resolve_by_name_with_shards(self):
        engine = resolve_engine("columnar", check="off", shards=3)
        assert isinstance(engine, ColumnarEngine)
        assert engine.shards == 3

    def test_resolve_conflicting_shards_rejected(self):
        engine = ColumnarEngine(shards=2)
        with pytest.raises(CliqueError, match="[Cc]onflicting shard"):
            resolve_engine(engine, shards=4)

    def test_resolve_engine_without_shard_support_rejected(self):
        with pytest.raises(CliqueError, match="does not support shards"):
            resolve_engine("fast", shards=2)

    def test_spec_round_trips_shards(self):
        spec = ExecutionSpec(engine="columnar", check="bandwidth", shards=4)
        assert spec.to_dict()["shards"] == 4
        back = ExecutionSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.shards == 4
        assert spec.describe()["engine"]["shards"] == 4

    def test_spec_rejects_bad_shards(self):
        for bad in (-2, True, "3"):
            with pytest.raises(CliqueError, match="shards"):
                ExecutionSpec(engine="columnar", shards=bad)

    def test_spec_merged_keeps_shards(self):
        spec = ExecutionSpec(engine="columnar", shards=0)
        merged = spec.merged()
        assert merged.shards == 0

    def test_spec_run_end_to_end(self):
        spec = ExecutionSpec(engine="columnar", check="bandwidth", shards=2)
        split, _ = run_spec(catalog_factory(dict(FANOUT_WORK)), execution=spec)
        base = _run_columnar(FANOUT_WORK)
        _assert_identical(base, split)
