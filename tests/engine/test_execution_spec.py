"""ExecutionSpec: coercion, merging, serialisation, cache-key parity,
and the engine registry it resolves through."""

import pytest

from repro.clique.errors import CliqueError
from repro.engine import (
    ExecutionSpec,
    FastEngine,
    RunCache,
    engine_names,
    resolve_execution,
    run_sweep,
)
from repro.engine.base import ENGINES, Engine, register_engine, resolve_engine
from repro.engine.diff import catalog_factory
from repro.faults import FaultPlan
from repro.obs import describe_observer
from repro.service.client import ServiceClient


class TestRegistry:
    def test_engine_names_include_lazy_backends(self):
        names = engine_names()
        assert {"columnar", "fast", "reference", "sharded"} <= set(names)
        assert names == sorted(names)

    def test_lazy_engine_resolves_by_name(self):
        engine = resolve_engine("sharded")
        assert engine.name == "sharded"
        assert "sharded" in ENGINES  # import side effect registered it

    def test_unknown_engine_error_lists_everything(self):
        with pytest.raises(CliqueError, match="sharded"):
            resolve_engine("warp-drive")

    def test_unknown_engine_error_suggests_nearest_match(self):
        with pytest.raises(CliqueError, match="did you mean 'columnar'"):
            resolve_engine("columnnar")

    def test_duplicate_registration_is_rejected(self):
        class Clash(Engine):
            name = "fast"

            def execute(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError

        with pytest.raises(CliqueError, match="already taken"):
            register_engine(Clash)
        assert ENGINES["fast"] is not Clash

    def test_empty_name_is_rejected(self):
        class Nameless(Engine):
            name = ""

            def execute(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError

        with pytest.raises(CliqueError, match="empty"):
            register_engine(Nameless)


class TestSpec:
    def test_coerce_variants(self):
        spec = ExecutionSpec(engine="columnar", check="off")
        assert ExecutionSpec.coerce(spec) is spec
        assert ExecutionSpec.coerce(None) == ExecutionSpec()
        assert ExecutionSpec.coerce("fast") == ExecutionSpec(engine="fast")
        assert ExecutionSpec.coerce({"engine": "fast"}) == ExecutionSpec(
            engine="fast"
        )
        with pytest.raises(CliqueError, match="execution must be"):
            ExecutionSpec.coerce(42)

    def test_invalid_check_rejected_at_construction(self):
        with pytest.raises(CliqueError, match="check must be one of"):
            ExecutionSpec(check="sorta")

    def test_merged_fills_unset_fields(self):
        spec = ExecutionSpec(engine="columnar").merged(
            check="off", fault_plan="drop=0.1,seed=2"
        )
        assert spec.engine == "columnar"
        assert spec.check == "off"
        assert spec.fault_plan == "drop=0.1,seed=2"

    def test_merged_agreeing_values_pass(self):
        spec = ExecutionSpec(engine="fast", check="off")
        assert spec.merged(engine="fast", check="off") == spec

    def test_merged_conflicts_raise(self):
        with pytest.raises(CliqueError, match="conflicting execution"):
            ExecutionSpec(engine="fast").merged(engine="columnar")

    def test_dict_round_trip(self):
        spec = ExecutionSpec(
            engine="columnar",
            check="bandwidth",
            observer="metrics",
            fault_plan=FaultPlan(drop_rate=0.25, seed=9),
            transcripts=True,
        )
        data = spec.to_dict()
        assert data["fault_plan"]["drop_rate"] == 0.25
        rebuilt = ExecutionSpec.from_dict(data)
        assert rebuilt == spec

    def test_to_dict_omits_unset_fields(self):
        assert ExecutionSpec().to_dict() == {}
        assert ExecutionSpec(engine="fast").to_dict() == {"engine": "fast"}

    def test_to_dict_rejects_engine_instances(self):
        with pytest.raises(CliqueError, match="cannot be serialised"):
            ExecutionSpec(engine=FastEngine()).to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(CliqueError, match="unknown ExecutionSpec field"):
            ExecutionSpec.from_dict({"enginee": "fast"})

    def test_describe_matches_legacy_components(self):
        spec = ExecutionSpec(engine="fast", check="off", observer="metrics")
        desc = spec.describe()
        assert desc["engine"] == resolve_engine("fast", check="off").describe()
        assert desc["observer"] == describe_observer("metrics")
        assert desc["fault_plan"] is None

    def test_resolve_execution_bundles_everything(self):
        resolved = resolve_execution(
            "columnar", check="off", fault_plan="drop=0.1,seed=1"
        )
        assert resolved.engine.name == "columnar"
        assert resolved.engine.check == "off"
        assert resolved.fault_plan == "drop=0.1,seed=1"
        assert resolved.spec.engine == "columnar"

    def test_resolve_execution_conflict_raises(self):
        with pytest.raises(CliqueError, match="conflicting execution"):
            resolve_execution(ExecutionSpec(check="full"), check="off")


class TestCacheKeyRoundTrip:
    """One spec, one key: a cache warmed through the legacy keyword path
    must serve ExecutionSpec-addressed lookups, and vice versa."""

    CONFIGS = [{"algorithm": "fanout", "n": 8, "seed": 0}]

    def test_legacy_kwargs_then_spec_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        first = run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            engine=FastEngine(check="bandwidth"),
            cache=cache,
        )
        assert not first[0].from_cache
        second = run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            execution=ExecutionSpec(engine="fast", check="bandwidth"),
            cache=cache,
        )
        assert second[0].from_cache
        assert second[0].result.rounds == first[0].result.rounds

    def test_spec_then_legacy_kwargs_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            execution={"engine": "fast", "check": "bandwidth"},
            cache=cache,
        )
        again = run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            engine=FastEngine(check="bandwidth"),
            cache=cache,
        )
        assert again[0].from_cache

    def test_different_engines_never_share_keys(self, tmp_path):
        cache = RunCache(tmp_path)
        run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            execution=ExecutionSpec(engine="fast", check="bandwidth"),
            cache=cache,
        )
        other = run_sweep(
            catalog_factory,
            self.CONFIGS,
            workers=1,
            execution=ExecutionSpec(engine="columnar", check="bandwidth"),
            cache=cache,
        )
        assert not other[0].from_cache

    def test_sweep_spec_conflict_raises(self):
        with pytest.raises(CliqueError, match="conflicting execution"):
            run_sweep(
                catalog_factory,
                self.CONFIGS,
                workers=1,
                engine="reference",
                execution=ExecutionSpec(engine="columnar"),
            )

    def test_sweep_rejects_transcripts_on_the_spec(self):
        with pytest.raises(CliqueError, match="record_transcripts"):
            run_sweep(
                catalog_factory,
                self.CONFIGS,
                workers=1,
                execution=ExecutionSpec(transcripts=True),
            )


class TestServiceClientJSON:
    """Client-side serialisation of execution= into the JSON protocol."""

    def test_payload_round_trips_through_from_dict(self):
        spec = ExecutionSpec(
            engine="columnar",
            check="bandwidth",
            fault_plan=FaultPlan(drop_rate=0.5, seed=3),
        )
        payload = ServiceClient._execution_payload(spec)
        assert payload == spec.to_dict()
        assert ExecutionSpec.from_dict(payload) == spec

    def test_payload_accepts_dict_and_name_shorthand(self):
        assert ServiceClient._execution_payload(None) is None
        assert ServiceClient._execution_payload("columnar") == {
            "engine": "columnar"
        }
        assert ServiceClient._execution_payload({"engine": "fast"}) == {
            "engine": "fast"
        }

    def test_payload_rejects_engine_instances(self):
        with pytest.raises(CliqueError, match="cannot be serialised"):
            ServiceClient._execution_payload(ExecutionSpec(engine=FastEngine()))
