"""The ack/retransmit resilience layer: protocol pieces, fault masking
at honest cost, strict mode, and the catalog differential check."""

import pytest

from repro.clique import CliqueGraph, run_algorithm
from repro.clique.bits import BitString
from repro.clique.errors import (
    CliqueError,
    FaultInjected,
    InvalidAddress,
    ProtocolViolation,
)
from repro.engine import RESILIENT_CATALOG, diff_resilient
from repro.faults import HEADER_BITS, attempt_offsets, resilient
from repro.faults.resilience import _decode_frame, _encode_frame

ENGINES = ("reference", "fast")


def exchange(node):
    """Two logical rounds of all-to-all id exchange."""
    heard = []
    for _ in range(2):
        for dst in range(node.n):
            if dst != node.id:
                node.send(dst, BitString(node.id, node.bandwidth))
        yield
        heard.append(tuple(sorted((src, msg.value) for src, msg in node.inbox.items())))
    return tuple(heard)


def _graph(n=8):
    return CliqueGraph.from_edges(n, [(0, 1)])


class TestAttemptOffsets:
    def test_capped_exponential_schedule(self):
        assert attempt_offsets(2, 5, 8) == (0, 2, 6, 14, 22)
        assert attempt_offsets(2, 1, 2) == (0,)
        assert attempt_offsets(3, 3, 100) == (0, 3, 9)

    def test_validation(self):
        with pytest.raises(CliqueError, match="timeout"):
            attempt_offsets(1, 3, 8)
        with pytest.raises(CliqueError, match="max_attempts"):
            attempt_offsets(2, 0, 8)
        with pytest.raises(CliqueError, match="backoff_cap"):
            attempt_offsets(4, 3, 2)


class TestFrames:
    @pytest.mark.parametrize("parity", (0, 1))
    @pytest.mark.parametrize("payload", (None, BitString(0b101, 3)))
    @pytest.mark.parametrize("has_ack", (False, True))
    def test_roundtrip(self, parity, payload, has_ack):
        frame = _encode_frame(parity, payload, has_ack)
        assert len(frame) == HEADER_BITS + (len(payload) if payload else 0)
        assert _decode_frame(frame) == (parity, payload, has_ack)

    def test_garbled_frames_decode_to_none(self):
        assert _decode_frame(BitString(1, 2)) is None  # shorter than header
        # has_data set but no data bits follow: corruption artifact.
        assert _decode_frame(BitString(0b010, 3)) is None


class TestWrapperContract:
    def test_needs_headroom_for_the_header(self):
        # n=8 gives a 3-bit default bandwidth == HEADER_BITS: too small.
        with pytest.raises(CliqueError, match="bandwidth"):
            run_algorithm(resilient(exchange), _graph(8))

    def test_bulk_channel_is_rejected(self):
        def bulk_prog(node):
            node._bulk_send(1, BitString(1, 1))
            yield

        with pytest.raises(ProtocolViolation, match="bulk"):
            run_algorithm(resilient(bulk_prog), _graph(8), bandwidth_multiplier=2)

    def test_proxy_validates_sends(self):
        def self_send(node):
            node.send(node.id, BitString(1, 1))
            yield

        with pytest.raises(InvalidAddress):
            run_algorithm(resilient(self_send), _graph(8), bandwidth_multiplier=2)

    def test_wrapped_name_is_derived(self):
        assert resilient(exchange).__name__ == "resilient_exchange"


class TestMasking:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reliable_network_matches_plain_run(self, engine):
        g = _graph(8)
        plain = run_algorithm(exchange, g, bandwidth_multiplier=2)
        wrapped = run_algorithm(
            resilient(exchange, strict=True),
            g,
            bandwidth_multiplier=2,
            engine=engine,
        )
        assert wrapped.outputs == plain.outputs

    @pytest.mark.parametrize("engine", ENGINES)
    def test_drops_are_masked_at_honest_cost(self, engine):
        g = _graph(8)
        plain = run_algorithm(exchange, g, bandwidth_multiplier=2)
        wrapped = run_algorithm(
            resilient(exchange, max_attempts=6),
            g,
            bandwidth_multiplier=2,
            engine=engine,
            fault_plan="drop=0.3,seed=2",
        )
        # Same logical outcome as a fault-free unwrapped run...
        assert wrapped.outputs == plain.outputs
        # ... paid for with real rounds and real bits, all metered.
        assert wrapped.rounds > plain.rounds
        assert wrapped.total_message_bits > plain.total_message_bits
        assert wrapped.metrics.faults["drop"] > 0
        retransmits = sum(c.get("resilient_retransmits", 0) for c in wrapped.counters)
        assert retransmits > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_crashes_with_restart_window_are_masked(self, engine):
        # A crashed node heals after 3 rounds, so a retransmission
        # schedule that outlives the window masks the outage entirely.
        g = _graph(8)
        plain = run_algorithm(exchange, g, bandwidth_multiplier=2)
        wrapped = run_algorithm(
            resilient(exchange, max_attempts=8),
            g,
            bandwidth_multiplier=2,
            engine=engine,
            fault_plan="crash=0.04,restart=3,seed=5",
        )
        assert wrapped.outputs == plain.outputs
        assert wrapped.metrics.faults["crash"] > 0
        # The rollup property mirrors the per-node counters.
        assert wrapped.resilience["retransmits"] == sum(
            c.get("resilient_retransmits", 0) for c in wrapped.counters
        )
        assert wrapped.resilience["retransmits"] > 0
        assert wrapped.metrics.resilience == wrapped.resilience

    def test_masking_is_deterministic(self):
        g = _graph(8)
        kwargs = dict(
            bandwidth_multiplier=2, engine="fast", fault_plan="drop=0.3,seed=2"
        )
        a = run_algorithm(resilient(exchange), g, **kwargs)
        b = run_algorithm(resilient(exchange), g, **kwargs)
        assert a.outputs == b.outputs
        assert a.total_message_bits == b.total_message_bits

    def test_strict_mode_surfaces_unmaskable_faults(self):
        # A permanently dead link defeats any retransmission schedule.
        with pytest.raises(FaultInjected, match="unacknowledged") as excinfo:
            run_algorithm(
                resilient(exchange, max_attempts=2, strict=True),
                _graph(8),
                bandwidth_multiplier=2,
                fault_plan="link=1.0,seed=0",
            )
        assert excinfo.value.kind == "unacked"


class TestCatalogDifferential:
    def test_resilient_catalog_matches_fault_free_reference(self):
        reports = diff_resilient(
            config={"n": 9, "seed": 3}, fault_plan="drop=0.25,seed=11"
        )
        assert [r.label.split(":", 1)[1] for r in reports] == list(RESILIENT_CATALOG)
        for report in reports:
            assert report.ok, report.summary()
            if report.label.startswith("byzantine:"):
                # Native entries are compared engine against engine
                # under the plan; there is no fault-free baseline row.
                assert "fault-free" not in report.rounds
                continue
            # The masking overhead is real and visible per backend.
            for name in report.engines:
                assert report.rounds[name] > report.rounds["fault-free"]

    def test_bulk_algorithms_are_rejected(self):
        with pytest.raises(ProtocolViolation, match="bulk"):
            diff_resilient(["kds"], {"n": 9, "seed": 3}, fault_plan="drop=0.1")
