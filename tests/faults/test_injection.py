"""Engine-level fault injection: both backends honour the same plan,
faults are replayable, accounted honestly, and surfaced through the
observer protocol."""

import pytest

from repro.clique import CliqueGraph, run_algorithm
from repro.clique.bits import BitString

ROUNDS = 4
ENGINES = ("reference", "fast")


def chatter(node):
    """Every node sends its id to every peer for a few rounds and logs
    what it hears — maximally fault-sensitive, never fault-fatal."""
    log = []
    for _ in range(ROUNDS):
        for dst in range(node.n):
            if dst != node.id:
                node.send(dst, BitString(node.id, node.bandwidth))
        yield
        log.append(tuple(sorted((src, msg.value) for src, msg in node.inbox.items())))
    return tuple(log)


def bulk_chatter(node):
    """Node 0 ships a bulk payload to node 1 (the reliable channel)."""
    if node.id == 0:
        node._bulk_send(1, BitString(0b10110, 5))
    yield
    if node.id == 1:
        return {src: msg.value for src, msg in node.inbox.items()}
    return None


def _graph(n=9):
    return CliqueGraph.from_edges(n, [(0, 1)])


@pytest.mark.parametrize("engine", ENGINES)
class TestDrops:
    def test_drops_lose_messages_but_charge_the_sender(self, engine):
        g = _graph()
        clean = run_algorithm(chatter, g, engine=engine)
        faulty = run_algorithm(chatter, g, engine=engine, fault_plan="drop=0.4,seed=1")
        # The sender pays for what it queued, delivered or not.
        assert faulty.total_message_bits == clean.total_message_bits
        assert faulty.sent_bits == clean.sent_bits
        # The receivers saw strictly less.
        assert sum(faulty.received_bits) < sum(clean.received_bits)
        drops = faulty.metrics.faults["drop"]
        assert drops > 0
        bits = faulty.metrics.bandwidth
        assert (sum(clean.received_bits) - sum(faulty.received_bits) == drops * bits)

    def test_replay_is_identical(self, engine):
        g = _graph()
        kwargs = dict(engine=engine, fault_plan="drop=0.3,corrupt=0.1,seed=5")
        first = run_algorithm(chatter, g, **kwargs)
        second = run_algorithm(chatter, g, **kwargs)
        assert first.outputs == second.outputs
        assert first.received_bits == second.received_bits
        assert first.metrics.faults == second.metrics.faults

    def test_bulk_channel_is_exempt(self, engine):
        result = run_algorithm(
            bulk_chatter,
            _graph(4),
            engine=engine,
            fault_plan="drop=1.0,corrupt=1.0,seed=2",
        )
        assert result.outputs[1] == {0: 0b10110}
        assert result.bulk_bits == 5


class TestCrossEngineParity:
    """The same plan must inject the same faults on every backend."""

    @pytest.mark.parametrize(
        "spec",
        [
            "drop=0.3,seed=1",
            "corrupt=0.4,seed=2",
            "dup=0.3,seed=3",
            "link=0.3,seed=4",
            "crash=0.15,restart=2,seed=5",
            "drop=0.2,corrupt=0.1,dup=0.1,link=0.1,crash=0.05,seed=6",
        ],
    )
    def test_engines_agree_on_outputs_and_fault_counts(self, spec):
        g = _graph()
        ref = run_algorithm(chatter, g, engine="reference", fault_plan=spec)
        fast = run_algorithm(chatter, g, engine="fast", fault_plan=spec)
        assert ref.outputs == fast.outputs
        assert ref.sent_bits == fast.sent_bits
        assert ref.received_bits == fast.received_bits
        assert ref.metrics.faults == fast.metrics.faults
        assert ref.metrics.total_faults > 0  # the plan actually fired


@pytest.mark.parametrize("engine", ENGINES)
class TestFaultKinds:
    def test_corruption_preserves_length_and_counts(self, engine):
        g = _graph()
        clean = run_algorithm(chatter, g, engine=engine)
        faulty = run_algorithm(
            chatter, g, engine=engine, fault_plan="corrupt=0.5,seed=3"
        )
        # Corruption flips bits in place: all the accounting matches.
        assert faulty.total_message_bits == clean.total_message_bits
        assert faulty.received_bits == clean.received_bits
        assert faulty.rounds == clean.rounds
        # ... but some node heard a value no peer ever sent.
        assert faulty.outputs != clean.outputs
        assert faulty.metrics.faults["corrupt"] > 0

    def test_duplicates_arrive_one_round_late(self, engine):
        g = _graph()
        clean = run_algorithm(chatter, g, engine=engine)
        faulty = run_algorithm(chatter, g, engine=engine, fault_plan="dup=0.5,seed=4")
        assert faulty.metrics.faults["duplicate"] > 0
        # Duplicates only add received traffic, never sent traffic.
        assert faulty.sent_bits == clean.sent_bits
        assert sum(faulty.received_bits) > sum(clean.received_bits)

    def test_dead_links_silence_both_directions(self, engine):
        result = run_algorithm(
            chatter, _graph(), engine=engine, fault_plan="link=1.0,seed=0"
        )
        # Every message was queued (and charged) but none arrived.
        assert sum(result.sent_bits) > 0
        assert sum(result.received_bits) == 0
        assert all(log == ((),) * ROUNDS for log in result.outputs.values())
        n = 9
        assert result.metrics.faults["link_down"] == ROUNDS * n * (n - 1)

    def test_crashed_nodes_fall_silent(self, engine):
        result = run_algorithm(
            chatter,
            _graph(),
            engine=engine,
            fault_plan="crash=0.2,restart=2,seed=7",
        )
        assert result.metrics.faults["crash"] > 0
        # Crashes are fail-silent: the programs all still return.
        assert len(result.outputs) == 9


class TestObservability:
    def test_tracer_records_fault_events(self):
        from repro.obs import RingBufferSink, Tracer

        sink = RingBufferSink(capacity=4096)
        run_algorithm(
            chatter,
            _graph(),
            engine="reference",
            observer=Tracer(sink=sink),
            fault_plan="drop=0.4,seed=1",
        )
        faults = [e for e in sink.events() if e.kind == "fault"]
        assert faults
        assert all(e.channel == "drop" for e in faults)
        assert all(e.src is not None and e.dst is not None for e in faults)

    def test_metrics_split_faults_per_round(self):
        result = run_algorithm(
            chatter,
            _graph(),
            engine="fast",
            fault_plan="drop=0.4,seed=1",
        )
        per_round = sum(r.faults for r in result.metrics.per_round)
        assert per_round == result.metrics.total_faults > 0

    def test_summarise_metrics_rolls_up_fault_totals(self):
        from repro.obs import summarise_metrics

        g = _graph()
        faulty = run_algorithm(chatter, g, engine="fast", fault_plan="drop=0.4,seed=1")
        clean = run_algorithm(chatter, g, engine="fast")
        summary = summarise_metrics([faulty.metrics, clean.metrics])
        assert summary["total_faults"] == faulty.metrics.total_faults
        # Fault-free summaries keep their historical shape.
        assert "total_faults" not in summarise_metrics([clean.metrics])
