"""Unit tests for the deterministic fault plan (the pure hash oracle)."""

import pytest

from repro.clique.bits import BitString
from repro.clique.errors import CliqueError
from repro.faults import FaultPlan, resolve_fault_plan


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(CliqueError, match="drop_rate"):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(CliqueError, match="crash_rate"):
            FaultPlan(crash_rate=-0.1)

    def test_restart_must_be_at_least_one_round(self):
        with pytest.raises(CliqueError, match="crash_restart_rounds"):
            FaultPlan(crash_restart_rounds=0)
        assert FaultPlan(crash_restart_rounds=1).crash_restart_rounds == 1

    def test_zero_rate_detection(self):
        assert FaultPlan().is_zero
        assert FaultPlan(seed=99).is_zero
        assert not FaultPlan(drop_rate=0.1).is_zero
        assert not FaultPlan(link_failure_rate=1.0).is_zero


class TestSpecParsing:
    def test_aliases_cover_every_knob(self):
        plan = FaultPlan.from_spec(
            "drop=0.2, corrupt=0.01, dup=0.05, link=0.1, crash=0.02, "
            "restart=3, seed=7"
        )
        assert plan == FaultPlan(
            seed=7,
            drop_rate=0.2,
            corrupt_rate=0.01,
            duplicate_rate=0.05,
            link_failure_rate=0.1,
            crash_rate=0.02,
            crash_restart_rounds=3,
        )

    def test_long_names_work_too(self):
        assert FaultPlan.from_spec("drop_rate=0.5") == FaultPlan(drop_rate=0.5)

    def test_empty_spec_is_the_zero_plan(self):
        assert FaultPlan.from_spec("").is_zero

    def test_bad_key_rejected(self):
        with pytest.raises(CliqueError, match="spec entry"):
            FaultPlan.from_spec("frobnicate=1")

    def test_bad_value_rejected(self):
        with pytest.raises(CliqueError, match="value"):
            FaultPlan.from_spec("drop=lots")

    def test_resolve_fault_plan(self):
        assert resolve_fault_plan(None) is None
        plan = FaultPlan(drop_rate=0.5)
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan("drop=0.5") == plan
        with pytest.raises(CliqueError):
            resolve_fault_plan(42)


class TestDeterminism:
    GRID = [
        (r, s, d)
        for r in range(1, 6)
        for s in range(5)
        for d in range(5)
        if s != d
    ]

    def test_decisions_replay_exactly(self):
        plan = FaultPlan(seed=3, drop_rate=0.3, corrupt_rate=0.3)
        first = [(plan.drops(r, s, d), plan.corrupts(r, s, d)) for r, s, d in self.GRID]
        second = [
            (plan.drops(r, s, d), plan.corrupts(r, s, d))
            for r, s, d in self.GRID
        ]
        assert first == second

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(seed=0, drop_rate=0.5)
        b = FaultPlan(seed=1, drop_rate=0.5)
        assert [a.drops(*p) for p in self.GRID] != [b.drops(*p) for p in self.GRID]

    def test_empirical_rate_is_roughly_honoured(self):
        plan = FaultPlan(seed=7, drop_rate=0.5)
        draws = [
            plan.drops(r, s, d)
            for r in range(1, 21)
            for s in range(10)
            for d in range(10)
            if s != d
        ]
        rate = sum(draws) / len(draws)
        assert 0.4 < rate < 0.6

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        zero = FaultPlan()
        one = FaultPlan(drop_rate=1.0)
        for point in self.GRID:
            assert not zero.drops(*point)
            assert one.drops(*point)


class TestLinkAndNodeFaults:
    def test_link_down_is_unordered(self):
        plan = FaultPlan(seed=2, link_failure_rate=0.5)
        for a in range(6):
            for b in range(6):
                if a != b:
                    assert plan.link_down(a, b) == plan.link_down(b, a)

    def test_permanent_crash_never_heals(self):
        plan = FaultPlan(seed=1, crash_rate=0.2)
        for node in range(8):
            downs = [plan.node_down(r, node) for r in range(1, 25)]
            if True in downs:
                first = downs.index(True)
                assert all(downs[first:])

    def test_crash_restart_heals_after_the_window(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, crash_restart_rounds=2)
        # Rate 1 retriggers every round, so the node is always down;
        # the healing logic shows with a window ending before `round`.
        assert plan.node_down(1, 0)
        healing = FaultPlan(seed=0, crash_rate=0.0, crash_restart_rounds=2)
        assert not healing.node_down(5, 0)


class TestCorruption:
    def test_corrupt_payload_flips_exactly_one_bit(self):
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        payload = BitString(0b1011, 4)
        out = plan.corrupt_payload(1, 0, 1, payload)
        assert len(out) == len(payload)
        assert bin(out.value ^ payload.value).count("1") == 1
        # Deterministic: the same coordinates flip the same bit.
        assert plan.corrupt_payload(1, 0, 1, payload) == out

    def test_corrupt_empty_payload_is_a_no_op(self):
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        empty = BitString(0, 0)
        assert plan.corrupt_payload(1, 0, 1, empty) == empty


class TestIntrospection:
    def test_describe_is_json_able_and_complete(self):
        import json

        plan = FaultPlan(seed=9, drop_rate=0.1, crash_restart_rounds=4)
        desc = plan.describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["seed"] == 9
        assert desc["drop_rate"] == 0.1
        assert desc["crash_restart_rounds"] == 4
        assert desc != FaultPlan(seed=9, drop_rate=0.2).describe()

    def test_repr_mentions_active_rates(self):
        assert "drop_rate" in repr(FaultPlan(drop_rate=0.3))
        assert "zero-rate" in repr(FaultPlan())
