"""Property test: a zero-rate fault plan is observationally identical to
running with no plan at all, on both engines, across the diff catalog.

This pins down the injection layer's "do no harm" contract: attaching an
injector must not perturb delivery order, accounting, metrics, or
outputs unless a fault actually fires.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.network import _outputs_equal
from repro.engine.diff import catalog_factory
from repro.engine.pool import run_spec
from repro.faults import FaultPlan

#: Cheap-to-run catalog algorithms spanning both the plain message
#: channel and the bulk/router path (which a plan must leave alone).
NAMES = ("bfs", "broadcast", "kvc", "kds", "subgraph")


def assert_observationally_identical(a, b):
    assert a.rounds == b.rounds
    assert a.total_message_bits == b.total_message_bits
    assert a.bulk_bits == b.bulk_bits
    assert a.sent_bits == b.sent_bits
    assert a.received_bits == b.received_bits
    assert a.counters == b.counters
    assert sorted(a.outputs) == sorted(b.outputs)
    for v in a.outputs:
        assert _outputs_equal(a.outputs[v], b.outputs[v])
    a_metrics = None if a.metrics is None else a.metrics.to_dict()
    b_metrics = None if b.metrics is None else b.metrics.to_dict()
    assert a_metrics == b_metrics


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(NAMES),
    n=st.integers(6, 10),
    seed=st.integers(0, 3),
    plan_seed=st.integers(0, 2**32 - 1),
    engine=st.sampled_from(["reference", "fast"]),
)
def test_zero_rate_plan_is_the_identity(name, n, seed, plan_seed, engine):
    config = {"algorithm": name, "n": n, "seed": seed}
    plan = FaultPlan(seed=plan_seed)
    assert plan.is_zero
    bare, _ = run_spec(catalog_factory(dict(config)), engine)
    planned, _ = run_spec(catalog_factory(dict(config)), engine, fault_plan=plan)
    assert_observationally_identical(bare, planned)
    assert planned.metrics.faults == {}


def test_zero_rate_spec_string_is_the_identity_too():
    config = {"algorithm": "bfs", "n": 9, "seed": 1}
    for engine in ("reference", "fast"):
        bare, _ = run_spec(catalog_factory(dict(config)), engine)
        planned, _ = run_spec(
            catalog_factory(dict(config)), engine, fault_plan="seed=5"
        )
        assert_observationally_identical(bare, planned)
