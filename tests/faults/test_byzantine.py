"""The adversarial tier: plan fields, behaviour semantics, injector
forge buffering, and the cross-engine replay-identity property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString
from repro.clique.errors import CliqueError
from repro.clique.network import _outputs_equal
from repro.engine.diff import catalog_factory
from repro.engine.pool import run_spec
from repro.faults import BYZANTINE_BEHAVIOURS, FaultInjector, FaultPlan

ALL = "equivocate+forge+selective+limited"


class TestPlanFields:
    def test_behaviours_are_parsed_and_canonically_ordered(self):
        plan = FaultPlan(byzantine="limited + equivocate", byzantine_f=1)
        assert plan.byzantine_behaviours() == ("equivocate", "limited")
        assert plan.byzantine == "equivocate+limited"

    def test_aliases_resolve(self):
        plan = FaultPlan(byzantine="lie+equivocation", byzantine_f=1)
        assert plan.byzantine_behaviours() == ("equivocate", "forge")

    def test_unknown_behaviour_has_did_you_mean(self):
        with pytest.raises(CliqueError, match="did you mean 'selective'"):
            FaultPlan(byzantine="selektive", byzantine_f=1)

    def test_validation(self):
        with pytest.raises(CliqueError, match="byzantine_f"):
            FaultPlan(byzantine="forge", byzantine_f=-1)
        with pytest.raises(CliqueError, match="byzantine_limit"):
            FaultPlan(byzantine="limited", byzantine_f=1, byzantine_limit=-1)
        with pytest.raises(CliqueError, match="byzantine_rate"):
            FaultPlan(byzantine="forge", byzantine_f=1, byzantine_rate=1.5)

    def test_from_spec_parses_byzantine_keys(self):
        plan = FaultPlan.from_spec(
            "byz=forge+selective,f=2,byz_rate=0.25,limit=3,seed=9"
        )
        assert plan.byzantine == "forge+selective"
        assert plan.byzantine_f == 2
        assert plan.byzantine_rate == 0.25
        assert plan.byzantine_limit == 3
        assert plan.seed == 9

    def test_from_spec_unknown_key_suggests_nearest(self):
        with pytest.raises(CliqueError, match="did you mean 'byzantine'"):
            FaultPlan.from_spec("byzantin=forge,f=1")
        # The historic error-shape pins stay intact.
        with pytest.raises(CliqueError, match="spec entry"):
            FaultPlan.from_spec("nonsense")
        with pytest.raises(CliqueError, match="value"):
            FaultPlan.from_spec("f=x")

    def test_is_zero_and_active(self):
        assert FaultPlan(byzantine="forge").is_zero  # f == 0 disables
        assert not FaultPlan(byzantine="forge", byzantine_f=1).is_zero
        assert not FaultPlan(byzantine="", byzantine_f=3).byzantine_active

    def test_describe_adds_keys_only_when_active(self):
        # Cache-key stability: pre-adversarial plans keep their keys.
        assert "byzantine" not in FaultPlan(drop_rate=0.1).describe()
        desc = FaultPlan(byzantine="forge", byzantine_f=1).describe()
        assert desc["byzantine"] == "forge"
        assert desc["byzantine_f"] == 1


class TestByzantineSet:
    def test_fixed_size_and_determinism(self):
        plan = FaultPlan(seed=3, byzantine=ALL, byzantine_f=3)
        nodes = plan.byzantine_nodes(10)
        assert len(nodes) == 3
        assert nodes == plan.byzantine_nodes(10)
        assert nodes <= set(range(10))

    def test_f_capped_at_n_and_inactive_is_empty(self):
        assert len(FaultPlan(byzantine=ALL, byzantine_f=99).byzantine_nodes(4)) == 4
        assert FaultPlan().byzantine_nodes(8) == frozenset()

    def test_seed_moves_the_set(self):
        sets = {
            FaultPlan(seed=s, byzantine=ALL, byzantine_f=2).byzantine_nodes(12)
            for s in range(8)
        }
        assert len(sets) > 1


class TestBehaviourSemantics:
    def _injector(self, **kwargs):
        kwargs.setdefault("byzantine_f", 2)
        plan = FaultPlan(seed=7, **kwargs)
        return FaultInjector(plan, 8), plan

    def test_honest_senders_are_untouched(self):
        inj, plan = self._injector(byzantine=ALL, byzantine_rate=1.0)
        payload = BitString(0b1010, 4)
        for src in set(range(8)) - inj.byzantine:
            for dst in range(8):
                if dst != src:
                    assert inj.deliver(1, src, dst, payload) == payload
        inboxes = [dict() for _ in range(8)]
        inj.finish_round(1, inboxes, [0] * 8)
        assert all(not box for box in inboxes)

    def test_equivocate_flips_one_bit_per_receiver(self):
        inj, plan = self._injector(byzantine="equivocate", byzantine_rate=1.0)
        src = min(inj.byzantine)
        payload = BitString(0b1100, 4)
        seen = set()
        for dst in range(8):
            if dst == src:
                continue
            out = inj.deliver(2, src, dst, payload)
            assert out is not None and len(out) == 4
            assert bin(out.value ^ payload.value).count("1") == 1
            seen.add(out.value)
        assert len(seen) > 1  # different receivers, different values

    def test_selective_drops_a_subset(self):
        inj, _ = self._injector(byzantine="selective", byzantine_rate=0.5)
        src = min(inj.byzantine)
        outcomes = [
            inj.deliver(1, src, dst, BitString(1, 1)) is None
            for dst in range(8)
            if dst != src
        ]
        assert any(outcomes) and not all(outcomes)

    def test_limited_caps_deliveries_per_round(self):
        inj, _ = self._injector(byzantine="limited", byzantine_limit=2)
        src = min(inj.byzantine)
        delivered = sum(
            inj.deliver(1, src, dst, BitString(1, 1)) is not None
            for dst in range(8)
            if dst != src
        )
        assert delivered == 2

    def test_forge_lands_only_in_byzantine_slots_and_genuine_wins(self):
        inj, plan = self._injector(byzantine="forge", byzantine_rate=1.0)
        byz = sorted(inj.byzantine)
        src, other = byz[0], byz[1]
        dst = next(v for v in range(8) if v not in inj.byzantine)
        assert inj.deliver(1, src, dst, BitString(0b11, 2)) is None
        # Slot already taken by a genuine message: the forge is lost.
        inboxes = [dict() for _ in range(8)]
        genuine = BitString(0b01, 2)
        inboxes[dst][other] = genuine
        received = [0] * 8
        inj.finish_round(1, inboxes, received)
        assert inboxes[dst][other] == genuine
        assert received[dst] == 0
        # An empty slot receives the forged payload under the forged id.
        assert inj.deliver(2, src, dst, BitString(0b11, 2)) is None
        inboxes = [dict() for _ in range(8)]
        inj.finish_round(2, inboxes, received)
        assert inboxes[dst] == {other: BitString(0b11, 2)}
        assert received[dst] == 2

    def test_forge_with_f1_is_a_noop(self):
        # Authenticated channels: a lone Byzantine node has no identity
        # to borrow, so its messages pass through genuinely.
        plan = FaultPlan(
            seed=7, byzantine="forge", byzantine_f=1, byzantine_rate=1.0
        )
        inj = FaultInjector(plan, 8)
        src = min(inj.byzantine)
        payload = BitString(0b101, 3)
        for dst in range(8):
            if dst != src:
                assert inj.deliver(1, src, dst, payload) == payload


@settings(max_examples=15, deadline=None)
@given(
    plan_seed=st.integers(0, 2**32 - 1),
    f=st.integers(1, 2),
    behaviours=st.sets(st.sampled_from(BYZANTINE_BEHAVIOURS), min_size=1),
    rate=st.sampled_from([0.3, 0.7, 1.0]),
)
def test_byzantine_decisions_replay_identically_across_engines(
    plan_seed, f, behaviours, rate
):
    """The acceptance property: seeded adversary decisions are pure, so
    every backend injects byte-identical behaviour and a replay of the
    same plan reproduces outputs, accounting and fault counters."""
    plan = FaultPlan(
        seed=plan_seed,
        byzantine="+".join(sorted(behaviours)),
        byzantine_f=f,
        byzantine_rate=rate,
    )
    config = {"algorithm": "fanout", "n": 7, "seed": 1}
    runs = [
        run_spec(catalog_factory(dict(config)), engine, fault_plan=plan)[0]
        for engine in ("reference", "fast", "columnar")
    ]
    # Replay on the reference engine: same plan, same decisions.
    runs.append(
        run_spec(catalog_factory(dict(config)), "reference", fault_plan=plan)[0]
    )
    base = runs[0]
    # Note: not every sampled plan fires (forge alone with f=1 is a
    # deliberate no-op); firing is pinned by the deterministic tests.
    for other in runs[1:]:
        assert other.rounds == base.rounds
        assert other.total_message_bits == base.total_message_bits
        assert other.sent_bits == base.sent_bits
        assert other.received_bits == base.received_bits
        assert other.metrics.faults == base.metrics.faults
        assert sorted(other.outputs) == sorted(base.outputs)
        for v in base.outputs:
            assert _outputs_equal(base.outputs[v], other.outputs[v])
