"""Tests for shared algorithm helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.common import (
    group_of,
    group_partition,
    int_ceil_root,
    label_union,
    node_label,
)


class TestIntCeilRoot:
    @pytest.mark.parametrize(
        "n,k,want", [(8, 3, 2), (27, 3, 3), (26, 3, 2), (64, 3, 4), (16, 2, 4), (1, 5, 1), (100, 2, 10)]
    )
    def test_values(self, n, k, want):
        assert int_ceil_root(n, k) == want

    @given(st.integers(1, 10**6), st.integers(1, 6))
    def test_defining_property(self, n, k):
        g = int_ceil_root(n, k)
        assert g**k <= n < (g + 1) ** k

    def test_zero(self):
        assert int_ceil_root(0, 3) == 0


class TestGroupPartition:
    @given(st.integers(1, 100), st.integers(1, 10))
    def test_partition_covers(self, n, g):
        groups = group_partition(n, g)
        assert len(groups) == g
        flat = [v for grp in groups for v in grp]
        assert sorted(flat) == list(range(n))

    @given(st.integers(1, 100), st.integers(1, 10))
    def test_group_of_consistent(self, n, g):
        groups = group_partition(n, g)
        for j, grp in enumerate(groups):
            for v in grp:
                assert group_of(v, n, g) == j

    def test_sizes_balanced(self):
        groups = group_partition(10, 3)
        assert [len(g) for g in groups] == [4, 4, 2]


class TestNodeLabel:
    def test_all_labels_occur(self):
        """Every label in [g]^k is assigned to some node when g^k <= n
        (required by Theorem 9's step 2)."""
        n, g, k = 27, 3, 3
        labels = {node_label(v, g, k) for v in range(n)}
        assert len(labels) == g**k

    def test_all_labels_occur_nonexact(self):
        n, k = 30, 3
        g = int_ceil_root(n, k)
        labels = {node_label(v, g, k) for v in range(n)}
        assert len(labels) == g**k

    def test_label_in_range(self):
        for v in range(50):
            lab = node_label(v, 3, 4)
            assert len(lab) == 4
            assert all(0 <= d < 3 for d in lab)


class TestLabelUnion:
    def test_union_dedup(self):
        groups = [[0, 1], [2, 3], [4]]
        assert label_union((0, 0, 2), groups) == [0, 1, 4]

    def test_union_sorted(self):
        groups = [[4, 5], [0, 1]]
        assert label_union((0, 1), groups) == [0, 1, 4, 5]
