"""Tests for distributed matrix multiplication and APSP."""

import numpy as np
import pytest

from repro.algorithms.apsp import apsp_minplus, transitive_closure_distributed
from repro.algorithms.matmul import BOOLEAN, MINPLUS, RING, run_matmul
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import INF, CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


def rand_matrix(n, hi, seed):
    return gen.rng_from(seed).integers(0, hi, (n, n)).astype(np.int64)


class TestRingMM:
    @pytest.mark.parametrize("n", [2, 4, 8, 9, 16, 27])
    def test_matches_numpy(self, n):
        a = rand_matrix(n, 10, n)
        b = rand_matrix(n, 10, n + 1)
        c, _ = run_matmul(a, b, RING)
        assert np.array_equal(c, a @ b)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            run_matmul(np.zeros((2, 3)), np.zeros((3, 2)), RING)

    @pytest.mark.parametrize("scheme", ["direct", "relay", "lenzen"])
    def test_all_schemes(self, scheme):
        n = 8
        a = rand_matrix(n, 8, 3)
        b = rand_matrix(n, 8, 4)
        c, _ = run_matmul(a, b, RING, scheme=scheme)
        assert np.array_equal(c, a @ b)

    def test_identity(self):
        n = 9
        a = rand_matrix(n, 10, 5)
        c, _ = run_matmul(a, np.eye(n, dtype=np.int64), RING, max_entry=10)
        assert np.array_equal(c, a)


class TestBooleanMM:
    @pytest.mark.parametrize("n", [3, 8, 13])
    def test_matches_reference(self, n):
        a = rand_matrix(n, 2, n).astype(bool)
        b = rand_matrix(n, 2, n + 7).astype(bool)
        c, _ = run_matmul(a, b, BOOLEAN)
        assert np.array_equal(c.astype(bool), ref.boolean_matmul(a, b))


class TestMinplusMM:
    @pytest.mark.parametrize("n", [3, 8, 13])
    def test_matches_reference(self, n):
        rng = gen.rng_from(n)
        a = rng.integers(0, 30, (n, n)).astype(np.int64)
        b = rng.integers(0, 30, (n, n)).astype(np.int64)
        # sprinkle INFs
        a[rng.random((n, n)) < 0.2] = INF
        b[rng.random((n, n)) < 0.2] = INF
        c, _ = run_matmul(a, b, MINPLUS, max_entry=30)
        want = ref.minplus_matmul(a, b)
        assert np.array_equal(np.minimum(c, INF), np.minimum(want, INF))

    def test_inf_rows(self):
        n = 4
        a = np.full((n, n), INF, dtype=np.int64)
        b = np.full((n, n), INF, dtype=np.int64)
        c, _ = run_matmul(a, b, MINPLUS, max_entry=1)
        assert (c >= INF).all()


class TestRoundScaling:
    def test_rounds_grow_sublinearly(self):
        """Cube-partitioned MM should scale roughly like n^(1/3), i.e.
        much slower than linearly in n."""
        rounds = {}
        for n in (8, 64):
            a = rand_matrix(n, 4, n)
            _, result = run_matmul(a, a, RING)
            rounds[n] = result.rounds
        # 8x more nodes must cost far less than 8x more rounds.
        assert rounds[64] < 4 * rounds[8]


class TestAPSP:
    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_apsp(self, seed):
        g = gen.random_weighted_graph(9, 0.4, 10, seed)

        def prog(node):
            row = yield from apsp_minplus(node)
            return row.tolist()

        result = run_algorithm(
            prog,
            g,
            aux=lambda v: {"max_weight": 10},
            bandwidth_multiplier=2,
        )
        want = ref.apsp_matrix(g)
        for i in range(9):
            got = np.minimum(np.array(result.outputs[i]), INF)
            assert np.array_equal(got, np.minimum(want[i], INF))

    def test_unweighted_apsp_via_unit_weights(self):
        g0 = gen.random_graph(8, 0.3, 2)
        adj = np.where(g0.adjacency, 1, INF).astype(np.int64)
        np.fill_diagonal(adj, 0)
        g = CliqueGraph(adj, weighted=True)

        def prog(node):
            row = yield from apsp_minplus(node)
            return row.tolist()

        result = run_algorithm(
            prog, g, aux=lambda v: {"max_weight": 1}, bandwidth_multiplier=2
        )
        want = ref.apsp_matrix(g0)
        for i in range(8):
            got = np.minimum(np.array(result.outputs[i]), INF)
            assert np.array_equal(got, np.minimum(want[i], INF))


class TestTransitiveClosure:
    @pytest.mark.parametrize("seed", range(3))
    def test_undirected(self, seed):
        g = gen.random_graph(9, 0.2, seed)

        def prog(node):
            row = yield from transitive_closure_distributed(node)
            return row.tolist()

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        want = ref.transitive_closure(g.adjacency)
        for i in range(9):
            assert result.outputs[i] == want[i].tolist()

    def test_directed(self):
        g = CliqueGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)], directed=True)

        def prog(node):
            row = yield from transitive_closure_distributed(node)
            return row.tolist()

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        want = ref.transitive_closure(g.adjacency)
        for i in range(5):
            assert result.outputs[i] == want[i].tolist()
