"""Tests for Luby's MIS and connected components."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import connected_components, luby_mis
from repro.clique.algorithm import run_algorithm
from repro.clique.bits import BitString
from repro.clique.graph import CliqueGraph
from repro.core.labelling_problems import maximal_independent_set_problem
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_mis(g, seed):
    def prog(node):
        return (yield from luby_mis(node, seed=seed))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


class TestLubyMIS:
    @pytest.mark.parametrize("seed", range(5))
    def test_output_is_maximal_independent(self, seed):
        g = gen.random_graph(12, 0.35, seed)
        mis = run_mis(g, seed).common_output()
        assert ref.is_independent_set(g, mis)
        # maximality: every node outside has a neighbour inside
        for v in range(12):
            if v not in mis:
                assert any(g.has_edge(v, u) for u in mis)

    def test_verified_by_labelling_verifier(self):
        """Luby's output passes the Section 8 NCLIQUE(1)-labelling
        verifier for maximal independent set."""
        g = gen.random_graph(10, 0.4, 2)
        mis = run_mis(g, 7).common_output()
        problem = maximal_independent_set_problem()
        labelling = [
            BitString(1 if v in mis else 0, 1) for v in range(10)
        ]
        assert problem.verify(g, labelling)

    def test_empty_graph_takes_everything(self):
        g = CliqueGraph.empty(6)
        assert run_mis(g, 1).common_output() == frozenset(range(6))

    def test_complete_graph_takes_one(self):
        g = CliqueGraph.complete(6)
        assert len(run_mis(g, 1).common_output()) == 1

    def test_rounds_scale_gently(self):
        rounds = {}
        for n in (8, 64):
            g = gen.random_graph(n, 0.3, 5)
            rounds[n] = run_mis(g, 3).rounds
        assert rounds[64] <= 4 * rounds[8] + 8  # ~log n phases

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property(self, seed):
        g = gen.random_graph(9, 0.4, seed)
        mis = run_mis(g, seed).common_output()
        assert ref.is_independent_set(g, mis)
        for v in range(9):
            assert v in mis or any(g.has_edge(v, u) for u in mis)


class TestConnectedComponents:
    def run_cc(self, g):
        def prog(node):
            return (yield from connected_components(node))

        return run_algorithm(prog, g, bandwidth_multiplier=2)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gen.random_graph(12, 0.12, seed)
        comp, forest = self.run_cc(g).common_output()
        gx = g.to_networkx()
        for part in nx.connected_components(gx):
            rep = min(part)
            for v in part:
                assert comp[v] == rep

    @pytest.mark.parametrize("seed", range(3))
    def test_forest_is_spanning_forest(self, seed):
        g = gen.random_graph(11, 0.15, seed)
        comp, forest = self.run_cc(g).common_output()
        fx = nx.Graph(list(forest))
        fx.add_nodes_from(range(11))
        assert not list(nx.cycle_basis(fx))
        # forest connects exactly the components of g
        gx = g.to_networkx()
        assert (
            nx.number_connected_components(fx)
            == nx.number_connected_components(gx)
        )
        for u, v in forest:
            assert g.has_edge(u, v)

    def test_empty_graph(self):
        comp, forest = self.run_cc(CliqueGraph.empty(5)).common_output()
        assert list(comp) == list(range(5))
        assert forest == frozenset()

    def test_connected_graph_single_component(self):
        g = CliqueGraph.complete(7)
        comp, forest = self.run_cc(g).common_output()
        assert set(comp) == {0}
        assert len(forest) == 6
