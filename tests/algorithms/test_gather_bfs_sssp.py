"""Tests for gathering, BFS, and Bellman-Ford SSSP."""

import math

import pytest

from repro.algorithms.bfs import UNREACHED, bfs_distances, bfs_tree
from repro.algorithms.broadcast import (
    decide_by_gathering,
    gather_graph,
    gather_weighted_graph,
)
from repro.algorithms.sssp import bellman_ford_sssp, dist_width_for
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import INF, CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


class TestGatherGraph:
    @pytest.mark.parametrize("seed", range(3))
    def test_everyone_learns_adjacency(self, seed):
        g = gen.random_graph(9, 0.4, seed)

        def prog(node):
            adj = yield from gather_graph(node)
            return adj.tobytes()

        result = run_algorithm(prog, g)
        assert result.common_output() == g.adjacency.tobytes()

    def test_round_count(self):
        n = 16  # B = 4
        g = gen.random_graph(n, 0.5, 1)

        def prog(node):
            yield from gather_graph(node)
            return None

        assert run_algorithm(prog, g).rounds == math.ceil(n / 4)

    def test_decide_by_gathering(self):
        from repro.problems import triangle_problem

        prob = triangle_problem()
        prog = decide_by_gathering(prob.predicate)
        yes = CliqueGraph.complete(6)
        no = CliqueGraph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        assert run_algorithm(prog, yes).common_output() == 1
        assert run_algorithm(prog, no).common_output() == 0


class TestGatherWeighted:
    @pytest.mark.parametrize("seed", range(3))
    def test_weighted_gather(self, seed):
        g = gen.random_weighted_graph(8, 0.5, 15, seed)

        def prog(node):
            adj = yield from gather_weighted_graph(node, 6)
            return adj.tobytes()

        result = run_algorithm(prog, g)
        want = g.adjacency.copy()
        assert result.common_output() == want.tobytes()

    def test_overflow_weight_rejected(self):
        g = CliqueGraph.from_weighted_edges(3, [(0, 1, 100)])

        def prog(node):
            adj = yield from gather_weighted_graph(node, 4)
            return adj

        with pytest.raises(ValueError):
            run_algorithm(prog, g)


class TestBFS:
    @pytest.mark.parametrize("seed", range(4))
    def test_distances_match_reference(self, seed):
        g = gen.random_graph(10, 0.25, seed)

        def prog(node):
            d = yield from bfs_distances(node)
            return d.tolist()

        result = run_algorithm(prog, g, aux=0)
        want = [
            d if d < INF else UNREACHED for d in ref.sssp_vector(g, 0).tolist()
        ]
        assert result.common_output() == want

    def test_rounds_scale_with_eccentricity(self):
        path = CliqueGraph.from_edges(12, [(i, i + 1) for i in range(11)])

        def prog(node):
            yield from bfs_distances(node)
            return None

        r_far = run_algorithm(prog, path, aux=0).rounds  # ecc 11
        r_mid = run_algorithm(prog, path, aux=5).rounds  # ecc 6
        assert r_far > r_mid

    def test_disconnected(self):
        g = CliqueGraph.from_edges(5, [(0, 1)])

        def prog(node):
            d = yield from bfs_distances(node)
            return d.tolist()

        result = run_algorithm(prog, g, aux=0)
        assert result.common_output() == [0, 1, UNREACHED, UNREACHED, UNREACHED]

    def test_bfs_tree_parents(self):
        g = gen.random_graph(9, 0.35, 7)

        def prog(node):
            dist, parent = yield from bfs_tree(node)
            return dist.tolist(), parent.tolist()

        dist, parent = run_algorithm(prog, g, aux=2).common_output()
        for v in range(9):
            if v == 2:
                assert parent[v] == -1 and dist[v] == 0
            elif dist[v] == UNREACHED:
                assert parent[v] == -1
            else:
                p = parent[v]
                assert g.has_edge(p, v)
                assert dist[p] == dist[v] - 1


class TestSSSP:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed):
        g = gen.random_weighted_graph(9, 0.4, 12, seed)

        def prog(node):
            d = yield from bellman_ford_sssp(node)
            return d.tolist()

        result = run_algorithm(
            prog, g, aux=lambda v: {"source": 0, "max_weight": 12}
        )
        want = ref.sssp_vector(g, 0).tolist()
        assert result.common_output() == [min(d, INF) for d in want]

    def test_unreachable_is_inf(self):
        g = CliqueGraph.from_weighted_edges(4, [(0, 1, 3)])

        def prog(node):
            d = yield from bellman_ford_sssp(node)
            return d.tolist()

        result = run_algorithm(
            prog, g, aux=lambda v: {"source": 0, "max_weight": 3}
        )
        out = result.common_output()
        assert out[0] == 0 and out[1] == 3
        assert out[2] >= INF and out[3] >= INF

    def test_dist_width(self):
        assert dist_width_for(10, 100) >= 10


class TestSSSPAuxSpec:
    def test_dict_aux_is_per_node_mapping(self):
        """Guard: a raw dict aux is interpreted per-node; algorithms that
        need a shared dict must pass a callable or scalar-like object."""
        g = CliqueGraph.from_weighted_edges(3, [(0, 1, 2), (1, 2, 2)])

        def prog(node):
            d = yield from bellman_ford_sssp(node)
            return d.tolist()

        result = run_algorithm(
            prog, g, aux=lambda v: {"source": 0, "max_weight": 2}
        )
        assert result.common_output() == [0, 2, 4]
