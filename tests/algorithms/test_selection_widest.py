"""Tests for selection/median and widest-path (max,min) APSP."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.apsp import widest_paths_distributed
from repro.algorithms.matmul import MAXMIN, run_matmul
from repro.algorithms.selection import distributed_median, distributed_select
from repro.clique.algorithm import run_algorithm
from repro.clique.errors import ProtocolViolation
from repro.clique.graph import INF, CliqueGraph
from repro.clique.network import CongestedClique
from repro.problems import generators as gen


def run_select(n, key_table, width, rank):
    def prog(node):
        return (
            yield from distributed_select(
                node, key_table.get(node.id, []), width, rank
            )
        )

    return CongestedClique(n, bandwidth_multiplier=2).run(prog)


class TestSelection:
    def test_simple_rank(self):
        keys = {0: [9, 1], 1: [5], 2: [3, 7]}
        result = run_select(3, keys, 8, 2)
        assert result.common_output() == 5

    def test_min_and_max(self):
        keys = {v: [v * 10 + 3] for v in range(4)}
        assert run_select(4, keys, 8, 0).common_output() == 3
        assert run_select(4, keys, 8, 3).common_output() == 33

    def test_out_of_range(self):
        with pytest.raises(ProtocolViolation):
            run_select(3, {0: [1]}, 4, 5)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_property_matches_sorted(self, data):
        n = data.draw(st.integers(2, 5))
        keys = {
            v: data.draw(st.lists(st.integers(0, 200), max_size=6))
            for v in range(n)
        }
        union = sorted(k for ks in keys.values() for k in ks)
        if not union:
            return
        rank = data.draw(st.integers(0, len(union) - 1))
        result = run_select(n, keys, 8, rank)
        assert result.common_output() == union[rank]

    def test_median(self):
        keys = {0: [1, 9], 1: [5], 2: [2, 8]}

        def prog(node):
            return (
                yield from distributed_median(
                    node, keys.get(node.id, []), 8
                )
            )

        result = CongestedClique(3, bandwidth_multiplier=2).run(prog)
        assert result.common_output() == 5

    def test_median_empty_rejected(self):
        def prog(node):
            return (yield from distributed_median(node, [], 8))

        with pytest.raises(ProtocolViolation):
            CongestedClique(3, bandwidth_multiplier=2).run(prog)


def reference_widest(graph: CliqueGraph, max_cap: int) -> np.ndarray:
    """Floyd-Warshall over (max, min)."""
    n = graph.n
    cap = np.where(graph.adjacency >= INF, 0, graph.adjacency).astype(np.int64)
    np.fill_diagonal(cap, max_cap)
    for k in range(n):
        via = np.minimum(cap[:, k][:, None], cap[k, :][None, :])
        cap = np.maximum(cap, via)
    return cap


class TestWidestPaths:
    def test_maxmin_semiring_matmul(self):
        rng = gen.rng_from(3)
        n = 8
        a = rng.integers(0, 20, (n, n)).astype(np.int64)
        b = rng.integers(0, 20, (n, n)).astype(np.int64)
        c, _ = run_matmul(a, b, MAXMIN, max_entry=20)
        for i in range(n):
            for j in range(n):
                assert c[i, j] == max(
                    min(a[i, k], b[k, j]) for k in range(n)
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_widest_paths_match_reference(self, seed):
        g = gen.random_weighted_graph(9, 0.35, 20, seed)

        def prog(node):
            return (yield from widest_paths_distributed(node))

        result = run_algorithm(
            prog,
            g,
            aux=lambda v: {"max_capacity": 20},
            bandwidth_multiplier=2,
        )
        want = reference_widest(g, 20)
        for i in range(9):
            assert np.array_equal(result.outputs[i], want[i])

    def test_disconnected_capacity_zero(self):
        g = CliqueGraph.from_weighted_edges(4, [(0, 1, 7)])

        def prog(node):
            return (yield from widest_paths_distributed(node))

        result = run_algorithm(
            prog, g, aux=lambda v: {"max_capacity": 7}, bandwidth_multiplier=2
        )
        assert result.outputs[0][1] == 7
        assert result.outputs[0][2] == 0
        assert result.outputs[0][0] == 7  # self

    @pytest.mark.parametrize("seed", range(2))
    def test_bottleneck_vs_networkx_mst_property(self, seed):
        """Classic fact: the widest path between u and v equals the
        min edge on the u-v path in a MAXIMUM spanning tree."""
        g = gen.random_weighted_graph(8, 0.5, 30, seed)

        def prog(node):
            return (yield from widest_paths_distributed(node))

        result = run_algorithm(
            prog, g, aux=lambda v: {"max_capacity": 30}, bandwidth_multiplier=2
        )
        gx = g.to_networkx()
        if gx.number_of_edges() == 0:
            return
        mst = nx.maximum_spanning_tree(gx)
        for u in range(8):
            for v in range(8):
                if u == v:
                    continue
                try:
                    path = nx.shortest_path(mst, u, v)
                except nx.NetworkXNoPath:
                    assert result.outputs[u][v] == 0
                    continue
                bottleneck = min(
                    mst[a][b]["weight"] for a, b in zip(path, path[1:])
                )
                assert result.outputs[u][v] == bottleneck
