"""Bracha and Dolev broadcast: agreement/validity under the seeded
Byzantine adversary, fixed round schedules, and engine identity."""

import pytest

from repro.clique.algorithm import run_algorithm
from repro.clique.errors import CliqueError
from repro.clique.graph import CliqueGraph
from repro.engine import NATIVE_RESILIENT, diff_resilient
from repro.engine.diff import catalog_factory
from repro.engine.pool import run_spec
from repro.faults import BYZANTINE_BEHAVIOURS, FaultPlan

ENGINES = ("reference", "fast", "sharded", "columnar")
VALUE = 0xB5


def _run(name, engine, *, n, f, plan=None, check=None, **point):
    config = {"algorithm": name, "n": n, "f": f, **point}
    result, _ = run_spec(
        catalog_factory(config), engine, fault_plan=plan, check=check
    )
    return result


def _honest_outputs(result, plan, n):
    byzantine = plan.byzantine_nodes(n) if plan is not None else frozenset()
    return {v: result.outputs[v] for v in range(n) if v not in byzantine}


class TestParams:
    def test_validation(self):
        g = CliqueGraph.from_edges(8, [])
        from repro.algorithms import bracha_broadcast, dolev_broadcast

        for algo in (bracha_broadcast, dolev_broadcast):

            def prog(node, _algo=algo, **kw):
                return (yield from _algo(node, **kw))

            with pytest.raises(CliqueError, match="broadcaster"):
                run_algorithm(
                    lambda node: prog(node, broadcaster=8), g, bandwidth=10
                )
            with pytest.raises(CliqueError, match="f must be"):
                run_algorithm(lambda node: prog(node, f=-1), g, bandwidth=10)
            with pytest.raises(CliqueError, match="value_width"):
                run_algorithm(
                    lambda node: prog(node, value_width=63), g, bandwidth=65
                )

    def test_catalog_registration(self):
        assert NATIVE_RESILIENT == {"bracha", "dolev"}


class TestFaultFree:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bracha_everyone_accepts_in_f_plus_5_rounds(self, engine):
        result = _run("bracha", engine, n=9, f=2)
        assert result.rounds == 2 + 5
        assert set(result.outputs.values()) == {VALUE}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dolev_everyone_accepts_in_2_rounds(self, engine):
        result = _run("dolev", engine, n=9, f=2)
        assert result.rounds == 2
        assert set(result.outputs.values()) == {VALUE}


class TestBrachaAgreement:
    @pytest.mark.parametrize("behaviour", BYZANTINE_BEHAVIOURS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_agreement_under_each_behaviour(self, behaviour, seed):
        n, f = 10, 3  # f < n/3
        plan = FaultPlan(
            seed=seed, byzantine=behaviour, byzantine_f=f, byzantine_rate=0.6
        )
        result = _run("bracha", "reference", n=n, f=f, plan=plan)
        honest = _honest_outputs(result, plan, n)
        assert len(set(honest.values())) == 1  # agreement
        # Validity: if the broadcaster is honest, honest nodes accept
        # its value (otherwise agreement on any value, -1 included).
        if 0 not in plan.byzantine_nodes(n):
            assert set(honest.values()) == {VALUE}

    def test_agreement_under_combined_behaviours(self):
        n, f = 10, 3
        plan = FaultPlan(
            seed=4,
            byzantine="+".join(BYZANTINE_BEHAVIOURS),
            byzantine_f=f,
            byzantine_rate=0.6,
        )
        result = _run("bracha", "reference", n=n, f=f, plan=plan)
        honest = _honest_outputs(result, plan, n)
        assert len(set(honest.values())) == 1

    def test_byzantine_fault_counters_surface(self):
        n, f = 9, 2
        plan = FaultPlan(
            seed=1,
            byzantine="equivocate+selective",
            byzantine_f=f,
            byzantine_rate=0.8,
        )
        result = _run("bracha", "reference", n=n, f=f, plan=plan)
        byz = result.metrics.byzantine_faults
        assert byz and all(k.startswith("byz_") for k in byz)
        assert byz == {
            k: v
            for k, v in result.metrics.faults.items()
            if k.startswith("byz_")
        }


class TestDolev:
    def test_validity_with_lying_relayers(self):
        # Honest broadcaster, f=2 forging/equivocating relayers, n=8
        # (>= 2f + 2): every honest node still gathers f+1 disjoint
        # paths for the true value.
        n, f = 8, 2
        checked = 0
        for seed in range(6):
            plan = FaultPlan(
                seed=seed,
                byzantine="equivocate+forge",
                byzantine_f=f,
                byzantine_rate=1.0,
            )
            if 0 in plan.byzantine_nodes(n):
                continue
            result = _run("dolev", "reference", n=n, f=f, plan=plan)
            honest = _honest_outputs(result, plan, n)
            assert set(honest.values()) == {VALUE}, f"seed={seed}"
            checked += 1
        assert checked >= 3  # the sweep genuinely exercised the claim


class TestEngineIdentity:
    @pytest.mark.parametrize("name", sorted(NATIVE_RESILIENT))
    def test_diff_resilient_across_all_engines(self, name):
        reports = diff_resilient(
            [name],
            {"n": 9, "f": 2, "seed": 0},
            engines=ENGINES,
            fault_plan=(
                "byzantine=equivocate+forge+selective+limited,"
                "f=2,seed=11,byz_rate=0.4,limit=3"
            ),
        )
        assert len(reports) == 1
        assert reports[0].label == f"byzantine:{name}"
        assert reports[0].ok, reports[0].summary()

    @pytest.mark.parametrize("check", ("off", "bandwidth", "full"))
    def test_check_levels_do_not_perturb(self, check):
        plan = FaultPlan(
            seed=3,
            byzantine="equivocate+selective",
            byzantine_f=2,
            byzantine_rate=0.5,
        )
        base = _run("bracha", "reference", n=9, f=2, plan=plan)
        for engine in ENGINES:
            run = _run("bracha", engine, n=9, f=2, plan=plan, check=check)
            assert run.rounds == base.rounds
            assert run.total_message_bits == base.total_message_bits
            assert run.outputs == base.outputs
