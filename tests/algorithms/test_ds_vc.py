"""Tests for Theorem 9 (k-dominating set) and Theorem 11 (k-vertex cover)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dominating_set import k_dominating_set, local_dominating_check
from repro.algorithms.vertex_cover import k_vertex_cover, kernel_vertex_cover
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_kds(g, k, scheme="lenzen"):
    def prog(node):
        return (yield from k_dominating_set(node, k, scheme=scheme))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


def run_kvc(g, k):
    def prog(node):
        return (yield from k_vertex_cover(node, k))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


class TestLocalDominatingCheck:
    def test_finds_planted(self):
        g = CliqueGraph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        rows = np.stack([g.row(v) for v in range(5)])
        got = local_dominating_check(list(range(5)), rows, 5, 1)
        assert got == (0,)

    def test_none_when_impossible(self):
        g = CliqueGraph.empty(4)
        rows = np.stack([g.row(v) for v in range(4)])
        assert local_dominating_check([0, 1], rows[:2], 4, 2) is None


class TestKDominatingSet:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_reference(self, seed, k):
        g = gen.random_graph(10, 0.35, seed)
        found, witness = run_kds(g, k).common_output()
        assert found == ref.has_dominating_set(g, k)
        if found:
            assert ref.is_dominating_set(g, witness)
            assert len(witness) == k

    @pytest.mark.parametrize("seed", range(3))
    def test_planted(self, seed):
        g, planted = gen.planted_dominating_set(14, 2, 0.1, seed)
        found, witness = run_kds(g, 2).common_output()
        assert found
        assert ref.is_dominating_set(g, witness)

    def test_star(self):
        g = CliqueGraph.from_edges(8, [(0, i) for i in range(1, 8)])
        found, witness = run_kds(g, 1).common_output()
        assert found and witness == (0,)

    def test_empty_graph_negative(self):
        g = CliqueGraph.empty(6)
        found, _ = run_kds(g, 2).common_output()
        assert not found

    @pytest.mark.parametrize("scheme", ["direct", "relay", "lenzen"])
    def test_schemes_agree(self, scheme):
        g = gen.random_graph(9, 0.3, 4)
        found, _ = run_kds(g, 2, scheme).common_output()
        assert found == ref.has_dominating_set(g, 2)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property(self, seed):
        g = gen.random_graph(8, 0.4, seed)
        found, witness = run_kds(g, 2).common_output()
        assert found == ref.has_dominating_set(g, 2)
        if found:
            assert ref.is_dominating_set(g, witness)


class TestKernelVertexCover:
    def test_simple(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        cover = kernel_vertex_cover(edges, 2)
        assert cover is not None
        assert ref.is_vertex_cover(
            CliqueGraph.from_edges(4, edges), cover
        )

    def test_budget_too_small(self):
        edges = [(0, 1), (2, 3), (4, 5)]
        assert kernel_vertex_cover(edges, 2) is None

    def test_empty(self):
        assert kernel_vertex_cover([], 0) == []


class TestKVertexCover:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_reference(self, seed, k):
        g = gen.random_graph(9, 0.25, seed)
        found, witness = run_kvc(g, k).common_output()
        assert found == ref.has_vertex_cover(g, k)
        if found:
            assert ref.is_vertex_cover(g, witness)
            assert len(witness) <= k

    @pytest.mark.parametrize("seed", range(3))
    def test_planted(self, seed):
        g, planted = gen.planted_vertex_cover(16, 3, 0.6, seed)
        found, witness = run_kvc(g, 3).common_output()
        assert found
        assert ref.is_vertex_cover(g, witness)

    def test_high_degree_forced(self):
        """A star's centre has degree n-1 >= k+1 and must join the cover."""
        g = CliqueGraph.from_edges(8, [(0, i) for i in range(1, 8)])
        found, witness = run_kvc(g, 2).common_output()
        assert found and 0 in witness

    def test_too_many_high_degree(self):
        g = CliqueGraph.complete(8)
        found, _ = run_kvc(g, 2).common_output()
        assert not found

    def test_edgeless(self):
        found, witness = run_kvc(CliqueGraph.empty(5), 2).common_output()
        assert found and witness == ()

    def test_rounds_independent_of_n(self):
        """Theorem 11's point: rounds depend on k, not n."""
        k = 3
        rounds = []
        for n in (16, 64):
            g, _ = gen.planted_vertex_cover(n, k, 0.5, 1)
            rounds.append(run_kvc(g, k).rounds)
        assert rounds[1] <= rounds[0] + 2  # near-identical despite 4x n

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property(self, seed):
        g = gen.random_graph(8, 0.3, seed)
        found, witness = run_kvc(g, 3).common_output()
        assert found == ref.has_vertex_cover(g, 3)
        if found:
            assert ref.is_vertex_cover(g, witness)
