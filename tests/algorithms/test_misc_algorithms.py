"""Tests for MaxIS/MinVC, colouring, k-path colour coding, and MST."""

import networkx as nx
import pytest

from repro.algorithms.coloring import decide_k_colouring, find_k_colouring
from repro.algorithms.independent_set import max_independent_set, min_vertex_cover
from repro.algorithms.kpath import k_path_detection, trials_for
from repro.algorithms.mst import boruvka_mst
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


class TestMaxIS:
    @pytest.mark.parametrize("seed", range(4))
    def test_size_matches_reference(self, seed):
        g = gen.random_graph(9, 0.4, seed)

        def prog(node):
            return (yield from max_independent_set(node))

        mis = run_algorithm(prog, g).common_output()
        assert ref.is_independent_set(g, mis)
        assert len(mis) == ref.max_independent_set_size(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_min_vertex_cover_gallai(self, seed):
        g = gen.random_graph(9, 0.4, seed)

        def prog(node):
            return (yield from min_vertex_cover(node))

        vc = run_algorithm(prog, g).common_output()
        assert ref.is_vertex_cover(g, vc)
        assert len(vc) == ref.min_vertex_cover_size(g)


class TestColouring:
    @pytest.mark.parametrize("seed", range(3))
    def test_decision_matches_reference(self, seed):
        g = gen.random_graph(8, 0.5, seed)

        def prog(node):
            return (yield from decide_k_colouring(node, 3))

        got = run_algorithm(prog, g).common_output()
        assert got == int(ref.is_k_colourable(g, 3))

    def test_find_colouring_valid(self):
        g, _ = gen.planted_colouring(10, 3, 0.7, 1)

        def prog(node):
            return (yield from find_k_colouring(node, 3))

        colours = run_algorithm(prog, g).common_output()
        assert colours is not None
        for u, v in g.edges():
            assert colours[u] != colours[v]

    def test_find_colouring_none(self):
        g = CliqueGraph.complete(5)

        def prog(node):
            return (yield from find_k_colouring(node, 3))

        assert run_algorithm(prog, g).common_output() is None


class TestKPath:
    def test_trials_formula(self):
        assert trials_for(1) == 1
        assert trials_for(3) >= 5

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_path_found(self, seed):
        g, _ = gen.planted_hamiltonian_path(10, 0.0, seed)

        def prog(node):
            return (yield from k_path_detection(node, 4, seed=seed))

        found = run_algorithm(prog, g, bandwidth_multiplier=2).common_output()
        assert found  # one-sided error: may only miss, and a Ham path
        # gives many 4-paths so the miss probability is tiny

    def test_no_path_never_reported(self):
        """Soundness: an edgeless graph can never yield a path."""
        g = CliqueGraph.empty(8)

        def prog(node):
            return (yield from k_path_detection(node, 3, seed=7))

        assert not run_algorithm(prog, g, bandwidth_multiplier=2).common_output()

    def test_k1_trivial(self):
        g = CliqueGraph.empty(4)

        def prog(node):
            return (yield from k_path_detection(node, 1, seed=1))

        assert run_algorithm(prog, g).common_output()

    def test_rounds_independent_of_n(self):
        rounds = []
        for n in (12, 48):
            g, _ = gen.planted_hamiltonian_path(n, 0.0, 1)

            def prog(node):
                return (yield from k_path_detection(node, 3, trials=2, seed=5))

            rounds.append(
                run_algorithm(prog, g, bandwidth_multiplier=2).rounds
            )
        # Larger n means larger bandwidth, so rounds may even decrease.
        assert rounds[1] <= rounds[0] + 2


class TestMST:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gen.random_weighted_graph(10, 0.5, 20, seed)

        def prog(node):
            return (yield from boruvka_mst(node))

        mst = run_algorithm(
            prog, g, aux=lambda v: {"max_weight": 20}
        ).common_output()
        gx = g.to_networkx()
        want = nx.minimum_spanning_tree(gx)
        got_weight = sum(g.weight(u, v) for u, v in mst)
        want_weight = sum(d["weight"] for _, _, d in want.edges(data=True))
        assert got_weight == want_weight
        assert len(mst) == want.number_of_edges()
        # got edges must form a spanning forest
        forest = nx.Graph(list(mst))
        assert not list(nx.cycle_basis(forest))

    def test_disconnected_forest(self):
        g = CliqueGraph.from_weighted_edges(
            6, [(0, 1, 3), (1, 2, 1), (3, 4, 2)]
        )

        def prog(node):
            return (yield from boruvka_mst(node))

        mst = run_algorithm(
            prog, g, aux=lambda v: {"max_weight": 3}
        ).common_output()
        assert mst == frozenset({(0, 1), (1, 2), (3, 4)})

    def test_rounds_logarithmic(self):
        rounds = {}
        for n in (8, 64):
            g = gen.random_weighted_graph(n, 0.6, 15, 2)

            def prog(node):
                return (yield from boruvka_mst(node))

            rounds[n] = run_algorithm(
                prog, g, aux=lambda v: {"max_weight": 15}
            ).rounds
        assert rounds[64] <= 4 * rounds[8]
