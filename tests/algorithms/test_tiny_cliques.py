"""Edge-case robustness: the algorithms on tiny cliques (n = 1, 2, 3).

Degenerate partition sizes (g = 1 groups), empty unions, single-node
collectives — places where off-by-one bugs in the group machinery would
hide.
"""

import pytest

from repro.algorithms import (
    bfs_distances,
    boruvka_mst,
    gather_graph,
    k_dominating_set,
    k_vertex_cover,
    max_independent_set,
    triangle_detection,
)
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import CliqueGraph
from repro.problems import reference as ref


class TestSingleNode:
    def test_gather(self):
        g = CliqueGraph.empty(1)

        def prog(node):
            adj = yield from gather_graph(node)
            return adj.shape

        assert run_algorithm(prog, g).common_output() == (1, 1)

    def test_bfs(self):
        g = CliqueGraph.empty(1)

        def prog(node):
            d = yield from bfs_distances(node)
            return d.tolist()

        assert run_algorithm(prog, g, aux=0).common_output() == [0]

    def test_kvc(self):
        g = CliqueGraph.empty(1)

        def prog(node):
            return (yield from k_vertex_cover(node, 1))

        found, cover = run_algorithm(prog, g).common_output()
        assert found and cover == ()


class TestTwoNodes:
    def test_triangle_impossible(self):
        g = CliqueGraph.complete(2)

        def prog(node):
            return (yield from triangle_detection(node))

        found, _ = run_algorithm(prog, g, bandwidth_multiplier=2).common_output()
        assert not found

    def test_kds(self):
        g = CliqueGraph.complete(2)

        def prog(node):
            return (yield from k_dominating_set(node, 1))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found and ref.is_dominating_set(g, witness)

    def test_mst(self):
        g = CliqueGraph.from_weighted_edges(2, [(0, 1, 5)])

        def prog(node):
            return (yield from boruvka_mst(node))

        mst = run_algorithm(
            prog, g, aux=lambda v: {"max_weight": 5}
        ).common_output()
        assert mst == frozenset({(0, 1)})


class TestThreeNodes:
    @pytest.mark.parametrize(
        "edges,expect",
        [([(0, 1), (1, 2), (0, 2)], True), ([(0, 1), (1, 2)], False)],
    )
    def test_triangle(self, edges, expect):
        g = CliqueGraph.from_edges(3, edges)

        def prog(node):
            return (yield from triangle_detection(node))

        found, _ = run_algorithm(prog, g, bandwidth_multiplier=2).common_output()
        assert found == expect

    def test_max_is(self):
        g = CliqueGraph.from_edges(3, [(0, 1)])

        def prog(node):
            return (yield from max_independent_set(node))

        mis = run_algorithm(prog, g).common_output()
        assert len(mis) == 2

    def test_kds_degenerate_groups(self):
        """n=3, k=2: g = floor(3^(1/2)) = 1, a single group — the union
        S_v is all of V and the algorithm degenerates to gathering."""
        g = CliqueGraph.from_edges(3, [(0, 1), (1, 2)])

        def prog(node):
            return (yield from k_dominating_set(node, 1))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found and witness == (1,)
