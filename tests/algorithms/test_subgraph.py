"""Tests for Dolev et al. subgraph detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.subgraph import (
    detect_pattern,
    k_clique_detection,
    k_cycle_detection,
    k_independent_set_detection,
    triangle_detection,
)
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_triangle(g, scheme="lenzen"):
    def prog(node):
        return (yield from triangle_detection(node, scheme=scheme))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


class TestTriangle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference(self, seed):
        g = gen.random_graph(12, 0.25, seed)
        found, witness = run_triangle(g).common_output()
        assert found == ref.has_triangle(g)
        if found:
            a, b, c = witness
            assert g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c)

    def test_dense_positive(self):
        found, witness = run_triangle(CliqueGraph.complete(10)).common_output()
        assert found

    def test_bipartite_negative(self):
        g = CliqueGraph.from_edges(
            8, [(i, j) for i in range(4) for j in range(4, 8)]
        )
        found, _ = run_triangle(g).common_output()
        assert not found

    @pytest.mark.parametrize("scheme", ["direct", "relay", "lenzen"])
    def test_schemes_agree(self, scheme):
        g = gen.random_graph(10, 0.3, 5)
        found, _ = run_triangle(g, scheme).common_output()
        assert found == ref.has_triangle(g)


class TestGenericPattern:
    @pytest.mark.parametrize("seed", range(4))
    def test_k_clique(self, seed):
        g = gen.random_graph(12, 0.5, seed)

        def prog(node):
            return (yield from k_clique_detection(node, 3))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found == ref.has_triangle(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_k_cycle_4(self, seed):
        g = gen.random_graph(11, 0.25, seed)

        def prog(node):
            return (yield from k_cycle_detection(node, 4))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found == ref.has_k_cycle(g, 4)
        if found:
            for a, b in zip(witness, witness[1:] + witness[:1]):
                assert g.has_edge(a, b)
            assert len(set(witness)) == 4

    def test_induced_path_vs_subgraph_path(self):
        """P3 as subgraph exists in a triangle, but not induced."""
        tri = CliqueGraph.complete(3)
        p3 = CliqueGraph.from_edges(3, [(0, 1), (1, 2)])

        def prog_sub(node):
            return (yield from detect_pattern(node, p3, induced=False))

        def prog_ind(node):
            return (yield from detect_pattern(node, p3, induced=True))

        assert run_algorithm(prog_sub, tri, bandwidth_multiplier=2).common_output()[0]
        assert not run_algorithm(prog_ind, tri, bandwidth_multiplier=2).common_output()[0]


class TestKIndependentSet:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed):
        g = gen.random_graph(10, 0.6, seed)

        def prog(node):
            return (yield from k_independent_set_detection(node, 3))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found == ref.has_independent_set(g, 3)
        if found:
            assert ref.is_independent_set(g, witness)
            assert len(set(witness)) == 3

    def test_planted(self):
        g, planted = gen.planted_independent_set(16, 4, 0.8, 3)

        def prog(node):
            return (yield from k_independent_set_detection(node, 4))

        found, witness = run_algorithm(
            prog, g, bandwidth_multiplier=2
        ).common_output()
        assert found
        assert ref.is_independent_set(g, witness)

    def test_complete_graph_negative(self):
        g = CliqueGraph.complete(9)

        def prog(node):
            return (yield from k_independent_set_detection(node, 2))

        found, _ = run_algorithm(prog, g, bandwidth_multiplier=2).common_output()
        assert not found


class TestRoundScaling:
    def test_triangle_sublinear(self):
        """Triangle detection should cost far fewer rounds than gathering
        at larger n (the n^(1/3) vs n/log n separation)."""

        from repro.algorithms.broadcast import gather_graph

        n = 64
        g = gen.random_graph(n, 0.05, 9)

        def tri_prog(node):
            return (yield from triangle_detection(node))

        def gather_prog(node):
            yield from gather_graph(node)
            return None

        tri_rounds = run_algorithm(tri_prog, g, bandwidth_multiplier=2).rounds
        gather_rounds = run_algorithm(
            gather_prog, g, bandwidth_multiplier=2
        ).rounds
        assert tri_rounds < 3 * gather_rounds  # loose sanity bound

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_random(self, seed):
        g = gen.random_graph(9, 0.3, seed)
        found, witness = run_triangle(g).common_output()
        assert found == ref.has_triangle(g)
