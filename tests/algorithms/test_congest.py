"""Tests for the CONGEST topology restriction and its algorithms."""

import math

import pytest

from repro.algorithms.broadcast import gather_graph
from repro.algorithms.congest import UNREACHED, congest_bfs, congest_flood_max
from repro.clique.bits import BitString
from repro.clique.errors import CliqueError, ProtocolViolation
from repro.clique.graph import CliqueGraph
from repro.clique.network import CongestedClique
from repro.problems import generators as gen
from repro.problems import reference as ref


def path_graph(n):
    return CliqueGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestTopologyEnforcement:
    def test_non_neighbour_send_rejected(self):
        g = path_graph(4)

        def prog(node):
            if node.id == 0:
                node.send(3, BitString(1, 1))
            yield

        with pytest.raises(ProtocolViolation):
            CongestedClique(4, topology=g).run(prog, g)

    def test_neighbour_send_allowed(self):
        g = path_graph(3)

        def prog(node):
            if node.id == 0:
                node.send(1, BitString(1, 1))
            yield
            return len(node.inbox)

        result = CongestedClique(3, topology=g).run(prog, g)
        assert result.outputs[1] == 1

    def test_size_mismatch_rejected(self):
        with pytest.raises(CliqueError):
            CongestedClique(4, topology=path_graph(3))

    def test_clique_topology_equals_no_topology(self):
        """CONGEST on K_n is exactly the congested clique (Section 3)."""
        g = gen.random_graph(8, 0.4, 1)

        def prog(node):
            adj = yield from gather_graph(node)
            return adj.tobytes()

        unrestricted = CongestedClique(8).run(prog, g)
        on_clique = CongestedClique(
            8, topology=CliqueGraph.complete(8)
        ).run(prog, g)
        assert unrestricted.outputs == on_clique.outputs
        assert unrestricted.rounds == on_clique.rounds


class TestCongestBfs:
    @pytest.mark.parametrize("seed", range(3))
    def test_distances_match_reference(self, seed):
        g = gen.random_graph(10, 0.25, seed)

        def prog(node):
            return (yield from congest_bfs(node))

        result = CongestedClique(10, topology=g).run(prog, g, aux=0)
        want = ref.sssp_vector(g, 0)
        from repro.clique.graph import INF

        for v in range(10):
            expected = int(want[v]) if want[v] < INF else UNREACHED
            assert result.outputs[v] == expected

    def test_bottleneck_contrast(self):
        """The paper's motivation, measured: on a path (one big
        bottleneck-free... rather, max-diameter) topology, CONGEST BFS
        needs Theta(n) rounds while the clique gathers everything in
        ceil(n/B) rounds."""
        n = 24
        g = path_graph(n)

        def congest_prog(node):
            return (yield from congest_bfs(node))

        congest_result = CongestedClique(n, topology=g).run(
            congest_prog, g, aux=0
        )
        # wave arrival at the far end = n - 1 rounds of latency
        assert congest_result.outputs[n - 1] == n - 1

        def clique_prog(node):
            adj = yield from gather_graph(node)
            return int(ref.sssp_vector(CliqueGraph(adj), 0)[node.id])

        clique_result = CongestedClique(n).run(clique_prog, g)
        assert clique_result.outputs[n - 1] == n - 1  # same answer
        b = max(1, (n - 1).bit_length())
        assert clique_result.rounds == math.ceil(n / b)
        assert clique_result.rounds < congest_result.outputs[n - 1]


class TestFloodMax:
    @pytest.mark.parametrize("seed", range(3))
    def test_connected_learns_max(self, seed):
        g = gen.random_graph(9, 0.35, seed)
        gx = g.to_networkx()
        import networkx as nx

        if not nx.is_connected(gx):
            g = path_graph(9)

        def prog(node):
            return (yield from congest_flood_max(node))

        values = {v: (v * 37) % 101 for v in range(9)}
        result = CongestedClique(
            9, topology=g, bandwidth_multiplier=2
        ).run(prog, g, aux=lambda v: values[v])
        assert result.common_output() == max(values.values())

    def test_disconnected_learns_component_max(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])

        def prog(node):
            return (yield from congest_flood_max(node))

        result = CongestedClique(
            4, topology=g, bandwidth_multiplier=2
        ).run(prog, g, aux=lambda v: v + 10)
        assert result.outputs[0] == 11
        assert result.outputs[3] == 13
