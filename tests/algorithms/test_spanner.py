"""Tests for the Baswana-Sen 3-spanner and spanner-based approx APSP."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.broadcast import gather_graph
from repro.algorithms.spanner import approx_apsp_via_spanner, baswana_sen_3_spanner
from repro.clique.algorithm import run_algorithm
from repro.clique.graph import INF, CliqueGraph
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_spanner(g, seed):
    def prog(node):
        return (yield from baswana_sen_3_spanner(node, seed=seed))

    return run_algorithm(prog, g, bandwidth_multiplier=2)


class TestSpannerProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_subgraph_and_stretch_3(self, seed):
        g = gen.random_graph(16, 0.35, seed)
        spanner = run_spanner(g, seed).common_output()
        for u, v in spanner:
            assert g.has_edge(u, v)
        sub = CliqueGraph.from_edges(16, spanner)
        d_g = ref.apsp_matrix(g)
        d_s = ref.apsp_matrix(sub)
        for u in range(16):
            for v in range(16):
                if d_g[u, v] >= INF:
                    assert d_s[u, v] >= INF
                else:
                    assert d_g[u, v] <= d_s[u, v] <= 3 * d_g[u, v]

    @pytest.mark.parametrize("seed", range(3))
    def test_size_subquadratic_on_dense_graphs(self, seed):
        n = 48
        g = gen.random_graph(n, 0.8, seed)
        spanner = run_spanner(g, seed).common_output()
        # w.h.p. O(n^(3/2) log n); allow a generous constant
        assert len(spanner) <= 6 * (n**1.5) * math.log2(n)
        assert len(spanner) < g.num_edges()  # actually sparsifies

    def test_deterministic_given_seed(self):
        g = gen.random_graph(12, 0.5, 3)
        a = run_spanner(g, 42).common_output()
        b = run_spanner(g, 42).common_output()
        assert a == b

    def test_empty_graph(self):
        g = CliqueGraph.empty(6)
        spanner = run_spanner(g, 1).common_output()
        assert spanner == frozenset()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_stretch(self, seed):
        g = gen.random_graph(10, 0.4, seed)
        spanner = run_spanner(g, seed).common_output()
        sub = CliqueGraph.from_edges(10, spanner)
        d_g = ref.apsp_matrix(g)
        d_s = ref.apsp_matrix(sub)
        mask = d_g < INF
        assert (d_s[mask] <= 3 * d_g[mask]).all()


class TestApproxApsp:
    @pytest.mark.parametrize("seed", range(3))
    def test_three_approximation(self, seed):
        g = gen.random_graph(14, 0.4, seed)

        def prog(node):
            row = yield from approx_apsp_via_spanner(node, seed=seed)
            return row.tolist()

        result = run_algorithm(prog, g, bandwidth_multiplier=2)
        d_g = ref.apsp_matrix(g)
        for i in range(14):
            got = np.array(result.outputs[i])
            for j in range(14):
                if d_g[i, j] >= INF:
                    assert got[j] >= INF
                else:
                    assert d_g[i, j] <= got[j] <= 3 * d_g[i, j]

    def test_rounds_sublinear_vs_gather(self):
        """On dense graphs the spanner gather beats whole-graph rounds
        asymptotically; at n=96 it should already be no worse than ~2x
        (and the point is the trend, asserted loosely)."""
        n = 96
        g = gen.random_graph(n, 0.7, 5)

        def spanner_prog(node):
            yield from approx_apsp_via_spanner(node, seed=7)
            return None

        spanner_rounds = run_algorithm(
            spanner_prog, g, bandwidth_multiplier=2
        ).rounds

        def gather_prog(node):
            yield from gather_graph(node)
            return None

        gather_rounds = run_algorithm(
            gather_prog, g, bandwidth_multiplier=2
        ).rounds
        # loose sanity: same order of magnitude; the sqrt(n) vs n/log n
        # separation needs larger n than the simulator comfortably runs
        assert spanner_rounds <= 6 * gather_rounds
