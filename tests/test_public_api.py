"""Public API guard: everything advertised in __all__ must import, and
the layering constraints hold (the substrate must not depend on the
theory layers)."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.clique",
    "repro.obs",
    "repro.engine",
    "repro.service",
    "repro.bench",
    "repro.algorithms",
    "repro.core",
    "repro.reductions",
    "repro.problems",
    "repro.analysis",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__")
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_is_sorted_and_unique(name):
    module = importlib.import_module(name)
    exports = list(module.__all__)
    assert len(exports) == len(set(exports)), f"{name} has duplicate exports"


def test_substrate_does_not_import_theory():
    """repro.clique is the bottom layer: it must not import repro.core,
    repro.algorithms, or repro.reductions."""
    importlib.import_module("repro.clique")

    forbidden = ("repro.core", "repro.algorithms", "repro.reductions")
    import sys

    clique_modules = [
        m for name, m in sys.modules.items()
        if name.startswith("repro.clique") and m is not None
    ]
    for module in clique_modules:
        source_imports = getattr(module, "__dict__", {})
        for value in source_imports.values():
            mod_name = getattr(value, "__module__", "") or ""
            if isinstance(value, type) or callable(value):
                assert not any(
                    mod_name.startswith(f) for f in forbidden
                ), f"{module.__name__} leaks {mod_name}"


def test_obs_does_not_import_engines():
    """repro.obs sits below repro.engine: engines import the observer
    protocol, never the other way around."""
    import sys

    # Re-import repro.obs from scratch, then restore the original module
    # objects: tests running later hold references to the original
    # classes, and a permanently re-imported tree would break their
    # isinstance checks (class identity, not just equality).
    saved = {}
    for name in list(sys.modules):
        if name.startswith("repro.obs") or name.startswith("repro.engine"):
            saved[name] = sys.modules.pop(name)
    try:
        importlib.import_module("repro.obs")
        assert not any(n.startswith("repro.engine") for n in sys.modules)
    finally:
        for name in list(sys.modules):
            if name.startswith("repro.obs") or name.startswith(
                "repro.engine"
            ):
                del sys.modules[name]
        sys.modules.update(saved)


def test_run_result_field_set_is_frozen():
    """RunResult is a stable, public dataclass: adding a field is an API
    change that must update this list (and to_dict/from_dict) together."""
    from repro.clique.network import RunResult

    assert RunResult.field_names() == (
        "outputs",
        "rounds",
        "total_message_bits",
        "bulk_bits",
        "sent_bits",
        "received_bits",
        "counters",
        "transcripts",
        "metrics",
    )


def test_version_present():
    import repro

    assert repro.__version__


def test_cli_module_importable():
    from repro.cli import build_parser

    assert build_parser().prog == "repro"
