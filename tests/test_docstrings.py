"""Documentation gate: every public item carries a docstring.

"Doc comments on every public item" is a deliverable; this test keeps it
true as the library grows.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.clique",
    "repro.clique.bits",
    "repro.clique.graph",
    "repro.clique.network",
    "repro.clique.node",
    "repro.clique.primitives",
    "repro.clique.routing",
    "repro.clique.simulation",
    "repro.clique.sorting",
    "repro.clique.transcript",
    "repro.engine",
    "repro.engine.base",
    "repro.engine.cache",
    "repro.engine.diff",
    "repro.engine.fast",
    "repro.engine.pool",
    "repro.engine.reference",
    "repro.service",
    "repro.service.client",
    "repro.service.kernel",
    "repro.service.protocol",
    "repro.service.server",
    "repro.algorithms",
    "repro.core",
    "repro.core.counting",
    "repro.core.protocols",
    "repro.core.hierarchy",
    "repro.core.nondeterminism",
    "repro.core.normal_form",
    "repro.core.edge_labelling",
    "repro.core.exponents",
    "repro.core.two_party",
    "repro.reductions",
    "repro.problems",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            # only check items defined in this package
            if not (getattr(obj, "__module__", "") or "").startswith("repro"):
                continue
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (
                        attr.__doc__ and attr.__doc__.strip()
                    ):
                        missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
