"""The deterministic runner and the BENCH_*.json artifact contract."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchReport,
    compare_bench,
    default_output_path,
    environment_fingerprint,
    git_sha,
    measure,
    run_suite,
)
from repro.clique.errors import CliqueError

#: A stable, fast subset for artifact-shape tests.
SUBSET = ["codec/bool-row", "fanout/fast", "sweep/cached"]


class TestMeasure:
    def test_collects_requested_repeats(self):
        timing = measure(lambda: 7, repeats=4, warmup=2)
        assert len(timing.times) == 4
        assert timing.result == 7
        assert timing.best <= timing.median

    def test_time_budget_truncates_but_never_skips(self):
        import time

        timing = measure(lambda: time.sleep(0.02), repeats=50, time_budget=0.05)
        assert 1 <= len(timing.times) < 50

    def test_rejects_zero_repeats(self):
        with pytest.raises(CliqueError, match="repeats"):
            measure(lambda: None, repeats=0)


class TestRunSuite:
    def test_artifact_shape(self):
        report = run_suite(SUBSET, quick=True, repeats=2, warmup=0)
        assert report.schema == SCHEMA_VERSION
        assert report.quick is True
        assert set(report.results) == set(SUBSET)
        for name, timing in report.results.items():
            assert timing.name == name
            assert timing.seconds > 0
            assert len(timing.times) == 2
            assert not timing.truncated
            assert timing.info["rounds"] >= 0
            assert timing.info["total_bits"] > 0
        assert report.rows()[0]["workload"] == sorted(SUBSET)[0]

    def test_environment_fingerprint_recorded(self):
        fingerprint = environment_fingerprint()
        for key in ("python", "numpy", "platform", "cpu_count", "cpu_affinity"):
            assert key in fingerprint
        assert fingerprint["cpu_affinity"] >= 1
        report = run_suite(["codec/bool-row"], repeats=1, warmup=0)
        assert report.environment == fingerprint

    def test_git_sha_recorded(self):
        report = run_suite(["codec/bool-row"], repeats=1, warmup=0)
        assert report.git_sha == git_sha()
        assert report.git_sha != ""

    def test_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "feedface0000")
        assert git_sha() == "feedface0000"

    def test_rss_budget_field_recorded(self):
        report = run_suite(["codec/bool-row"], repeats=1, warmup=0)
        rss = report.results["codec/bool-row"].max_rss_kb
        assert rss is None or rss > 0

    def test_budget_truncation_marked(self):
        report = run_suite(
            ["route/relay"],
            quick=True,
            repeats=50,
            warmup=0,
            time_budget=0.01,
        )
        timing = report.results["route/relay"]
        assert timing.truncated
        assert len(timing.times) < 50


class TestArtifactRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        report = run_suite(SUBSET, quick=True, repeats=1, warmup=0)
        path = report.write(tmp_path / "BENCH_test.json")
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_artifact_is_plain_json(self, tmp_path):
        report = run_suite(["codec/bool-row"], repeats=1, warmup=0)
        path = report.write(tmp_path / "b.json")
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert "results" in data and "environment" in data

    def test_schema_mismatch_rejected(self, tmp_path):
        report = run_suite(["codec/bool-row"], repeats=1, warmup=0)
        data = report.to_dict()
        data["schema"] = SCHEMA_VERSION + 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data))
        with pytest.raises(CliqueError, match="schema"):
            BenchReport.load(bad)

    def test_unreadable_artifact_raises_clique_error(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(CliqueError, match="cannot read"):
            BenchReport.load(garbage)

    def test_default_output_path_uses_sha(self, tmp_path):
        path = default_output_path("abc123def456", root=tmp_path)
        assert path == tmp_path / "BENCH_abc123def456.json"


class TestDeterminism:
    def test_repeated_runs_agree_within_stated_tolerance(self):
        """The acceptance criterion: same machine, same tree -> the
        deterministic payloads are identical and the medians agree
        within a generous wall-clock tolerance."""
        names = ["codec/bool-row", "catalog/kds"]
        first = run_suite(names, quick=True, repeats=3)
        second = run_suite(names, quick=True, repeats=3)
        for name in names:
            assert first.results[name].info == second.results[name].info
            assert first.results[name].params == second.results[name].params
        verdict = compare_bench(first, second, tolerance=3.0)
        assert verdict.ok, verdict.summary()
