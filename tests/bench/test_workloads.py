"""The suite registry: coverage, determinism, and registration rules."""

import pytest

from repro.bench import SUITE, Workload, get_workloads, register_workload
from repro.clique.errors import CliqueError


def run_once(workload, quick=True):
    """Execute one workload iteration (setup included), with cleanup."""
    params = workload.resolved_params(quick)
    ctx = workload.setup(params) if workload.setup is not None else {}
    try:
        return workload.run(params, ctx)
    finally:
        cleanup = ctx.get("cleanup")
        if cleanup is not None:
            cleanup()


class TestRegistry:
    def test_expected_workloads_present(self):
        expected = {
            "fanout/reference",
            "fanout/fast",
            "fanout/fast-noobs",
            "route/relay",
            "codec/bool-row",
            "catalog/kds",
            "catalog/kvc",
            "catalog/matmul",
            "catalog/sorting",
            "sweep/uncached",
            "sweep/cached",
            "faults/drop-overhead",
        }
        assert expected <= set(SUITE)

    def test_suite_spans_both_engines(self):
        engines = {
            w.params.get("engine")
            for w in SUITE.values()
            if "engine" in w.params
        }
        assert "reference" in engines and "fast" in engines

    def test_get_workloads_preserves_selection_order(self):
        names = ["codec/bool-row", "fanout/fast"]
        assert [w.name for w in get_workloads(names)] == names

    def test_get_workloads_default_is_whole_suite(self):
        assert [w.name for w in get_workloads()] == list(SUITE)

    def test_unknown_workload_rejected(self):
        with pytest.raises(CliqueError, match="unknown workload"):
            get_workloads(["nope/never"])

    def test_duplicate_registration_rejected(self):
        name = next(iter(SUITE))
        with pytest.raises(CliqueError, match="already registered"):
            register_workload(
                Workload(name=name, description="dup", run=lambda p, c: {})
            )

    def test_quick_params_merge_over_full(self):
        workload = SUITE["fanout/fast"]
        full = workload.resolved_params(quick=False)
        quick = workload.resolved_params(quick=True)
        assert quick["engine"] == full["engine"]
        assert quick["n"] < full["n"]


class TestExecution:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_runs_in_quick_mode_with_deterministic_payload(self, name):
        workload = SUITE[name]
        first = run_once(workload)
        second = run_once(workload)
        assert "rounds" in first and "total_bits" in first
        assert first == second  # the payload the determinism gate relies on

    def test_cached_sweep_is_served_from_cache(self):
        info = run_once(SUITE["sweep/cached"])
        params = SUITE["sweep/cached"].resolved_params(quick=True)
        grid_size = len(params["ns"]) * params["seeds"]
        assert info["cache_hits"] == grid_size

    def test_uncached_sweep_executes_every_point(self):
        info = run_once(SUITE["sweep/uncached"])
        assert info["cache_hits"] == 0
        assert info["rounds"] > 0

    def test_fanout_engines_agree_on_payload(self):
        reference = run_once(SUITE["fanout/reference"])
        fast = run_once(SUITE["fanout/fast"])
        assert reference == fast

    def test_drop_overhead_workload_injects_faults(self):
        info = run_once(SUITE["faults/drop-overhead"])
        assert info["faults"] > 0
