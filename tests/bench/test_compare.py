"""The ratchet: classification, rendering, and the synthetic-regression
gate the CI bench job depends on."""

import time

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SUITE,
    Workload,
    compare_bench,
    run_suite,
)
from repro.cli import main
from repro.clique.errors import CliqueError


def synthetic_report(seconds_by_name, sha="0000000caffe"):
    """A minimal artifact dict with the given median per workload."""
    return {
        "schema": SCHEMA_VERSION,
        "git_sha": sha,
        "quick": True,
        "created": "",
        "environment": {"python": "x"},
        "results": {
            name: {
                "name": name,
                "seconds": seconds,
                "best": seconds,
                "times": [seconds],
                "repeats": 1,
                "warmup": 0,
                "truncated": False,
                "params": {},
                "info": {"rounds": 1, "total_bits": 1},
            }
            for name, seconds in seconds_by_name.items()
        },
    }


class TestClassification:
    def test_statuses(self):
        old = synthetic_report(
            {"a": 1.0, "b": 1.0, "c": 1.0, "gone": 1.0}, sha="oldsha"
        )
        new = synthetic_report(
            {"a": 1.05, "b": 2.0, "c": 0.5, "fresh": 1.0}, sha="newsha"
        )
        verdict = compare_bench(old, new, tolerance=1.25)
        by_name = {e.name: e.status for e in verdict.entries}
        assert by_name == {
            "a": "stable",
            "b": "regressed",
            "c": "improved",
            "gone": "removed",
            "fresh": "added",
        }
        assert not verdict.ok
        assert [e.name for e in verdict.regressions] == ["b"]

    def test_ratio_exactly_at_tolerance_is_stable(self):
        old = synthetic_report({"a": 1.0})
        new = synthetic_report({"a": 1.25})
        assert compare_bench(old, new, tolerance=1.25).ok

    def test_added_and_removed_never_regress(self):
        old = synthetic_report({"gone": 1.0})
        new = synthetic_report({"fresh": 99.0})
        verdict = compare_bench(old, new, tolerance=1.1)
        assert verdict.ok
        assert {e.status for e in verdict.entries} == {"added", "removed"}

    def test_zero_baseline_counts_as_regression(self):
        old = synthetic_report({"a": 0.0})
        new = synthetic_report({"a": 0.001})
        assert not compare_bench(old, new, tolerance=2.0).ok

    def test_bad_tolerance_rejected(self):
        report = synthetic_report({"a": 1.0})
        with pytest.raises(CliqueError, match="tolerance"):
            compare_bench(report, report, tolerance=1.0)
        with pytest.raises(CliqueError, match="improved_threshold"):
            compare_bench(report, report, improved_threshold=0.0)

    def test_unsupported_source_rejected(self):
        with pytest.raises(CliqueError, match="bench report"):
            compare_bench(42, synthetic_report({"a": 1.0}))


class TestRendering:
    def test_summary_names_shas_and_verdict(self):
        old = synthetic_report({"a": 1.0}, sha="oldsha")
        new = synthetic_report({"a": 5.0}, sha="newsha")
        summary = compare_bench(old, new, tolerance=1.4).summary()
        assert "oldsha..newsha" in summary
        assert "REGRESSED" in summary
        assert "1 regressed" in summary

    def test_markdown_table_bolds_regressions(self):
        old = synthetic_report({"a": 1.0, "b": 1.0})
        new = synthetic_report({"a": 5.0, "b": 1.0})
        table = compare_bench(old, new, tolerance=1.4).markdown_table()
        assert "| workload |" in table
        assert "**regressed**" in table
        assert "`a`" in table and "`b`" in table

    def test_rows_order_regressions_first(self):
        old = synthetic_report({"a": 1.0, "z": 1.0})
        new = synthetic_report({"a": 1.0, "z": 9.0})
        rows = compare_bench(old, new, tolerance=1.4).rows()
        assert rows[0]["workload"] == "z"
        assert rows[0]["status"] == "regressed"


class TestSyntheticSlowdownGate:
    """The CI acceptance criterion: a 2x slowdown of one workload must
    fail a tolerance-1.4 comparison (and the CLI must exit non-zero)."""

    NAME = "codec/bool-row"

    def _slowed_suite(self, monkeypatch, factor=2.0):
        original = SUITE[self.NAME]

        def slowed(params, ctx):
            start = time.perf_counter()
            info = original.run(params, ctx)
            time.sleep((time.perf_counter() - start) * (factor - 1.0))
            return info

        monkeypatch.setitem(
            SUITE,
            self.NAME,
            Workload(
                name=original.name,
                description=original.description,
                run=slowed,
                params=original.params,
                quick_params=original.quick_params,
            ),
        )

    def test_two_x_slowdown_fails_the_ratchet(self, monkeypatch):
        baseline = run_suite([self.NAME], quick=True, repeats=3)
        self._slowed_suite(monkeypatch, factor=2.5)
        slowed = run_suite([self.NAME], quick=True, repeats=3)
        verdict = compare_bench(baseline, slowed, tolerance=1.4)
        assert not verdict.ok, verdict.summary()
        assert verdict.regressions[0].name == self.NAME

    def test_cli_compare_exits_nonzero_on_regression(
        self, monkeypatch, tmp_path, capsys
    ):
        baseline = run_suite([self.NAME], quick=True, repeats=3)
        baseline.write(tmp_path / "old.json")
        self._slowed_suite(monkeypatch, factor=2.5)
        run_suite([self.NAME], quick=True, repeats=3).write(tmp_path / "new.json")
        code = main(
            [
                "bench",
                "compare",
                str(tmp_path / "old.json"),
                str(tmp_path / "new.json"),
                "--tolerance",
                "1.4",
            ]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().out
