"""Tests for distributed sorting (PSRS over route)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.errors import ProtocolViolation
from repro.clique.network import CongestedClique
from repro.clique.sorting import distributed_sort


def run_sort(n, key_table, key_width, scheme="lenzen"):
    def prog(node):
        keys = key_table.get(node.id, [])
        got = yield from distributed_sort(node, keys, key_width, scheme=scheme)
        return got

    clique = CongestedClique(n, bandwidth_multiplier=2)
    return clique.run(prog)


def check_sorted_partition(result, n, all_keys):
    """Concatenated outputs must equal the global sorted order, split into
    contiguous, quota-balanced slices."""
    want = sorted(all_keys)
    got = []
    for v in range(n):
        got.extend(result.outputs[v])
    assert got == want
    quota = -(-len(want) // n) if want else 0
    for v in range(n):
        assert len(result.outputs[v]) <= max(quota, 1)


class TestDistributedSort:
    def test_one_key_per_node(self):
        n = 5
        keys = {v: [(v * 7) % 13] for v in range(n)}
        result = run_sort(n, keys, 8)
        check_sorted_partition(result, n, [k for ks in keys.values() for k in ks])

    def test_n_keys_per_node(self):
        n = 6
        keys = {v: [((v + 1) * (i + 3)) % 64 for i in range(n)] for v in range(n)}
        result = run_sort(n, keys, 8)
        check_sorted_partition(result, n, [k for ks in keys.values() for k in ks])

    def test_duplicates(self):
        n = 4
        keys = {v: [5, 5, 5] for v in range(n)}
        result = run_sort(n, keys, 4)
        check_sorted_partition(result, n, [5] * 12)

    def test_empty_nodes(self):
        n = 4
        keys = {0: [9, 1, 4]}
        result = run_sort(n, keys, 4)
        check_sorted_partition(result, n, [9, 1, 4])

    def test_all_empty(self):
        result = run_sort(4, {}, 4)
        for v in range(4):
            assert result.outputs[v] == []

    def test_single_node(self):
        result = run_sort(1, {0: [3, 1, 2]}, 4)
        assert result.outputs[0] == [1, 2, 3]
        assert result.rounds == 0

    def test_key_overflow_rejected(self):
        with pytest.raises(ProtocolViolation):
            run_sort(3, {0: [16]}, 4)

    @pytest.mark.parametrize("scheme", ["direct", "relay", "lenzen"])
    def test_schemes_agree(self, scheme):
        n = 5
        keys = {v: [(v * 11 + i * 3) % 31 for i in range(4)] for v in range(n)}
        result = run_sort(n, keys, 8, scheme=scheme)
        check_sorted_partition(result, n, [k for ks in keys.values() for k in ks])

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_instances(self, data):
        n = data.draw(st.integers(2, 6))
        keys = {
            v: data.draw(st.lists(st.integers(0, 255), max_size=2 * n))
            for v in range(n)
        }
        result = run_sort(n, keys, 8)
        check_sorted_partition(result, n, [k for ks in keys.values() for k in ks])
