"""Tests for collective communication primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString, BitWriter
from repro.clique.errors import ProtocolViolation
from repro.clique.network import CongestedClique
from repro.clique.primitives import (
    agree_uint_max,
    all_broadcast,
    all_gather_uint,
    broadcast_from,
    chunks_needed,
    exchange,
    idle,
)


class TestChunksNeeded:
    def test_exact(self):
        assert chunks_needed(8, 4) == 2

    def test_rounding(self):
        assert chunks_needed(9, 4) == 3

    def test_zero(self):
        assert chunks_needed(0, 4) == 0

    def test_bad_chunk(self):
        with pytest.raises(ProtocolViolation):
            chunks_needed(8, 0)


class TestIdle:
    def test_idle_rounds(self):
        def prog(node):
            yield from idle(4)
            return None

        assert CongestedClique(3).run(prog).rounds == 4


class TestExchange:
    def test_pairwise(self):
        def prog(node):
            payloads = {
                d: BitString(node.id, 2) for d in range(node.n) if d != node.id
            }
            got = yield from exchange(node, payloads)
            return {s: b.value for s, b in got.items()}

        result = CongestedClique(4).run(prog)
        assert result.rounds == 1
        assert result.outputs[2] == {0: 0, 1: 1, 3: 3}


class TestAllGatherUint:
    def test_small_values_one_round(self):
        def prog(node):
            values = yield from all_gather_uint(node, node.id, 2)
            return values

        result = CongestedClique(4).run(prog)
        assert result.rounds == 1
        assert result.common_output() == [0, 1, 2, 3]

    def test_wide_values_chunked(self):
        def prog(node):
            values = yield from all_gather_uint(node, node.id * 1000, 16)
            return values

        result = CongestedClique(4).run(prog)  # B = 2
        assert result.rounds == math.ceil(16 / 2)
        assert result.common_output() == [0, 1000, 2000, 3000]


class TestAllBroadcast:
    def test_roundtrip(self):
        def prog(node):
            payload = BitWriter().write_uint(node.id, 4).write_uint(7, 4).finish()
            got = yield from all_broadcast(node, payload)
            return [b.to_str() for b in got]

        result = CongestedClique(5).run(prog)
        expected = [
            (BitWriter().write_uint(v, 4).write_uint(7, 4).finish()).to_str()
            for v in range(5)
        ]
        assert result.common_output() == expected

    def test_rounds_scale_with_length(self):
        def make(length):
            def prog(node):
                yield from all_broadcast(node, BitString.zeros(length))
                return None

            return prog

        n = 8  # B = 3
        assert CongestedClique(n).run(make(3)).rounds == 1
        assert CongestedClique(n).run(make(30)).rounds == 10

    def test_empty_payload(self):
        def prog(node):
            got = yield from all_broadcast(node, BitString.empty())
            return [len(b) for b in got]

        result = CongestedClique(3).run(prog)
        assert result.rounds == 0
        assert result.common_output() == [0, 0, 0]

    def test_mismatched_lengths_detected(self):
        def prog(node):
            length = 4 if node.id == 0 else 8
            got = yield from all_broadcast(node, BitString.zeros(length))
            return got

        with pytest.raises(ProtocolViolation):
            CongestedClique(3).run(prog)


class TestBroadcastFrom:
    @pytest.mark.parametrize("length", [1, 5, 12, 64, 200])
    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_payload_received_by_all(self, n, length):
        payload = BitString.from_bits([(i * 7 + 3) % 2 for i in range(length)])

        def prog(node):
            mine = payload if node.id == 1 % n else None
            got = yield from broadcast_from(node, 1 % n, mine, length)
            return got.to_str()

        result = CongestedClique(n).run(prog)
        assert result.common_output() == payload.to_str()

    def test_doubling_beats_direct_for_long_payloads(self):
        """For k >> B the two-phase broadcast uses ~2k/(B(n-1)) rounds."""
        n, length = 16, 16 * 15 * 4  # B = 4
        payload = BitString.zeros(length)

        def prog(node):
            mine = payload if node.id == 0 else None
            yield from broadcast_from(node, 0, mine, length)
            return None

        rounds = CongestedClique(n).run(prog).rounds
        direct_rounds = math.ceil(length / 4)
        assert rounds < direct_rounds / 2

    def test_root_without_payload_rejected(self):
        def prog(node):
            got = yield from broadcast_from(node, 0, None, 8)
            return got

        with pytest.raises(ProtocolViolation):
            CongestedClique(3).run(prog)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 8),
        root=st.integers(0, 7),
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=60),
    )
    def test_property_roundtrip(self, n, root, bits):
        root %= n
        payload = BitString.from_bits(bits)

        def prog(node):
            mine = payload if node.id == root else None
            got = yield from broadcast_from(node, root, mine, len(bits))
            return got.to_str()

        result = CongestedClique(n).run(prog)
        assert result.common_output() == payload.to_str()


class TestAgreeMax:
    def test_max(self):
        def prog(node):
            return (yield from agree_uint_max(node, node.id * 3, 8))

        assert CongestedClique(5).run(prog).common_output() == 12
