"""Tests for the synchronous round engine."""

import pytest

from repro.clique.bits import BitString, encode_uint
from repro.clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    InvalidAddress,
    ProtocolViolation,
    RoundLimitExceeded,
)
from repro.clique.graph import CliqueGraph
from repro.clique.network import CongestedClique, default_bandwidth
from repro.clique.algorithm import run_algorithm


class TestDefaultBandwidth:
    def test_log_n(self):
        assert default_bandwidth(2) == 1
        assert default_bandwidth(4) == 2
        assert default_bandwidth(5) == 3
        assert default_bandwidth(1024) == 10

    def test_multiplier(self):
        assert default_bandwidth(16, multiplier=3) == 12

    def test_tiny_clique_floor(self):
        assert default_bandwidth(1) == 1

    def test_bad_args(self):
        with pytest.raises(CliqueError):
            default_bandwidth(0)
        with pytest.raises(CliqueError):
            default_bandwidth(4, multiplier=0)


class TestBasicExecution:
    def test_no_communication(self):
        def prog(node):
            return node.id * 2
            yield  # pragma: no cover

        result = CongestedClique(4).run(prog)
        assert result.rounds == 0
        assert result.outputs == {0: 0, 1: 2, 2: 4, 3: 6}
        assert result.total_message_bits == 0

    def test_single_round_exchange(self):
        def prog(node):
            node.send((node.id + 1) % node.n, BitString(node.id, 2))
            yield
            (src,) = node.inbox
            return (src, node.inbox[src].value)

        result = CongestedClique(4).run(prog)
        assert result.rounds == 1
        assert result.outputs[1] == (0, 0)
        assert result.outputs[0] == (3, 3)
        assert result.total_message_bits == 8

    def test_round_counting_multiple(self):
        def prog(node):
            for _ in range(5):
                yield
            return None

        assert CongestedClique(3).run(prog).rounds == 5

    def test_common_output(self):
        def prog(node):
            return "yes"
            yield  # pragma: no cover

        assert CongestedClique(3).run(prog).common_output() == "yes"

    def test_common_output_disagreement(self):
        def prog(node):
            return node.id
            yield  # pragma: no cover

        result = CongestedClique(2).run(prog)
        with pytest.raises(CliqueError):
            result.common_output()

    def test_messages_sent_before_final_return_are_delivered(self):
        def prog(node):
            if node.id == 0:
                node.send(1, BitString(1, 1))
                return "sender"
            yield
            return node.inbox.get(0).value if node.inbox.get(0) else None

        result = CongestedClique(2).run(prog)
        assert result.outputs == {0: "sender", 1: 1}
        assert result.rounds == 1

    def test_uneven_halting(self):
        def prog(node):
            for _ in range(node.id + 1):
                yield
            return node.id

        result = CongestedClique(3).run(prog)
        assert result.rounds == 3
        assert result.outputs == {0: 0, 1: 1, 2: 2}


class TestModelEnforcement:
    def test_bandwidth_enforced(self):
        def prog(node):
            node.send(1, BitString.zeros(node.bandwidth + 1))
            yield

        with pytest.raises(BandwidthExceeded):
            CongestedClique(4).run(prog)

    def test_duplicate_message_rejected(self):
        def prog(node):
            node.send(1, BitString(1, 1))
            node.send(1, BitString(0, 1))
            yield

        with pytest.raises(DuplicateMessage):
            CongestedClique(3).run(prog)

    def test_self_send_rejected(self):
        def prog(node):
            node.send(node.id, BitString(1, 1))
            yield

        with pytest.raises(InvalidAddress):
            CongestedClique(3).run(prog)

    def test_out_of_range_rejected(self):
        def prog(node):
            node.send(99, BitString(1, 1))
            yield

        with pytest.raises(InvalidAddress):
            CongestedClique(3).run(prog)

    def test_empty_message_rejected(self):
        def prog(node):
            node.send(1, BitString.empty())
            yield

        with pytest.raises(ProtocolViolation):
            CongestedClique(3).run(prog)

    def test_round_limit(self):
        def prog(node):
            while True:
                yield

        with pytest.raises(RoundLimitExceeded):
            CongestedClique(2, max_rounds=10).run(prog)

    def test_non_generator_rejected(self):
        def prog(node):
            return 1

        with pytest.raises(CliqueError):
            CongestedClique(2).run(prog)


class TestInputs:
    def test_graph_input(self):
        g = CliqueGraph.from_edges(3, [(0, 1)])

        def prog(node):
            return list(node.input)
            yield  # pragma: no cover

        result = CongestedClique(3).run(prog, g)
        assert result.outputs[0] == [False, True, False]
        assert result.outputs[2] == [False, False, False]

    def test_graph_size_mismatch(self):
        g = CliqueGraph.empty(3)
        with pytest.raises(CliqueError):
            CongestedClique(4).run(lambda node: iter(()), g)

    def test_callable_aux(self):
        def prog(node):
            return node.aux
            yield  # pragma: no cover

        result = CongestedClique(3).run(prog, aux=lambda v: v * 10)
        assert result.outputs == {0: 0, 1: 10, 2: 20}

    def test_sequence_aux(self):
        def prog(node):
            return node.aux
            yield  # pragma: no cover

        result = CongestedClique(3).run(prog, aux=["a", "b", "c"])
        assert result.outputs == {0: "a", 1: "b", 2: "c"}

    def test_scalar_aux_shared(self):
        def prog(node):
            return node.aux
            yield  # pragma: no cover

        result = CongestedClique(3).run(prog, aux=42)
        assert set(result.outputs.values()) == {42}

    def test_mapping_aux(self):
        def prog(node):
            return node.aux
            yield  # pragma: no cover

        result = CongestedClique(3).run(prog, aux={0: "x"})
        assert result.outputs == {0: "x", 1: None, 2: None}

    def test_run_algorithm_helper(self):
        g = CliqueGraph.from_edges(3, [(0, 2)])

        def prog(node):
            return int(sum(node.input))
            yield  # pragma: no cover

        result = run_algorithm(prog, g)
        assert result.outputs == {0: 1, 1: 0, 2: 1}


class TestTranscripts:
    def test_transcripts_recorded(self):
        def prog(node):
            node.send((node.id + 1) % node.n, encode_uint(node.id, 2))
            yield
            yield
            return None

        result = CongestedClique(3, record_transcripts=True).run(prog)
        assert result.transcripts is not None
        t0 = result.transcripts[0]
        assert t0.num_rounds() == 2
        assert t0.rounds[0].sent == {1: encode_uint(0, 2)}
        assert t0.rounds[0].received == {2: encode_uint(2, 2)}
        assert t0.rounds[1].sent == {}

    def test_transcripts_pairwise_consistent(self):
        def prog(node):
            for r in range(3):
                node.send((node.id + 1 + r) % node.n, encode_uint(node.id, 3))
                yield
            return None

        result = CongestedClique(5, record_transcripts=True).run(prog)
        ts = result.transcripts
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert ts[a].consistent_with(ts[b])

    def test_no_transcripts_by_default(self):
        def prog(node):
            yield
            return None

        assert CongestedClique(2).run(prog).transcripts is None
