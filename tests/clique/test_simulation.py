"""Tests for the virtual-clique simulation layer (Theorem 10's engine)."""

import pytest

from repro.algorithms.dominating_set import k_dominating_set
from repro.algorithms.vertex_cover import k_vertex_cover
from repro.clique.bits import BitString
from repro.clique.errors import ProtocolViolation
from repro.clique.simulation import simulate_virtual_clique
from repro.problems import generators as gen
from repro.problems import reference as ref
from repro.reductions.is_to_ds import ds_witness_to_is, is_to_ds_instance


def echo_ids_program(node):
    """Virtual program: everyone broadcasts its id, returns the sorted
    set of ids seen (plus its own)."""
    from repro.clique.bits import uint_width
    from repro.clique.primitives import all_gather_uint

    width = uint_width(max(1, node.n - 1))
    values = yield from all_gather_uint(node, node.id, width)
    return sorted(values)


class TestBasicSimulation:
    def test_identity_hosting(self):
        """N' == n with host_of = identity reproduces plain execution."""
        outputs, result = simulate_virtual_clique(
            4, 4, lambda v: v, echo_ids_program, lambda v: None
        )
        assert outputs == {v: [0, 1, 2, 3] for v in range(4)}

    def test_two_virtuals_per_host(self):
        outputs, result = simulate_virtual_clique(
            3, 6, lambda v: v % 3, echo_ids_program, lambda v: None
        )
        assert outputs == {v: list(range(6)) for v in range(6)}

    def test_all_on_one_host(self):
        """Degenerate but legal: every virtual node on host 0 — all
        messages are intra-host (free)."""
        outputs, result = simulate_virtual_clique(
            3, 5, lambda v: 0, echo_ids_program, lambda v: None
        )
        assert outputs == {v: list(range(5)) for v in range(5)}

    def test_out_of_range_host_rejected(self):
        with pytest.raises(ProtocolViolation):
            simulate_virtual_clique(
                2, 3, lambda v: 5, echo_ids_program, lambda v: None
            )

    def test_virtual_inputs_and_aux_delivered(self):
        def program(node):
            yield
            return (node.input, node.aux)

        outputs, _ = simulate_virtual_clique(
            2,
            4,
            lambda v: v % 2,
            program,
            virtual_input=lambda v: v * 10,
            virtual_aux=lambda v: f"aux{v}",
        )
        assert outputs[3] == (30, "aux3")

    def test_overhead_grows_with_host_load(self):
        """More virtual nodes per host => more real rounds per virtual
        round (the s^2 factor Theorem 10 accounts for)."""
        _, spread = simulate_virtual_clique(
            6, 6, lambda v: v, echo_ids_program, lambda v: None
        )
        _, packed = simulate_virtual_clique(
            2, 6, lambda v: v % 2, echo_ids_program, lambda v: None
        )
        assert packed.rounds > spread.rounds

    def test_lenzen_scheme_rejected_under_virtualisation(self):
        def program(node):
            from repro.clique.routing import route

            got = yield from route(
                node, {(node.id + 1) % node.n: BitString(1, 1)}, "lenzen"
            )
            return len(got)

        with pytest.raises(ProtocolViolation):
            simulate_virtual_clique(
                2, 4, lambda v: v % 2, program, lambda v: None,
                bandwidth_multiplier=3,
            )


class TestTheorem10EndToEnd:
    """The full Theorem 10 statement: k-IS on G solved by running the
    k-DS algorithm on G' with G' simulated on G's own n nodes."""

    @pytest.mark.parametrize("seed", range(3))
    def test_k_is_via_simulated_k_ds(self, seed):
        k = 2
        g = gen.random_graph(5, 0.5, seed)
        gp, info = is_to_ds_instance(g, k)

        # Hosting per the paper: node v simulates its copies v_i and
        # v_{i,j}; special nodes go to nodes 0 and 1.
        def host_of(virtual: int) -> int:
            kind, data = info.decode(virtual)
            if kind == "clique":
                return data[1]
            if kind == "gadget":
                return data[2]
            return data[1]  # x_i -> node 0, y_i -> node 1

        def program(node):
            return (yield from k_dominating_set(node, k, scheme="direct"))

        outputs, result = simulate_virtual_clique(
            g.n,
            gp.n,
            host_of,
            program,
            virtual_input=lambda v: gp.local_view(v),
            bandwidth_multiplier=2,
            max_rounds=10**6,
        )
        found, witness = outputs[0]
        assert all(outputs[v] == (found, witness) for v in range(gp.n))
        assert found == ref.has_independent_set(g, k)
        if found:
            back = ds_witness_to_is(witness, info)
            assert ref.is_independent_set(g, back)

    def test_simulated_kvc_on_larger_virtual_clique(self):
        """Another end-to-end: Theorem 11's algorithm virtualised."""
        g, _ = gen.planted_vertex_cover(8, 2, 0.5, 3)

        def program(node):
            return (yield from k_vertex_cover(node, 2))

        outputs, result = simulate_virtual_clique(
            4,
            8,
            lambda v: v % 4,
            program,
            virtual_input=lambda v: g.local_view(v),
            bandwidth_multiplier=2,
        )
        found, witness = outputs[0]
        assert found == ref.has_vertex_cover(g, 2)
        if found:
            assert ref.is_vertex_cover(g, witness)
