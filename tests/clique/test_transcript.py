"""Tests for communication transcripts and their serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.clique.transcript import RoundRecord, Transcript


def make_transcript(node, n, round_specs):
    rounds = tuple(
        RoundRecord(
            sent={d: BitString.from_str(s) for d, s in sent.items()},
            received={d: BitString.from_str(s) for d, s in recv.items()},
        )
        for sent, recv in round_specs
    )
    return Transcript(node=node, n=n, rounds=rounds)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        t = make_transcript(
            0, 4, [({1: "101"}, {2: "01"}), ({}, {3: "1"})]
        )
        bits = t.encode()
        back = Transcript.decode(0, 4, bits)
        assert back == t

    def test_roundtrip_empty(self):
        t = Transcript(node=2, n=4, rounds=())
        assert Transcript.decode(2, 4, t.encode()) == t

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_roundtrip_property(self, data):
        n = data.draw(st.integers(2, 6))
        node = data.draw(st.integers(0, n - 1))
        num_rounds = data.draw(st.integers(0, 4))
        specs = []
        for _ in range(num_rounds):
            sent = {}
            recv = {}
            for peer in range(n):
                if peer == node:
                    continue
                if data.draw(st.booleans()):
                    sent[peer] = data.draw(st.text(alphabet="01", min_size=1, max_size=8))
                if data.draw(st.booleans()):
                    recv[peer] = data.draw(st.text(alphabet="01", min_size=1, max_size=8))
            specs.append((sent, recv))
        t = make_transcript(node, n, specs)
        assert Transcript.decode(node, n, t.encode()) == t


class TestWidthLimits:
    def test_empty_rounds_roundtrip(self):
        t = make_transcript(1, 4, [({}, {}), ({}, {}), ({}, {})])
        back = Transcript.decode(1, 4, t.encode())
        assert back == t
        assert back.num_rounds() == 3
        assert back.total_bits() == 0

    def test_max_width_payload_roundtrip(self):
        # 65535 bits is the ceiling of the encoding's 16-bit length field.
        width = 65535
        ones = BitString((1 << width) - 1, width)
        zeros = BitString.zeros(width)
        t = Transcript(
            node=0,
            n=2,
            rounds=(RoundRecord(sent={1: ones}, received={1: zeros}),),
        )
        back = Transcript.decode(0, 2, t.encode())
        assert back == t
        assert back.rounds[0].sent[1] == ones
        assert back.rounds[0].received[1] == zeros
        assert back.total_bits() == 2 * width


class TestAccounting:
    def test_total_bits(self):
        t = make_transcript(0, 3, [({1: "101"}, {2: "01"}), ({}, {1: "1"})])
        assert t.total_bits() == 3 + 2 + 1
        assert t.num_rounds() == 2


class TestConsistency:
    def test_consistent_pair(self):
        t0 = make_transcript(0, 2, [({1: "11"}, {1: "0"})])
        t1 = make_transcript(1, 2, [({0: "0"}, {0: "11"})])
        assert t0.consistent_with(t1)
        assert t1.consistent_with(t0)

    def test_inconsistent_payload(self):
        t0 = make_transcript(0, 2, [({1: "11"}, {})])
        t1 = make_transcript(1, 2, [({}, {0: "10"})])
        assert not t0.consistent_with(t1)

    def test_inconsistent_missing(self):
        t0 = make_transcript(0, 2, [({1: "11"}, {})])
        t1 = make_transcript(1, 2, [({}, {})])
        assert not t0.consistent_with(t1)

    def test_round_count_mismatch(self):
        t0 = make_transcript(0, 2, [({}, {})])
        t1 = make_transcript(1, 2, [])
        assert not t0.consistent_with(t1)

    def test_engine_transcripts_are_mutually_consistent(self):
        def prog(node):
            for r in range(2):
                node.send((node.id + 1) % node.n, BitString(node.id % 2, 1))
                yield
            return None

        result = CongestedClique(4, record_transcripts=True).run(prog)
        ts = result.transcripts
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert ts[a].consistent_with(ts[b])
        # And a corrupted transcript is caught.
        bad = make_transcript(0, 4, [({}, {})] * 2)
        assert not bad.consistent_with(ts[1])
