"""Quantitative routing guarantees.

The relay router's claim: on *balanced* instances (per-node loads within
a constant of each other), delivery takes O(max_load / (n B) + 1) rounds
— within a modest constant of the Lenzen bound the cost model charges.
These tests pin that constant empirically so regressions in the schedule
(chunk rotation, arbitration) surface as failures.
"""

import math

import pytest

from repro.clique.bits import BitString
from repro.clique.network import CongestedClique
from repro.clique.routing import route


def run_route(n, flow_table, scheme, multiplier=4):
    def prog(node):
        flows = flow_table.get(node.id, {})
        got = yield from route(node, flows, scheme=scheme)
        return {s: len(b) for s, b in got.items()}

    clique = CongestedClique(
        n, bandwidth_multiplier=multiplier, max_rounds=10**6
    )
    return clique.run(prog)


def balanced_all_to_all(n, per_pair_bits):
    return {
        s: {
            d: BitString.zeros(per_pair_bits)
            for d in range(n)
            if d != s
        }
        for s in range(n)
    }


class TestRelayNearOptimal:
    @pytest.mark.parametrize("per_pair", [64, 256])
    def test_balanced_all_to_all(self, per_pair):
        n, mult = 8, 4
        b = mult * 3
        flows = balanced_all_to_all(n, per_pair)
        result = run_route(n, flows, "relay", mult)
        max_load = per_pair * (n - 1)
        optimal = math.ceil(max_load / (b * (n - 1)))
        # header bits shrink the per-chunk payload: [tag|peer] takes
        # 1 + ceil(log2 n) of the b bits
        payload = b - 1 - 3
        stretched = math.ceil(max_load / payload)  # per-link work
        # pipelined spread+deliver with status rounds: small constant
        assert result.rounds <= 4 * stretched + 24
        # and sanity: everything arrived
        for v in range(n):
            assert sum(result.outputs[v].values()) == per_pair * (n - 1)

    def test_single_heavy_pair_spreads(self):
        """One heavy flow must be spread across all links: rounds within
        a constant of load / (n * payload)."""
        n, mult = 8, 4
        b = mult * 3
        heavy = 4096
        flows = {0: {1: BitString.zeros(heavy)}}
        result = run_route(n, flows, "relay", mult)
        payload = b - 1 - 3
        per_link = math.ceil(heavy / payload / (n - 1))
        assert result.rounds <= 6 * per_link + 24

    def test_cost_model_charges_theoretical_bound(self):
        n, mult = 8, 2
        b = mult * 3
        per_pair = 120
        flows = balanced_all_to_all(n, per_pair)
        result = run_route(n, flows, "lenzen", mult)
        max_load = per_pair * (n - 1)
        charged = math.ceil(max_load / (b * (n - 1)))
        overhead = 2 * math.ceil(32 / b)  # length exchange + agreement
        assert result.rounds <= charged + overhead
        assert result.rounds >= charged
