"""Tests for the routing schemes (direct, relay, lenzen cost model)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString
from repro.clique.errors import ProtocolViolation
from repro.clique.network import CongestedClique
from repro.clique.routing import ROUTE_SCHEMES, relay_min_bandwidth, route


def run_route(n, flow_table, scheme, bandwidth_multiplier=2, max_rounds=None):
    """Run route() collectively; flow_table[v] = {dst: BitString}."""

    def prog(node):
        flows = flow_table.get(node.id, {})
        got = yield from route(node, flows, scheme=scheme)
        return {s: b.to_str() for s, b in got.items()}

    clique = CongestedClique(
        n, bandwidth_multiplier=bandwidth_multiplier, max_rounds=max_rounds
    )
    return clique.run(prog)


def expected_inboxes(n, flow_table):
    out = {v: {} for v in range(n)}
    for src, flows in flow_table.items():
        for dst, payload in flows.items():
            if len(payload) > 0:
                out[dst][src] = payload.to_str()
    return out


def pattern_bits(length, seed):
    return BitString.from_bits([(i * seed + seed) % 2 for i in range(length)])


@pytest.mark.parametrize("scheme", ROUTE_SCHEMES)
class TestRouteCorrectness:
    def test_single_flow(self, scheme):
        flows = {0: {3: pattern_bits(40, 3)}}
        result = run_route(4, flows, scheme)
        assert result.outputs[3] == {0: pattern_bits(40, 3).to_str()}
        assert result.outputs[1] == {}

    def test_all_to_all(self, scheme):
        n = 5
        flows = {
            s: {d: pattern_bits(10 + 3 * s + d, s + d + 1) for d in range(n) if d != s}
            for s in range(n)
        }
        result = run_route(n, flows, scheme)
        want = expected_inboxes(n, flows)
        for v in range(n):
            assert result.outputs[v] == want[v]

    def test_empty_instance(self, scheme):
        result = run_route(4, {}, scheme)
        for v in range(4):
            assert result.outputs[v] == {}

    def test_self_flow_short_circuits(self, scheme):
        flows = {2: {2: pattern_bits(9, 2)}}
        result = run_route(4, flows, scheme)
        assert result.outputs[2] == {2: pattern_bits(9, 2).to_str()}

    def test_zero_length_flows_dropped(self, scheme):
        flows = {0: {1: BitString.empty(), 2: pattern_bits(4, 1)}}
        result = run_route(4, flows, scheme)
        assert result.outputs[1] == {}
        assert result.outputs[2] == {0: pattern_bits(4, 1).to_str()}

    def test_skewed_single_heavy_pair(self, scheme):
        flows = {0: {1: pattern_bits(500, 5)}}
        result = run_route(6, flows, scheme)
        assert result.outputs[1] == {0: pattern_bits(500, 5).to_str()}

    def test_star_in(self, scheme):
        """Everyone sends to node 0 (receive bottleneck)."""
        n = 6
        flows = {s: {0: pattern_bits(30 + s, s + 1)} for s in range(1, n)}
        result = run_route(n, flows, scheme)
        assert result.outputs[0] == expected_inboxes(n, flows)[0]

    def test_star_out(self, scheme):
        """Node 0 sends to everyone (send bottleneck)."""
        n = 6
        flows = {0: {d: pattern_bits(25 + d, d + 2) for d in range(1, n)}}
        result = run_route(n, flows, scheme)
        for d in range(1, n):
            assert result.outputs[d] == {0: pattern_bits(25 + d, d + 2).to_str()}

    def test_two_nodes(self, scheme):
        flows = {0: {1: pattern_bits(17, 1)}, 1: {0: pattern_bits(23, 2)}}
        result = run_route(2, flows, scheme)
        assert result.outputs[0] == {1: pattern_bits(23, 2).to_str()}
        assert result.outputs[1] == {0: pattern_bits(17, 1).to_str()}

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_instances(self, scheme, data):
        n = data.draw(st.integers(2, 7))
        flow_table = {}
        for s in range(n):
            flows = {}
            for d in range(n):
                if d == s:
                    continue
                length = data.draw(st.integers(0, 60))
                if length:
                    flows[d] = pattern_bits(length, (s * 7 + d * 3) % 5 + 1)
            if flows:
                flow_table[s] = flows
        result = run_route(n, flow_table, scheme)
        want = expected_inboxes(n, flow_table)
        for v in range(n):
            assert result.outputs[v] == want[v]


class TestSchemeSpecifics:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ProtocolViolation):
            run_route(3, {0: {1: pattern_bits(4, 1)}}, "magic")

    def test_relay_needs_header_room(self):
        with pytest.raises(ProtocolViolation):
            run_route(8, {0: {1: pattern_bits(4, 1)}}, "relay", bandwidth_multiplier=1)

    def test_relay_min_bandwidth_value(self):
        assert relay_min_bandwidth(8) == 3 + 2

    def test_lenzen_charges_load_over_n(self):
        """Balanced all-to-all: lenzen cost stays near optimal load/(B(n-1))."""
        n = 8
        per_pair = 64
        flows = {
            s: {d: BitString.zeros(per_pair) for d in range(n) if d != s}
            for s in range(n)
        }
        result = run_route(n, flows, "lenzen", bandwidth_multiplier=2)
        b = 2 * 3
        load = per_pair * (n - 1)
        optimal = math.ceil(load / (b * (n - 1)))
        # header rounds: 32-bit length exchange + 32-bit max agreement
        overhead = 2 * math.ceil(32 / b)
        assert result.rounds <= optimal + overhead
        assert result.bulk_bits == load * n

    def test_direct_rounds_match_max_pair(self):
        n = 4
        flows = {0: {1: BitString.zeros(40)}}
        result = run_route(n, flows, "direct", bandwidth_multiplier=2)
        b = 2 * 2
        overhead = math.ceil(32 / b) + math.ceil(32 / b)  # lengths + agree
        assert result.rounds == overhead + math.ceil(40 / b)

    def test_relay_beats_direct_on_skewed_load(self):
        """The whole point of relaying: a heavy single pair spreads over n links."""
        n = 8
        heavy = 8 * 200
        flows = {0: {1: pattern_bits(heavy, 3)}}
        # Multiplier 4 so the in-band [tag|peer] header does not dominate
        # the relay chunk payload.
        direct = run_route(n, flows, "direct", bandwidth_multiplier=4, max_rounds=10**6)
        relay = run_route(n, flows, "relay", bandwidth_multiplier=4, max_rounds=10**6)
        assert relay.outputs[1] == direct.outputs[1]
        assert relay.rounds < direct.rounds / 2

    def test_relay_no_bulk_channel(self):
        flows = {0: {1: pattern_bits(100, 1)}}
        result = run_route(5, flows, "relay")
        assert result.bulk_bits == 0
        assert result.total_message_bits > 0

    def test_direct_no_bulk_channel(self):
        flows = {0: {1: pattern_bits(100, 1)}}
        result = run_route(5, flows, "direct")
        assert result.bulk_bits == 0

    def test_lenzen_uses_bulk_channel(self):
        flows = {0: {1: pattern_bits(100, 1)}}
        result = run_route(5, flows, "lenzen")
        assert result.bulk_bits == 100
