"""Model-invariant and failure-injection tests for the engine.

Property-based checks that the simulator conserves and accounts for
every bit: sent == received totals, per-node counters, bandwidth
ceilings, and that randomly-behaving programs cannot smuggle oversized
or duplicate messages past the checks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import BitString
from repro.clique.errors import BandwidthExceeded, DuplicateMessage
from repro.clique.network import CongestedClique


def random_chatter_program(plan):
    """A program driven by a per-node plan: list of rounds, each a list
    of (dst, width) sends."""

    def program(node):
        my_plan = plan[node.id]
        received = 0
        for round_sends in my_plan:
            for dst, width in round_sends:
                if dst != node.id:
                    node.send(dst, BitString.zeros(width))
            yield
            received += sum(len(m) for m in node.inbox.values())
        return received

    return program


@st.composite
def chatter_plans(draw):
    n = draw(st.integers(2, 6))
    bandwidth = max(1, (n - 1).bit_length())
    rounds = draw(st.integers(1, 4))
    plan = []
    for v in range(n):
        rounds_plan = []
        for _ in range(rounds):
            dsts = draw(
                st.lists(
                    st.integers(0, n - 1).filter(lambda d, v=v: d != v),
                    unique=True,
                    max_size=n - 1,
                )
            )
            rounds_plan.append(
                [(d, draw(st.integers(1, bandwidth))) for d in dsts]
            )
        plan.append(rounds_plan)
    return n, plan


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(chatter_plans())
    def test_sent_equals_received(self, n_plan):
        n, plan = n_plan
        result = CongestedClique(n).run(random_chatter_program(plan))
        assert sum(result.sent_bits) == sum(result.received_bits)
        assert sum(result.sent_bits) == result.total_message_bits
        # outputs report exactly what was delivered
        assert sum(result.outputs.values()) == result.total_message_bits

    @settings(max_examples=40, deadline=None)
    @given(chatter_plans())
    def test_per_node_totals_match_plan(self, n_plan):
        n, plan = n_plan
        result = CongestedClique(n).run(random_chatter_program(plan))
        for v in range(n):
            planned = sum(w for rnd in plan[v] for _, w in rnd)
            assert result.sent_bits[v] == planned

    @settings(max_examples=30, deadline=None)
    @given(chatter_plans())
    def test_round_count_is_plan_depth(self, n_plan):
        n, plan = n_plan
        result = CongestedClique(n).run(random_chatter_program(plan))
        assert result.rounds == len(plan[0])


class TestFailureInjection:
    def test_oversized_message_rejected_regardless_of_round(self):
        def program(node):
            yield
            yield
            if node.id == 0:
                node.send(1, BitString.zeros(node.bandwidth + 1))
            yield

        with pytest.raises(BandwidthExceeded):
            CongestedClique(3).run(program)

    def test_duplicate_in_late_round_rejected(self):
        def program(node):
            yield
            if node.id == 2:
                node.send(0, BitString(1, 1))
                node.send(0, BitString(0, 1))
            yield

        with pytest.raises(DuplicateMessage):
            CongestedClique(3).run(program)

    def test_exception_in_program_propagates(self):
        def program(node):
            yield
            if node.id == 1:
                raise RuntimeError("node crashed")
            yield

        with pytest.raises(RuntimeError, match="node crashed"):
            CongestedClique(3).run(program)

    def test_counters_survive_into_result(self):
        def program(node):
            node.count("custom", node.id * 10)
            node.count("custom", 1)
            yield
            return None

        result = CongestedClique(3).run(program)
        assert result.counters[2]["custom"] == 21
        assert result.max_counter("custom") == 21
        assert result.max_counter("missing") == 0

    def test_max_node_load(self):
        def program(node):
            if node.id == 0:
                node.send_to_all(BitString.zeros(2))
            yield
            return None

        result = CongestedClique(4).run(program)
        assert result.max_node_load() == 6  # node 0 sent 3 x 2 bits
