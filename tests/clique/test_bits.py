"""Unit and property tests for bit-exact message payloads."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clique.bits import (
    BitReader,
    BitString,
    BitWriter,
    decode_uint,
    encode_uint,
    uint_width,
)
from repro.clique.errors import EncodingError


class TestUintWidth:
    def test_zero_needs_one_bit(self):
        assert uint_width(0) == 1

    def test_powers_of_two(self):
        assert uint_width(1) == 1
        assert uint_width(2) == 2
        assert uint_width(3) == 2
        assert uint_width(4) == 3
        assert uint_width(255) == 8
        assert uint_width(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            uint_width(-1)


class TestBitString:
    def test_empty(self):
        b = BitString.empty()
        assert len(b) == 0
        assert not b
        assert b.to_str() == ""

    def test_from_str_roundtrip(self):
        b = BitString.from_str("10110")
        assert len(b) == 5
        assert b.to_str() == "10110"
        assert b.value == 0b10110

    def test_leading_zeros_preserved(self):
        b = BitString.from_str("0001")
        assert len(b) == 4
        assert b.value == 1
        assert b.to_str() == "0001"

    def test_indexing_msb_first(self):
        b = BitString.from_str("100")
        assert b[0] == 1
        assert b[1] == 0
        assert b[2] == 0
        assert b[-1] == 0
        assert b[-3] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.from_str("1")[1]

    def test_slicing(self):
        b = BitString.from_str("101100")
        assert b[1:4].to_str() == "011"
        assert b[:0].to_str() == ""
        assert b[4:].to_str() == "00"
        assert b[:].to_str() == "101100"

    def test_strided_slice(self):
        b = BitString.from_str("101010")
        assert b[::2].to_str() == "111"

    def test_concatenation(self):
        a = BitString.from_str("10")
        b = BitString.from_str("011")
        assert (a + b).to_str() == "10011"

    def test_equality_and_hash(self):
        a = BitString.from_str("0101")
        b = BitString.from_str("0101")
        c = BitString.from_str("101")  # same value, different length
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_value_too_large_rejected(self):
        with pytest.raises(EncodingError):
            BitString(4, 2)

    def test_iteration(self):
        assert list(BitString.from_str("110")) == [1, 1, 0]

    def test_zeros(self):
        z = BitString.zeros(5)
        assert z.to_str() == "00000"

    def test_bad_bit_rejected(self):
        with pytest.raises(EncodingError):
            BitString.from_bits([0, 2, 1])

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_from_bits_roundtrip(self, bits):
        b = BitString.from_bits(bits)
        assert b.to_bits() == bits
        assert len(b) == len(bits)

    @given(
        st.lists(st.integers(0, 1), max_size=64),
        st.lists(st.integers(0, 1), max_size=64),
    )
    def test_concat_is_associative_with_lists(self, xs, ys):
        a, b = BitString.from_bits(xs), BitString.from_bits(ys)
        assert (a + b).to_bits() == xs + ys

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100), st.data())
    def test_slice_matches_list_slice(self, bits, data):
        b = BitString.from_bits(bits)
        i = data.draw(st.integers(0, len(bits)))
        j = data.draw(st.integers(i, len(bits)))
        assert b[i:j].to_bits() == bits[i:j]


class TestEncodeDecodeUint:
    def test_roundtrip(self):
        for v in (0, 1, 5, 255):
            assert decode_uint(encode_uint(v, 8)) == v

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_uint(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_uint(-1, 8)

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, v):
        assert decode_uint(encode_uint(v, 32)) == v


class TestWriterReader:
    def test_mixed_roundtrip(self):
        w = BitWriter()
        w.write_uint(5, 4)
        w.write_bit(1)
        w.write_int(-3, 8)
        w.write_uint_seq([1, 2, 3], 5)
        w.write_bits(BitString.from_str("0110"))
        bits = w.finish()
        assert len(bits) == 4 + 1 + 8 + 15 + 4

        r = BitReader(bits)
        assert r.read_uint(4) == 5
        assert r.read_bit() == 1
        assert r.read_int(8) == -3
        assert r.read_uint_seq(3, 5) == [1, 2, 3]
        assert r.read_bits(4).to_str() == "0110"
        assert r.remaining == 0

    def test_overrun_raises(self):
        r = BitReader(BitString.from_str("10"))
        with pytest.raises(EncodingError):
            r.read_uint(3)

    def test_writer_overflow(self):
        with pytest.raises(EncodingError):
            BitWriter().write_uint(8, 3)

    def test_signed_bounds(self):
        w = BitWriter()
        w.write_int(-128, 8)
        w.write_int(127, 8)
        r = BitReader(w.finish())
        assert r.read_int(8) == -128
        assert r.read_int(8) == 127
        with pytest.raises(EncodingError):
            BitWriter().write_int(128, 8)
        with pytest.raises(EncodingError):
            BitWriter().write_int(-129, 8)

    def test_read_rest(self):
        w = BitWriter().write_uint(3, 2).write_uint(9, 6)
        r = BitReader(w.finish())
        r.read_uint(2)
        assert r.read_rest().value == 9

    @given(st.lists(st.integers(-100, 100), max_size=50))
    def test_int_seq_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_int(v, 9)
        r = BitReader(w.finish())
        assert [r.read_int(9) for _ in values] == values

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.booleans())))
    def test_heterogeneous_stream(self, items):
        w = BitWriter()
        for v, flag in items:
            w.write_uint(v, 16)
            w.write_bit(int(flag))
        r = BitReader(w.finish())
        for v, flag in items:
            assert r.read_uint(16) == v
            assert r.read_bit() == int(flag)
        assert r.remaining == 0
