"""Property tests: the bulk codec kernels are bit-exact with the scalar
:class:`BitWriter`/:class:`BitReader` path.

The bulk kernels (`encode_uint_array` / `decode_uint_array` and the
`write_uints` / `read_uints` fast paths) switch implementation by lane
width (numpy ``packbits`` up to 64 bits, big-int divide and conquer
above) and by element count (scalar loop below the small-count cutoff),
so the strategies deliberately straddle both thresholds.  Whatever route
a (count, width) pair takes, the bits must be identical to a plain
``write_uint`` loop — that is the whole contract that lets the hot
encoders adopt the kernels without perturbing any round or bit count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.bits import (
    BitReader,
    BitWriter,
    decode_uint_array,
    encode_uint_array,
)
from repro.clique.errors import EncodingError

# Widths straddle the 64-bit numpy lane limit; counts straddle the
# small-count scalar cutoff (32).
widths = st.integers(min_value=1, max_value=100)


@st.composite
def lanes(draw):
    """A (values, width) pair with every value in range for the width."""
    width = draw(widths)
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            max_size=80,
        )
    )
    return values, width


def scalar_encode(values, width):
    writer = BitWriter()
    for value in values:
        writer.write_uint(value, width)
    return writer.finish()


class TestBulkScalarParity:
    @given(lanes())
    @settings(max_examples=200, deadline=None)
    def test_encode_matches_scalar_writer(self, case):
        values, width = case
        bulk = encode_uint_array(values, width)
        scalar = scalar_encode(values, width)
        assert bulk == scalar
        assert len(bulk) == len(values) * width

    @given(lanes())
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, case):
        values, width = case
        bits = encode_uint_array(values, width)
        assert decode_uint_array(bits, len(values), width) == values

    @given(lanes())
    @settings(max_examples=200, deadline=None)
    def test_decode_matches_scalar_reader(self, case):
        values, width = case
        bits = scalar_encode(values, width)
        reader = BitReader(bits)
        scalar = [reader.read_uint(width) for _ in range(len(values))]
        assert decode_uint_array(bits, len(values), width) == scalar

    @given(lanes(), st.integers(min_value=0, max_value=7))
    @settings(max_examples=150, deadline=None)
    def test_writer_reader_fast_paths_mid_stream(self, case, prefix):
        # The bulk span sits behind a non-aligned prefix, so the reader
        # fast path must honour the running offset exactly.
        values, width = case
        bulk_writer = BitWriter().write_uint(prefix, 3)
        bulk_writer.write_uints(values, width).write_uint(5, 3)
        scalar_writer = BitWriter().write_uint(prefix, 3)
        for value in values:
            scalar_writer.write_uint(value, width)
        scalar_writer.write_uint(5, 3)
        assert bulk_writer.finish() == scalar_writer.finish()

        reader = BitReader(bulk_writer.finish())
        assert reader.read_uint(3) == prefix
        assert reader.read_uints(len(values), width) == values
        assert reader.read_uint(3) == 5
        assert reader.remaining == 0

    @given(lanes())
    @settings(max_examples=100, deadline=None)
    def test_numpy_input_matches_list_input(self, case):
        values, width = case
        if width >= 64:
            values = [v & ((1 << 63) - 1) for v in values]  # int64-safe
        arr = np.asarray(values, dtype=np.int64)
        assert encode_uint_array(arr, width) == encode_uint_array(values, width)


class TestWidthZeroRejection:
    """A zero-bit lane cannot carry a value: the bulk kernels reject
    ``width == 0`` outright (scalar ``write_uint(0, 0)`` stays a no-op)."""

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_bulk_encode_rejects_width_zero(self, values):
        with pytest.raises(EncodingError, match="width must be >= 1"):
            encode_uint_array(values, 0)
        with pytest.raises(EncodingError, match="width must be >= 1"):
            BitWriter().write_uints(values, 0)

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_bulk_decode_rejects_width_zero(self, count):
        bits = scalar_encode([1, 2, 3], 4)
        with pytest.raises(EncodingError, match="width must be >= 1"):
            decode_uint_array(bits, count, 0)
        with pytest.raises(EncodingError, match="width must be >= 1"):
            BitReader(bits).read_uints(count, 0)

    def test_out_of_range_value_rejected_like_scalar(self):
        for values in ([8], list(range(40)) + [8]):  # scalar + numpy route
            with pytest.raises(EncodingError, match="does not fit"):
                encode_uint_array(values, 3)
            with pytest.raises(EncodingError, match="does not fit"):
                scalar_encode(values, 3)

    def test_negative_value_rejected(self):
        for values in ([-1], list(range(40)) + [-1]):
            with pytest.raises(EncodingError, match="does not fit|negative"):
                encode_uint_array(values, 8)

    def test_decode_overrun_rejected(self):
        bits = scalar_encode([1, 2, 3], 4)  # 12 bits
        with pytest.raises(EncodingError, match="overruns"):
            decode_uint_array(bits, 4, 4)
        with pytest.raises(EncodingError, match="negative decode count"):
            decode_uint_array(bits, -1, 4)
