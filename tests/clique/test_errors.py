"""The exception taxonomy: hierarchy, structured payloads, pickling.

Fault and sweep errors cross process boundaries (sweep workers ship
failures back to the parent), so every exception with keyword-only
fields must round-trip through pickle with its payload intact.
"""

import pickle

import pytest

from repro.clique.errors import (
    BandwidthExceeded,
    CacheCorruption,
    CliqueError,
    DuplicateMessage,
    EncodingError,
    FaultInjected,
    InvalidAddress,
    ProtocolViolation,
    RoundLimitExceeded,
    RoutingOverload,
    SweepPointFailed,
)

ALL_ERRORS = (
    BandwidthExceeded,
    CacheCorruption,
    DuplicateMessage,
    EncodingError,
    FaultInjected,
    InvalidAddress,
    ProtocolViolation,
    RoundLimitExceeded,
    RoutingOverload,
    SweepPointFailed,
)


class TestHierarchy:
    def test_every_error_derives_from_clique_error(self):
        for cls in ALL_ERRORS:
            assert issubclass(cls, CliqueError)
        assert issubclass(CliqueError, Exception)

    @pytest.mark.parametrize("cls", (FaultInjected, SweepPointFailed,
                                     CacheCorruption))
    def test_new_errors_are_catchable_as_clique_error(self, cls):
        with pytest.raises(CliqueError):
            raise cls("boom")


class TestStructuredPayloads:
    def test_bandwidth_exceeded(self):
        exc = BandwidthExceeded(1, 2, 9, 4)
        assert (exc.src, exc.dst, exc.bits, exc.budget) == (1, 2, 9, 4)
        assert "9 bits" in str(exc) and "4 bits" in str(exc)

    def test_duplicate_message(self):
        exc = DuplicateMessage(3, 5)
        assert (exc.src, exc.dst) == (3, 5)
        assert "one message per ordered pair" in str(exc)

    def test_round_limit_exceeded(self):
        exc = RoundLimitExceeded(7)
        assert exc.limit == 7
        assert "7 rounds" in str(exc)

    def test_fault_injected_defaults(self):
        exc = FaultInjected("lost")
        assert exc.kind is None
        assert exc.round is None and exc.src is None and exc.dst is None

    def test_fault_injected_fields(self):
        exc = FaultInjected("lost", kind="unacked", round=3, src=1, dst=2)
        assert (exc.kind, exc.round, exc.src, exc.dst) == ("unacked", 3, 1, 2)

    def test_sweep_point_failed_fields(self):
        exc = SweepPointFailed("bad", index=4, config={"n": 8})
        assert exc.index == 4
        assert exc.config == {"n": 8}

    def test_cache_corruption_fields(self):
        exc = CacheCorruption("torn", key="abc", path="/tmp/abc.pkl")
        assert exc.key == "abc"
        assert exc.path == "/tmp/abc.pkl"


class TestPickling:
    """Keyword-only exception fields don't survive default ``args``-based
    Exception pickling; the ``__reduce__`` overrides must."""

    def test_fault_injected_roundtrip(self):
        exc = FaultInjected("lost", kind="drop", round=2, src=0, dst=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, FaultInjected)
        assert str(clone) == "lost"
        assert (clone.kind, clone.round, clone.src, clone.dst) == (
            "drop", 2, 0, 3,
        )

    def test_sweep_point_failed_roundtrip(self):
        exc = SweepPointFailed("bad", index=1, config={"n": 8, "seed": 3})
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, SweepPointFailed)
        assert str(clone) == "bad"
        assert clone.index == 1
        assert clone.config == {"n": 8, "seed": 3}

    def test_cache_corruption_roundtrip(self):
        exc = CacheCorruption("torn", key="abc", path="/x.pkl")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, CacheCorruption)
        assert (clone.key, clone.path) == ("abc", "/x.pkl")

    def test_roundtrip_with_defaults(self):
        for cls in (FaultInjected, SweepPointFailed, CacheCorruption):
            clone = pickle.loads(pickle.dumps(cls("plain")))
            assert isinstance(clone, cls)
            assert str(clone) == "plain"
