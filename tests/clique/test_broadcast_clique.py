"""Tests for the broadcast congested clique variant.

The paper's related work (Section 2) singles out the broadcast variant —
each node sends the *same* message to everyone each round — as the one
version of the model where lower bounds are known [19].  The engine
enforces the restriction; interestingly, all of our all_broadcast-based
algorithms (k-VC, the NCLIQUE(1) verifiers, MaxIS by gathering) run in
it unchanged, while the routing-based ones genuinely need unicast.
"""

import pytest

from repro.algorithms import k_vertex_cover, max_independent_set
from repro.algorithms.dominating_set import k_dominating_set
from repro.clique.bits import BitString
from repro.clique.errors import ProtocolViolation
from repro.clique.graph import CliqueGraph
from repro.clique.network import CongestedClique
from repro.core.verifiers import k_independent_set_verifier
from repro.problems import generators as gen
from repro.problems import reference as ref


def run_bcast(program, graph, **kwargs):
    clique = CongestedClique(graph.n, broadcast_only=True, **kwargs)
    return clique.run(program, graph)


class TestEnforcement:
    def test_unicast_rejected(self):
        def prog(node):
            if node.id == 0:
                node.send(1, BitString(1, 1))
            yield

        with pytest.raises(ProtocolViolation):
            run_bcast(prog, CliqueGraph.empty(3))

    def test_distinct_payloads_rejected(self):
        def prog(node):
            for d in range(node.n):
                if d != node.id:
                    node.send(d, BitString(d % 2, 1))
            yield

        with pytest.raises(ProtocolViolation):
            run_bcast(prog, CliqueGraph.empty(3))

    def test_uniform_broadcast_allowed(self):
        def prog(node):
            node.send_to_all(BitString(node.id % 2, 1))
            yield
            return sorted(node.inbox)

        result = run_bcast(prog, CliqueGraph.empty(4))
        assert result.outputs[0] == [1, 2, 3]

    def test_silence_allowed(self):
        def prog(node):
            if node.id == 0:
                node.send_to_all(BitString(1, 1))
            yield
            return len(node.inbox)

        result = run_bcast(prog, CliqueGraph.empty(4))
        assert result.outputs[1] == 1

    def test_bulk_channel_rejected(self):
        def prog(node):
            if node.id == 0:
                node._bulk_send(1, BitString(1, 1))
            yield

        with pytest.raises(ProtocolViolation):
            run_bcast(prog, CliqueGraph.empty(3))


class TestBroadcastAlgorithms:
    """Algorithms built purely on all_broadcast run unchanged in the
    broadcast congested clique."""

    @pytest.mark.parametrize("seed", range(3))
    def test_k_vertex_cover(self, seed):
        g = gen.random_graph(9, 0.3, seed)

        def prog(node):
            return (yield from k_vertex_cover(node, 3))

        result = run_bcast(prog, g, bandwidth_multiplier=2)
        found, witness = result.common_output()
        assert found == ref.has_vertex_cover(g, 3)

    @pytest.mark.parametrize("seed", range(3))
    def test_max_is_by_gathering(self, seed):
        g = gen.random_graph(8, 0.4, seed)

        def prog(node):
            return (yield from max_independent_set(node))

        mis = run_bcast(prog, g).common_output()
        assert len(mis) == ref.max_independent_set_size(g)

    def test_nclique1_verifier_is_broadcast(self):
        """NCLIQUE(1) membership verifiers broadcast-only too."""
        vp = k_independent_set_verifier(2)
        g, _ = gen.planted_independent_set(8, 2, 0.5, 1)
        labelling = vp.prover(g)
        n = g.n

        def aux(v):
            return {"label": labelling[v]}

        clique = CongestedClique(n, broadcast_only=True)
        result = clique.run(vp.algorithm.program, g, aux=aux)
        assert all(o == 1 for o in result.outputs.values())

    def test_routing_needs_unicast(self):
        """Theorem 9's algorithm routes distinct flows — genuinely not a
        broadcast algorithm."""
        g = gen.random_graph(9, 0.3, 1)

        def prog(node):
            return (yield from k_dominating_set(node, 2, scheme="direct"))

        with pytest.raises(ProtocolViolation):
            run_bcast(prog, g, bandwidth_multiplier=2)
