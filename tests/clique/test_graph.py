"""Tests for input graphs and the private-input-bit convention."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import networkx as nx

from repro.clique.errors import CliqueError
from repro.clique.graph import (
    INF,
    CliqueGraph,
    edge_owner,
    private_bit_layout,
)


def path_graph(n):
    return CliqueGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_empty_and_complete(self):
        e = CliqueGraph.empty(4)
        assert e.num_edges() == 0
        c = CliqueGraph.complete(4)
        assert c.num_edges() == 6

    def test_from_edges(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(2, 3)
        assert not g.has_edge(0, 2)
        assert g.num_edges() == 2

    def test_self_loop_rejected(self):
        with pytest.raises(CliqueError):
            CliqueGraph.from_edges(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(CliqueError):
            CliqueGraph.from_edges(3, [(0, 3)])

    def test_asymmetric_undirected_rejected(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(CliqueError):
            CliqueGraph(adj)

    def test_directed(self):
        g = CliqueGraph.from_edges(3, [(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_weighted(self):
        g = CliqueGraph.from_weighted_edges(3, [(0, 1, 7)])
        assert g.weight(0, 1) == 7
        assert g.weight(1, 0) == 7
        assert not g.has_edge(0, 2)
        assert g.weight(0, 2) == INF

    def test_negative_weight_rejected(self):
        with pytest.raises(CliqueError):
            CliqueGraph.from_weighted_edges(3, [(0, 1, -1)])

    def test_adjacency_readonly(self):
        g = CliqueGraph.complete(3)
        with pytest.raises(ValueError):
            g.adjacency[0, 1] = False


class TestViews:
    def test_local_view_undirected(self):
        g = path_graph(4)
        assert list(g.local_view(1)) == [True, False, True, False]

    def test_local_view_directed(self):
        g = CliqueGraph.from_edges(3, [(0, 1), (2, 0)], directed=True)
        view = g.local_view(0)
        assert view.shape == (2, 3)
        assert list(view[0]) == [False, True, False]  # out-row
        assert list(view[1]) == [False, False, True]  # in-col

    def test_degree(self):
        g = path_graph(4)
        assert [g.degree(v) for v in range(4)] == [1, 2, 2, 1]

    def test_degree_weighted(self):
        g = CliqueGraph.from_weighted_edges(4, [(0, 1, 5), (0, 2, 3)])
        assert g.degree(0) == 2
        assert g.degree(3) == 0

    def test_edges_listing(self):
        g = CliqueGraph.from_edges(4, [(0, 1), (2, 3), (1, 3)])
        assert sorted(g.edges()) == [(0, 1), (1, 3), (2, 3)]


class TestNetworkxInterop:
    def test_roundtrip_unweighted(self):
        g0 = nx.erdos_renyi_graph(10, 0.4, seed=1)
        g = CliqueGraph.from_networkx(g0)
        back = g.to_networkx()
        assert set(back.edges()) == set(g0.edges())

    def test_roundtrip_weighted(self):
        g0 = nx.Graph()
        g0.add_nodes_from(range(4))
        g0.add_edge(0, 1, weight=5)
        g0.add_edge(2, 3, weight=2)
        g = CliqueGraph.from_networkx(g0)
        assert g.weighted and g.weight(0, 1) == 5
        back = g.to_networkx()
        assert back[0][1]["weight"] == 5

    def test_bad_labels_rejected(self):
        g0 = nx.Graph()
        g0.add_edge("a", "b")
        with pytest.raises(CliqueError):
            CliqueGraph.from_networkx(g0)


class TestEquality:
    def test_eq_and_hash(self):
        a = path_graph(4)
        b = path_graph(4)
        c = CliqueGraph.complete(4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestEdgeOwnership:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 13, 16])
    def test_every_pair_owned_once(self, n):
        layout = private_bit_layout(n)
        covered = set()
        for v, owned in enumerate(layout):
            for u in owned:
                pair = (min(u, v), max(u, v))
                assert pair not in covered
                covered.add(pair)
        assert len(covered) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 13, 16])
    def test_minimum_ownership(self, n):
        """Each node owns at least floor((n-1)/2) potential edges (paper §3)."""
        layout = private_bit_layout(n)
        for owned in layout:
            assert len(owned) >= (n - 1) // 2

    @pytest.mark.parametrize("n", [3, 4, 7, 8])
    def test_owner_is_endpoint(self, n):
        for u in range(n):
            for v in range(n):
                if u != v:
                    assert edge_owner(u, v, n) in (u, v)

    def test_owner_symmetric(self):
        for n in (4, 5, 8):
            for u in range(n):
                for v in range(u + 1, n):
                    assert edge_owner(u, v, n) == edge_owner(v, u, n)

    def test_self_loop_rejected(self):
        with pytest.raises(CliqueError):
            edge_owner(1, 1, 4)


class TestPrivateInputBits:
    def test_bits_match_adjacency(self):
        g = CliqueGraph.from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)])
        layout = private_bit_layout(5)
        for v in range(5):
            bits = g.private_input_bits(v)
            assert len(bits) == len(layout[v])
            for bit, u in zip(bits, layout[v]):
                assert bit == int(g.has_edge(v, u))

    def test_directed_rejected(self):
        g = CliqueGraph.from_edges(3, [(0, 1)], directed=True)
        with pytest.raises(CliqueError):
            g.private_input_bits(0)

    @given(st.integers(2, 12), st.randoms(use_true_random=False))
    def test_bits_determine_graph(self, n, rnd):
        """The concatenation of all nodes' private bits encodes G exactly."""
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rnd.random() < 0.5
        ]
        g = CliqueGraph.from_edges(n, edges)
        layout = private_bit_layout(n)
        recovered = set()
        for v in range(n):
            for bit, u in zip(g.private_input_bits(v), layout[v]):
                if bit:
                    recovered.add((min(u, v), max(u, v)))
        assert recovered == {(min(u, v), max(u, v)) for u, v in edges}
