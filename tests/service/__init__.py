"""Tests for the service layer (sharded kernel + repro serve daemon)."""
