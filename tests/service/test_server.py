"""The repro serve daemon: request handling, the resident cache,
concurrency, backpressure and lifecycle."""

import os
import socket
import threading
import time

import pytest

from repro.service import (
    ReproServer,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.protocol import SOCKET_ENV, default_socket_path, raise_for_reply


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        str(tmp_path / "serve.sock"),
        workers=4,
        queue_size=16,
        cache_root=tmp_path / "cache",
    )
    with srv:
        ServiceClient(srv.socket_path).wait_until_ready()
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.socket_path, timeout=60.0)


class TestProtocol:
    def test_default_socket_path_env_override(self, monkeypatch):
        monkeypatch.setenv(SOCKET_ENV, "/tmp/custom.sock")
        assert default_socket_path() == "/tmp/custom.sock"
        monkeypatch.delenv(SOCKET_ENV)
        assert str(os.getuid()) in default_socket_path()

    def test_raise_for_reply(self):
        assert raise_for_reply({"ok": True, "x": 1}) == {"ok": True, "x": 1}
        with pytest.raises(ServiceBusy):
            raise_for_reply({"ok": False, "error": "busy", "message": "full"})
        with pytest.raises(ServiceError, match="boom"):
            raise_for_reply({"ok": False, "error": "error", "message": "boom"})


class TestRequests:
    def test_ping_and_status(self, server, client):
        pong = client.ping()
        assert pong["pid"] == os.getpid()
        assert pong["version"]
        status = client.status()
        assert status["socket"] == server.socket_path
        assert status["queue_capacity"] == 16
        assert status["workers"] == 4
        assert status["cache"]["entries"] == 0
        assert set(status["counters"]) == {
            "requests",
            "completed",
            "errors",
            "busy_rejections",
            "peak_queue_depth",
            "in_flight",
        }

    def test_run_cold_then_cached(self, server, client):
        cold = client.run("bfs", {"n": 10, "seed": 3})
        assert cold["cached"] is False
        assert cold["rounds"] >= 1
        assert cold["metrics"]["total_bits"] > 0
        warm = client.run("bfs", {"n": 10, "seed": 3})
        assert warm["cached"] is True
        for field in ("rounds", "total_message_bits", "bulk_bits"):
            assert warm[field] == cold[field]
        assert server.cache.stats()["entries"] == 1

    def test_run_on_sharded_engine(self, client):
        fast = client.run("kvc", {"n": 9, "seed": 1})
        sharded = client.run("kvc", {"n": 9, "seed": 1}, engine="sharded")
        assert sharded["cached"] is False  # engine is part of the key
        assert sharded["rounds"] == fast["rounds"]
        assert sharded["common_output"] == fast["common_output"]

    def test_run_unknown_algorithm_is_an_error(self, client):
        with pytest.raises(ServiceError, match="unknown algorithm"):
            client.run("nope", {"n": 8})

    def test_run_respects_fault_plan(self, client):
        clean = client.run("bfs", {"n": 9, "seed": 0})
        # A zero-rate plan changes the cache key but not the outcome.
        faulty = client.run("bfs", {"n": 9, "seed": 0}, fault_plan="drop=0.0,seed=1")
        assert faulty["cached"] is False
        assert faulty["rounds"] == clean["rounds"]

    def test_run_with_execution_spec(self, client):
        fast = client.run("fanout", {"n": 16, "rounds": 3, "seed": 0})
        columnar = client.run(
            "fanout",
            {"n": 16, "rounds": 3, "seed": 0},
            execution={"engine": "columnar", "check": "bandwidth"},
        )
        assert columnar["cached"] is False  # engine is part of the key
        assert columnar["rounds"] == fast["rounds"]
        assert columnar["common_output"] == fast["common_output"]
        # An explicit spec naming the daemon's default engine shares
        # the cache entry written by the plain request.
        same = client.run(
            "fanout",
            {"n": 16, "rounds": 3, "seed": 0},
            execution={"engine": "fast"},
        )
        assert same["cached"] is True

    def test_run_execution_conflict_is_an_error(self, client):
        with pytest.raises(ServiceError, match="conflicting execution"):
            client.run(
                "fanout",
                {"n": 8, "seed": 0},
                execution={"engine": "columnar"},
                engine="fast",
            )

    def test_sweep_and_cache_interop(self, client):
        configs = [{"n": n, "seed": 0} for n in (6, 8)]
        first = client.sweep("kds", configs, workers=2)
        assert first["points"] == 2
        assert first["failed"] == 0
        assert first["from_cache"] == 0
        assert len(first["rounds"]) == 2
        assert first["summary"]["runs"] == 2
        second = client.sweep("kds", configs)
        assert second["from_cache"] == 2
        # A remote run for the same point hits the sweep's cache entry.
        run = client.run("kds", {"n": 6, "seed": 0})
        assert run["cached"] is True

    def test_sweep_rejects_bad_configs(self, client):
        with pytest.raises(ServiceError, match="non-empty"):
            client.sweep("kds", [])

    def test_shutdown_request_stops_the_server(self, server, client):
        reply = client.shutdown()
        assert reply["stopping"] is True
        assert server._stop.wait(timeout=5.0)


class TestConcurrency:
    def test_sustains_eight_concurrent_requests(self, server, client):
        """The acceptance bar: >= 8 in-flight requests all complete and
        the queue depth never exceeds its bound."""
        results = [None] * 8
        errors = []

        def one(index):
            try:
                results[index] = ServiceClient(server.socket_path).run(
                    "bfs", {"n": 8, "seed": index}
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(r is not None and r["rounds"] >= 1 for r in results)
        status = client.status()
        assert status["counters"]["completed"] >= 8
        assert status["counters"]["peak_queue_depth"] <= 16

    def test_backpressure_rejects_when_queue_is_full(self, tmp_path):
        """With one worker and a one-slot queue: request A occupies the
        worker, B fills the queue, C must get an immediate busy reply."""
        srv = ReproServer(
            str(tmp_path / "bp.sock"),
            workers=1,
            queue_size=1,
            cache_root=tmp_path / "cache",
        )
        with srv:
            client = ServiceClient(srv.socket_path, timeout=30.0)
            client.wait_until_ready()
            background = []

            def sleeper():
                background.append(client.sleep(1.5))

            def in_flight() -> int:
                with srv._lock:
                    return srv._counters["in_flight"]

            first = threading.Thread(target=sleeper)
            first.start()
            deadline = time.monotonic() + 5.0
            # Wait until A is off the queue and inside the worker.  The
            # in_flight gauge only rises after the worker dequeues, so
            # there is no window where A could still be about to enqueue.
            while not (in_flight() >= 1 and srv._queue.qsize() == 0):
                assert time.monotonic() < deadline, "A never reached a worker"
                time.sleep(0.02)
            second = threading.Thread(target=sleeper)
            second.start()
            while srv._queue.qsize() < 1:
                assert time.monotonic() < deadline, "B never reached the queue"
                time.sleep(0.02)
            with pytest.raises(ServiceBusy, match="queue is full"):
                client.sleep(0.1)
            first.join(timeout=30)
            second.join(timeout=30)
            assert len(background) == 2  # queued work still completed
            assert client.status()["counters"]["busy_rejections"] == 1


class TestLifecycle:
    def test_live_socket_is_not_displaced(self, server, tmp_path):
        clash = ReproServer(server.socket_path, cache_root=tmp_path / "c2")
        with pytest.raises(ServiceError, match="already listening"):
            clash.start()
        # The original daemon is untouched.
        assert ServiceClient(server.socket_path).ping()["pid"] == os.getpid()

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        leftover.bind(path)
        leftover.close()  # dead daemon: file exists, nobody listens
        assert os.path.exists(path)
        with ReproServer(path, cache_root=tmp_path / "cache") as srv:
            client = ServiceClient(path)
            client.wait_until_ready()
            assert client.ping()["pid"] == os.getpid()
        assert not os.path.exists(srv.socket_path)  # stop() cleans up

    def test_client_without_daemon_raises_unavailable(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nobody.sock"), timeout=1.0)
        with pytest.raises(ServiceUnavailable, match="repro serve"):
            client.ping()

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ServiceError, match="workers"):
            ReproServer(str(tmp_path / "x.sock"), workers=0)
        with pytest.raises(ServiceError, match="queue_size"):
            ReproServer(str(tmp_path / "x.sock"), queue_size=0)


class TestWarmLatency:
    def test_warm_requests_beat_cold_by_5x(self, server):
        """The acceptance bar behind the service-warm-run workload: a
        cache-hit request through the daemon is at least 5x faster than
        the cold request that computed the entry."""
        client = ServiceClient(server.socket_path, timeout=120.0)
        config = {"n": 16, "seed": 0}
        t0 = time.perf_counter()
        cold = client.run("apsp", config)
        cold_seconds = time.perf_counter() - t0
        assert cold["cached"] is False
        warm_samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            warm = client.run("apsp", config)
            warm_samples.append(time.perf_counter() - t0)
            assert warm["cached"] is True
        warm_seconds = min(warm_samples)
        assert cold_seconds >= 5 * warm_seconds, (
            f"cold={cold_seconds:.4f}s warm={warm_seconds:.4f}s "
            f"ratio={cold_seconds / warm_seconds:.1f}x"
        )
