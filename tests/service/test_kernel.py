"""The sharded coroutine-kernel backend must be observationally
equivalent to the reference engine — across shard counts, executors,
transports, check levels, fault plans and observers."""

import numpy as np
import pytest

from repro.clique.errors import CliqueError
from repro.clique.network import CongestedClique
from repro.engine import CATALOG, catalog_factory, diff_catalog, run_spec
from repro.engine.base import resolve_engine
from repro.engine.diff import assert_engines_agree
from repro.service.kernel import (
    Kernel,
    ShardTransport,
    ShardedEngine,
    fanout_spec,
    shard_ranges,
)


class TestKernel:
    def test_spawn_rejects_non_generator(self):
        kernel = Kernel()
        with pytest.raises(CliqueError, match="generator"):
            kernel.spawn(0, lambda: None)

    def test_step_advances_in_spawn_order_and_collects_returns(self):
        trace = []

        def task(key, rounds):
            for r in range(rounds):
                trace.append((key, r))
                yield
            return key * 10

        kernel = Kernel()
        for key, rounds in ((0, 1), (1, 2), (2, 1)):
            kernel.spawn(key, task(key, rounds))
        assert len(kernel) == 3

        assert kernel.step(0) == []  # everyone reaches its first yield
        assert trace == [(0, 0), (1, 0), (2, 0)]
        assert kernel.now == 0

        finished = kernel.step(1)  # tasks 0 and 2 return, 1 sleeps again
        assert finished == [(0, 0), (2, 20)]
        assert len(kernel) == 1
        assert kernel.step(2) == [(1, 10)]
        assert len(kernel) == 0


class TestShardTransport:
    def test_roundtrip_plain_objects(self):
        obj = {"a": [1, 2, 3], "b": ("x", None)}
        assert ShardTransport.roundtrip(obj) == obj

    def test_numpy_payloads_travel_out_of_band(self):
        arr = np.arange(1024, dtype=np.int64)
        body, buffers = ShardTransport.encode(arr)
        assert buffers, "large arrays should use out-of-band buffers"
        restored = ShardTransport.decode(body, buffers)
        assert np.array_equal(restored, arr)

    def test_shard_ranges_partition(self):
        for n, shards in ((10, 3), (7, 7), (5, 16), (1, 1)):
            ranges = shard_ranges(n, shards)
            covered = [v for lo, hi in ranges for v in range(lo, hi)]
            assert covered == list(range(n))
        with pytest.raises(CliqueError, match="at least one shard"):
            shard_ranges(4, 0)


class TestCatalogAgreement:
    @pytest.mark.parametrize("algorithm", sorted(CATALOG))
    def test_reference_and_sharded_agree(self, algorithm):
        report = assert_engines_agree(
            catalog_factory,
            {"algorithm": algorithm, "n": 8, "seed": 3},
            engines=("reference", "sharded"),
        )
        assert report.ok
        assert report.rounds["reference"] == report.rounds["sharded"]

    def test_diff_catalog_all_ok(self):
        reports = diff_catalog(
            config={"n": 6, "seed": 1}, engines=("reference", "sharded")
        )
        assert len(reports) == len(CATALOG)
        assert all(r.ok for r in reports), [r.summary() for r in reports]

    @pytest.mark.parametrize("shards", [1, 3, 64])
    def test_shard_count_is_invisible(self, shards):
        assert_engines_agree(
            catalog_factory,
            {"algorithm": "sorting", "n": 8, "seed": 0},
            engines=("fast", ShardedEngine(shards=shards)),
            label=f"sorting/shards={shards}",
        )

    @pytest.mark.parametrize("check", ["full", "bandwidth", "off"])
    def test_check_levels_agree(self, check):
        assert_engines_agree(
            catalog_factory,
            {"algorithm": "bfs", "n": 8, "seed": 0},
            engines=("reference", ShardedEngine(check=check)),
            label=f"bfs/{check}",
        )

    @pytest.mark.parametrize("algorithm", ["bfs", "kds", "matmul"])
    def test_pickle_transport_agrees(self, algorithm):
        assert_engines_agree(
            catalog_factory,
            {"algorithm": algorithm, "n": 8, "seed": 1},
            engines=("reference", ShardedEngine(transport="pickle")),
            label=f"{algorithm}/pickle",
        )

    @pytest.mark.parametrize("algorithm", ["bfs", "subgraph"])
    def test_process_executor_agrees(self, algorithm):
        assert_engines_agree(
            catalog_factory,
            {"algorithm": algorithm, "n": 8, "seed": 1},
            engines=("reference", ShardedEngine(executor="process", shards=2)),
            label=f"{algorithm}/process",
        )

    def test_fault_plan_parity_with_fast(self):
        # The fan-out program ignores its inbox, so dropped deliveries
        # change the accounting but never the protocol.
        config = {"n": 16, "rounds": 3, "senders": 16}
        plan = "drop=0.4,seed=7"
        r_fast, _ = run_spec(fanout_spec(config), "fast", fault_plan=plan)
        r_sharded, _ = run_spec(
            fanout_spec(config), ShardedEngine(), fault_plan=plan
        )
        assert r_sharded.rounds == r_fast.rounds
        assert r_sharded.total_message_bits == r_fast.total_message_bits
        assert r_sharded.received_bits == r_fast.received_bits

    def test_metrics_parity_with_fast(self):
        config = {"algorithm": "kvc", "n": 8, "seed": 0}
        r_fast, _ = run_spec(catalog_factory(dict(config)), "fast")
        r_sharded, _ = run_spec(catalog_factory(dict(config)), "sharded")
        fast_dict = r_fast.metrics.to_dict()
        sharded_dict = r_sharded.metrics.to_dict()
        assert fast_dict.pop("engine") == "fast"
        assert sharded_dict.pop("engine") == "sharded"
        assert sharded_dict == fast_dict

    def test_transcript_parity_with_fast(self):
        spec = catalog_factory({"algorithm": "broadcast", "n": 6, "seed": 0})
        spec_sh = catalog_factory({"algorithm": "broadcast", "n": 6, "seed": 0})
        r_fast, _ = run_spec(spec, "fast", check="full")
        r_sharded, _ = run_spec(
            spec_sh, ShardedEngine(check="full", record_transcripts=True)
        )
        assert r_fast.rounds == r_sharded.rounds
        assert r_sharded.transcripts is not None
        for t in r_sharded.transcripts:
            assert len(t.rounds) == r_sharded.rounds


class TestEngineSurface:
    def test_registered_lazily(self):
        engine = resolve_engine("sharded")
        assert isinstance(engine, ShardedEngine)
        assert engine.describe()["engine"] == "sharded"

    def test_unknown_engine_error_lists_sharded(self):
        with pytest.raises(CliqueError, match="sharded"):
            resolve_engine("warp")

    def test_constructor_validation(self):
        with pytest.raises(CliqueError, match="check"):
            ShardedEngine(check="paranoid")
        with pytest.raises(CliqueError, match="executor"):
            ShardedEngine(executor="thread")
        with pytest.raises(CliqueError, match="transport"):
            ShardedEngine(transport="json")
        with pytest.raises(CliqueError, match="shards"):
            ShardedEngine(shards=0)

    def test_describe_is_complete(self):
        desc = ShardedEngine(
            check="off", shards=2, executor="process", transport="pickle"
        ).describe()
        assert desc == {
            "engine": "sharded",
            "check": "off",
            "shards": 2,
            "executor": "process",
            "transport": "pickle",
        }

    def test_rejects_broadcast_only_cliques(self):
        clique = CongestedClique(4, broadcast_only=True)

        def prog(node):
            return None
            yield

        with pytest.raises(CliqueError, match="plain congested clique"):
            ShardedEngine().execute(clique, prog, [None] * 4, [None] * 4)


class TestFanoutSpec:
    def test_load_scales_with_senders(self):
        result, _ = run_spec(
            fanout_spec({"n": 32, "rounds": 2, "senders": 4}), "sharded"
        )
        assert result.rounds == 2
        # 4 senders broadcast one bit to 31 peers, twice.
        assert result.total_message_bits == 4 * 31 * 2

    def test_matches_fast_engine_at_scale(self):
        config = {"n": 256, "rounds": 1, "senders": 8}
        r_fast, _ = run_spec(fanout_spec(config), "fast")
        r_sharded, _ = run_spec(fanout_spec(config), "sharded")
        assert r_fast.rounds == r_sharded.rounds
        assert r_fast.total_message_bits == r_sharded.total_message_bits
