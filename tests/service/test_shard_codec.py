"""Shard boundary plumbing: ``shard_ranges`` partition properties and
``ShardTransport`` out-of-band buffer round-trips of the array shapes
the sharded columnar engine actually ships (non-contiguous slices,
zero-length columns, >64-bit element widths)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clique.errors import CliqueError
from repro.service.kernel import ShardTransport, shard_ranges


class TestShardRangesProperties:
    @given(
        n=st.integers(min_value=1, max_value=500),
        shards=st.integers(min_value=1, max_value=600),
    )
    def test_ranges_partition_exactly_in_order(self, n, shards):
        ranges = shard_ranges(n, shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        covered = [v for lo, hi in ranges for v in range(lo, hi)]
        assert covered == list(range(n))

    @given(n=st.integers(min_value=1, max_value=500), data=st.data())
    def test_no_empty_shard_when_shards_at_most_n(self, n, data):
        shards = data.draw(st.integers(min_value=1, max_value=n))
        ranges = shard_ranges(n, shards)
        assert len(ranges) == shards
        assert all(hi > lo for lo, hi in ranges)

    @given(
        n=st.integers(min_value=1, max_value=200),
        excess=st.integers(min_value=1, max_value=400),
    )
    def test_more_shards_than_nodes_degrades_to_n_singletons(self, n, excess):
        ranges = shard_ranges(n, n + excess)
        assert ranges == [(v, v + 1) for v in range(n)]

    @given(
        n=st.integers(min_value=1, max_value=500),
        shards=st.integers(min_value=1, max_value=600),
    )
    def test_balanced_within_one(self, n, shards):
        sizes = [hi - lo for lo, hi in shard_ranges(n, shards)]
        assert max(sizes) - min(sizes) <= 1

    @given(shards=st.integers(max_value=0))
    def test_fewer_than_one_shard_rejected(self, shards):
        with pytest.raises(CliqueError, match="at least one shard"):
            shard_ranges(8, shards)


def _assert_array_roundtrip(arr):
    body, buffers = ShardTransport.encode(arr)
    assert all(isinstance(b, bytes) for b in buffers)
    out = ShardTransport.decode(body, buffers)
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    np.testing.assert_array_equal(out, arr)
    return out


class TestShardTransportBuffers:
    def test_contiguous_array_ships_out_of_band(self):
        arr = np.arange(4096, dtype=np.uint64)
        body, buffers = ShardTransport.encode(arr)
        # The payload crosses as a raw out-of-band buffer, not inside
        # the pickle body.
        assert buffers
        assert sum(len(b) for b in buffers) >= arr.nbytes
        assert len(body) < arr.nbytes
        np.testing.assert_array_equal(
            ShardTransport.decode(body, buffers), arr
        )

    def test_non_contiguous_view_roundtrips(self):
        base = np.arange(1000, dtype=np.uint64)
        for view in (base[::2], base[::-1], base[7:901:3]):
            assert not view.flags["C_CONTIGUOUS"] or view is base
            _assert_array_roundtrip(view)

    def test_non_contiguous_2d_slice_roundtrips(self):
        base = np.arange(30 * 17, dtype=np.int64).reshape(30, 17)
        view = base[::3, 1::2]
        assert not view.flags["C_CONTIGUOUS"]
        _assert_array_roundtrip(view)

    def test_zero_length_arrays_roundtrip(self):
        for dtype in (np.int64, np.uint64, np.float64, np.complex128):
            out = _assert_array_roundtrip(np.empty(0, dtype=dtype))
            assert out.size == 0

    def test_wider_than_64_bit_elements_roundtrip(self):
        # complex128: 128-bit elements.
        rng = np.random.default_rng(7)
        _assert_array_roundtrip(
            rng.standard_normal(257) + 1j * rng.standard_normal(257)
        )
        # Structured dtype: 160-bit records.
        rec = np.zeros(
            13, dtype=[("src", np.int64), ("val", np.uint64), ("w", np.int32)]
        )
        rec["src"] = np.arange(13)
        rec["val"] = np.arange(13, dtype=np.uint64) * np.uint64(3)
        rec["w"] = 17
        out = ShardTransport.roundtrip(rec)
        assert out.dtype == rec.dtype
        np.testing.assert_array_equal(out, rec)

    def test_message_slice_tuple_roundtrips(self):
        # The actual per-round payload shape: COO columns plus bulk list.
        us = np.arange(100, dtype=np.int64)
        ud = (us + 1) % 8
        uv = us.astype(np.uint64) * np.uint64(0x9E3779B1)
        uw = np.full(100, 48, dtype=np.int64)
        owned = (ud >= 2) & (ud < 5)  # a boolean-mask slice, like routing
        payload = (
            3,
            (us[owned], ud[owned], uv[owned], uw[owned]),
            [(0, 3, 123456789, 80)],
        )
        round_no, coo, bulk = ShardTransport.roundtrip(payload)
        assert round_no == 3
        assert bulk == [(0, 3, 123456789, 80)]
        for sent, got in zip((us[owned], ud[owned], uv[owned], uw[owned]), coo):
            np.testing.assert_array_equal(sent, got)
