"""End-to-end CLI smoke: a real ``repro serve`` daemon process serving
``repro run --remote`` and ``repro serve --status``/``--stop``."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import ServiceClient

ROOT = Path(__file__).resolve().parents[2]


def _env() -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return env


def _repro(*args: str, timeout: float = 60.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "cli.sock")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            sock,
            "--cache",
            str(tmp_path / "cache"),
            "--workers",
            "2",
        ],
        env=_env(),
        cwd=ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        ServiceClient(sock).wait_until_ready(timeout=30.0)
        yield sock, proc
    finally:
        if proc.poll() is None:
            proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
            proc.kill()
            proc.wait(timeout=10)


class TestServeCLI:
    def test_full_cycle(self, daemon):
        sock, proc = daemon

        cold = _repro("run", "triangle", "--remote", "--socket", sock, "--n", "12")
        assert cold.returncode == 0, cold.stderr
        assert "cached: no" in cold.stdout

        warm = _repro("run", "triangle", "--remote", "--socket", sock, "--n", "12")
        assert warm.returncode == 0, warm.stderr
        assert "cached: yes" in warm.stdout

        status = _repro("serve", "--status", "--socket", sock)
        assert status.returncode == 0, status.stderr
        assert "cache.entries" in status.stdout
        assert "pool.warm" in status.stdout

        stop = _repro("serve", "--stop", "--socket", sock)
        assert stop.returncode == 0, stop.stderr
        assert proc.wait(timeout=30) == 0
        assert not os.path.exists(sock)

    def test_remote_rejects_non_catalog_algorithm(self, daemon):
        sock, _ = daemon
        bad = _repro("run", "mst", "--remote", "--socket", sock)
        assert bad.returncode == 2
        assert "no catalog entry" in bad.stderr

    def test_status_without_daemon_fails_cleanly(self, tmp_path):
        result = _repro("serve", "--status", "--socket", str(tmp_path / "nobody.sock"))
        assert result.returncode == 2
        assert "no repro daemon" in result.stderr
