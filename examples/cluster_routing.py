#!/usr/bin/env python3
"""Scenario: routing-table computation in a fully connected cluster.

The congested clique models densely connected systems (the paper's
motivating setting): think of a rack of n machines with all-to-all
links, where the *application* topology is a sparse weighted overlay
graph.  Each machine knows only its own overlay links and the cluster
must compute global routing state.

The pipeline below computes, entirely by message passing under the
O(log n)-bit budget:

1. a minimum spanning tree of the overlay (Boruvka, O(log n) rounds),
2. single-source shortest paths from a coordinator (Bellman-Ford),
3. all-pairs shortest paths via distributed (min,+) squaring
   (O(n^(1/3) log n) entry-loads per link — the Figure 1 bound).

Run:  python examples/cluster_routing.py
"""

import numpy as np

from repro.algorithms import apsp_minplus, bellman_ford_sssp, boruvka_mst
from repro.clique import INF, run_algorithm
from repro.problems import generators as gen
from repro.problems import reference as ref


def main() -> None:
    n, max_w = 24, 50
    overlay = gen.random_weighted_graph(n, 0.25, max_weight=max_w, seed=11)
    print(f"overlay: {overlay}")

    # --- 1. MST --------------------------------------------------------
    def mst_prog(node):
        return (yield from boruvka_mst(node))

    result = run_algorithm(
        mst_prog, overlay, aux=lambda v: {"max_weight": max_w}
    )
    mst = result.common_output()
    weight = sum(overlay.weight(u, v) for u, v in mst)
    print(f"MST: {len(mst)} edges, total weight {weight}, "
          f"rounds={result.rounds}")

    # --- 2. SSSP from the coordinator (node 0) --------------------------
    def sssp_prog(node):
        return (yield from bellman_ford_sssp(node))

    result = run_algorithm(
        sssp_prog,
        overlay,
        aux=lambda v: {"source": 0, "max_weight": max_w},
    )
    dist = np.array(result.common_output())
    reachable = int((dist < INF).sum())
    print(f"SSSP from node 0: {reachable}/{n} reachable, "
          f"max finite distance {dist[dist < INF].max()}, "
          f"rounds={result.rounds}")

    # --- 3. APSP (routing tables) ---------------------------------------
    def apsp_prog(node):
        row = yield from apsp_minplus(node)
        return row

    result = run_algorithm(
        apsp_prog,
        overlay,
        aux=lambda v: {"max_weight": max_w},
        bandwidth_multiplier=2,
    )
    table = np.stack([result.outputs[v] for v in range(n)])
    want = ref.apsp_matrix(overlay)
    ok = np.array_equal(np.minimum(table, INF), np.minimum(want, INF))
    print(f"APSP routing tables: verified={ok}, rounds={result.rounds}")
    print()
    print("every machine now holds its full distance row — built with "
          "bit-exact O(log n) messages only.")


if __name__ == "__main__":
    main()
