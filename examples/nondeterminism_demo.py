#!/usr/bin/env python3
"""Nondeterminism, the normal form, and the Sigma_2 collapse.

Walks through Sections 5-6 of the paper executably:

1. an NCLIQUE(1) verifier for 3-colouring accepts a prover's certificate
   in one round,
2. Theorem 3: the verifier is transformed into transcript normal form
   and re-verified, with the label size against the O(T n log n) bound,
3. Theorem 7: the universal Sigma_2 algorithm decides an arbitrary
   problem on a miniature graph by guess-and-probe.

Run:  python examples/nondeterminism_demo.py
"""

from repro.core import (
    k_colouring_verifier,
    normal_form_label_bound,
    run_with_labelling,
    sigma2_decides,
    to_normal_form,
    transcript_labelling,
)
from repro.problems import generators as gen, parity_of_edges_problem


def main() -> None:
    # --- 1. NCLIQUE(1) verification -----------------------------------
    vp = k_colouring_verifier(3)
    g, _ = gen.planted_colouring(12, 3, p=0.6, seed=7)
    certificate = vp.prover(g)
    result = run_with_labelling(vp.algorithm, g, certificate)
    accepted = all(o == 1 for o in result.outputs.values())
    print("3-colouring verifier on a planted 3-colourable graph (n=12):")
    print(f"  certificate = per-node colours; accepted={accepted}, "
          f"rounds={result.rounds}")
    print()

    # --- 2. Theorem 3 normal form --------------------------------------
    labels, _ = transcript_labelling(vp.algorithm, g, certificate)
    b = to_normal_form(vp.algorithm)
    result_b = run_with_labelling(b, g, labels)
    accepted_b = all(o == 1 for o in result_b.outputs.values())
    bound = normal_form_label_bound(
        12, vp.algorithm.running_time(12), 4  # B = ceil(log2 12) = 4
    )
    print("Theorem 3 normal form (labels = claimed transcripts):")
    print(f"  accepted={accepted_b}, rounds={result_b.rounds}")
    print(f"  transcript label sizes: "
          f"{sorted(len(lab) for lab in labels)[-3:]} bits "
          f"(bound O(T n log n) = {bound} bits)")
    print()

    # --- 3. Theorem 7 Sigma_2 collapse ---------------------------------
    problem = parity_of_edges_problem()
    print("Theorem 7: Sigma_2 guess-and-probe decides an arbitrary "
          "problem (odd edge count), exhaustively on 3-node graphs:")
    from repro.problems import all_graphs

    correct = 0
    for graph in all_graphs(3):
        got = sigma2_decides(problem, graph)
        want = problem.contains(graph)
        assert got == want
        correct += 1
    print(f"  all {correct} graphs decided correctly by "
          f"exists-guess forall-probe evaluation")


if __name__ == "__main__":
    main()
