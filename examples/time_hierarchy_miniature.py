#!/usr/bin/env python3
"""The time hierarchy theorem, executed end to end at miniature scale.

Theorem 2's proof picks a function f_n with no fast protocol (it exists
by Lemma 1's counting) and shows a slower algorithm decides it.  At
(n=2, b=1, L=2) the whole argument fits in memory:

* enumerate ALL one-round protocols and find the lexicographically
  first function with none — the proof's exact selection rule,
* run the theorem's broadcast decider on the simulator: 2 rounds,
* certify with Lemma 1 arithmetic that the same separation exists at
  every scale (where enumeration is impossible — the paper's
  non-constructive step, reproduced as exact integer inequalities).

Run:  python examples/time_hierarchy_miniature.py
"""

from repro.analysis import print_table
from repro.analysis.report import magnitude
from repro.core import separation_table, time_hierarchy_miniature


def main() -> None:
    audit = time_hierarchy_miniature(n=2, L=2, b=1)
    print("Theorem 2 miniature (n=2 nodes, b=1 bit/round, L=2 input bits "
          "per node):")
    print("  functions {0,1}^4 -> {0,1}:       65536")
    print(f"  computable by 1-round protocols:  "
          f"{audit.num_computable_one_round}")
    print(f"  first hard function (lex. order): index {audit.f_index}, "
          f"truth table {''.join(map(str, audit.f_table))}")
    print(f"  1-round protocol exists:          "
          f"{audit.one_round_computable}")
    print(f"  broadcast decider correct:        {audit.decider_correct} "
          f"in {audit.decider_rounds} rounds")
    print(f"  => CLIQUE(1 round) != CLIQUE(2 rounds): {audit.separates}")
    print()

    print("The same separation at real scales, by Lemma 1 counting")
    rows = separation_table([64, 256, 1024, 4096], "theorem2")
    for row in rows:
        row["log2_protocols"] = magnitude(row["log2_protocols"])
        row["log2_functions"] = magnitude(row["log2_functions"])
    print_table(
        rows,
        columns=["n", "T", "L", "log2_protocols", "log2_functions",
                 "hard_function_exists"],
        title="(log2 counts shown by magnitude; exact ints in the library)",
    )

    print()
    print("Nondeterministic (Theorem 4) and logarithmic-hierarchy "
          "(Theorem 8) analogues:")
    print_table(separation_table([256, 1024], "theorem4"),
                title="Theorem 4 inequality, scaled x4")
    print_table(separation_table([256, 1024], "theorem8"),
                title="Theorem 8 inequality, scaled x4")


if __name__ == "__main__":
    main()
