#!/usr/bin/env python3
"""NCLIQUE(1)-labelling search problems and the broadcast clique.

Two threads from the paper's margins, executed:

1. Section 8 defines the search-problem analogue of NCLIQUE(1) (the
   congested clique's LCL class): compute an output labelling that a
   constant-round verifier accepts.  We solve and distributedly verify
   three canonical instances.

2. Section 2 notes the *broadcast* congested clique is the variant
   where lower bounds are provable via communication complexity.  We
   embed EQUALITY across a cut, measure the broadcast transcript, and
   compare against the exact two-party lower bound.

Run:  python examples/search_problems_and_broadcast.py
"""

from repro.clique.network import CongestedClique
from repro.core.labelling_problems import (
    colouring_search_problem,
    maximal_independent_set_problem,
    maximal_matching_problem,
)
from repro.core.two_party import (
    bcc_cut_bits,
    bcc_round_lower_bound,
    equality_bcc_program,
    equality_matrix,
    exact_communication_complexity,
)
from repro.problems import generators as gen


def main() -> None:
    g = gen.random_graph(12, 0.35, seed=4)
    print(f"input graph: {g}")
    print()
    print("NCLIQUE(1)-labelling search problems (Section 8):")
    for problem in (
        colouring_search_problem(4),
        maximal_independent_set_problem(),
        maximal_matching_problem(),
    ):
        verdict = problem.solve_and_verify(g)
        print(f"  {problem.name:28s} solved+verified: {verdict}")
    print()

    print("Broadcast congested clique lower bounds (Section 2 / [19]):")
    k = 6
    d = exact_communication_complexity(equality_matrix(3))
    print(f"  exact D(EQ_3) = {d} bits (computed by rectangle search)")
    n = 4
    program = equality_bcc_program(k)
    aux = {0: 42, 1: 42}
    clique = CongestedClique(n, broadcast_only=True)
    result = clique.run(program, None, aux=lambda v: aux.get(v, 0))
    bandwidth = max(1, (n - 1).bit_length())
    lb = bcc_round_lower_bound(k + 1, n, bandwidth)
    print(
        f"  EQ_{k} on a {n}-node broadcast clique: verdict="
        f"{result.common_output()}, rounds={result.rounds}"
    )
    print(
        f"  broadcast bits across the cut: {bcc_cut_bits(result, [0])} "
        f"(>= D(EQ_{k}) - 1 = {k})"
    )
    print(
        f"  simulation round lower bound (D-1)/(nB) = {lb} "
        f"<= measured {result.rounds}"
    )


if __name__ == "__main__":
    main()
