#!/usr/bin/env python3
"""The model zoo: one engine, four models.

The congested clique (Section 3) is CONGEST on a complete topology; the
broadcast clique (Section 2) restricts messages to uniform broadcasts;
and Theorem 10's simulation argument runs a *virtual* clique on fewer
real nodes.  This script runs the same flavour of task in all four modes
and compares the measured costs:

1. congested clique — gather the whole graph in ceil(n/B) rounds,
2. CONGEST on a path — a BFS wave pays the diameter,
3. broadcast clique — Theorem 11's k-VC runs unchanged (it only ever
   broadcasts),
4. virtual clique — 2n virtual nodes hosted two-per-node, paying the
   multiplexing overhead Theorem 10 accounts as O(s^2).

Run:  python examples/model_zoo.py
"""

import math

from repro.algorithms import congest_bfs, gather_graph, k_vertex_cover
from repro.clique import CliqueGraph, CongestedClique, simulate_virtual_clique
from repro.problems import generators as gen
from repro.problems import reference as ref


def main() -> None:
    n = 24
    path = CliqueGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
    b = max(1, (n - 1).bit_length())

    # 1. congested clique: gather + local BFS
    def clique_prog(node):
        adj = yield from gather_graph(node)
        return int(ref.sssp_vector(CliqueGraph(adj), 0)[node.id])

    clique_run = CongestedClique(n).run(clique_prog, path)
    print(f"congested clique : far-end distance "
          f"{clique_run.outputs[n - 1]} learned in {clique_run.rounds} "
          f"rounds (= ceil(n/B) = {math.ceil(n / b)})")

    # 2. CONGEST on the path: the wave pays the diameter
    def congest_prog(node):
        return (yield from congest_bfs(node))

    congest_run = CongestedClique(n, topology=path).run(
        congest_prog, path, aux=0
    )
    print(f"CONGEST (path)   : same distance, but the BFS wave reaches "
          f"the far end only at round {congest_run.outputs[n - 1]} "
          f"(the bottleneck the clique model removes)")

    # 3. broadcast clique: k-VC is a broadcast algorithm
    gvc, _ = gen.planted_vertex_cover(n, 3, 0.4, seed=1)

    def kvc_prog(node):
        return (yield from k_vertex_cover(node, 3))

    bcc_run = CongestedClique(
        n, broadcast_only=True, bandwidth_multiplier=2
    ).run(kvc_prog, gvc)
    found, cover = bcc_run.common_output()
    print(f"broadcast clique : Theorem 11's 3-VC runs unchanged — "
          f"found={found}, cover={cover}, rounds={bcc_run.rounds}")

    # 4. virtual clique: the same k-VC on 2n virtual nodes, 2 per host
    big, _ = gen.planted_vertex_cover(2 * n, 3, 0.4, seed=2)

    def vprog(node):
        return (yield from k_vertex_cover(node, 3))

    outputs, real_run = simulate_virtual_clique(
        n,
        2 * n,
        lambda v: v % n,
        vprog,
        virtual_input=lambda v: big.local_view(v),
        bandwidth_multiplier=2,
    )
    vfound, vcover = outputs[0]
    print(f"virtual clique   : 2n={2 * n} virtual nodes on n={n} hosts "
          f"(Theorem 10's machinery) — found={vfound}, "
          f"real rounds={real_run.rounds} (multiplexing overhead "
          f"included)")


if __name__ == "__main__":
    main()
