#!/usr/bin/env python3
"""Quickstart: run congested clique algorithms on a small graph.

The congested clique (Korhonen & Suomela, SPAA 2018) is a fully
connected synchronous network: n nodes, one O(log n)-bit message per
ordered pair per round, unlimited local computation.  This script builds
a small input graph and runs three of the paper's algorithms on the
simulator, reporting the measured round counts.

Run:  python examples/quickstart.py
"""

from repro.algorithms import (
    k_dominating_set,
    k_vertex_cover,
    triangle_detection,
)
from repro.clique import run_algorithm
from repro.problems import generators as gen


def main() -> None:
    # A random graph on 32 nodes with a planted 2-dominating set.
    g, planted = gen.planted_dominating_set(32, 2, p=0.15, seed=42)
    print(f"input graph: {g}")
    print(f"planted dominating set: {planted}")
    print()

    # --- triangle detection (Dolev et al., O(n^(1/3)) rounds) ----------
    def triangle_prog(node):
        return (yield from triangle_detection(node))

    result = run_algorithm(triangle_prog, g, bandwidth_multiplier=2)
    found, witness = result.common_output()
    print(f"triangle detection:   found={found} witness={witness} "
          f"rounds={result.rounds}")

    # --- k-dominating set (Theorem 9, O(n^(1-1/k)) rounds) -------------
    def kds_prog(node):
        return (yield from k_dominating_set(node, 2))

    result = run_algorithm(kds_prog, g, bandwidth_multiplier=2)
    found, witness = result.common_output()
    print(f"2-dominating set:     found={found} witness={witness} "
          f"rounds={result.rounds}")

    # --- k-vertex cover (Theorem 11, O(k) rounds) ----------------------
    def kvc_prog(node):
        return (yield from k_vertex_cover(node, 6))

    result = run_algorithm(kvc_prog, g, bandwidth_multiplier=2)
    found, witness = result.common_output()
    print(f"6-vertex cover:       found={found} "
          f"cover_size={len(witness) if witness else '-'} "
          f"rounds={result.rounds}  (independent of n!)")

    print()
    print("Every message was bit-checked against the O(log n) budget;")
    print("'rounds' is the paper's time complexity measure.")


if __name__ == "__main__":
    main()
