#!/usr/bin/env python3
"""The fine-grained landscape of Figure 1, regenerated and measured.

Prints the paper's Figure 1 as (a) the reduction arrow list, (b) the
propagated delta upper bounds, and (c) empirical round measurements for
the algorithms this library executes, with fitted exponents.

Run:  python examples/fine_grained_landscape.py
"""

from repro.analysis import fit_exponent, print_table
from repro.core.exponents import figure1_registry
from repro.engine import run_sweep
from repro.engine.diff import catalog_factory


def measure(algorithm, ns, seed=1, **params):
    """Measure rounds and the per-node routed payload load.

    Grid points run through the parallel sweep engine on the fast
    backend (``repro.engine``); ``algorithm`` names an entry of the
    engine's algorithm catalog.

    At simulator sizes, constant protocol overheads (length headers,
    round-budget agreement) dominate raw round counts, so the exponent
    is fitted on the max per-node *payload* load in bits — exactly the
    quantity the routing theorems bound.  An O(n^d)-round algorithm
    moves O(n^(d+1)) payload bits through its busiest node (n-1 links x
    log n bits x n^d rounds, up to log factors), so
    ``delta ~ load_slope - 1``.
    """
    configs = [
        {"algorithm": algorithm, "n": n, "seed": seed, "p": 0.2, **params}
        for n in ns
    ]
    outcomes = run_sweep(catalog_factory, configs, workers=2, engine="fast")
    rows = []
    for outcome in outcomes:
        load = max(
            outcome.result.max_counter("route_payload_in_bits"),
            outcome.result.max_counter("route_payload_out_bits"),
        )
        rows.append((outcome.config["n"], outcome.result.rounds, load))
    return rows


def main() -> None:
    registry = figure1_registry(k=3)

    print_table(
        registry.table(),
        columns=["problem", "delta_upper", "direct_bound", "source"],
        title="Figure 1 - problem exponents (k=3, omega=2.3728639)",
    )

    arrows = [
        {"arrow": f"delta({e.frm}) <= delta({e.to})", "source": e.source or "-"}
        for e in registry.arrows()
    ]
    print_table(arrows, title=f"Figure 1 - {len(arrows)} reduction arrows")

    # Empirical: triangle detection and 3-DS scaling.
    ns = [27, 64, 125, 216]

    tri_rows = measure("subgraph", ns)
    fit = fit_exponent(
        [n for n, _, _ in tri_rows], [load for _, _, load in tri_rows]
    )
    print_table(
        [{"n": n, "rounds": r, "max_load_bits": load} for n, r, load in tri_rows],
        title=f"triangle detection: load exponent {fit.slope:.2f} "
        f"=> delta ~ {fit.slope - 1:.2f} "
        f"(Dolev et al. bound 1 - 2/3 = 0.33)",
    )

    kds_rows = measure("kds", ns, k=3)
    fit = fit_exponent(
        [n for n, _, _ in kds_rows], [load for _, _, load in kds_rows]
    )
    print_table(
        [{"n": n, "rounds": r, "max_load_bits": load} for n, r, load in kds_rows],
        title=f"3-dominating set: load exponent {fit.slope:.2f} "
        f"=> delta ~ {fit.slope - 1:.2f} "
        f"(Theorem 9 bound: 1 - 1/3 = 0.67)",
    )


if __name__ == "__main__":
    main()
