"""Engine benchmarking: named workloads, timed runs, regression ratchet.

The paper's claims are round/bit complexity bounds; the ROADMAP's
north-star adds "as fast as the hardware allows".  This package makes
the second claim testable the way the first already is — as versioned,
machine-readable artifacts:

* :mod:`repro.bench.workloads` — the suite registry (:data:`SUITE`):
  stable, named workloads with pinned seeds spanning the simulator's
  hot paths (fan-out, routing, codec, the kds/kvc/matmul/sorting
  catalog algorithms, cached vs. uncached sweeps, fault-injection and
  metrics overhead) on both engines;
* :mod:`repro.bench.runner` — the deterministic runner: warmup +
  median-of-k wall clock under per-workload time budgets, environment
  fingerprint, peak RSS; emits the schema-versioned ``BENCH_*.json``
  artifact (:class:`BenchReport`);
* :mod:`repro.bench.compare` — :func:`compare_bench`, the ratchet that
  classifies each workload as improved/stable/regressed against a
  committed baseline and renders the markdown table CI publishes.

Layering: ``repro.bench`` sits at the top of the stack — it drives
``repro.engine`` (``run_spec``/``run_sweep``/``RunCache``), reads
``repro.obs.RunMetrics``, and nothing imports it back.

Quickstart::

    from repro.bench import compare_bench, run_suite

    report = run_suite(quick=True)
    report.write("BENCH_dev.json")
    verdict = compare_bench("benchmarks/baseline.json", "BENCH_dev.json",
                            tolerance=1.4)
    print(verdict.summary())
    assert verdict.ok

or from the command line: ``repro bench run --quick``, ``repro bench
compare benchmarks/baseline.json BENCH_dev.json``, ``repro bench
update-baseline``.
"""

from .compare import BenchComparison, WorkloadComparison, compare_bench
from .runner import (
    SCHEMA_VERSION,
    BenchReport,
    Timing,
    WorkloadTiming,
    default_output_path,
    environment_fingerprint,
    git_sha,
    measure,
    run_suite,
)
from .workloads import (
    SUITE,
    Workload,
    all_to_all_chatter,
    get_workloads,
    register_workload,
)

__all__ = [
    "BenchComparison",
    "BenchReport",
    "SCHEMA_VERSION",
    "SUITE",
    "Timing",
    "Workload",
    "WorkloadComparison",
    "WorkloadTiming",
    "all_to_all_chatter",
    "compare_bench",
    "default_output_path",
    "environment_fingerprint",
    "get_workloads",
    "git_sha",
    "measure",
    "register_workload",
    "run_suite",
]
