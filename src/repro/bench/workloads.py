"""The benchmark suite registry: stable, named engine workloads.

Each :class:`Workload` names one hot path of the simulator — all-to-all
message fan-out, the routing and sorting primitives, the diff-catalog
algorithms the paper's theorems are about (``kds``/``kvc``/``matmul``),
cached vs. uncached sweeps, fault-plan and metrics-collector overhead —
with pinned seeds and sizes so repeated runs measure the same work.

Workload *names are an interface*: ``BENCH_*.json`` artifacts and the
committed ``benchmarks/baseline.json`` are keyed by them, so renaming or
re-parameterising a workload invalidates the comparison history (the
ratchet reports it as ``added``/``removed`` rather than silently mixing
incomparable timings).

The runners reuse the existing execution stack — ``run_spec`` over the
diff catalog, ``run_sweep`` with the worker pool, ``RunCache`` — instead
of re-implementing timing loops, so a benchmark exercises exactly the
code paths real experiments use.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable

from ..clique.errors import CliqueError

__all__ = [
    "SUITE",
    "Workload",
    "all_to_all_chatter",
    "get_workloads",
    "register_workload",
]


def all_to_all_chatter(
    n: int,
    rounds: int,
    engine: Any = None,
    observer: Any = None,
    fault_plan: Any = None,
    execution: Any = None,
):
    """The canonical fan-out microbenchmark: every node sends one bit to
    every other node, ``rounds`` times (also used by the throughput
    acceptance gates in ``benchmarks/test_engine_throughput.py``)."""
    from ..clique.bits import BitString
    from ..clique.network import CongestedClique

    def prog(node):
        payload = BitString(node.id % 2, 1)
        for _ in range(rounds):
            node.send_to_all(payload)
            yield
        return None

    return CongestedClique(n).run(
        prog,
        execution=execution,
        engine=engine,
        observer=observer,
        fault_plan=fault_plan,
    )


def _info_from_result(result) -> dict:
    """The deterministic payload recorded next to a workload's timing.

    Wall-clock varies run to run; these fields must not — the
    determinism test in ``tests/bench`` asserts exact equality across
    repeated suite runs.
    """
    metrics = result.metrics
    if metrics is not None:
        return {
            "rounds": metrics.rounds,
            "total_bits": metrics.total_bits,
        }
    return {
        "rounds": result.rounds,
        "total_bits": result.total_message_bits + result.bulk_bits,
    }


#: Legacy one-word engine specs of the workload registry, expressed as
#: :class:`~repro.engine.ExecutionSpec` dicts.  New workloads carry a
#: full ``"execution"`` dict in their params instead.
_ENGINE_SPECS: dict[str, dict] = {
    "reference": {"engine": "reference"},
    "fast": {"engine": "fast", "check": "bandwidth"},
    "fast-noobs": {"engine": "fast", "check": "bandwidth", "observer": False},
    "columnar": {"engine": "columnar", "check": "bandwidth"},
}


def _workload_execution(params: dict):
    """The workload's :class:`~repro.engine.ExecutionSpec`.

    Params may carry an ``"execution"`` dict (the ``to_dict`` form) or a
    legacy one-word ``"engine"`` spec; a flat ``"fault_plan"`` key fills
    the spec's unset fault-plan field either way.
    """
    from ..engine import ExecutionSpec

    raw = params.get("execution")
    if raw is None:
        name = params.get("engine", "fast")
        try:
            raw = _ENGINE_SPECS[name]
        except KeyError:
            raise CliqueError(
                f"unknown workload engine spec {name!r}; known: "
                f"{sorted(_ENGINE_SPECS)} (or pass an 'execution' dict)"
            ) from None
    return ExecutionSpec.coerce(dict(raw)).merged(
        fault_plan=params.get("fault_plan")
    )


def _run_fanout(params: dict, ctx: dict) -> dict:
    result = all_to_all_chatter(
        params["n"],
        params["rounds"],
        execution=_workload_execution(params),
    )
    info = _info_from_result(result)
    if params.get("fault_plan") is not None and result.metrics is not None:
        info["faults"] = result.metrics.total_faults
    return info


def _run_relay_route(params: dict, ctx: dict) -> dict:
    from ..clique.bits import BitString
    from ..clique.network import CongestedClique
    from ..clique.routing import route

    n = params["n"]
    payload = BitString.zeros(params["payload_bits"])

    def prog(node):
        flows = {(node.id + 1) % n: payload, (node.id + 5) % n: payload}
        got = yield from route(node, flows, scheme="relay")
        return sum(len(b) for b in got.values())

    clique = CongestedClique(n, bandwidth_multiplier=2, max_rounds=10**5)
    return _info_from_result(clique.run(prog))


def _run_bool_codec(params: dict, ctx: dict) -> dict:
    import numpy as np

    from ..algorithms.common import decode_bool_row, encode_bool_row
    from ..problems import generators as gen

    rng = gen.rng_from(params["seed"])
    row = rng.random(params["width"]) < 0.5
    checksum = 0
    for _ in range(params["iters"]):
        back = decode_bool_row(encode_bool_row(row), row.size)
        checksum ^= int(np.count_nonzero(back))
    return {
        "rounds": 0,
        "total_bits": params["width"] * params["iters"],
        "checksum": checksum,
    }


def _run_catalog(params: dict, ctx: dict) -> dict:
    from ..engine.diff import catalog_factory
    from ..engine.pool import run_spec

    result, _ = run_spec(
        catalog_factory(dict(params["config"])),
        execution=_workload_execution(params),
    )
    info = _info_from_result(result)
    if params.get("fault_plan") is not None and result.metrics is not None:
        info["faults"] = result.metrics.total_faults
    return info


def _sweep_grid(params: dict) -> list[dict]:
    return [
        {"algorithm": params["algorithm"], "n": n, "seed": seed}
        for n in params["ns"]
        for seed in range(params["seeds"])
    ]


def _run_sweep_workload(params: dict, ctx: dict) -> dict:
    from ..engine import FastEngine, run_sweep
    from ..engine.diff import catalog_factory

    outcomes = run_sweep(
        catalog_factory,
        _sweep_grid(params),
        workers=params.get("workers", 1),
        engine=FastEngine(check="bandwidth"),
        cache=ctx.get("cache"),
    )
    failed = [o for o in outcomes if o.failed]
    if failed:  # pragma: no cover - pinned grids never fail
        raise CliqueError(f"benchmark sweep had {len(failed)} failed points")
    return {
        "rounds": sum(o.result.rounds for o in outcomes),
        "total_bits": sum(
            o.result.total_message_bits + o.result.bulk_bits
            for o in outcomes
        ),
        "cache_hits": sum(1 for o in outcomes if o.from_cache),
    }


def _setup_pool_shutdown(params: dict) -> dict:
    """The persistent worker pool outlives each timed call by design
    (that amortisation is what the workload measures); shut it down when
    the workload finishes so later workloads time a quiet process."""
    from ..engine import shutdown_pool

    return {"cleanup": shutdown_pool}


def _run_bulk_uint_codec(params: dict, ctx: dict) -> dict:
    import numpy as np

    from ..clique.bits import decode_uint_array, encode_uint_array
    from ..problems import generators as gen

    width = params["width"]
    rng = gen.rng_from(params["seed"])
    values = rng.integers(0, 1 << width, size=params["count"], dtype=np.uint64)
    expected = [int(v) for v in values]
    checksum = 0
    for _ in range(params["iters"]):
        bits = encode_uint_array(values, width)
        back = decode_uint_array(bits, len(expected), width)
        if back != expected:  # pragma: no cover - parity is property-tested
            raise CliqueError("bulk codec round trip diverged")
        checksum ^= back[0] ^ back[-1]
    return {
        "rounds": 0,
        "total_bits": params["count"] * width * params["iters"],
        "checksum": checksum,
    }


def _setup_service(params: dict) -> dict:
    """Start a throwaway ``repro serve`` daemon with a warm cache.

    The daemon, its socket and its cache live in a temp directory; one
    priming request per grid point is issued here (the cold path), so
    the timed region measures warm request latency through the full
    client/socket/server/cache stack.
    """
    import os

    from ..service import ReproServer, ServiceClient

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-service-")
    server = ReproServer(
        os.path.join(tmp.name, "serve.sock"),
        workers=2,
        cache_root=os.path.join(tmp.name, "cache"),
    )
    server.start()
    client = ServiceClient(server.socket_path, timeout=120.0)
    client.wait_until_ready()
    for seed in range(params["seeds"]):
        client.run(params["algorithm"], {"n": params["n"], "seed": seed})

    def cleanup() -> None:
        server.stop()
        tmp.cleanup()

    return {"client": client, "cleanup": cleanup}


def _run_service_warm(params: dict, ctx: dict) -> dict:
    """One warm pass over the primed grid through the service client."""
    client = ctx["client"]
    rounds = 0
    total_bits = 0
    cache_hits = 0
    for seed in range(params["seeds"]):
        reply = client.run(params["algorithm"], {"n": params["n"], "seed": seed})
        rounds += reply["rounds"]
        total_bits += reply["total_message_bits"] + reply["bulk_bits"]
        cache_hits += 1 if reply["cached"] else 0
    return {
        "rounds": rounds,
        "total_bits": total_bits,
        "cache_hits": cache_hits,
    }


def _run_shard_sweep(params: dict, ctx: dict) -> dict:
    """Large-``n`` fan-out grid on the sharded backend via the pool."""
    from ..engine import run_sweep
    from ..service.kernel import fanout_spec

    outcomes = run_sweep(
        fanout_spec,
        [
            {
                "n": params["n"],
                "rounds": params["rounds"],
                "senders": params["senders"],
                "seed": seed,
            }
            for seed in range(params["seeds"])
        ],
        workers=params.get("workers", 1),
        engine="sharded",
    )
    failed = [o for o in outcomes if o.failed]
    if failed:  # pragma: no cover - pinned grids never fail
        raise CliqueError(f"benchmark sweep had {len(failed)} failed points")
    return {
        "rounds": sum(o.result.rounds for o in outcomes),
        "total_bits": sum(
            o.result.total_message_bits + o.result.bulk_bits
            for o in outcomes
        ),
    }


def _setup_warm_cache(params: dict) -> dict:
    """Pre-warm a throwaway :class:`RunCache` so the timed runs measure
    the hit path (lookup + deserialise), not first execution."""
    from ..engine import FastEngine, RunCache, run_sweep
    from ..engine.diff import catalog_factory

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
    cache = RunCache(tmp.name)
    run_sweep(
        catalog_factory,
        _sweep_grid(params),
        workers=1,
        engine=FastEngine(check="bandwidth"),
        cache=cache,
    )
    return {"cache": cache, "cleanup": tmp.cleanup}


@dataclass(frozen=True)
class Workload:
    """One named benchmark: a timed runner plus pinned parameters.

    ``run(params, ctx)`` executes one timed iteration and returns the
    deterministic info payload recorded in the artifact.  ``setup`` (if
    any) builds ``ctx`` once per workload, outside the timed region; a
    ``"cleanup"`` callable in ``ctx`` is invoked when the workload is
    done.  ``quick_params`` are merged over ``params`` in quick mode.
    """

    name: str
    description: str
    run: Callable[[dict, dict], dict]
    params: dict = field(default_factory=dict)
    quick_params: dict = field(default_factory=dict)
    setup: Callable[[dict], dict] | None = None
    #: Per-workload wall-clock budget, seconds (repeats stop early once
    #: the cumulative measurement time exceeds it).
    time_budget: float = 20.0
    quick_time_budget: float = 5.0

    def resolved_params(self, quick: bool) -> dict:
        merged = dict(self.params)
        if quick:
            merged.update(self.quick_params)
        return merged

    def resolved_budget(self, quick: bool) -> float:
        return self.quick_time_budget if quick else self.time_budget


#: The suite: workload name -> :class:`Workload`, in registration order.
SUITE: dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Add one workload to :data:`SUITE` (names must be unique)."""
    if workload.name in SUITE:
        raise CliqueError(f"workload {workload.name!r} already registered")
    SUITE[workload.name] = workload
    return workload


def get_workloads(names: "list[str] | None" = None) -> list[Workload]:
    """The selected workloads, in suite order; unknown names raise."""
    if names is None:
        return list(SUITE.values())
    unknown = [name for name in names if name not in SUITE]
    if unknown:
        raise CliqueError(f"unknown workload(s) {unknown}; known: {sorted(SUITE)}")
    return [SUITE[name] for name in names]


register_workload(
    Workload(
        name="fanout/reference",
        description="all-to-all 1-bit fan-out, reference engine",
        run=_run_fanout,
        params={"engine": "reference", "n": 48, "rounds": 8},
        quick_params={"n": 24, "rounds": 4},
    )
)
register_workload(
    Workload(
        name="fanout/fast",
        description="all-to-all 1-bit fan-out, fast engine (metrics on)",
        run=_run_fanout,
        params={"engine": "fast", "n": 48, "rounds": 8},
        quick_params={"n": 24, "rounds": 4},
    )
)
register_workload(
    Workload(
        name="fanout/fast-noobs",
        description="all-to-all fan-out, fast engine, observer=False",
        run=_run_fanout,
        params={"engine": "fast-noobs", "n": 48, "rounds": 8},
        quick_params={"n": 24, "rounds": 4},
    )
)
register_workload(
    Workload(
        name="route/relay",
        description="store-and-forward relay routing, 2 flows per node",
        run=_run_relay_route,
        params={"n": 16, "payload_bits": 512},
        quick_params={"payload_bits": 256},
    )
)
register_workload(
    Workload(
        name="codec/bool-row",
        description="boolean-row bit packing round trip",
        run=_run_bool_codec,
        params={"width": 4096, "iters": 200, "seed": 1},
        quick_params={"iters": 50},
    )
)
register_workload(
    Workload(
        name="catalog/kds",
        description="Theorem 9 k-dominating set (diff catalog, fast engine)",
        run=_run_catalog,
        params={"config": {"algorithm": "kds", "n": 32, "seed": 0, "k": 2}},
        quick_params={"config": {"algorithm": "kds", "n": 16, "seed": 0, "k": 2}},
    )
)
register_workload(
    Workload(
        name="catalog/kvc",
        description="Theorem 11 k-vertex cover (diff catalog, fast engine)",
        run=_run_catalog,
        params={"config": {"algorithm": "kvc", "n": 32, "seed": 0, "k": 3}},
        quick_params={"config": {"algorithm": "kvc", "n": 16, "seed": 0, "k": 3}},
    )
)
register_workload(
    Workload(
        name="catalog/matmul",
        description="cube-partitioned matrix multiply (diff catalog)",
        run=_run_catalog,
        params={"config": {"algorithm": "matmul", "n": 24, "seed": 0}},
        quick_params={"config": {"algorithm": "matmul", "n": 12, "seed": 0}},
    )
)
register_workload(
    Workload(
        name="catalog/sorting",
        description="PSRS distributed sorting (diff catalog, fast engine)",
        run=_run_catalog,
        params={"config": {"algorithm": "sorting", "n": 24, "seed": 0}},
        quick_params={"config": {"algorithm": "sorting", "n": 12, "seed": 0}},
    )
)
register_workload(
    Workload(
        name="sweep/uncached",
        description="serial bfs sweep through run_sweep, no cache",
        run=_run_sweep_workload,
        params={"algorithm": "bfs", "ns": [12, 16], "seeds": 2},
        quick_params={"ns": [8, 12], "seeds": 1},
    )
)
register_workload(
    Workload(
        name="sweep/cached",
        description="the same bfs sweep served entirely from a warm RunCache",
        run=_run_sweep_workload,
        setup=_setup_warm_cache,
        params={"algorithm": "bfs", "ns": [12, 16], "seeds": 2},
        quick_params={"ns": [8, 12], "seeds": 1},
    )
)
register_workload(
    Workload(
        name="pool-warm-sweep",
        description="parallel bfs sweep on the persistent warm worker pool",
        run=_run_sweep_workload,
        setup=_setup_pool_shutdown,
        params={"algorithm": "bfs", "ns": [12, 16], "seeds": 3, "workers": 2},
        quick_params={"ns": [8, 12], "seeds": 2},
    )
)
register_workload(
    Workload(
        name="bulk-codec",
        description="bulk uint-array encode/decode round trip "
        "(encode_uint_array / decode_uint_array)",
        run=_run_bulk_uint_codec,
        params={"count": 4096, "width": 24, "iters": 100, "seed": 3},
        quick_params={"iters": 25},
    )
)
register_workload(
    Workload(
        name="service-warm-run",
        description="warm run requests through the repro serve daemon "
        "(client + socket + resident cache)",
        run=_run_service_warm,
        setup=_setup_service,
        params={"algorithm": "bfs", "n": 16, "seeds": 4},
        quick_params={"n": 12, "seeds": 2},
    )
)
register_workload(
    Workload(
        name="shard-sweep",
        description="n=1024 broadcast fan-out grid on the sharded "
        "coroutine-kernel backend",
        run=_run_shard_sweep,
        setup=_setup_pool_shutdown,
        params={
            "n": 1024,
            "rounds": 4,
            "senders": 64,
            "seeds": 2,
            "workers": 2,
        },
        quick_params={"rounds": 2, "senders": 8, "seeds": 1, "workers": 1},
    )
)
register_workload(
    Workload(
        name="columnar-fanout",
        description="n=1024 evolving-broadcast fan-out on the columnar "
        "whole-round array engine",
        run=_run_catalog,
        params={
            "execution": {"engine": "columnar", "check": "bandwidth"},
            "config": {"algorithm": "fanout", "n": 1024, "rounds": 6, "seed": 0},
        },
        quick_params={
            "config": {"algorithm": "fanout", "n": 256, "rounds": 3, "seed": 0},
        },
    )
)
register_workload(
    Workload(
        name="fanout-large/fast",
        description="the same n=1024 fan-out on the fast per-message "
        "engine (columnar speedup twin)",
        run=_run_catalog,
        params={
            "execution": {"engine": "fast", "check": "bandwidth"},
            "config": {"algorithm": "fanout", "n": 1024, "rounds": 6, "seed": 0},
        },
        quick_params={
            "config": {"algorithm": "fanout", "n": 256, "rounds": 3, "seed": 0},
        },
    )
)
register_workload(
    Workload(
        name="columnar-matmul",
        description="cube-partitioned matrix multiply via the columnar "
        "array port (diff catalog)",
        run=_run_catalog,
        params={
            "execution": {"engine": "columnar", "check": "bandwidth"},
            "config": {"algorithm": "matmul", "n": 27, "seed": 0},
        },
        quick_params={
            "config": {"algorithm": "matmul", "n": 12, "seed": 0},
        },
    )
)
register_workload(
    Workload(
        name="columnar-sharded-fanout",
        description="n=1024 compute-heavy fan-out split across two "
        "process shards (shard-parallel columnar engine)",
        run=_run_catalog,
        params={
            "execution": {
                "engine": "columnar",
                "check": "bandwidth",
                "shards": 2,
            },
            "config": {
                "algorithm": "fanout_work",
                "n": 1024,
                "rounds": 4,
                "state": 4096,
                "passes": 6,
                "seed": 0,
            },
        },
        quick_params={
            "config": {
                "algorithm": "fanout_work",
                "n": 128,
                "rounds": 2,
                "state": 512,
                "passes": 2,
                "seed": 0,
            },
        },
    )
)
register_workload(
    Workload(
        name="columnar-sharded-matmul",
        description="the columnar matmul with shards=3 requested — the "
        "port is not shardable, so this meters the transparent "
        "single-instance fallback overhead",
        run=_run_catalog,
        params={
            "execution": {
                "engine": "columnar",
                "check": "bandwidth",
                "shards": 3,
            },
            "config": {"algorithm": "matmul", "n": 27, "seed": 0},
        },
        quick_params={
            "config": {"algorithm": "matmul", "n": 12, "seed": 0},
        },
    )
)
register_workload(
    Workload(
        name="faults/drop-overhead",
        description="fast-engine fan-out under a deterministic drop plan "
        "(per-delivery injector cost)",
        run=_run_fanout,
        params={
            "engine": "fast",
            "n": 48,
            "rounds": 8,
            "fault_plan": "drop=0.05,seed=7",
        },
        quick_params={"n": 24, "rounds": 4},
    )
)
register_workload(
    Workload(
        name="bracha-broadcast",
        description="Bracha reliable broadcast, honest run "
        "(f + 5 rounds of tagged all-to-all echo/ready traffic)",
        run=_run_catalog,
        params={"config": {"algorithm": "bracha", "n": 48, "f": 4, "seed": 0}},
        quick_params={"config": {"algorithm": "bracha", "n": 16, "f": 1, "seed": 0}},
    )
)
register_workload(
    Workload(
        name="byzantine-overhead",
        description="fast-engine fan-out under an f=1 Byzantine plan "
        "(per-delivery adversary cost; honest twin is fanout/fast)",
        run=_run_fanout,
        params={
            "engine": "fast",
            "n": 48,
            "rounds": 8,
            "fault_plan": "byzantine=equivocate+selective,f=1,seed=7,byz_rate=0.5",
        },
        quick_params={"n": 24, "rounds": 4},
    )
)


def _run_symbolic_validate(params: dict, ctx: dict) -> dict:
    """Time the full symbolic gate: closed-form evaluation (sympy
    substitution + the arithmetic instance-profile binders) plus the
    metered engine runs it cross-validates against."""
    from ..analysis.symbolic import validate_symbolic

    report = validate_symbolic(
        ns=params["ns"], engines=tuple(params.get("engines", ("reference",)))
    )
    if not report.ok:
        raise CliqueError(
            "symbolic-validate workload found mismatches: " + report.summary()
        )
    return {
        "checks": len(report.checks),
        "algorithms": len({c.algorithm for c in report.checks}),
        "rounds": sum(c.measured.rounds for c in report.checks),
        "total_bits": sum(c.measured.total_bits for c in report.checks),
    }


register_workload(
    Workload(
        name="symbolic-validate",
        description="exact symbolic-cost gate over the full catalog "
        "(closed-form evaluation + reference-engine cross-validation)",
        run=_run_symbolic_validate,
        params={"ns": [8, 11, 16]},
        quick_params={"ns": [8, 9]},
        time_budget=40.0,
        quick_time_budget=15.0,
    )
)
