"""The deterministic benchmark runner and the ``BENCH_*.json`` artifact.

One timing implementation for the whole repository: :func:`measure`
(warmup + best/median-of-k wall clock) is shared by :func:`run_suite`
and the acceptance gates in ``benchmarks/test_engine_throughput.py``.

:func:`run_suite` executes the registered workloads with pinned seeds
under a per-workload time budget, records the process peak RSS, and
returns a :class:`BenchReport` — a schema-versioned, machine-readable
artifact carrying the environment fingerprint (python/numpy versions,
CPU count), per-workload wall clock, and the deterministic payload
(rounds, total bits) read from each run's ``RunMetrics``.  Write it with
:meth:`BenchReport.write`; the conventional location is
``BENCH_<git-sha>.json`` at the repository root
(:func:`default_output_path`).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..clique.errors import CliqueError
from .workloads import Workload, get_workloads

__all__ = [
    "BenchReport",
    "SCHEMA_VERSION",
    "Timing",
    "WorkloadTiming",
    "default_output_path",
    "environment_fingerprint",
    "git_sha",
    "measure",
    "run_suite",
]

#: Bump on any change to the artifact layout; ``compare_bench`` refuses
#: to ratchet across schema versions.
SCHEMA_VERSION = 1


@dataclass
class Timing:
    """Raw wall-clock samples of one repeated measurement."""

    times: list[float]
    result: Any = None

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def median(self) -> float:
        return statistics.median(self.times)


def measure(
    work: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
    time_budget: "float | None" = None,
) -> Timing:
    """Time ``work()`` ``repeats`` times after ``warmup`` untimed calls.

    With a ``time_budget`` (seconds) the repeat loop stops early once
    the cumulative measured time exceeds it — every workload yields at
    least one sample, so a budget can truncate but never skip.  Returns
    the samples plus the last call's return value.
    """
    if repeats < 1:
        raise CliqueError(f"repeats must be >= 1, not {repeats}")
    result = None
    for _ in range(warmup):
        result = work()
    times: list[float] = []
    spent = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        result = work()
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        spent += elapsed
        if time_budget is not None and spent >= time_budget:
            break
    return Timing(times=times, result=result)


def _max_rss_kb() -> "int | None":
    """Process peak RSS in KiB (POSIX only; ``None`` where unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        usage //= 1024
    return int(usage)


def environment_fingerprint() -> dict:
    """The machine/toolchain facts a timing is only comparable within.

    ``cpu_count`` is the machine; ``cpu_affinity`` the cores this
    process may actually use (cgroup/taskset clamps show up only here),
    which is what pool and shard sizing go by.
    """
    import numpy

    from ..engine.pool import available_cpus

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": available_cpus(),
    }


def git_sha(root: "str | os.PathLike | None" = None) -> str:
    """The current commit hash (short), or ``"unknown"`` outside git."""
    override = os.environ.get("REPRO_BENCH_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def default_output_path(
    sha: "str | None" = None, root: "str | os.PathLike" = "."
) -> Path:
    """``BENCH_<git-sha>.json`` under ``root`` (the repository root by
    convention — the artifact trajectory CI and reviewers read)."""
    return Path(root) / f"BENCH_{sha if sha is not None else git_sha()}.json"


@dataclass
class WorkloadTiming:
    """One workload's measured entry in a :class:`BenchReport`.

    ``seconds`` (the median sample) is the quantity the ratchet
    compares; ``info`` is the workload's deterministic payload and must
    be identical across runs on the same tree.
    """

    name: str
    seconds: float
    best: float
    times: list[float]
    repeats: int
    warmup: int
    truncated: bool
    params: dict
    info: dict
    max_rss_kb: "int | None" = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "best": self.best,
            "times": list(self.times),
            "repeats": self.repeats,
            "warmup": self.warmup,
            "truncated": self.truncated,
            "params": self.params,
            "info": self.info,
            "max_rss_kb": self.max_rss_kb,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTiming":
        return cls(**data)


@dataclass
class BenchReport:
    """The schema-versioned ``BENCH_*.json`` payload."""

    git_sha: str
    quick: bool
    environment: dict
    results: dict[str, WorkloadTiming]
    created: str = ""
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "git_sha": self.git_sha,
            "quick": self.quick,
            "created": self.created,
            "environment": self.environment,
            "results": {
                name: timing.to_dict()
                for name, timing in sorted(self.results.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise CliqueError(
                f"unsupported bench schema {schema!r} (expected "
                f"{SCHEMA_VERSION}); regenerate with 'repro bench run'"
            )
        return cls(
            git_sha=data["git_sha"],
            quick=data["quick"],
            environment=dict(data["environment"]),
            results={
                name: WorkloadTiming.from_dict(entry)
                for name, entry in data["results"].items()
            },
            created=data.get("created", ""),
            schema=schema,
        )

    def write(self, path: "str | os.PathLike") -> Path:
        """Serialise to ``path`` as stable, human-diffable JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "BenchReport":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CliqueError(
                f"cannot read bench report {path}: "
                f"{type(exc).__name__}: {exc}"
            ) from None
        return cls.from_dict(data)

    def rows(self) -> list[dict]:
        """Table rows (one per workload) for the CLI report."""
        return [
            {
                "workload": t.name,
                "median (ms)": round(t.seconds * 1e3, 3),
                "best (ms)": round(t.best * 1e3, 3),
                "reps": f"{len(t.times)}/{t.repeats}"
                + ("!" if t.truncated else ""),
                "rounds": t.info.get("rounds", "-"),
                "total bits": t.info.get("total_bits", "-"),
            }
            for _, t in sorted(self.results.items())
        ]


def _run_workload(
    workload: Workload,
    *,
    quick: bool,
    repeats: int,
    warmup: int,
    time_budget: "float | None",
) -> WorkloadTiming:
    params = workload.resolved_params(quick)
    budget = (
        time_budget
        if time_budget is not None
        else workload.resolved_budget(quick)
    )
    ctx = workload.setup(params) if workload.setup is not None else {}
    try:
        timing = measure(
            lambda: workload.run(params, ctx),
            repeats=repeats,
            warmup=warmup,
            time_budget=budget,
        )
    finally:
        cleanup = ctx.get("cleanup")
        if cleanup is not None:
            cleanup()
    return WorkloadTiming(
        name=workload.name,
        seconds=timing.median,
        best=timing.best,
        times=timing.times,
        repeats=repeats,
        warmup=warmup,
        truncated=len(timing.times) < repeats,
        params=params,
        info=dict(timing.result),
        max_rss_kb=_max_rss_kb(),
    )


def run_suite(
    names: "list[str] | None" = None,
    *,
    quick: bool = False,
    repeats: "int | None" = None,
    warmup: int = 1,
    time_budget: "float | None" = None,
    progress: "Callable[[str], None] | None" = None,
) -> BenchReport:
    """Run the (selected) suite and return the report.

    ``quick`` switches every workload to its reduced parameters and
    budget (the CI configuration); ``repeats`` defaults to median-of-5
    (median-of-3 in quick mode).  ``progress`` receives one line per
    finished workload.
    """
    if repeats is None:
        repeats = 3 if quick else 5
    results: dict[str, WorkloadTiming] = {}
    for workload in get_workloads(names):
        entry = _run_workload(
            workload,
            quick=quick,
            repeats=repeats,
            warmup=warmup,
            time_budget=time_budget,
        )
        results[workload.name] = entry
        if progress is not None:
            progress(
                f"{workload.name}: {entry.seconds * 1e3:.2f} ms median "
                f"({len(entry.times)} rep(s))"
            )
    return BenchReport(
        git_sha=git_sha(),
        quick=quick,
        environment=environment_fingerprint(),
        results=results,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
