"""The perf-regression ratchet: compare two ``BENCH_*.json`` artifacts.

:func:`compare_bench` classifies every workload shared by two reports as
``improved`` / ``stable`` / ``regressed`` from the ratio of the median
wall clocks, with workloads present on only one side reported as
``added`` / ``removed`` (never silently dropped).  The verdict object
renders both a CLI table and the markdown table CI appends to the job
summary, and ``ok`` is the single bit the CI bench job gates on.

Timings are only comparable within one machine class, so the tolerance
is generous by design on shared runners (CI uses 1.4x): the ratchet
exists to catch real, order-of-tens-of-percent regressions on the hot
paths, not 2% jitter.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from ..clique.errors import CliqueError
from .runner import BenchReport

__all__ = [
    "BenchComparison",
    "WorkloadComparison",
    "compare_bench",
]

#: Classification vocabulary, in display order.
STATUSES = ("regressed", "added", "removed", "improved", "stable")


@dataclass(frozen=True)
class WorkloadComparison:
    """One workload's verdict.

    ``ratio`` is ``new_seconds / old_seconds`` (``None`` for
    ``added``/``removed`` entries, which have only one side).
    """

    name: str
    status: str
    old_seconds: "float | None" = None
    new_seconds: "float | None" = None
    ratio: "float | None" = None


@dataclass
class BenchComparison:
    """The full ratchet verdict over two reports."""

    old_sha: str
    new_sha: str
    tolerance: float
    improved_threshold: float
    entries: list[WorkloadComparison]

    @property
    def regressions(self) -> list[WorkloadComparison]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def ok(self) -> bool:
        """True when no workload regressed past the tolerance."""
        return not self.regressions

    def counts(self) -> dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for entry in self.entries:
            counts[entry.status] += 1
        return {k: v for k, v in counts.items() if v}

    def rows(self) -> list[dict]:
        """Table rows, regressions first, then by name."""
        order = {status: i for i, status in enumerate(STATUSES)}
        return [
            {
                "workload": e.name,
                "old (ms)": (
                    "-"
                    if e.old_seconds is None
                    else round(e.old_seconds * 1e3, 3)
                ),
                "new (ms)": (
                    "-"
                    if e.new_seconds is None
                    else round(e.new_seconds * 1e3, 3)
                ),
                "ratio": "-" if e.ratio is None else round(e.ratio, 3),
                "status": e.status,
            }
            for e in sorted(self.entries, key=lambda e: (order[e.status], e.name))
        ]

    def summary(self) -> str:
        """One-line verdict for logs and commit statuses."""
        counts = ", ".join(
            f"{count} {status}" for status, count in self.counts().items()
        )
        verdict = "OK" if self.ok else "REGRESSED"
        return (
            f"bench {self.old_sha}..{self.new_sha}: {verdict}"
            f" ({counts or 'no shared workloads'};"
            f" tolerance {self.tolerance:g}x)"
        )

    def markdown_table(self) -> str:
        """A GitHub-flavoured markdown report (for ``$GITHUB_STEP_SUMMARY``)."""
        lines = [
            f"### Benchmark ratchet: `{self.old_sha}` → `{self.new_sha}`",
            "",
            self.summary(),
            "",
            "| workload | old (ms) | new (ms) | ratio | status |",
            "| --- | ---: | ---: | ---: | --- |",
        ]
        for row in self.rows():
            status = row["status"]
            if status == "regressed":
                status = f"**{status}**"
            lines.append(
                f"| `{row['workload']}` | {row['old (ms)']} |"
                f" {row['new (ms)']} | {row['ratio']} | {status} |"
            )
        return "\n".join(lines) + "\n"


def _as_report(source: Any) -> BenchReport:
    """Coerce a path / dict / :class:`BenchReport` into a report."""
    if isinstance(source, BenchReport):
        return source
    if isinstance(source, dict):
        return BenchReport.from_dict(source)
    if isinstance(source, (str, os.PathLike)):
        return BenchReport.load(source)
    raise CliqueError(
        f"cannot interpret {type(source).__name__} as a bench report "
        f"(expected a path, a dict, or a BenchReport)"
    )


def compare_bench(
    old: Any,
    new: Any,
    tolerance: float = 1.25,
    *,
    improved_threshold: float = 0.8,
) -> BenchComparison:
    """Classify every workload of ``new`` against the ``old`` baseline.

    A workload is ``regressed`` when its median slowed by more than
    ``tolerance`` (ratio > tolerance), ``improved`` when it sped up past
    ``improved_threshold``, and ``stable`` otherwise.  ``old``/``new``
    accept file paths, parsed dicts, or :class:`BenchReport` instances.
    """
    if tolerance <= 1.0:
        raise CliqueError(f"tolerance must be > 1.0, not {tolerance}")
    if not 0.0 < improved_threshold <= 1.0:
        raise CliqueError(
            f"improved_threshold must be in (0, 1], not {improved_threshold}"
        )
    old_report = _as_report(old)
    new_report = _as_report(new)
    entries: list[WorkloadComparison] = []
    for name in sorted(set(old_report.results) | set(new_report.results)):
        before = old_report.results.get(name)
        after = new_report.results.get(name)
        if before is None:
            entries.append(
                WorkloadComparison(name=name, status="added", new_seconds=after.seconds)
            )
            continue
        if after is None:
            entries.append(
                WorkloadComparison(
                    name=name, status="removed", old_seconds=before.seconds
                )
            )
            continue
        ratio = (after.seconds / before.seconds if before.seconds > 0 else float("inf"))
        if ratio > tolerance:
            status = "regressed"
        elif ratio < improved_threshold:
            status = "improved"
        else:
            status = "stable"
        entries.append(
            WorkloadComparison(
                name=name,
                status=status,
                old_seconds=before.seconds,
                new_seconds=after.seconds,
                ratio=ratio,
            )
        )
    return BenchComparison(
        old_sha=old_report.git_sha,
        new_sha=new_report.git_sha,
        tolerance=tolerance,
        improved_threshold=improved_threshold,
        entries=entries,
    )
