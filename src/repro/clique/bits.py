"""Bit-exact message payloads.

The congested clique's measured resource is *bits of communication*: each
ordered node pair may carry one message of at most ``B = c * ceil(log2 n)``
bits per round.  To keep that accounting honest, every message payload in
the simulator is a :class:`BitString` — an immutable, length-aware bit
vector — and all higher-level values (node identifiers, edge lists, matrix
blocks, distance vectors) are packed and unpacked through
:class:`BitWriter` / :class:`BitReader`.

A :class:`BitString` is backed by a Python ``int`` holding the bits
MSB-first plus an explicit bit length, so leading zero bits are preserved
and ``len()`` is exact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import EncodingError

__all__ = [
    "BitString",
    "BitWriter",
    "BitReader",
    "uint_width",
    "encode_uint",
    "decode_uint",
    "encode_uint_array",
    "decode_uint_array",
]

#: Widest lane the numpy bulk kernels handle; wider values take the
#: big-int divide-and-conquer path.
_U64_WIDTH = 64

#: Below this many lanes the fixed numpy dispatch cost exceeds a plain
#: shift loop (which is quadratic, but bounded here), so the bulk
#: kernels drop to scalar code.
_SMALL_COUNT = 32


def uint_width(max_value: int) -> int:
    """Number of bits needed to encode any integer in ``[0, max_value]``.

    ``uint_width(0) == 1``: even a constant needs one bit on the wire in
    our accounting (a zero-bit message is reserved for "no message").
    """
    if max_value < 0:
        raise EncodingError(f"max_value must be nonnegative, got {max_value}")
    return max(1, max_value.bit_length())


class BitString:
    """An immutable sequence of bits (MSB-first).

    Supports concatenation (``+``), slicing, indexing, equality and
    hashing, so bit strings can be dict keys (e.g. transcript tables).
    """

    __slots__ = ("_value", "_length", "_hash")

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise EncodingError(f"negative bit length {length}")
        if value < 0:
            raise EncodingError("BitString value must be nonnegative")
        if value.bit_length() > length:
            raise EncodingError(
                f"value {value} does not fit in {length} bits"
            )
        self._value = value
        self._length = length

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 integers, first bit = MSB."""
        value = 0
        length = 0
        for b in bits:
            if b not in (0, 1):
                raise EncodingError(f"bit must be 0 or 1, got {b!r}")
            value = (value << 1) | b
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, s: str) -> "BitString":
        """Build from a string of ``'0'``/``'1'`` characters."""
        return cls.from_bits(int(c) for c in s)

    @classmethod
    def zeros(cls, length: int) -> "BitString":
        return cls(0, length)

    @classmethod
    def empty(cls) -> "BitString":
        return _EMPTY

    @classmethod
    def concat(cls, chunks: "Sequence[BitString]") -> "BitString":
        """Concatenate many bit strings in one pass.

        Equivalent to summing with ``+`` (or a ``write_bits`` loop) but
        merges by divide and conquer, so the big-int work is
        O(L log m) for m chunks totalling L bits instead of O(L * m).
        """
        if not chunks:
            return _EMPTY
        if len(chunks) <= _SMALL_COUNT:
            value = 0
            length = 0
            for chunk in chunks:
                value = (value << chunk._length) | chunk._value
                length += chunk._length
            return cls(value, length)

        def rec(lo: int, hi: int) -> tuple[int, int]:
            if hi - lo == 1:
                chunk = chunks[lo]
                return chunk._value, chunk._length
            mid = (lo + hi) // 2
            v1, l1 = rec(lo, mid)
            v2, l2 = rec(mid, hi)
            return (v1 << l2) | v2, l1 + l2

        return cls(*rec(0, len(chunks)))

    # -- accessors -------------------------------------------------------

    @property
    def value(self) -> int:
        """The bits interpreted as an unsigned integer (MSB-first)."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                return BitString.from_bits(
                    self._bit_at(i) for i in range(start, stop, step)
                )
            if stop <= start:
                return _EMPTY
            width = stop - start
            shifted = self._value >> (self._length - stop)
            return BitString(shifted & ((1 << width) - 1), width)
        i = index
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError(f"bit index {index} out of range")
        return self._bit_at(i)

    def _bit_at(self, i: int) -> int:
        return (self._value >> (self._length - 1 - i)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self._bit_at(i)

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        # Hashing a big-int payload is O(bits); cache it so transcript
        # tables and payload interning pay that cost once per object.
        # The slot stays unset until first use, keeping construction
        # (the truly hot operation) free of the extra store.
        try:
            return self._hash
        except AttributeError:
            h = hash((self._value, self._length))
            self._hash = h
            return h

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString('{self.to_str()}')"
        return f"BitString(<{self._length} bits>)"

    def to_str(self) -> str:
        """Render as a '0'/'1' string (MSB first)."""
        return format(self._value, f"0{self._length}b") if self._length else ""

    def to_bits(self) -> list[int]:
        """The bits as a list of 0/1 ints (MSB first)."""
        return list(self)

    def split(self, width: int) -> "list[BitString]":
        """Split into consecutive ``width``-bit chunks (MSB first).

        The final chunk is shorter when the length is not a multiple of
        ``width``.  Equivalent to ``[self[i : i + width] for i in
        range(0, len(self), width)]`` but avoids the per-slice big-int
        shifts, which are quadratic in the total length.
        """
        if width < 1:
            raise EncodingError(f"split width must be >= 1, got {width}")
        length = self._length
        if length == 0:
            return []
        if length <= width:
            return [self]
        full, tail = divmod(length, width)
        value = self._value
        chunks = (
            [BitString(v, width) for v in _split_uints(value >> tail, full, width)]
            if full
            else []
        )
        if tail:
            chunks.append(BitString(value & ((1 << tail) - 1), tail))
        return chunks


_EMPTY = BitString(0, 0)


def _merge_uints(values: Sequence[int], lo: int, hi: int, width: int) -> int:
    """Concatenate ``values[lo:hi]`` (each ``width`` bits) into one int
    by divide and conquer, so total work is O(L log m) big-int bit ops
    instead of the O(L * m) of a shift-per-value loop."""
    if hi - lo == 1:
        return int(values[lo])
    mid = (lo + hi) // 2
    return (_merge_uints(values, lo, mid, width) << ((hi - mid) * width)) | (
        _merge_uints(values, mid, hi, width)
    )


def _split_uints(value: int, count: int, width: int) -> list[int]:
    """Split ``value`` (``count * width`` bits, MSB first) into ``count``
    unsigned ints.  Lanes of at most 64 bits go through numpy
    (bytes -> unpackbits -> per-row dot with powers of two); wider lanes
    recurse on big-int halves."""
    if count <= _SMALL_COUNT:
        mask = (1 << width) - 1
        return [(value >> ((count - 1 - i) * width)) & mask for i in range(count)]
    if width <= _U64_WIDTH:
        total = count * width
        raw = (value << (-total % 8)).to_bytes((total + 7) // 8, "big")
        bit_matrix = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=total)
        powers = np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64)
        return (bit_matrix.reshape(count, width).astype(np.uint64) @ powers).tolist()
    hi_count = count // 2
    lo_bits = (count - hi_count) * width
    return _split_uints(value >> lo_bits, hi_count, width) + _split_uints(
        value & ((1 << lo_bits) - 1), count - hi_count, width
    )


def _encode_uint_seq_scalar(values: Sequence[int], width: int) -> BitString:
    """Arbitrary-precision fallback for :func:`encode_uint_array`."""
    if isinstance(values, np.ndarray):
        vals = values.tolist()
    else:
        vals = [int(v) for v in values]
    for v in vals:
        if v < 0 or v.bit_length() > width:
            raise EncodingError(f"value {v} does not fit in {width} bits")
    if not vals:
        return _EMPTY
    return BitString(_merge_uints(vals, 0, len(vals), width), len(vals) * width)


def encode_uint_array(values: Sequence[int], width: int) -> BitString:
    """Encode a sequence of unsigned ints, each as ``width`` bits.

    Bulk counterpart of repeated :meth:`BitWriter.write_uint` calls:
    bit-exact with the scalar path, but vectorised through numpy
    (values -> bit matrix -> ``packbits`` -> one big int) so the cost is
    linear in the output length instead of quadratic.  Values wider than
    64 bits, and inputs numpy cannot hold, fall back to an
    arbitrary-precision divide-and-conquer merge.

    Unlike ``write_uint``, a width of 0 is rejected: a zero-bit lane
    cannot carry a value and is reserved for "no message".
    """
    if width < 1:
        raise EncodingError(f"bulk encode width must be >= 1, got {width}")
    try:
        small = len(values) <= _SMALL_COUNT
    except TypeError:
        values = list(values)
        small = len(values) <= _SMALL_COUNT
    if small:
        return _encode_uint_seq_scalar(values, width)
    arr: "np.ndarray | None"
    if isinstance(values, np.ndarray) and values.dtype.kind in "iu":
        arr = values.ravel()
    else:
        try:
            arr = np.asarray(values, dtype=np.int64).ravel()
        except (OverflowError, TypeError, ValueError):
            arr = None  # values beyond int64 (or odd types): big-int path
    if arr is None:
        return _encode_uint_seq_scalar(values, width)
    count = int(arr.size)
    if count == 0:
        return _EMPTY
    if width > _U64_WIDTH:
        return _encode_uint_seq_scalar(arr.tolist(), width)
    if arr.dtype.kind == "i" and int(arr.min()) < 0:
        bad = int(arr[int(np.argmax(arr < 0))])
        raise EncodingError(f"value {bad} does not fit in {width} bits")
    lanes = arr.astype(np.uint64, copy=False)
    if width < _U64_WIDTH:
        over = lanes >> np.uint64(width)
        if over.any():
            bad = int(lanes[int(np.argmax(over != 0))])
            raise EncodingError(f"value {bad} does not fit in {width} bits")
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((lanes[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    total = count * width
    packed = np.packbits(bit_matrix.ravel())
    value = int.from_bytes(packed.tobytes(), "big") >> (-total % 8)
    return BitString(value, total)


def decode_uint_array(bits: BitString, count: int, width: int) -> list[int]:
    """Decode the first ``count * width`` bits of ``bits`` as ``count``
    unsigned ``width``-bit ints (bulk counterpart of
    :meth:`BitReader.read_uint_seq`; bit-exact with it).  Like
    :func:`encode_uint_array`, a width of 0 is rejected.
    """
    if width < 1:
        raise EncodingError(f"bulk decode width must be >= 1, got {width}")
    if count < 0:
        raise EncodingError(f"negative decode count {count}")
    total = count * width
    if total > len(bits):
        raise EncodingError(
            f"read of {total} bits at offset 0 overruns {len(bits)}-bit message"
        )
    if count == 0:
        return []
    return _split_uints(bits.value >> (len(bits) - total), count, width)


def encode_uint(value: int, width: int) -> BitString:
    """Encode ``value`` as an unsigned ``width``-bit string."""
    if value < 0:
        raise EncodingError(f"cannot encode negative value {value}")
    if value.bit_length() > width:
        raise EncodingError(f"value {value} does not fit in {width} bits")
    return BitString(value, width)


def decode_uint(bits: BitString) -> int:
    """Decode a bit string as an unsigned integer."""
    return bits.value


class BitWriter:
    """Incrementally packs values into a single :class:`BitString`.

    Mirrors the mpi4py convention of explicit datatypes: every write names
    its width so the matching :class:`BitReader` can parse symmetrically.
    """

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write_bit(self, bit: int) -> "BitWriter":
        """Append one bit."""
        if bit not in (0, 1):
            raise EncodingError(f"bit must be 0 or 1, got {bit!r}")
        self._value = (self._value << 1) | bit
        self._length += 1
        return self

    def write_uint(self, value: int, width: int) -> "BitWriter":
        """Append ``value`` as ``width`` unsigned bits."""
        if value < 0 or value.bit_length() > width:
            raise EncodingError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width
        return self

    def write_int(self, value: int, width: int) -> "BitWriter":
        """Two's-complement signed write; ``width`` includes the sign bit."""
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise EncodingError(f"value {value} does not fit in int{width}")
        return self.write_uint(value & ((1 << width) - 1), width)

    def write_bits(self, bits: BitString) -> "BitWriter":
        """Append an existing BitString."""
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)
        return self

    def write_uints(self, values: Sequence[int], width: int) -> "BitWriter":
        """Append each value as ``width`` unsigned bits in one bulk pass.

        Bit-exact with a :meth:`write_uint` loop but linear in the output
        length (see :func:`encode_uint_array`).  Rejects ``width == 0``.
        """
        chunk = encode_uint_array(values, width)
        self._value = (self._value << chunk._length) | chunk._value
        self._length += chunk._length
        return self

    def write_uint_seq(self, values: Sequence[int], width: int) -> "BitWriter":
        """Append each value as ``width`` unsigned bits."""
        if width == 0:
            # Scalar semantics: a zero-width write of 0 is a no-op.
            for v in values:
                self.write_uint(v, width)
            return self
        return self.write_uints(values, width)

    def __len__(self) -> int:
        return self._length

    def finish(self) -> BitString:
        """The accumulated bits as an immutable BitString."""
        return BitString(self._value, self._length)


class BitReader:
    """Sequentially unpacks values written by a :class:`BitWriter`."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: BitString) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read one bit."""
        return self.read_uint(1)

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer."""
        if width < 0:
            raise EncodingError(f"negative read width {width}")
        if self._pos + width > len(self._bits):
            raise EncodingError(
                f"read of {width} bits at offset {self._pos} overruns "
                f"{len(self._bits)}-bit message"
            )
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk.value

    def read_int(self, width: int) -> int:
        """Read a two's-complement signed ``width``-bit integer."""
        raw = self.read_uint(width)
        if raw >= 1 << (width - 1):
            raw -= 1 << width
        return raw

    def read_bits(self, width: int) -> BitString:
        """Read ``width`` raw bits as a BitString."""
        if self._pos + width > len(self._bits):
            raise EncodingError(
                f"read of {width} bits at offset {self._pos} overruns "
                f"{len(self._bits)}-bit message"
            )
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk

    def read_uints(self, count: int, width: int) -> list[int]:
        """Read ``count`` unsigned ``width``-bit integers in one bulk
        pass (bit-exact with a :meth:`read_uint` loop; rejects
        ``width == 0`` — see :func:`decode_uint_array`)."""
        if width < 1:
            raise EncodingError(f"bulk read width must be >= 1, got {width}")
        if count < 0:
            raise EncodingError(f"negative read count {count}")
        total = count * width
        bits = self._bits
        if self._pos + total > len(bits):
            raise EncodingError(
                f"read of {total} bits at offset {self._pos} overruns "
                f"{len(bits)}-bit message"
            )
        if count == 0:
            return []
        end = self._pos + total
        value = (bits.value >> (len(bits) - end)) & ((1 << total) - 1)
        self._pos = end
        return _split_uints(value, count, width)

    def read_uint_seq(self, count: int, width: int) -> list[int]:
        """Read ``count`` unsigned ``width``-bit integers."""
        if width == 0:
            return [self.read_uint(width) for _ in range(count)]
        return self.read_uints(count, width)

    def read_rest(self) -> BitString:
        """Read all remaining bits."""
        return self.read_bits(self.remaining)
