"""Bit-exact message payloads.

The congested clique's measured resource is *bits of communication*: each
ordered node pair may carry one message of at most ``B = c * ceil(log2 n)``
bits per round.  To keep that accounting honest, every message payload in
the simulator is a :class:`BitString` — an immutable, length-aware bit
vector — and all higher-level values (node identifiers, edge lists, matrix
blocks, distance vectors) are packed and unpacked through
:class:`BitWriter` / :class:`BitReader`.

A :class:`BitString` is backed by a Python ``int`` holding the bits
MSB-first plus an explicit bit length, so leading zero bits are preserved
and ``len()`` is exact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .errors import EncodingError

__all__ = [
    "BitString",
    "BitWriter",
    "BitReader",
    "uint_width",
    "encode_uint",
    "decode_uint",
]


def uint_width(max_value: int) -> int:
    """Number of bits needed to encode any integer in ``[0, max_value]``.

    ``uint_width(0) == 1``: even a constant needs one bit on the wire in
    our accounting (a zero-bit message is reserved for "no message").
    """
    if max_value < 0:
        raise EncodingError(f"max_value must be nonnegative, got {max_value}")
    return max(1, max_value.bit_length())


class BitString:
    """An immutable sequence of bits (MSB-first).

    Supports concatenation (``+``), slicing, indexing, equality and
    hashing, so bit strings can be dict keys (e.g. transcript tables).
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise EncodingError(f"negative bit length {length}")
        if value < 0:
            raise EncodingError("BitString value must be nonnegative")
        if value.bit_length() > length:
            raise EncodingError(
                f"value {value} does not fit in {length} bits"
            )
        self._value = value
        self._length = length

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 integers, first bit = MSB."""
        value = 0
        length = 0
        for b in bits:
            if b not in (0, 1):
                raise EncodingError(f"bit must be 0 or 1, got {b!r}")
            value = (value << 1) | b
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, s: str) -> "BitString":
        """Build from a string of ``'0'``/``'1'`` characters."""
        return cls.from_bits(int(c) for c in s)

    @classmethod
    def zeros(cls, length: int) -> "BitString":
        return cls(0, length)

    @classmethod
    def empty(cls) -> "BitString":
        return _EMPTY

    # -- accessors -------------------------------------------------------

    @property
    def value(self) -> int:
        """The bits interpreted as an unsigned integer (MSB-first)."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                return BitString.from_bits(
                    self._bit_at(i) for i in range(start, stop, step)
                )
            if stop <= start:
                return _EMPTY
            width = stop - start
            shifted = self._value >> (self._length - stop)
            return BitString(shifted & ((1 << width) - 1), width)
        i = index
        if i < 0:
            i += self._length
        if not 0 <= i < self._length:
            raise IndexError(f"bit index {index} out of range")
        return self._bit_at(i)

    def _bit_at(self, i: int) -> int:
        return (self._value >> (self._length - 1 - i)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self._bit_at(i)

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString('{self.to_str()}')"
        return f"BitString(<{self._length} bits>)"

    def to_str(self) -> str:
        """Render as a '0'/'1' string (MSB first)."""
        return format(self._value, f"0{self._length}b") if self._length else ""

    def to_bits(self) -> list[int]:
        """The bits as a list of 0/1 ints (MSB first)."""
        return list(self)


_EMPTY = BitString(0, 0)


def encode_uint(value: int, width: int) -> BitString:
    """Encode ``value`` as an unsigned ``width``-bit string."""
    if value < 0:
        raise EncodingError(f"cannot encode negative value {value}")
    if value.bit_length() > width:
        raise EncodingError(f"value {value} does not fit in {width} bits")
    return BitString(value, width)


def decode_uint(bits: BitString) -> int:
    """Decode a bit string as an unsigned integer."""
    return bits.value


class BitWriter:
    """Incrementally packs values into a single :class:`BitString`.

    Mirrors the mpi4py convention of explicit datatypes: every write names
    its width so the matching :class:`BitReader` can parse symmetrically.
    """

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write_bit(self, bit: int) -> "BitWriter":
        """Append one bit."""
        if bit not in (0, 1):
            raise EncodingError(f"bit must be 0 or 1, got {bit!r}")
        self._value = (self._value << 1) | bit
        self._length += 1
        return self

    def write_uint(self, value: int, width: int) -> "BitWriter":
        """Append ``value`` as ``width`` unsigned bits."""
        if value < 0 or value.bit_length() > width:
            raise EncodingError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width
        return self

    def write_int(self, value: int, width: int) -> "BitWriter":
        """Two's-complement signed write; ``width`` includes the sign bit."""
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise EncodingError(f"value {value} does not fit in int{width}")
        return self.write_uint(value & ((1 << width) - 1), width)

    def write_bits(self, bits: BitString) -> "BitWriter":
        """Append an existing BitString."""
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)
        return self

    def write_uint_seq(self, values: Sequence[int], width: int) -> "BitWriter":
        """Append each value as ``width`` unsigned bits."""
        for v in values:
            self.write_uint(v, width)
        return self

    def __len__(self) -> int:
        return self._length

    def finish(self) -> BitString:
        """The accumulated bits as an immutable BitString."""
        return BitString(self._value, self._length)


class BitReader:
    """Sequentially unpacks values written by a :class:`BitWriter`."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: BitString) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read one bit."""
        return self.read_uint(1)

    def read_uint(self, width: int) -> int:
        """Read a ``width``-bit unsigned integer."""
        if width < 0:
            raise EncodingError(f"negative read width {width}")
        if self._pos + width > len(self._bits):
            raise EncodingError(
                f"read of {width} bits at offset {self._pos} overruns "
                f"{len(self._bits)}-bit message"
            )
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk.value

    def read_int(self, width: int) -> int:
        """Read a two's-complement signed ``width``-bit integer."""
        raw = self.read_uint(width)
        if raw >= 1 << (width - 1):
            raw -= 1 << width
        return raw

    def read_bits(self, width: int) -> BitString:
        """Read ``width`` raw bits as a BitString."""
        if self._pos + width > len(self._bits):
            raise EncodingError(
                f"read of {width} bits at offset {self._pos} overruns "
                f"{len(self._bits)}-bit message"
            )
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        return chunk

    def read_uint_seq(self, count: int, width: int) -> list[int]:
        """Read ``count`` unsigned ``width``-bit integers."""
        return [self.read_uint(width) for _ in range(count)]

    def read_rest(self) -> BitString:
        """Read all remaining bits."""
        return self.read_bits(self.remaining)
