"""Virtual-clique simulation — running N' virtual nodes on n real nodes.

Theorem 10's round accounting rests on this machinery: "we have each
node v in V simulate the nodes v_i and v_{i,j} ... each node is
simulating at most O(k^2) nodes in G', [giving] O(k^4) rounds for each
round in G'".  This module implements the simulation generically and
honestly:

* each real node hosts a fixed set of virtual nodes (any assignment),
* one virtual round expands into enough real rounds to carry every
  virtual message over the single real link between the two hosts —
  with hosts of size at most ``s``, up to ``s^2`` virtual messages share
  a link, so a virtual round costs ``O(s^2)`` real rounds (each real
  message carries one virtual message plus a ``[src, dst]`` virtual
  header),
* virtual programs are ordinary node programs: they see a
  :class:`VirtualNode` with the full messaging API and never know they
  are being simulated.

Intra-host virtual messages are delivered locally for free (local
computation is unrestricted in the model).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from .bits import BitReader, BitString, BitWriter, uint_width
from .errors import (
    BandwidthExceeded,
    DuplicateMessage,
    InvalidAddress,
    ProtocolViolation,
)
from .network import CongestedClique, NodeProgram, RunResult
from .node import Node

__all__ = ["VirtualNode", "simulate_virtual_clique"]


class VirtualNode:
    """The node-local API handed to a simulated (virtual) node.

    Mirrors :class:`~repro.clique.node.Node`; ``bandwidth`` is the
    *virtual* clique's budget (``ceil(log2 N')`` by default).
    """

    __slots__ = (
        "id",
        "n",
        "bandwidth",
        "input",
        "aux",
        "counters",
        "_outbox",
        "_inbox",
        "_round",
    )

    def __init__(self, vid: int, n: int, bandwidth: int, vinput, aux) -> None:
        self.id = vid
        self.n = n
        self.bandwidth = bandwidth
        self.input = vinput
        self.aux = aux
        self.counters: dict[str, int] = {}
        self._outbox: dict[int, BitString] = {}
        self._inbox: dict[int, BitString] = {}
        self._round = 0

    def send(self, dst: int, payload: BitString) -> None:
        """Queue one virtual message of at most ``bandwidth`` bits."""
        if dst == self.id:
            raise InvalidAddress(f"virtual node {self.id} addressed itself")
        if not 0 <= dst < self.n:
            raise InvalidAddress(
                f"virtual node {self.id} addressed {dst} (N'={self.n})"
            )
        if len(payload) > self.bandwidth:
            raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
        if len(payload) == 0:
            raise ProtocolViolation(
                f"virtual node {self.id} sent an empty message"
            )
        if dst in self._outbox:
            raise DuplicateMessage(self.id, dst)
        self._outbox[dst] = payload

    def send_to_all(self, payload: BitString) -> None:
        """Queue the same message for every other virtual node."""
        for dst in range(self.n):
            if dst != self.id:
                self.send(dst, payload)

    def count(self, key: str, amount: int) -> None:
        """Add ``amount`` to the measurement counter ``key``."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def _bulk_send(self, dst: int, payload: BitString) -> None:
        raise ProtocolViolation(
            "the Lenzen cost-model channel is an accounting device and "
            "cannot be virtualised; run the virtual algorithm with "
            "scheme='direct' or scheme='relay'"
        )

    @property
    def inbox(self):
        return self._inbox

    def recv(self, src: int):
        """The message received from ``src`` this round, or None."""
        return self._inbox.get(src)

    @property
    def round(self) -> int:
        return self._round


def simulate_virtual_clique(
    n_real: int,
    n_virtual: int,
    host_of: Callable[[int], int],
    virtual_program: NodeProgram,
    virtual_input: Callable[[int], Any],
    virtual_aux: Callable[[int], Any] | None = None,
    *,
    virtual_bandwidth: int | None = None,
    bandwidth_multiplier: int = 2,
    max_rounds: int | None = None,
) -> tuple[dict[int, Any], RunResult]:
    """Run a virtual clique of ``n_virtual`` nodes on ``n_real`` nodes.

    ``host_of(v)`` maps each virtual node to its real host in
    ``0..n_real-1``.  Returns ``(virtual_outputs, real RunResult)`` — the
    real result's ``rounds`` is the honest cost including the ``O(s^2)``
    per-virtual-round multiplexing overhead.

    The real clique needs header room: each real message carries
    ``2 ceil(log2 N')`` virtual-address bits plus one virtual payload, so
    it runs at ``bandwidth_multiplier`` times the virtual budget plus the
    header (constant-factor bandwidth, per Section 3's remark).
    """
    hosts: dict[int, list[int]] = {r: [] for r in range(n_real)}
    for v in range(n_virtual):
        r = host_of(v)
        if not 0 <= r < n_real:
            raise ProtocolViolation(f"host_of({v}) = {r} out of range")
        hosts[r].append(v)
    s = max((len(vs) for vs in hosts.values()), default=1)

    v_bw = (
        virtual_bandwidth
        if virtual_bandwidth is not None
        else max(1, (max(2, n_virtual) - 1).bit_length())
    )
    vw = uint_width(max(1, n_virtual - 1))
    header = 2 * vw
    real_bw = bandwidth_multiplier * v_bw + header
    #: messages per link per virtual round, worst case
    slots = s * s

    def real_program(node: Node) -> Generator[None, None, dict[int, Any]]:
        my_virtuals = hosts[node.id]
        gens = {}
        vnodes: dict[int, VirtualNode] = {}
        outputs: dict[int, Any] = {}
        live = set(my_virtuals)
        for v in my_virtuals:
            vn = VirtualNode(
                v,
                n_virtual,
                v_bw,
                virtual_input(v),
                virtual_aux(v) if virtual_aux else None,
            )
            vnodes[v] = vn
            gens[v] = virtual_program(vn)

        def advance(v: int) -> None:
            try:
                next(gens[v])
            except StopIteration as stop:
                outputs[v] = stop.value
                live.discard(v)

        for v in list(my_virtuals):
            advance(v)

        while True:
            # Gather this virtual round's outgoing messages.
            pending: list[tuple[int, int, BitString]] = []
            for v in my_virtuals:
                vn = vnodes[v]
                for dst, payload in vn._outbox.items():
                    pending.append((v, dst, payload))
                vn._outbox = {}

            # Sort messages onto real links (intra-host is free local
            # computation); slot assignment on a link follows the
            # deterministic (src, dst) order.
            by_link: dict[int, list[tuple[int, int, BitString]]] = {}
            inboxes: dict[int, dict[int, BitString]] = {
                v: {} for v in my_virtuals
            }
            for v, dst, payload in sorted(
                pending, key=lambda t: (t[0], t[1])
            ):
                r = host_of(dst)
                if r == node.id:
                    inboxes[dst][v] = payload  # intra-host: free
                else:
                    by_link.setdefault(r, []).append((v, dst, payload))

            # One coordination round per virtual round: every host
            # announces (active?, busiest outgoing link load); the
            # number of multiplexing sub-rounds is the global maximum
            # (at most s^2 by construction).
            my_max = max((len(m) for m in by_link.values()), default=0)
            i_am_done = not live and not pending
            sw = uint_width(max(1, slots))
            w = BitWriter()
            w.write_bit(0 if i_am_done else 1)
            w.write_uint(my_max, sw)
            node.send_to_all(w.finish())
            yield
            anyone_active = not i_am_done
            needed = my_max
            for m in node.inbox.values():
                rdr = BitReader(m)
                if rdr.read_bit():
                    anyone_active = True
                needed = max(needed, rdr.read_uint(sw))
            if not anyone_active:
                break

            for slot in range(needed):
                for r, msgs in by_link.items():
                    if slot < len(msgs):
                        v, dst, payload = msgs[slot]
                        w = BitWriter()
                        w.write_uint(v, vw)
                        w.write_uint(dst, vw)
                        w.write_bits(payload)
                        node.send(r, w.finish())
                yield
                for _, msg in node.inbox.items():
                    rdr = BitReader(msg)
                    src_v = rdr.read_uint(vw)
                    dst_v = rdr.read_uint(vw)
                    payload = rdr.read_rest()
                    if dst_v not in inboxes:
                        raise ProtocolViolation(
                            f"real node {node.id} received a virtual "
                            f"message for {dst_v}, which it does not host"
                        )
                    inboxes[dst_v][src_v] = payload

            # Deliver and advance the virtual round.
            for v in my_virtuals:
                vn = vnodes[v]
                vn._inbox = inboxes[v]
                vn._round += 1
            for v in sorted(live):
                advance(v)

        return outputs

    clique = CongestedClique(
        n_real,
        bandwidth=real_bw,
        max_rounds=max_rounds,
    )
    result = clique.run(real_program)
    virtual_outputs: dict[int, Any] = {}
    for r in range(n_real):
        virtual_outputs.update(result.outputs[r])
    if set(virtual_outputs) != set(range(n_virtual)):
        missing = set(range(n_virtual)) - set(virtual_outputs)
        raise ProtocolViolation(
            f"virtual nodes {sorted(missing)} never halted"
        )
    return virtual_outputs, result
