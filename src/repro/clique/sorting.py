"""Distributed sorting in the congested clique.

Lenzen [43] shows that sorting ``n^2`` keys of ``O(log n)`` bits (n keys
per node) takes ``O(1)`` rounds deterministically.  We implement the
classical *parallel sorting by regular sampling* (PSRS) scheme on top of
:func:`repro.clique.routing.route`:

1. each node sorts its keys locally (free local computation),
2. every node publishes ``n`` evenly spaced samples (all-broadcast),
3. global splitters are the every-``n``-th order statistics of the
   ``n^2`` samples; keys are routed to their splitter bucket,
4. bucket owners merge, bucket sizes are all-gathered, and keys are
   re-routed to their exact global-rank owner, so node ``i`` ends with
   the ranks ``[i*q, (i+1)*q)`` where ``q`` is its quota.

The sample publication costs ``ceil(n * key_width / B)`` rounds, which is
``O(n)`` — asymptotically weaker than Lenzen's ``O(1)`` sorting circuit
(a substitution documented in DESIGN.md); the data movement itself is
balanced and costs ``O(max_load / (nB) + 1)`` rounds via :func:`route`.
"""

from __future__ import annotations

import bisect
from typing import Generator

from .bits import BitReader, BitString, BitWriter
from .errors import ProtocolViolation
from .node import Node
from .primitives import all_broadcast, all_gather_uint
from .routing import route

__all__ = ["distributed_sort"]


def _pack_keys(keys: list[int], width: int) -> BitString:
    w = BitWriter()
    w.write_uint(len(keys), 32)
    if keys:
        w.write_uints(keys, width)
    return w.finish()


def _unpack_keys(bits: BitString, width: int) -> list[int]:
    r = BitReader(bits)
    count = r.read_uint(32)
    return r.read_uints(count, width)


def distributed_sort(
    node: Node,
    keys: list[int],
    key_width: int,
    scheme: str = "lenzen",
) -> Generator[None, None, list[int]]:
    """Sort the union of all nodes' keys; node ``i`` returns the ``i``-th
    contiguous slice of the global sorted order.

    Every key must be an unsigned ``key_width``-bit integer.  Quotas are
    ``ceil(total / n)`` for the first nodes and the remainder for the
    last.  Duplicate keys are fine (ranks are assigned stably).
    """
    n = node.n
    for k in keys:
        if k < 0 or k.bit_length() > key_width:
            raise ProtocolViolation(
                f"key {k} does not fit in {key_width} bits"
            )
    local = sorted(keys)

    if n == 1:
        return local

    # Step 2: publish n evenly spaced samples (pad with the max value so
    # every node contributes exactly n samples and lengths agree).
    pad = (1 << key_width) - 1
    if local:
        step = max(1, len(local) // n)
        samples = [local[min(i * step, len(local) - 1)] for i in range(n)]
    else:
        samples = [pad] * n
    sample_payload = BitWriter().write_uints(samples, key_width).finish()
    all_samples_bits = yield from all_broadcast(node, sample_payload)
    all_samples = sorted(
        s
        for bits in all_samples_bits
        for s in BitReader(bits).read_uints(n, key_width)
    )
    # n-1 splitters: every n-th order statistic.
    splitters = [all_samples[(j + 1) * n - 1] for j in range(n - 1)]

    # Step 3: route keys to their splitter bucket (bucket j owns keys in
    # (splitters[j-1], splitters[j]]; ties go to the lower bucket).
    buckets: dict[int, list[int]] = {j: [] for j in range(n)}
    for k in local:
        j = bisect.bisect_left(splitters, k)
        buckets[j].append(k)
    flows = {
        j: _pack_keys(ks, key_width) for j, ks in buckets.items() if ks
    }
    received = yield from route(node, flows, scheme=scheme)
    merged = sorted(
        k for bits in received.values() for k in _unpack_keys(bits, key_width)
    )

    # Step 4: all-gather bucket sizes, compute exact global ranks, and
    # re-route each key to its rank owner.
    sizes = yield from all_gather_uint(node, len(merged), 32)
    total = sum(sizes)
    my_offset = sum(sizes[: node.id])
    quota = -(-total // n)  # ceil

    rank_flows: dict[int, list[int]] = {}
    for pos, k in enumerate(merged):
        rank = my_offset + pos
        owner = min(rank // quota, n - 1) if quota > 0 else 0
        rank_flows.setdefault(owner, []).append(k)
    flows2 = {
        d: _pack_keys(ks, key_width) for d, ks in rank_flows.items() if ks
    }
    received2 = yield from route(node, flows2, scheme=scheme)
    final = sorted(
        k
        for bits in received2.values()
        for k in _unpack_keys(bits, key_width)
    )
    return final
