"""Node-local API handed to congested clique algorithms.

A node program is a generator function ``program(node)``:

* during a round it queues messages with :meth:`Node.send` (at most one
  message of at most ``node.bandwidth`` bits per destination),
* ``yield`` ends the round; when the generator resumes, :attr:`Node.inbox`
  holds the messages received that round (``{src: BitString}``),
* ``return value`` halts the node with ``value`` as its output.

This mirrors the synchronous send/receive structure of MPI programs
(cf. mpi4py's ``send``/``recv``): all nodes run the same program, and the
engine advances them in lockstep.
"""

from __future__ import annotations

from typing import Any, Mapping

from .bits import BitString
from .errors import (
    BandwidthExceeded,
    DuplicateMessage,
    InvalidAddress,
    ProtocolViolation,
)

__all__ = ["Node"]


class Node:
    """State and messaging interface of a single congested clique node."""

    __slots__ = (
        "id",
        "n",
        "bandwidth",
        "input",
        "aux",
        "counters",
        "_outbox",
        "_bulk_outbox",
        "_inbox",
        "_halted",
        "_round",
    )

    def __init__(
        self,
        node_id: int,
        n: int,
        bandwidth: int,
        node_input: Any,
        aux: Any = None,
    ) -> None:
        #: This node's identifier in ``0..n-1``.
        self.id = node_id
        #: Number of nodes in the clique.
        self.n = n
        #: Per-link, per-round bit budget ``B``.
        self.bandwidth = bandwidth
        #: The node's local share of the input (e.g. its incidence row).
        self.input = node_input
        #: Optional algorithm-specific auxiliary input (labels, source id, ...).
        self.aux = aux
        #: Free-form measurement counters updated by primitives (e.g.
        #: ``route_payload_in_bits``) — the loads the theorems bound,
        #: net of constant protocol overheads.  Collected into
        #: :class:`~repro.clique.network.RunResult`.
        self.counters: dict[str, int] = {}
        self._outbox: dict[int, BitString] = {}
        self._bulk_outbox: dict[int, BitString] = {}
        self._inbox: dict[int, BitString] = {}
        self._halted = False
        self._round = 0

    # -- messaging -------------------------------------------------------

    def send(self, dst: int, payload: BitString) -> None:
        """Queue one message of at most :attr:`bandwidth` bits for ``dst``.

        The model allows exactly one message per ordered pair per round;
        queueing a second message for the same destination raises
        :class:`DuplicateMessage`.
        """
        self._check_can_send(dst)
        if len(payload) > self.bandwidth:
            raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
        if len(payload) == 0:
            raise ProtocolViolation(
                f"node {self.id} sent an empty message to {dst}; "
                f"omit the send instead"
            )
        if dst in self._outbox or dst in self._bulk_outbox:
            raise DuplicateMessage(self.id, dst)
        self._outbox[dst] = payload

    def send_to_all(self, payload: BitString) -> None:
        """Queue the same message for every other node (broadcast step)."""
        for dst in range(self.n):
            if dst != self.id:
                self.send(dst, payload)

    def _bulk_send(self, dst: int, payload: BitString) -> None:
        """Privileged unbounded send used *only* by the Lenzen cost-model
        router (see :mod:`repro.clique.routing`): the payload bypasses the
        per-round bandwidth check, and the router separately charges the
        number of rounds Lenzen's routing theorem guarantees.  Algorithms
        must never call this directly.
        """
        self._check_can_send(dst)
        if dst in self._outbox or dst in self._bulk_outbox:
            raise DuplicateMessage(self.id, dst)
        if len(payload) == 0:
            return
        self._bulk_outbox[dst] = payload

    def _check_can_send(self, dst: int) -> None:
        if self._halted:
            raise ProtocolViolation(f"node {self.id} sent after halting")
        if dst == self.id:
            raise InvalidAddress(f"node {self.id} addressed itself")
        if not 0 <= dst < self.n:
            raise InvalidAddress(
                f"node {self.id} addressed nonexistent node {dst} (n={self.n})"
            )

    def count(self, key: str, amount: int) -> None:
        """Add ``amount`` to the measurement counter ``key``."""
        self.counters[key] = self.counters.get(key, 0) + amount

    @property
    def inbox(self) -> Mapping[int, BitString]:
        """Messages received in the round that just ended (``{src: bits}``)."""
        return self._inbox

    def recv(self, src: int) -> BitString | None:
        """The message received from ``src`` this round, or ``None``."""
        return self._inbox.get(src)

    @property
    def round(self) -> int:
        """Number of completed communication rounds."""
        return self._round

    def __repr__(self) -> str:
        return f"Node(id={self.id}, n={self.n}, round={self._round})"
