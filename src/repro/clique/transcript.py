"""Communication transcripts.

A *transcript* of node ``v`` is the full record of messages sent and
received by ``v`` during an execution — exactly the object used by the
normal-form theorem (Theorem 3): a nondeterministic algorithm can be
rewritten so that its certificate is a claimed transcript, which nodes
verify by replaying it.

Transcripts are bit-exact and serialisable to a single
:class:`~repro.clique.bits.BitString`, so they can be used as certificate
labels whose size we can measure against the ``O(T(n) * n * log n)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bits import BitReader, BitString, BitWriter, uint_width

__all__ = ["RoundRecord", "Transcript"]


@dataclass(frozen=True)
class RoundRecord:
    """Messages sent/received by one node in one round."""

    sent: dict[int, BitString] = field(default_factory=dict)
    received: dict[int, BitString] = field(default_factory=dict)

    def total_bits(self) -> int:
        """Message bits through this node in this round (sent + received)."""
        return sum(len(b) for b in self.sent.values()) + sum(
            len(b) for b in self.received.values()
        )


@dataclass(frozen=True)
class Transcript:
    """Per-node record of a full execution."""

    node: int
    n: int
    rounds: tuple[RoundRecord, ...]

    def num_rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.rounds)

    def total_bits(self) -> int:
        """Total message bits through this node (sent + received)."""
        return sum(r.total_bits() for r in self.rounds)

    # -- serialisation ---------------------------------------------------
    #
    # Layout (all widths derived from n and the per-execution maxima so the
    # encoding is self-delimiting):
    #   [num_rounds : 32][msg_width : 16]
    #   per round, per direction (sent, received):
    #     [count : node_width] then count * ([peer : node_width]
    #                                        [len : 16][payload : len])

    def encode(self) -> BitString:
        """Serialise to a BitString (see the layout comment above)."""
        w = BitWriter()
        node_width = uint_width(max(1, self.n - 1))
        w.write_uint(len(self.rounds), 32)
        for rec in self.rounds:
            for direction in (rec.sent, rec.received):
                w.write_uint(len(direction), node_width)
                for peer in sorted(direction):
                    payload = direction[peer]
                    w.write_uint(peer, node_width)
                    w.write_uint(len(payload), 16)
                    w.write_bits(payload)
        return w.finish()

    @classmethod
    def decode(cls, node: int, n: int, bits: BitString) -> "Transcript":
        r = BitReader(bits)
        node_width = uint_width(max(1, n - 1))
        num_rounds = r.read_uint(32)
        rounds = []
        for _ in range(num_rounds):
            directions = []
            for _ in range(2):
                count = r.read_uint(node_width)
                msgs: dict[int, BitString] = {}
                for _ in range(count):
                    peer = r.read_uint(node_width)
                    length = r.read_uint(16)
                    msgs[peer] = r.read_bits(length)
                directions.append(msgs)
            rounds.append(RoundRecord(sent=directions[0], received=directions[1]))
        return cls(node=node, n=n, rounds=tuple(rounds))

    def consistent_with(self, other: "Transcript") -> bool:
        """Check pairwise consistency: every message this node claims to
        have sent to ``other.node`` must appear in ``other``'s received
        record for the same round, and vice versa.
        """
        if len(self.rounds) != len(other.rounds):
            return False
        for mine, theirs in zip(self.rounds, other.rounds):
            if mine.sent.get(other.node) != theirs.received.get(self.node):
                return False
            if theirs.sent.get(self.node) != mine.received.get(other.node):
                return False
        return True
