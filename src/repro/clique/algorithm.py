"""Convenience driver for running node programs on input graphs."""

from __future__ import annotations

from typing import Any

from .graph import CliqueGraph
from .network import CongestedClique, NodeProgram, RunResult

__all__ = ["run_algorithm"]


def run_algorithm(
    program: NodeProgram,
    graph: CliqueGraph,
    *,
    aux: Any = None,
    bandwidth_multiplier: int = 1,
    bandwidth: int | None = None,
    record_transcripts: bool = False,
    max_rounds: int | None = None,
    engine: Any = None,
) -> RunResult:
    """Run ``program`` on ``graph`` in a congested clique of ``graph.n`` nodes.

    Each node ``v`` receives ``graph.local_view(v)`` as its input and
    ``aux``'s per-node resolution as auxiliary input.  ``engine``
    selects the execution backend (``None``/``"reference"``, ``"fast"``,
    or an :class:`repro.engine.Engine` instance).
    """
    clique = CongestedClique(
        graph.n,
        bandwidth=bandwidth,
        bandwidth_multiplier=bandwidth_multiplier,
        record_transcripts=record_transcripts,
        max_rounds=max_rounds,
    )
    return clique.run(program, graph, aux=aux, engine=engine)
