"""Convenience driver for running node programs on input graphs."""

from __future__ import annotations

import warnings
from typing import Any

from .graph import CliqueGraph
from .network import CongestedClique, NodeProgram, RunResult

__all__ = ["run_algorithm"]

_UNSET = object()


def run_algorithm(
    program: NodeProgram,
    graph: CliqueGraph,
    *,
    aux: Any = None,
    bandwidth_multiplier: int = 1,
    bandwidth: int | None = None,
    max_rounds: int | None = None,
    execution: Any = None,
    engine: Any = None,
    check: Any = None,
    transcripts: bool | None = None,
    observer: Any = None,
    fault_plan: Any = None,
    record_transcripts: Any = _UNSET,
) -> RunResult:
    """Run ``program`` on ``graph`` in a congested clique of ``graph.n`` nodes.

    This is a thin wrapper over :meth:`CongestedClique.run` — it builds
    the clique from the graph's size and forwards the *same* keyword-only
    run options (``execution=``, ``engine=``, ``check=``,
    ``transcripts=``, ``observer=``, ``fault_plan=``); see that method
    for their semantics.  Each node ``v``
    receives ``graph.local_view(v)`` as its input and ``aux``'s per-node
    resolution as auxiliary input.

    ``record_transcripts=`` is the deprecated spelling of
    ``transcripts=`` (it warns and keeps working).
    """
    if record_transcripts is not _UNSET:
        if transcripts is not None:
            raise TypeError(
                "run_algorithm() got both transcripts= and the deprecated "
                "record_transcripts="
            )
        warnings.warn(
            "record_transcripts= is deprecated; use transcripts=",
            DeprecationWarning,
            stacklevel=2,
        )
        transcripts = bool(record_transcripts)
    clique = CongestedClique(
        graph.n,
        bandwidth=bandwidth,
        bandwidth_multiplier=bandwidth_multiplier,
        max_rounds=max_rounds,
    )
    return clique.run(
        program,
        graph,
        aux=aux,
        execution=execution,
        engine=engine,
        check=check,
        transcripts=transcripts,
        observer=observer,
        fault_plan=fault_plan,
    )
