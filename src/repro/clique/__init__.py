"""The congested clique simulator substrate.

This subpackage implements the model of Section 3 of the paper: ``n``
fully connected nodes computing in synchronous rounds, one message of
``O(log n)`` bits per ordered pair per round, unlimited local
computation.  Round counts reported by the engine are the paper's time
complexity measure.
"""

from .algorithm import run_algorithm
from .bits import BitReader, BitString, BitWriter, decode_uint, encode_uint, uint_width
from .errors import (
    BandwidthExceeded,
    CacheCorruption,
    CliqueError,
    DuplicateMessage,
    EncodingError,
    FaultInjected,
    InvalidAddress,
    ProtocolViolation,
    RoundLimitExceeded,
    RoutingOverload,
    SweepPointFailed,
)
from .graph import INF, CliqueGraph, edge_owner, private_bit_layout
from .network import CongestedClique, RunResult, default_bandwidth
from .node import Node
from .primitives import (
    agree_uint_max,
    all_broadcast,
    all_gather_bits,
    all_gather_uint,
    broadcast_from,
    chunks_needed,
    exchange,
    idle,
)
from .routing import ROUTE_SCHEMES, relay_min_bandwidth, route
from .simulation import VirtualNode, simulate_virtual_clique
from .sorting import distributed_sort
from .transcript import RoundRecord, Transcript

__all__ = [
    "BandwidthExceeded",
    "BitReader",
    "BitString",
    "BitWriter",
    "CacheCorruption",
    "CliqueError",
    "CliqueGraph",
    "CongestedClique",
    "DuplicateMessage",
    "EncodingError",
    "FaultInjected",
    "INF",
    "InvalidAddress",
    "Node",
    "ProtocolViolation",
    "ROUTE_SCHEMES",
    "RoundLimitExceeded",
    "RoundRecord",
    "RoutingOverload",
    "RunResult",
    "SweepPointFailed",
    "Transcript",
    "VirtualNode",
    "agree_uint_max",
    "all_broadcast",
    "all_gather_bits",
    "all_gather_uint",
    "broadcast_from",
    "chunks_needed",
    "decode_uint",
    "default_bandwidth",
    "distributed_sort",
    "edge_owner",
    "encode_uint",
    "exchange",
    "idle",
    "private_bit_layout",
    "relay_min_bandwidth",
    "route",
    "run_algorithm",
    "simulate_virtual_clique",
    "uint_width",
]
