"""Message routing primitives.

The paper's algorithms (e.g. Theorem 9) invoke the routing protocol of
Lenzen [43] as a black box: *any* instance in which each node sends and
receives at most ``n * r`` messages of ``O(log n)`` bits can be delivered
in ``O(r)`` rounds deterministically.  We provide three interchangeable
schemes behind a single collective :func:`route`:

``direct``
    Each flow is chunked over its own link.  Fully self-contained and
    honest, but a skewed instance (one heavy pair) costs ``load/B``
    rounds instead of ``load/(nB)``.

``relay``
    An executable deterministic store-and-forward protocol: chunk ``i`` of
    the flow ``s -> d`` is spread to intermediary ``(s + d + i) mod n`` and
    forwarded, with in-band ``[tag | peer]`` headers and strict one-message
    -per-link-per-round arbitration.  Requires bandwidth at least
    ``log n + 2`` bits (i.e. ``bandwidth_multiplier >= 2``), per the
    paper's remark that constant bandwidth factors can be moved into the
    running time.  Achieves ``O(max_load / (n B) + 1)`` rounds on the
    balanced instances our algorithms generate; always correct.

``lenzen``
    The cost-model scheme (default): payloads are delivered through a
    privileged engine channel, and the collective *charges* the number of
    rounds Lenzen's routing theorem guarantees —
    ``ceil(max_node_load_bits / (B * (n-1)))`` — by idling the clique for
    exactly that many rounds.  This substitutes the internals of Lenzen's
    protocol (sorting-based load balancing) with its proven round bound;
    see DESIGN.md for the substitution rationale.

All schemes start with a *length exchange* (every ordered pair learns the
flow length on that pair) so the receive side can reassemble
deterministically, followed by a one-value agreement on the global round
budget where needed.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Generator

from .bits import BitString, uint_width
from .errors import ProtocolViolation
from .node import Node
from .primitives import agree_uint_max, chunks_needed

__all__ = ["route", "ROUTE_SCHEMES", "relay_min_bandwidth"]

ROUTE_SCHEMES = ("direct", "relay", "lenzen")

#: Width of the per-pair flow-length header (bits).  Flows are at most
#: a whole graph per pair in our algorithms; 32 bits is ample.
_LEN_WIDTH = 32

#: Data rounds between status rounds in the relay scheme.
_STATUS_PERIOD = 3


def relay_min_bandwidth(n: int) -> int:
    """Minimum per-link budget for the relay scheme: header + 1 payload bit."""
    return uint_width(max(1, n - 1)) + 2


def route(
    node: Node,
    flows: dict[int, BitString],
    scheme: str = "lenzen",
) -> Generator[None, None, dict[int, BitString]]:
    """Collectively deliver arbitrary-size flows between all node pairs.

    ``flows`` maps destination id to payload bits (``node.id`` itself is
    allowed and short-circuited locally).  Returns ``{src: payload}`` for
    every nonempty inbound flow.  All nodes must call this collective in
    the same round with the same ``scheme``.
    """
    if scheme not in ROUTE_SCHEMES:
        raise ProtocolViolation(f"unknown routing scheme {scheme!r}")
    n = node.n
    flows = {d: p for d, p in flows.items() if len(p) > 0}
    self_flow = flows.pop(node.id, None)
    for d in flows:
        if not 0 <= d < n:
            raise ProtocolViolation(f"flow destination {d} out of range")

    if n == 1:
        result0: dict[int, BitString] = {}
        if self_flow is not None:
            result0[node.id] = self_flow
        return result0

    # ---- Phase 1: sparse length exchange.  Headers are sent only on
    # links that will carry a flow; a silent header phase on a link means
    # "no flow", so sparse instances do not pay Theta(n) header bits per
    # node (which would otherwise swamp sub-linear load profiles).
    b = node.bandwidth
    hdr_rounds = chunks_needed(_LEN_WIDTH, b)
    headers = {d: BitString(len(p), _LEN_WIDTH).split(b) for d, p in flows.items()}
    in_len: dict[int, list[BitString]] = {}
    for r in range(hdr_rounds):
        for d, hdr_chunks in headers.items():
            if r < len(hdr_chunks):
                node.send(d, hdr_chunks[r])
        yield
        for s, msg in node.inbox.items():
            in_len.setdefault(s, []).append(msg)
    in_lengths = {s: BitString.concat(parts).value for s, parts in in_len.items()}

    # Record the payload load profile — the quantity the routing
    # theorems bound (headers and agreement bits excluded).
    node.count("route_payload_out_bits", sum(len(p) for p in flows.values()))
    node.count("route_payload_in_bits", sum(in_lengths.values()))

    if scheme == "direct":
        result = yield from _route_direct(node, flows, in_lengths)
    elif scheme == "lenzen":
        result = yield from _route_lenzen(node, flows, in_lengths)
    else:
        result = yield from _route_relay(node, flows, in_lengths)

    if self_flow is not None:
        result[node.id] = self_flow
    return result


# ---------------------------------------------------------------------------
# direct scheme


def _route_direct(
    node: Node,
    flows: dict[int, BitString],
    in_lengths: dict[int, int],
) -> Generator[None, None, dict[int, BitString]]:
    b = node.bandwidth
    my_rounds = 0
    for length in list(in_lengths.values()) + [len(p) for p in flows.values()]:
        my_rounds = max(my_rounds, chunks_needed(length, b))
    total_rounds = yield from agree_uint_max(node, my_rounds, _LEN_WIDTH)

    incoming: dict[int, list[BitString]] = {
        s: [] for s, length in in_lengths.items() if length > 0
    }
    chunked = {d: payload.split(b) for d, payload in flows.items()}
    for r in range(total_rounds):
        for d, chunks in chunked.items():
            if r < len(chunks):
                node.send(d, chunks[r])
        yield
        for s, msg in node.inbox.items():
            incoming[s].append(msg)

    return _finish_incoming(node, incoming, in_lengths)


def _finish_incoming(
    node: Node, incoming: dict[int, list[BitString]], in_lengths: dict[int, int]
) -> dict[int, BitString]:
    result: dict[int, BitString] = {}
    for s, parts in incoming.items():
        got = BitString.concat(parts)
        expected = in_lengths[s]
        if len(got) < expected:
            raise ProtocolViolation(
                f"route: node {node.id} received {len(got)} of "
                f"{expected} bits from node {s}"
            )
        result[s] = got[:expected]
    return result


# ---------------------------------------------------------------------------
# lenzen cost-model scheme


def _route_lenzen(
    node: Node,
    flows: dict[int, BitString],
    in_lengths: dict[int, int],
) -> Generator[None, None, dict[int, BitString]]:
    b = node.bandwidth
    n = node.n
    my_out = sum(len(p) for p in flows.values())
    my_in = sum(in_lengths.values())
    my_load = max(my_out, my_in)
    max_load = yield from agree_uint_max(node, my_load, _LEN_WIDTH)

    # Lenzen's theorem: a routing instance where every node sends and
    # receives at most n messages of B bits completes in O(1) rounds;
    # by batching, max_load bits per node cost ceil(max_load / (B(n-1)))
    # rounds up to a constant.  We charge exactly that many rounds.
    charged = max(0, math.ceil(max_load / (b * (n - 1))))
    if charged == 0:
        return {}

    for d, payload in flows.items():
        node._bulk_send(d, payload)
    received: dict[int, BitString] = {}
    for r in range(charged):
        yield
        if r == 0:
            for s, msg in node.inbox.items():
                received[s] = msg
    for s, expected in in_lengths.items():
        if expected > 0 and len(received.get(s, BitString.empty())) != expected:
            raise ProtocolViolation(
                f"route(lenzen): node {node.id} expected {expected} bits "
                f"from {s}, got {len(received.get(s, BitString.empty()))}"
            )
    return {s: p for s, p in received.items() if len(p) > 0}


# ---------------------------------------------------------------------------
# relay scheme (executable store-and-forward)


def _route_relay(
    node: Node,
    flows: dict[int, BitString],
    in_lengths: dict[int, int],
) -> Generator[None, None, dict[int, BitString]]:
    n = node.n
    if n == 2:
        # With two nodes there are no intermediaries; relaying degenerates
        # to direct delivery.
        return (yield from _route_direct(node, flows, in_lengths))
    b = node.bandwidth
    node_w = uint_width(max(1, n - 1))
    payload_w = b - 1 - node_w  # [tag:1][peer:node_w][payload]
    if payload_w < 1:
        raise ProtocolViolation(
            f"relay routing needs bandwidth >= {relay_min_bandwidth(n)} bits "
            f"(got {b}); run with bandwidth_multiplier >= 2"
        )
    me = node.id

    # Sender state: per-relay FIFO of (dst, chunk) spread messages.
    spread: dict[int, deque[tuple[int, BitString]]] = {
        w: deque() for w in range(n) if w != me
    }
    # Relay state: per-destination FIFO of (src, chunk) forward messages.
    forward: dict[int, deque[tuple[int, BitString]]] = {
        d: deque() for d in range(n) if d != me
    }
    # Receiver state: per-src indexed chunk store + counters per relay.
    expect_chunks = {
        s: math.ceil(length / payload_w) for s, length in in_lengths.items()
    }
    store: dict[int, dict[int, BitString]] = {
        s: {} for s, c in expect_chunks.items() if c > 0
    }
    seen_from_relay: dict[tuple[int, int], int] = {}
    remaining = sum(c for c in expect_chunks.values())

    # Chunk i of the flow me -> d is assigned relay rotation[(pos(d)+i) mod
    # (n-1)] where the rotation enumerates all nodes except the sender and
    # starts at the destination itself (so the direct link carries an even
    # 1/(n-1) share like every other link; see _relay_of/_chunk_index).
    for d, payload in flows.items():
        chunks = payload.split(payload_w)
        tail = chunks[-1] if chunks else None
        if tail is not None and len(tail) < payload_w:  # pad the tail chunk
            chunks[-1] = BitString(
                tail.value << (payload_w - len(tail)), payload_w
            )
        for i, chunk in enumerate(chunks):
            w = _relay_of(me, d, i, n)
            spread[w].append((d, chunk))

    def satisfied() -> bool:
        return (
            remaining == 0
            and all(not q for q in spread.values())
            and all(not q for q in forward.values())
        )

    data_round = 0
    while True:
        if data_round % (_STATUS_PERIOD + 1) == _STATUS_PERIOD:
            # Status round: everyone reports completion; unanimous -> done.
            node.send_to_all(BitString(1 if satisfied() else 0, 1))
            yield
            done = satisfied() and all(
                msg.value == 1 for msg in node.inbox.values()
            )
            data_round += 1
            if done:
                break
            continue

        # Data round: per link, forward traffic has priority over spread.
        # Messages are [tag:1][peer:node_w][payload:payload_w], assembled
        # with one shift instead of two BitString concatenations.
        for peer in range(n):
            if peer == me:
                continue
            if forward[peer]:
                src, chunk = forward[peer].popleft()
                msg = BitString(
                    (((1 << node_w) | src) << payload_w) | chunk.value,
                    1 + node_w + payload_w,
                )
                node.send(peer, msg)
            elif spread[peer]:
                dst, chunk = spread[peer].popleft()
                msg = BitString(
                    (dst << payload_w) | chunk.value,
                    1 + node_w + payload_w,
                )
                node.send(peer, msg)
        yield
        data_round += 1
        for sender, msg in node.inbox.items():
            raw = msg.value
            chunk_w = len(msg) - 1 - node_w
            tag = raw >> (len(msg) - 1)
            peer_id = (raw >> chunk_w) & ((1 << node_w) - 1)
            chunk = BitString(raw & ((1 << chunk_w) - 1), chunk_w)
            if tag == 0:
                # We are the relay; ``peer_id`` is the final destination.
                if peer_id == me:
                    # Chunk whose assigned relay is the destination itself:
                    # it arrives directly, with ourselves as the "relay".
                    _accept_chunk(
                        me, n, sender, me, chunk, store,
                        seen_from_relay, expect_chunks,
                    )
                    remaining -= 1
                else:
                    forward[peer_id].append((sender, chunk))
            else:
                # We are the destination; ``peer_id`` is the original src,
                # ``sender`` is the relay it came through.
                _accept_chunk(
                    me, n, peer_id, sender, chunk, store,
                    seen_from_relay, expect_chunks,
                )
                remaining -= 1

    # Reassemble.
    result: dict[int, BitString] = {}
    for s, chunks in store.items():
        m = expect_chunks[s]
        for i in range(m):
            if i not in chunks:
                raise ProtocolViolation(
                    f"route(relay): node {me} missing chunk {i} of flow "
                    f"from {s}"
                )
        merged = BitString.concat([chunks[i] for i in range(m)])
        result[s] = merged[: in_lengths[s]]
    return result


def _relay_of(s: int, d: int, i: int, n: int) -> int:
    """Relay assigned to chunk ``i`` of the flow ``s -> d``.

    The rotation enumerates the ``n - 1`` nodes other than ``s`` in cyclic
    id order starting at ``d``; chunk ``i`` uses position ``i mod (n-1)``.
    Every outgoing link of ``s`` therefore carries an even share of the
    flow (the direct link ``s -> d`` included, as "relay" ``d`` itself).
    """
    q = ((d - s - 1) % n + i) % (n - 1)
    return (s + 1 + q) % n


def _relay_position(s: int, d: int, w: int, n: int) -> int:
    """Inverse of :func:`_relay_of`: the rotation position of relay ``w``."""
    return ((w - s - 1) % n - (d - s - 1) % n) % (n - 1)


def _accept_chunk(
    me: int,
    n: int,
    src: int,
    relay: int,
    chunk: BitString,
    store: dict[int, dict[int, BitString]],
    seen_from_relay: dict[tuple[int, int], int],
    expect_chunks: dict[int, int],
) -> None:
    """Place an arriving chunk of flow ``src -> me`` at its global index.

    Relays are FIFO per destination, so the ``k``-th chunk arriving via
    ``relay`` has index ``pos + k * (n-1)`` where ``pos`` is the relay's
    rotation position for this flow (see :func:`_relay_of`).
    """
    if src not in store:
        raise ProtocolViolation(
            f"route(relay): node {me} got unexpected chunk from {src}"
        )
    k = seen_from_relay.get((src, relay), 0)
    seen_from_relay[(src, relay)] = k + 1
    index = _relay_position(src, me, relay, n) + k * (n - 1)
    if index >= expect_chunks[src]:
        raise ProtocolViolation(
            f"route(relay): node {me} got chunk index {index} beyond "
            f"expected {expect_chunks[src]} from {src}"
        )
    if index in store[src]:
        raise ProtocolViolation(
            f"route(relay): node {me} got duplicate chunk {index} from {src}"
        )
    store[src][index] = chunk
