"""The synchronous round model and its execution entry point.

A :class:`CongestedClique` owns the model parameters (``n``, bandwidth,
round limit, model variant) and delegates execution to a pluggable
backend from :mod:`repro.engine`:

1. every live node's generator runs until its next ``yield`` (queueing
   messages via :meth:`Node.send`) or until it returns (halts with an
   output),
2. the engine validates queued messages against the model's rules
   (one message of at most ``B`` bits per ordered pair per round;
   validation depth depends on the backend),
3. messages are delivered into the recipients' inboxes and the round
   counter increments.

The *time complexity* reported is exactly the number of communication
rounds, matching the paper's Section 3 cost model.  Local computation is
unlimited and free, as in the paper.  The default backend is the
always-validating reference engine; ``run(..., engine="fast")`` selects
the batched performance backend.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, Generator, Mapping, Sequence

from .errors import CliqueError
from .graph import CliqueGraph
from .node import Node
from .transcript import Transcript

__all__ = ["CongestedClique", "RunResult", "default_bandwidth", "NodeProgram"]

#: A node program: a generator function taking the node-local API.
NodeProgram = Callable[[Node], Generator[None, None, Any]]


def default_bandwidth(n: int, multiplier: int = 1) -> int:
    """The per-link, per-round bit budget ``B = multiplier * ceil(log2 n)``.

    Per Section 3 of the paper, constants hidden in the O(log n) bandwidth
    can be moved into the running time, so the canonical budget is exactly
    ``ceil(log2 n)`` bits (with a floor of 1 bit for tiny cliques).
    """
    if n < 1:
        raise CliqueError(f"need at least one node, got n={n}")
    if multiplier < 1:
        raise CliqueError(f"bandwidth multiplier must be >= 1, got {multiplier}")
    return multiplier * max(1, math.ceil(math.log2(n)) if n > 1 else 1)


_numpy_module = None


def _numpy():
    """Lazily import numpy exactly once (module-level memoisation).

    Output comparison is the only numpy dependency of this module; the
    lazy helper keeps pure-BitString runs import-light while avoiding
    repeated ``import numpy`` statements inside hot comparison paths.
    """
    global _numpy_module
    if _numpy_module is None:
        import numpy

        _numpy_module = numpy
    return _numpy_module


def _outputs_equal(a: Any, b: Any) -> bool:
    """Equality that tolerates numpy arrays and containers thereof."""
    np = _numpy()
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _outputs_equal(x, y) for x, y in zip(a, b)
        )
    result = a == b
    if isinstance(result, bool):
        return result
    try:
        return bool(result)
    except (ValueError, TypeError):
        return bool(np.asarray(result).all())


@dataclass(frozen=True)
class RunResult:
    """Outcome of one algorithm execution.

    This is a **stable** dataclass: its field set is frozen by
    ``tests/test_public_api.py`` and round-trips through
    :meth:`to_dict`/:meth:`from_dict` (the representation ``run_sweep``
    workers and the run cache rely on).  New fields may be appended with
    defaults; existing fields must not be renamed or removed.
    """

    #: Per-node outputs (the generators' return values).
    outputs: dict[int, Any]
    #: Number of communication rounds used.
    rounds: int
    #: Total bits carried by bandwidth-checked messages.
    total_message_bits: int
    #: Total bits carried by the privileged cost-model router channel.
    bulk_bits: int
    #: Per-node sent/received bit totals (bulk included) — the load
    #: profile Lenzen-style round accounting is based on.
    sent_bits: tuple[int, ...] = ()
    received_bits: tuple[int, ...] = ()
    #: Per-node measurement counters (see :meth:`Node.count`).
    counters: tuple[dict, ...] = ()
    #: Per-node transcripts, if recording was enabled.
    transcripts: tuple[Transcript, ...] | None = None
    #: The :class:`repro.obs.RunMetrics` collected by the run's observer
    #: (``None`` when the run was executed with ``observer=False``).
    metrics: Any = None

    def to_dict(self) -> dict:
        """Plain-dict representation (inverse of :meth:`from_dict`).

        Transcripts are serialised to their bit-exact string encoding
        and metrics via ``RunMetrics.to_dict``; outputs pass through
        unchanged (the round-trip is exact for any output type, but the
        dict is only JSON-ready when the outputs themselves are).
        """
        return {
            "outputs": [[v, out] for v, out in sorted(self.outputs.items())],
            "rounds": self.rounds,
            "total_message_bits": self.total_message_bits,
            "bulk_bits": self.bulk_bits,
            "sent_bits": list(self.sent_bits),
            "received_bits": list(self.received_bits),
            "counters": [dict(c) for c in self.counters],
            "transcripts": (
                None
                if self.transcripts is None
                else [
                    {"node": t.node, "n": t.n, "bits": t.encode().to_str()}
                    for t in self.transcripts
                ]
            ),
            "metrics": (
                None if self.metrics is None else self.metrics.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_dict` output."""
        from .bits import BitString

        transcripts = data.get("transcripts")
        metrics = data.get("metrics")
        if metrics is not None and not hasattr(metrics, "max_counter"):
            from ..obs.metrics import RunMetrics

            metrics = RunMetrics.from_dict(metrics)
        return cls(
            outputs={int(v): out for v, out in data["outputs"]},
            rounds=data["rounds"],
            total_message_bits=data["total_message_bits"],
            bulk_bits=data["bulk_bits"],
            sent_bits=tuple(data.get("sent_bits", ())),
            received_bits=tuple(data.get("received_bits", ())),
            counters=tuple(dict(c) for c in data.get("counters", ())),
            transcripts=(
                None
                if transcripts is None
                else tuple(
                    Transcript.decode(
                        t["node"], t["n"], BitString.from_str(t["bits"])
                    )
                    for t in transcripts
                )
            ),
            metrics=metrics,
        )

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The stable field set (frozen by the public-API tests)."""
        return tuple(f.name for f in fields(cls))

    def max_counter(self, key: str) -> int:
        """``max_v counters[v][key]`` (0 when never counted)."""
        return max(
            (c.get(key, 0) for c in self.counters), default=0
        )

    @property
    def resilience(self) -> dict[str, int]:
        """Whole-run resilience-layer counters, summed over nodes.

        The :func:`repro.faults.resilient` wrapper maintains per-node
        ``resilient_*`` counters (retransmits, unacked frames);
        this rolls them up as ``{"retransmits": ..., "unacked": ...}``
        without the prefix.  Empty for unwrapped programs.
        """
        totals: dict[str, int] = {}
        for per_node in self.counters:
            for key, amount in per_node.items():
                if key.startswith("resilient_"):
                    short = key[len("resilient_"):]
                    totals[short] = totals.get(short, 0) + amount
        return totals

    def max_node_load(self) -> int:
        """``max_v max(sent_v, received_v)`` in bits — the quantity the
        routing bounds are stated in."""
        if not self.sent_bits:
            return 0
        return max(
            max(s, r) for s, r in zip(self.sent_bits, self.received_bits)
        )

    def common_output(self) -> Any:
        """The single output all nodes agree on (decision problems).

        Raises if the nodes disagree — decision algorithms in the paper
        require every node to produce the same verdict.
        """
        it = iter(self.outputs.values())
        try:
            first = next(it)
        except StopIteration:
            raise CliqueError("no outputs recorded") from None
        for value in it:
            if not _outputs_equal(value, first):
                raise CliqueError(f"nodes disagree on output: {self.outputs}")
        return first


def _resolve_per_node(spec: Any, n: int) -> list[Any]:
    """Expand an input spec into one value per node.

    Accepts a :class:`CliqueGraph` (each node gets its local view), a
    callable ``v -> value``, a sequence of length ``n``, a mapping, or a
    single value shared by all nodes.
    """
    if isinstance(spec, CliqueGraph):
        if spec.n != n:
            raise CliqueError(f"graph has {spec.n} nodes, engine has {n}")
        return [spec.local_view(v) for v in range(n)]
    if callable(spec):
        return [spec(v) for v in range(n)]
    if isinstance(spec, Mapping):
        return [spec.get(v) for v in range(n)]
    if isinstance(spec, Sequence) and not isinstance(spec, (str, bytes)):
        if len(spec) != n:
            raise CliqueError(f"per-node sequence has length {len(spec)}, need {n}")
        return list(spec)
    return [spec] * n


class CongestedClique:
    """A congested clique of ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    bandwidth:
        Per-link bit budget per round; defaults to ``ceil(log2 n)``.
    bandwidth_multiplier:
        Convenience multiplier applied to the default budget (ignored when
        ``bandwidth`` is given explicitly).
    record_transcripts:
        If ``True``, record per-node communication transcripts (needed by
        the Theorem 3 normal-form machinery).
    max_rounds:
        Safety limit; :class:`RoundLimitExceeded` is raised beyond it.
    broadcast_only:
        If ``True``, run the *broadcast congested clique* (the variant
        the paper's related work cites for communication-complexity
        lower bounds [19]): each round a node must send the *same*
        message to every other node, or nothing.  Unicast sends raise
        :class:`ProtocolViolation` at delivery time.
    topology:
        If given (a :class:`CliqueGraph`), run the general **CONGEST**
        model instead of the clique: messages may only travel along the
        topology's edges.  The congested clique is exactly
        ``topology=None`` (Section 3: "a specialisation of the standard
        CONGEST model to a fully connected network topology"); the
        restricted variant exists so the bottleneck behaviour the
        paper's related work discusses can be demonstrated.
    """

    def __init__(
        self,
        n: int,
        *,
        bandwidth: int | None = None,
        bandwidth_multiplier: int = 1,
        record_transcripts: bool = False,
        max_rounds: int | None = None,
        broadcast_only: bool = False,
        topology: "CliqueGraph | None" = None,
    ) -> None:
        if n < 1:
            raise CliqueError(f"need at least one node, got n={n}")
        self.n = n
        self.bandwidth = (
            bandwidth
            if bandwidth is not None
            else default_bandwidth(n, bandwidth_multiplier)
        )
        if self.bandwidth < 1:
            raise CliqueError(f"bandwidth must be >= 1 bit, got {self.bandwidth}")
        self.record_transcripts = record_transcripts
        self.max_rounds = (
            max_rounds if max_rounds is not None else max(1024, 16 * n * n)
        )
        self.broadcast_only = broadcast_only
        if topology is not None and topology.n != n:
            raise CliqueError(
                f"topology has {topology.n} nodes, engine has {n}"
            )
        self.topology = topology

    def run(
        self,
        program: NodeProgram,
        node_input: Any = None,
        *legacy_aux: Any,
        aux: Any = None,
        execution: Any = None,
        engine: Any = None,
        check: Any = None,
        transcripts: bool | None = None,
        observer: Any = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Execute ``program`` on all nodes synchronously.

        This is the canonical run signature — ``run_algorithm`` is a
        thin wrapper over it with the *same* keyword-only options:

        ``node_input`` and ``aux`` are per-node specs (see
        :func:`_resolve_per_node`); typically ``node_input`` is the input
        :class:`CliqueGraph`.  Passing ``aux`` positionally is deprecated
        (it warns and keeps working); use the keyword.

        ``execution`` bundles every "how does this run execute" setting
        into one :class:`repro.engine.ExecutionSpec` (or a dict / engine
        name shorthand); the per-field keywords below keep working and
        may fill unset spec fields, but a field set both ways must agree
        (see :func:`repro.engine.resolve_execution`).

        ``engine`` selects the execution backend: ``None`` (the default)
        or ``"reference"`` for the always-validating, transcript-capable
        reference engine, ``"fast"`` for the batched performance engine,
        ``"columnar"`` for the vectorised whole-round array-program
        engine, or any :class:`repro.engine.Engine` instance (e.g.
        ``FastEngine(check="off")``).  All backends are observationally
        equivalent on valid programs.

        ``check`` selects the validation level (``"full"``,
        ``"bandwidth"``, ``"off"``) for name/``None`` engine specs; a
        conflicting pre-configured engine instance raises.

        ``transcripts`` overrides the clique's ``record_transcripts``
        flag for this run when not ``None``.

        ``observer`` attaches a :class:`repro.obs.Observer`: ``None``
        (the default) collects :class:`repro.obs.RunMetrics` into
        ``RunResult.metrics``; ``False``/``"off"`` disables observation;
        any observer instance (e.g. a ``Tracer``) receives the run's
        event stream.

        ``fault_plan`` injects deterministic, seed-replayable network
        faults (drops, corruption, duplication, link failures, node
        crashes) at delivery time: ``None`` (the default) runs the
        reliable model; otherwise pass a
        :class:`repro.faults.FaultPlan` or a spec string like
        ``"drop=0.2,seed=7"``.  Injected faults surface as ``fault``
        counters in ``RunResult.metrics`` and ``fault`` events in an
        attached tracer.
        """
        if legacy_aux:
            if len(legacy_aux) > 1:
                raise TypeError(
                    f"run() takes at most 3 positional arguments "
                    f"({2 + len(legacy_aux)} given)"
                )
            if aux is not None:
                raise TypeError(
                    "run() got aux both positionally and by keyword"
                )
            warnings.warn(
                "passing aux positionally to CongestedClique.run is "
                "deprecated; use run(program, node_input, aux=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            aux = legacy_aux[0]
        # Imported lazily: repro.engine sits above the clique substrate
        # in the layering, so the substrate must not load it at import
        # time.
        from ..engine import resolve_execution

        resolved = resolve_execution(
            execution,
            engine=engine,
            check=check,
            observer=observer,
            fault_plan=fault_plan,
            transcripts=transcripts,
        )
        inputs = _resolve_per_node(node_input, self.n)
        auxes = _resolve_per_node(aux, self.n)
        return resolved.engine.execute(
            self,
            program,
            inputs,
            auxes,
            observer=resolved.observer,
            transcripts=resolved.transcripts,
            fault_plan=resolved.fault_plan,
        )
