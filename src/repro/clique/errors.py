"""Exception taxonomy for the congested clique simulator.

Every violation of the model's rules (bandwidth, addressing, protocol
synchronisation) raises a distinct exception type so that tests can assert
precisely which rule was broken.
"""

from __future__ import annotations


class CliqueError(Exception):
    """Base class for all simulator errors."""


class BandwidthExceeded(CliqueError):
    """A message larger than the per-round, per-link bit budget was sent.

    The congested clique allows one message of O(log n) bits per ordered
    node pair per round; the engine enforces an exact bit budget.
    """

    def __init__(self, src: int, dst: int, bits: int, budget: int) -> None:
        self.src = src
        self.dst = dst
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"message {src}->{dst} has {bits} bits, exceeding the "
            f"per-link budget of {budget} bits/round"
        )


class DuplicateMessage(CliqueError):
    """Two messages were queued on the same ordered link in one round."""

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        super().__init__(
            f"node {src} queued two messages for node {dst} in one round; "
            f"the model allows one message per ordered pair per round"
        )


class InvalidAddress(CliqueError):
    """A message was addressed to a nonexistent node or to the sender."""


class ProtocolViolation(CliqueError):
    """A node program broke the synchronous protocol.

    Examples: sending after halting, collectives invoked by only a subset
    of nodes, or reading an inbox before the first round boundary.
    """


class RoundLimitExceeded(CliqueError):
    """The algorithm did not halt within the allowed number of rounds."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"algorithm did not halt within {limit} rounds")


class EncodingError(CliqueError):
    """A bit-level encode/decode operation failed (overflow, truncation)."""


class RoutingOverload(CliqueError):
    """A routing instance violated the declared per-node load guarantee."""
