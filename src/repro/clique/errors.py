"""Exception taxonomy for the congested clique simulator.

Every violation of the model's rules (bandwidth, addressing, protocol
synchronisation) raises a distinct exception type so that tests can assert
precisely which rule was broken.
"""

from __future__ import annotations


class CliqueError(Exception):
    """Base class for all simulator errors."""


def did_you_mean(name: str, known: "list[str]") -> str:
    """Shared unknown-name hint suffix: ``"; did you mean 'x'?"`` or ``""``.

    One error style for every name lookup the CLI can reach —
    engines (:func:`repro.engine.base.resolve_engine`), fault-plan spec
    keys and Byzantine behaviours (:class:`repro.faults.FaultPlan`),
    catalog algorithms and symbolic cost models (``repro predict``) all
    suffix their ``unknown X`` errors through this helper.
    """
    import difflib

    close = difflib.get_close_matches(name, known, n=1)
    return f"; did you mean {close[0]!r}?" if close else ""


class BandwidthExceeded(CliqueError):
    """A message larger than the per-round, per-link bit budget was sent.

    The congested clique allows one message of O(log n) bits per ordered
    node pair per round; the engine enforces an exact bit budget.
    """

    def __init__(self, src: int, dst: int, bits: int, budget: int) -> None:
        self.src = src
        self.dst = dst
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"message {src}->{dst} has {bits} bits, exceeding the "
            f"per-link budget of {budget} bits/round"
        )


class DuplicateMessage(CliqueError):
    """Two messages were queued on the same ordered link in one round."""

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        super().__init__(
            f"node {src} queued two messages for node {dst} in one round; "
            f"the model allows one message per ordered pair per round"
        )


class InvalidAddress(CliqueError):
    """A message was addressed to a nonexistent node or to the sender."""


class ProtocolViolation(CliqueError):
    """A node program broke the synchronous protocol.

    Examples: sending after halting, collectives invoked by only a subset
    of nodes, or reading an inbox before the first round boundary.
    """


class RoundLimitExceeded(CliqueError):
    """The algorithm did not halt within the allowed number of rounds."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"algorithm did not halt within {limit} rounds")


class EncodingError(CliqueError):
    """A bit-level encode/decode operation failed (overflow, truncation)."""


class RoutingOverload(CliqueError):
    """A routing instance violated the declared per-node load guarantee."""


class FaultInjected(CliqueError):
    """An injected fault surfaced at the program level.

    Raised by the resilience layer (strict mode) when a fault could not
    be masked — e.g. a message stayed unacknowledged after the full
    retransmission budget.  ``kind`` names the surfaced failure mode
    (``"unacked"``, ``"drop"``, ...); ``round``/``src``/``dst`` locate
    it when known.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str | None = None,
        round: int | None = None,
        src: int | None = None,
        dst: int | None = None,
    ) -> None:
        self.kind = kind
        self.round = round
        self.src = src
        self.dst = dst
        super().__init__(message)

    def __reduce__(self):
        # Keyword-only fields don't survive the default Exception
        # pickling (args-based); fault errors cross sweep-worker
        # process boundaries, so spell the reconstruction out.
        return (
            _rebuild_fault_injected,
            (str(self), self.kind, self.round, self.src, self.dst),
        )


def _rebuild_fault_injected(message, kind, round, src, dst):
    return FaultInjected(message, kind=kind, round=round, src=src, dst=dst)


class SweepPointFailed(CliqueError):
    """One grid point of a parameter sweep failed.

    Carries the grid ``index`` and the (seed-augmented) ``config`` so a
    failure deep inside a worker names the exact point that caused it.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        config: dict | None = None,
    ) -> None:
        self.index = index
        self.config = config
        super().__init__(message)

    def __reduce__(self):
        return (_rebuild_sweep_point_failed, (str(self), self.index, self.config))


def _rebuild_sweep_point_failed(message, index, config):
    return SweepPointFailed(message, index=index, config=config)


class CacheCorruption(CliqueError):
    """A run-cache entry was unreadable or inconsistent.

    The cache normally self-heals (evict + ``warnings.warn``); this is
    raised instead when a caller asks for strict reads.
    """

    def __init__(
        self,
        message: str,
        *,
        key: str | None = None,
        path: str | None = None,
    ) -> None:
        self.key = key
        self.path = path
        super().__init__(message)

    def __reduce__(self):
        return (_rebuild_cache_corruption, (str(self), self.key, self.path))


def _rebuild_cache_corruption(message, key, path):
    return CacheCorruption(message, key=key, path=path)
