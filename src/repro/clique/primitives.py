"""Collective communication primitives.

These are generator subroutines invoked from node programs via
``yield from`` — each internal ``yield`` is one synchronous round, and
*all* nodes must invoke the same collective in the same round (the usual
MPI collective-call convention, cf. mpi4py's ``bcast``/``allgather``).

All primitives are bit-exact: payload widths are explicit, and messages
never exceed the node's per-link budget ``node.bandwidth``.
"""

from __future__ import annotations

import math
from typing import Generator

from .bits import BitString
from .errors import ProtocolViolation
from .node import Node

__all__ = [
    "idle",
    "exchange",
    "all_gather_uint",
    "all_broadcast",
    "broadcast_from",
    "all_gather_bits",
    "agree_uint_max",
    "chunks_needed",
]


def chunks_needed(bits: int, chunk: int) -> int:
    """Rounds needed to push ``bits`` over a link carrying ``chunk``/round."""
    if chunk < 1:
        raise ProtocolViolation(f"chunk width must be >= 1, got {chunk}")
    return max(0, math.ceil(bits / chunk))


def idle(rounds: int) -> Generator[None, None, None]:
    """Spend ``rounds`` rounds sending nothing (synchronisation filler)."""
    for _ in range(rounds):
        yield


def exchange(
    node: Node, payloads: dict[int, BitString]
) -> Generator[None, None, dict[int, BitString]]:
    """One round: send ``payloads[dst]`` to each ``dst``; return the inbox.

    Every payload must fit in a single round's budget.
    """
    for dst, payload in payloads.items():
        node.send(dst, payload)
    yield
    return dict(node.inbox)


def all_gather_uint(
    node: Node, value: int, width: int
) -> Generator[None, None, list[int]]:
    """Every node contributes a ``width``-bit uint; all learn all values.

    Takes ``ceil(width / B)`` rounds (the value is chunked if needed).
    Returns the list indexed by node id (own value included).
    """
    bits = BitString(value, width)
    received = yield from all_broadcast(node, bits)
    return [chunk.value for chunk in received]


def all_broadcast(
    node: Node, payload: BitString
) -> Generator[None, None, list[BitString]]:
    """Every node broadcasts a same-length payload to everyone.

    All nodes must pass payloads of identical length ``k`` (a protocol
    requirement, unchecked across nodes but validated by reassembly).
    Takes ``ceil(k / B)`` rounds.  Returns the payload list indexed by
    node id (own payload included).
    """
    b = node.bandwidth
    k = len(payload)
    rounds = chunks_needed(k, b)
    chunks = payload.split(b)
    collected: dict[int, list[BitString]] = {v: [] for v in range(node.n)}
    for r in range(rounds):
        chunk = chunks[r]
        node.send_to_all(chunk)
        yield
        for src, msg in node.inbox.items():
            collected[src].append(msg)
        collected[node.id].append(chunk)
    result = []
    for v in range(node.n):
        got = BitString.concat(collected[v])
        if len(got) != k:
            raise ProtocolViolation(
                f"all_broadcast: node {node.id} reassembled {len(got)} bits "
                f"from node {v}, expected {k}"
            )
        result.append(got)
    return result


def broadcast_from(
    node: Node, root: int, payload: BitString | None, length: int
) -> Generator[None, None, BitString]:
    """Root broadcasts ``length`` bits to everyone.

    Uses the doubling trick: the root scatters distinct chunks across the
    other nodes, then everyone re-broadcasts their chunk — total
    ``ceil(length / (B * (n-1))) + ceil(ceil(length/(n-1)) / B)`` rounds,
    i.e. ``O(length / (B n) + 1)`` instead of direct ``length / B``.
    ``length`` must be common knowledge; non-root nodes pass
    ``payload=None``.
    """
    n, b = node.n, node.bandwidth
    if n == 1:
        if node.id == root:
            assert payload is not None and len(payload) == length
            return payload
        raise ProtocolViolation("broadcast_from with n=1 needs root == self")
    if node.id == root:
        if payload is None or len(payload) != length:
            raise ProtocolViolation(
                f"root must supply a {length}-bit payload"
            )

    # Segment layout: node j (j != root, in id order) owns segment index
    # rank(j) of size ceil(length / (n-1)) (last one may be short).
    others = [v for v in range(n) if v != root]
    seg = max(1, math.ceil(length / (n - 1)))
    bounds = [(min(i * seg, length), min((i + 1) * seg, length)) for i in range(n - 1)]

    # Phase 1: root scatters segment i to others[i], chunked.
    max_seg = max((hi - lo for lo, hi in bounds), default=0)
    p1_rounds = chunks_needed(max_seg, b)
    if node.id == root:
        segments = payload.split(seg)
        segments += [BitString.empty()] * (n - 1 - len(segments))
        scatter = [segment.split(b) for segment in segments]
    my_segment: list[BitString] = []
    for r in range(p1_rounds):
        if node.id == root:
            for i, dst in enumerate(others):
                if r < len(scatter[i]):
                    node.send(dst, scatter[i][r])
        yield
        if node.id != root:
            msg = node.recv(root)
            if msg is not None:
                my_segment.append(msg)

    # Phase 2: everyone (except root) broadcasts its segment; lengths are
    # derivable from the common layout, so all_broadcast-style chunking
    # works per segment.
    p2_rounds = chunks_needed(max_seg, b)
    segment_bits = (
        BitString.concat(my_segment) if node.id != root else BitString.empty()
    )
    my_chunks = segment_bits.split(b)
    collected: dict[int, list[BitString]] = {v: [] for v in others}
    for r in range(p2_rounds):
        if node.id != root and r < len(my_chunks):
            node.send_to_all(my_chunks[r])
        yield
        for src, msg in node.inbox.items():
            if src != root:
                collected[src].append(msg)
        if node.id != root and r < len(my_chunks):
            collected[node.id].append(my_chunks[r])

    if node.id == root:
        return payload  # root already has it
    parts: list[BitString] = []
    for i, owner in enumerate(others):
        lo, hi = bounds[i]
        if owner == node.id:
            parts.append(segment_bits)
        else:
            got = BitString.concat(collected[owner])
            if len(got) != hi - lo:
                raise ProtocolViolation(
                    f"broadcast_from: segment {i} from {owner} has "
                    f"{len(got)} bits, expected {hi - lo}"
                )
            parts.append(got)
    return BitString.concat(parts)


def all_gather_bits(
    node: Node, payload: BitString, length: int
) -> Generator[None, None, list[BitString]]:
    """Alias of :func:`all_broadcast` with an explicit common length check."""
    if len(payload) != length:
        raise ProtocolViolation(
            f"all_gather_bits: payload has {len(payload)} bits, "
            f"declared {length}"
        )
    return (yield from all_broadcast(node, payload))


def agree_uint_max(
    node: Node, value: int, width: int
) -> Generator[None, None, int]:
    """All nodes learn the maximum of their ``width``-bit values."""
    values = yield from all_gather_uint(node, value, width)
    return max(values)
