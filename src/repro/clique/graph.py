"""Input graphs for the congested clique.

Following the paper (Section 3), the input is a graph ``G = (V, E)`` with
``V = {0, 1, ..., n-1}`` (we use 0-based identifiers; the paper uses
1-based).  Node ``v``'s local input is the indicator vector of its
incident edges.  We support the paper's core setting (undirected,
unweighted) plus the weighted/directed variants needed by Section 7
(APSP/SSSP/matrix problems).

The module also implements the paper's *private input bits* convention:
every potential edge is assigned to exactly one endpoint so that each node
owns at least ``floor((n-1)/2)`` input bits (used by the counting and
time-hierarchy machinery).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .bits import BitString
from .errors import CliqueError

__all__ = ["CliqueGraph", "edge_owner", "private_bit_layout"]

#: Sentinel for "no edge" in weighted adjacency matrices.
INF = np.iinfo(np.int64).max // 4


class CliqueGraph:
    """An input graph on nodes ``0..n-1`` backed by numpy adjacency.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` matrix.  For unweighted graphs a boolean matrix; for
        weighted graphs an int64 matrix where :data:`INF` means "no edge".
        The diagonal must be empty (``False`` / ``INF`` / 0 for weighted).
    directed:
        If ``False`` (default, the paper's setting) the adjacency must be
        symmetric.
    weighted:
        If ``True``, entries are int64 weights; weights must fit in
        ``O(log n)`` bits for the model's bandwidth assumptions to hold
        (the caller is responsible; :meth:`max_weight` helps check).
    """

    __slots__ = ("_adj", "n", "directed", "weighted")

    def __init__(
        self,
        adjacency: np.ndarray,
        *,
        directed: bool = False,
        weighted: bool = False,
    ) -> None:
        adj = np.asarray(adjacency)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise CliqueError(f"adjacency must be square, got {adj.shape}")
        n = adj.shape[0]
        if weighted:
            adj = adj.astype(np.int64, copy=True)
            np.fill_diagonal(adj, 0)
            if (adj < 0).any():
                raise CliqueError("negative edge weights are not supported")
        else:
            adj = adj.astype(bool, copy=True)
            np.fill_diagonal(adj, False)
        if not directed:
            if weighted:
                if not np.array_equal(adj, adj.T):
                    raise CliqueError("undirected graph needs symmetric weights")
            elif not np.array_equal(adj, adj.T):
                raise CliqueError("undirected graph needs symmetric adjacency")
        self._adj = adj
        self._adj.setflags(write=False)
        self.n = n
        self.directed = directed
        self.weighted = weighted

    # -- constructors ----------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> "CliqueGraph":
        return cls(np.zeros((n, n), dtype=bool))

    @classmethod
    def complete(cls, n: int) -> "CliqueGraph":
        adj = np.ones((n, n), dtype=bool)
        np.fill_diagonal(adj, False)
        return cls(adj)

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]], *, directed: bool = False
    ) -> "CliqueGraph":
        adj = np.zeros((n, n), dtype=bool)
        for u, v in edges:
            if u == v:
                raise CliqueError(f"self-loop ({u},{v}) not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise CliqueError(f"edge ({u},{v}) out of range for n={n}")
            adj[u, v] = True
            if not directed:
                adj[v, u] = True
        return cls(adj, directed=directed)

    @classmethod
    def from_weighted_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, int]],
        *,
        directed: bool = False,
    ) -> "CliqueGraph":
        adj = np.full((n, n), INF, dtype=np.int64)
        np.fill_diagonal(adj, 0)
        for u, v, w in edges:
            if u == v:
                raise CliqueError(f"self-loop ({u},{v}) not allowed")
            adj[u, v] = w
            if not directed:
                adj[v, u] = w
        return cls(adj, directed=directed, weighted=True)

    @classmethod
    def from_networkx(cls, g) -> "CliqueGraph":
        """Convert a networkx graph with integer nodes ``0..n-1``."""
        import networkx as nx

        n = g.number_of_nodes()
        if set(g.nodes) != set(range(n)):
            raise CliqueError("networkx graph must have nodes 0..n-1")
        directed = g.is_directed()
        weighted = any("weight" in d for _, _, d in g.edges(data=True))
        if weighted:
            adj = np.full((n, n), INF, dtype=np.int64)
            np.fill_diagonal(adj, 0)
            for u, v, d in g.edges(data=True):
                w = int(d.get("weight", 1))
                adj[u, v] = w
                if not directed:
                    adj[v, u] = w
            return cls(adj, directed=directed, weighted=True)
        adj = np.zeros((n, n), dtype=bool)
        for u, v in g.edges():
            adj[u, v] = True
            if not directed:
                adj[v, u] = True
        return cls(adj, directed=directed)

    def to_networkx(self):
        """Convert to a networkx (Di)Graph, preserving weights."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.n))
        if self.weighted:
            for u, v in zip(*np.nonzero((self._adj != INF) & (self._adj != 0))):
                if self.directed or u < v:
                    g.add_edge(int(u), int(v), weight=int(self._adj[u, v]))
        else:
            for u, v in zip(*np.nonzero(self._adj)):
                if self.directed or u < v:
                    g.add_edge(int(u), int(v))
        return g

    # -- local views (what a node initially knows) -----------------------

    def row(self, v: int) -> np.ndarray:
        """Outgoing incidence/weight row of node ``v`` (read-only view)."""
        return self._adj[v]

    def col(self, v: int) -> np.ndarray:
        """Incoming incidence/weight column of node ``v`` (read-only)."""
        return self._adj[:, v]

    def local_view(self, v: int) -> np.ndarray:
        """Everything node ``v`` knows initially.

        For undirected graphs this is the incidence row; for directed
        graphs the paper's convention extends to both directions, so we
        return a ``(2, n)`` stack of (out-row, in-column).
        """
        if self.directed:
            return np.stack([self._adj[v], self._adj[:, v]])
        return self._adj[v]

    # -- whole-graph accessors (for reference solvers / engine only) -----

    @property
    def adjacency(self) -> np.ndarray:
        return self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` (or arc ``(u, v)``) exists."""
        if self.weighted:
            return u != v and self._adj[u, v] != INF
        return bool(self._adj[u, v])

    def weight(self, u: int, v: int) -> int:
        """Weight of ``(u, v)``; INF when absent."""
        if not self.weighted:
            raise CliqueError("unweighted graph has no weights")
        return int(self._adj[u, v])

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v`` (out-degree if directed)."""
        if self.weighted:
            row = self._adj[v]
            return int(np.count_nonzero(row != INF)) - 1  # minus diagonal 0
        return int(np.count_nonzero(self._adj[v]))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges (u < v for undirected graphs)."""
        if self.weighted:
            mask = self._adj != INF
            np.fill_diagonal(mask, False)
        else:
            mask = self._adj
        for u, v in zip(*np.nonzero(mask)):
            if self.directed or u < v:
                yield int(u), int(v)

    def num_edges(self) -> int:
        """Number of edges."""
        return sum(1 for _ in self.edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CliqueGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.directed == other.directed
            and self.weighted == other.weighted
            and np.array_equal(self._adj, other._adj)
        )

    def __hash__(self) -> int:
        return hash(
            (self.n, self.directed, self.weighted, self._adj.tobytes())
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.weighted else "unweighted"
        return f"CliqueGraph(n={self.n}, {kind}, {w}, m={self.num_edges()})"

    # -- private input bit convention (Section 3, "Input encoding") ------

    def private_input_bits(self, v: int) -> BitString:
        """Node ``v``'s private input bits under the paper's convention.

        Each potential edge ``{u, v}`` is owned by exactly one endpoint
        (see :func:`edge_owner`); node ``v``'s private input is the
        indicator bits of its owned potential edges, ordered by the other
        endpoint's identifier.
        """
        if self.directed or self.weighted:
            raise CliqueError(
                "private input bits are defined for the paper's core "
                "setting (undirected, unweighted)"
            )
        owned = private_bit_layout(self.n)[v]
        return BitString.from_bits(int(self._adj[v, u]) for u in owned)


def edge_owner(u: int, v: int, n: int) -> int:
    """Which endpoint owns the potential edge ``{u, v}``.

    The paper requires an assignment where every node owns at least
    ``floor((n-1)/2)`` potential-edge bits.  We use the classical cyclic
    (round-robin tournament) rule: ``u`` owns ``{u, v}`` iff
    ``(v - u) mod n`` lies in ``1..ceil((n-1)/2)``; for even ``n`` the
    diametric pairs ``(v - u) mod n == n/2`` are tie-broken to the smaller
    endpoint of even parity to keep the load balanced.
    """
    if u == v:
        raise CliqueError("no self-loops")
    if not (0 <= u < n and 0 <= v < n):
        raise CliqueError(f"nodes ({u},{v}) out of range for n={n}")
    d = (v - u) % n
    if n % 2 == 1:
        return u if d <= (n - 1) // 2 else v
    half = n // 2
    if d < half:
        return u
    if d > half:
        return v
    # Diametric pair for even n: alternate ownership by the smaller id's
    # parity so each node owns at most one diametric edge and the counts
    # stay within one of each other.
    lo = min(u, v)
    return lo if lo % 2 == 0 else max(u, v)


def private_bit_layout(n: int) -> list[list[int]]:
    """For each node ``v``, the ordered list of endpoints ``u`` such that
    ``v`` owns the potential edge ``{v, u}``.

    The concatenation over all nodes covers every unordered pair exactly
    once, and every node owns at least ``floor((n-1)/2)`` pairs.
    """
    layout: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            owner = edge_owner(u, v, n)
            other = v if owner == u else u
            layout[owner].append(other)
    for owned in layout:
        owned.sort()
    return layout
