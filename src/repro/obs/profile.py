"""Wall-clock profiling of engine phases.

Engines split each round into phases — ``spawn`` (building nodes and
generators, attributed to round 0), then per round ``deliver`` (moving
queued messages into inboxes, including validation where the backend
fuses it) and ``advance`` (running the node generators to their next
yield); the reference engine separates ``validate`` where it performs
model-variant checks.  When an attached observer sets ``wants_timing``
the engine brackets each phase with a :class:`PhaseTimer` and reports
per-round timings via ``on_phases``.

:class:`Profiler` is the bundled consumer: it accumulates per-phase
totals and per-round breakdowns and renders them as table rows for
``repro stats --profile``.
"""

from __future__ import annotations

import time

from .observer import Observer

__all__ = ["PhaseTimer", "Profiler"]


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase for one round.

    Usage inside an engine::

        timer = PhaseTimer()
        timer.start("deliver")
        ...
        timer.stop()            # closes "deliver"
        observer.on_phases(round=r, seconds=timer.flush())
    """

    __slots__ = ("_seconds", "_phase", "_t0")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._phase: str | None = None
        self._t0 = 0.0

    def start(self, phase: str) -> None:
        """Begin timing ``phase`` (closing any phase still open)."""
        now = time.perf_counter()
        if self._phase is not None:
            self._seconds[self._phase] = (
                self._seconds.get(self._phase, 0.0) + now - self._t0
            )
        self._phase = phase
        self._t0 = now

    def stop(self) -> None:
        """Close the currently open phase (no-op when none is open)."""
        if self._phase is None:
            return
        now = time.perf_counter()
        self._seconds[self._phase] = (
            self._seconds.get(self._phase, 0.0) + now - self._t0
        )
        self._phase = None

    def flush(self) -> dict[str, float]:
        """Close any open phase and return (then reset) the totals."""
        self.stop()
        seconds = self._seconds
        self._seconds = {}
        return seconds


class Profiler(Observer):
    """Observer accumulating per-phase wall-clock time.

    ``totals`` maps phase name to whole-run seconds; ``rounds`` keeps
    the per-round breakdown (round 0 is the pre-round ``spawn`` phase).
    """

    wants_timing = True

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.rounds: list[tuple[int, dict[str, float]]] = []

    def describe(self) -> dict:
        return {"observer": "profiler"}

    def on_run_start(self, *, n: int, bandwidth: int, engine: str) -> None:
        self.totals = {}
        self.rounds = []

    def on_phases(self, *, round: int, seconds: dict) -> None:
        self.rounds.append((round, dict(seconds)))
        for phase, secs in seconds.items():
            self.totals[phase] = self.totals.get(phase, 0.0) + secs

    def total_seconds(self) -> float:
        """Whole-run time across all phases."""
        return sum(self.totals.values())

    def phase_rows(self) -> list[dict]:
        """Per-phase summary rows for reports and the CLI."""
        total = self.total_seconds()
        rows = []
        for phase in sorted(self.totals, key=lambda p: -self.totals[p]):
            secs = self.totals[phase]
            rows.append(
                {
                    "phase": phase,
                    "seconds": round(secs, 6),
                    "share": f"{100 * secs / total:.1f}%" if total else "-",
                }
            )
        return rows
