"""Run metrics: per-round, per-node and per-link counters.

:class:`MetricsCollector` is the default observer — every ``run()``
attaches a fresh one unless told otherwise — so it must stay cheap: it
consumes only the aggregate :class:`~repro.obs.observer.RoundStats` the
engines compute anyway and never asks for per-message callbacks.  The
optional per-link matrix (``links=True``) and phase profile
(``profile=True``) flip the capability flags and cost accordingly.

:class:`RunMetrics` is the frozen result: the measured quantities the
paper's experiments are fitted against (per-node routed payload load,
per-round bit totals, broadcast vs. unicast splits) in one stable,
serialisable place instead of being re-derived ad hoc by each benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from .observer import Observer, RoundStats

__all__ = [
    "MetricsCollector",
    "RoundMetrics",
    "RunMetrics",
    "summarise_metrics",
]


@dataclass(frozen=True)
class RoundMetrics:
    """Aggregates for one round.

    ``max_load_node`` is the node with the largest total (sent +
    received) bit volume this round; ties break to the lowest id.
    """

    round: int
    unicast_messages: int
    broadcast_messages: int
    bulk_messages: int
    message_bits: int
    bulk_bits: int
    max_load_node: int
    max_load_bits: int
    #: Faults injected during this round's delivery (all kinds summed).
    faults: int = 0

    @property
    def messages(self) -> int:
        return self.unicast_messages + self.broadcast_messages + self.bulk_messages

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "unicast_messages": self.unicast_messages,
            "broadcast_messages": self.broadcast_messages,
            "bulk_messages": self.bulk_messages,
            "message_bits": self.message_bits,
            "bulk_bits": self.bulk_bits,
            "max_load_node": self.max_load_node,
            "max_load_bits": self.max_load_bits,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundMetrics":
        return cls(**data)

    @classmethod
    def _build(cls, fields: dict) -> "RoundMetrics":
        """Fast construction for the collector's batch crunch.

        Bypasses the frozen ``__init__`` (one ``object.__setattr__``
        per field) with a direct ``__dict__`` fill — same attributes,
        same immutability afterwards, a fraction of the cost on the
        default-metrics hot path.
        """
        self = object.__new__(cls)
        self.__dict__.update(fields)
        return self


@dataclass(frozen=True)
class RunMetrics:
    """The measured profile of one run.

    ``sent_bits`` / ``received_bits`` are whole-run per-node totals
    (bulk included — matching ``RunResult``); ``counters`` are the
    per-node ``Node.count`` dictionaries captured at run end, the
    channel algorithms use to report semantic loads such as the routed
    payload bits of Lemma 2.  ``link_bits`` (``{(src, dst): bits}``)
    and ``phases`` (``{phase: seconds}``) are only present when the
    collector was configured with ``links=True`` / ``profile=True``.
    """

    n: int
    bandwidth: int
    engine: str
    rounds: int
    message_bits: int
    bulk_bits: int
    unicast_messages: int
    broadcast_messages: int
    bulk_messages: int
    per_round: tuple[RoundMetrics, ...]
    sent_bits: tuple[int, ...]
    received_bits: tuple[int, ...]
    counters: tuple[dict, ...] = field(default_factory=tuple)
    link_bits: dict | None = None
    phases: dict | None = None
    #: ``{fault_kind: count}`` of injected faults (empty when the run
    #: had no fault plan or the plan never fired).
    faults: dict = field(default_factory=dict)

    @property
    def messages(self) -> int:
        """Total messages delivered over the whole run."""
        return self.unicast_messages + self.broadcast_messages + self.bulk_messages

    @property
    def total_faults(self) -> int:
        """Total injected faults over the whole run (all kinds)."""
        return sum(self.faults.values())

    @property
    def total_bits(self) -> int:
        """All bits the run moved: messages plus the bulk channel.

        The one-number volume figure benchmark artifacts record per
        workload (see :mod:`repro.bench`)."""
        return self.message_bits + self.bulk_bits

    def max_node_load(self) -> tuple[int, int]:
        """``(node, bits)`` for the node with the largest total traffic."""
        if not self.sent_bits:
            return (0, 0)
        loads = [s + r for s, r in zip(self.sent_bits, self.received_bits)]
        node = max(range(len(loads)), key=lambda v: (loads[v], -v))
        return node, loads[node]

    def max_counter(self, key: str) -> int:
        """Largest per-node value of counter ``key`` (0 when unused)."""
        return max((c.get(key, 0) for c in self.counters), default=0)

    @property
    def resilience(self) -> dict[str, int]:
        """Resilience-layer counters summed over nodes (prefix stripped).

        Mirrors ``RunResult.resilience``: the per-node ``resilient_*``
        counters of the :func:`repro.faults.resilient` wrapper rolled up
        into ``{"retransmits": ..., "unacked": ...}``.  Empty for
        unwrapped programs.
        """
        totals: dict[str, int] = {}
        for per_node in self.counters:
            for key, amount in per_node.items():
                if key.startswith("resilient_"):
                    short = key[len("resilient_"):]
                    totals[short] = totals.get(short, 0) + amount
        return totals

    @property
    def byzantine_faults(self) -> dict[str, int]:
        """The adversarial-tier slice of :attr:`faults` (``byz_*`` kinds)."""
        return {
            kind: count
            for kind, count in self.faults.items()
            if kind.startswith("byz_")
        }

    def routed_payload_load(self) -> int:
        """Max per-node routed payload bits — the exponent-bearing load.

        This is the quantity the E9–E12 experiments fit: the larger of
        the per-node ``route_payload_in_bits`` / ``route_payload_out_bits``
        counters maintained by the Lemma 2 routing primitive.
        """
        return max(
            self.max_counter("route_payload_in_bits"),
            self.max_counter("route_payload_out_bits"),
        )

    def busiest_links(self, limit: int = 10) -> list[tuple[int, int, int]]:
        """The ``limit`` heaviest links as ``(src, dst, bits)`` triples.

        Requires the collector to have run with ``links=True``.
        """
        if not self.link_bits:
            return []
        ranked = sorted(self.link_bits.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(src, dst, bits) for (src, dst), bits in ranked[:limit]]

    def per_round_rows(self) -> list[dict]:
        """Table rows (one per round) for reports and the CLI."""
        return [r.to_dict() for r in self.per_round]

    def summary(self) -> dict:
        """Compact flat rollup of one run (JSON-able, no per-round data).

        The shape the service daemon attaches to each reply: enough for
        a client to report cost figures without shipping the per-round
        and per-node arrays of :meth:`to_dict` over the socket.
        """
        node, bits = self.max_node_load()
        return {
            "n": self.n,
            "engine": self.engine,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_bits": self.message_bits,
            "bulk_bits": self.bulk_bits,
            "total_bits": self.total_bits,
            "max_load_node": node,
            "max_load_bits": bits,
            "faults": self.total_faults,
        }

    def to_dict(self) -> dict:
        """JSON-able representation (inverse of :meth:`from_dict`)."""
        return {
            "n": self.n,
            "bandwidth": self.bandwidth,
            "engine": self.engine,
            "rounds": self.rounds,
            "message_bits": self.message_bits,
            "bulk_bits": self.bulk_bits,
            "unicast_messages": self.unicast_messages,
            "broadcast_messages": self.broadcast_messages,
            "bulk_messages": self.bulk_messages,
            "per_round": [r.to_dict() for r in self.per_round],
            "sent_bits": list(self.sent_bits),
            "received_bits": list(self.received_bits),
            "counters": [dict(c) for c in self.counters],
            "link_bits": (
                None
                if self.link_bits is None
                else [
                    [src, dst, bits]
                    for (src, dst), bits in sorted(self.link_bits.items())
                ]
            ),
            "phases": None if self.phases is None else dict(self.phases),
            "faults": dict(self.faults),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        link_bits = data.get("link_bits")
        return cls(
            n=data["n"],
            bandwidth=data["bandwidth"],
            engine=data["engine"],
            rounds=data["rounds"],
            message_bits=data["message_bits"],
            bulk_bits=data["bulk_bits"],
            unicast_messages=data["unicast_messages"],
            broadcast_messages=data["broadcast_messages"],
            bulk_messages=data["bulk_messages"],
            per_round=tuple(RoundMetrics.from_dict(r) for r in data["per_round"]),
            sent_bits=tuple(data["sent_bits"]),
            received_bits=tuple(data["received_bits"]),
            counters=tuple(dict(c) for c in data.get("counters", ())),
            link_bits=(
                None
                if link_bits is None
                else {(src, dst): bits for src, dst, bits in link_bits}
            ),
            phases=data.get("phases"),
            faults=dict(data.get("faults") or {}),
        )


class MetricsCollector(Observer):
    """The default observer: builds a :class:`RunMetrics` from round stats.

    Parameters
    ----------
    links:
        Also maintain the per-link ``{(src, dst): bits}`` matrix.  This
        needs one callback per delivered message, so it forces the fast
        engine off its batched hot path — leave it off for timing runs.
    profile:
        Also collect per-phase wall-clock totals (forces engine timing).
    """

    def __init__(self, links: bool = False, profile: bool = False) -> None:
        self.wants_messages = links
        self.wants_timing = profile
        self.links = links
        self.profile = profile
        self._reset()

    def _reset(self) -> None:
        self._n = 0
        self._bandwidth = 0
        self._engine = ""
        self._pending: list[tuple[RoundStats, int]] = []
        self._totals = [0, 0, 0, 0, 0]
        self._rounds: list[RoundMetrics] = []
        self._sent: list[int] = []
        self._received: list[int] = []
        self._counters: tuple[dict, ...] = ()
        self._link_bits: dict[tuple[int, int], int] = {}
        self._phases: dict[str, float] = {}
        self._faults: dict[str, int] = {}
        self._round_faults = 0
        self._final_rounds = 0
        self._metrics: RunMetrics | None = None

    def describe(self) -> dict:
        return {
            "observer": "metrics",
            "links": self.links,
            "profile": self.profile,
        }

    def on_run_start(self, *, n: int, bandwidth: int, engine: str) -> None:
        self._reset()
        self._n = n
        self._bandwidth = bandwidth
        self._engine = engine
        self._sent = [0] * n
        self._received = [0] * n

    def on_round(self, stats: RoundStats) -> None:
        # Hot path: just retain the stats (the engines hand over fresh
        # round-local lists and never touch them again).  All per-round
        # and per-node aggregation happens vectorised in one batch at
        # run end, keeping default-on metrics within the overhead gate.
        self._pending.append((stats, self._round_faults))
        self._round_faults = 0

    def _crunch_rounds(self) -> None:
        """Batch-aggregate the retained round stats (one numpy pass)."""
        pending = self._pending
        if not pending or not pending[0][0].sent_bits:
            max_nodes = [0] * len(pending)
            max_bits = [0] * len(pending)
        else:
            try:
                sent = np.asarray(
                    [s.sent_bits for s, _ in pending], dtype=np.int64
                )
                received = np.asarray(
                    [s.received_bits for s, _ in pending], dtype=np.int64
                )
                loads = sent + received
                # argmax is the first occurrence: ties break to lowest id.
                max_nodes = loads.argmax(axis=1).tolist()
                max_bits = loads.max(axis=1).tolist()
                self._sent = sent.sum(axis=0).tolist()
                self._received = received.sum(axis=0).tolist()
            except OverflowError:  # pragma: no cover - >int64 bit counts
                max_nodes, max_bits = [], []
                for stats, _ in pending:
                    round_loads = [
                        s + r
                        for s, r in zip(stats.sent_bits, stats.received_bits)
                    ]
                    top = max(round_loads)
                    max_nodes.append(round_loads.index(top))
                    max_bits.append(top)
                    self._sent = [
                        a + b for a, b in zip(self._sent, stats.sent_bits)
                    ]
                    self._received = [
                        a + b for a, b in zip(self._received, stats.received_bits)
                    ]
        rounds = []
        build = RoundMetrics._build
        totals = [0, 0, 0, 0, 0]
        for i, (stats, faults) in enumerate(pending):
            unicast = stats.unicast_messages
            broadcast = stats.broadcast_messages
            bulk = stats.bulk_messages
            message_bits = stats.message_bits
            bulk_bits = stats.bulk_bits
            totals[0] += message_bits
            totals[1] += bulk_bits
            totals[2] += unicast
            totals[3] += broadcast
            totals[4] += bulk
            rounds.append(
                build(
                    {
                        "round": stats.round,
                        "unicast_messages": unicast,
                        "broadcast_messages": broadcast,
                        "bulk_messages": bulk,
                        "message_bits": message_bits,
                        "bulk_bits": bulk_bits,
                        "max_load_node": max_nodes[i],
                        "max_load_bits": max_bits[i],
                        "faults": faults,
                    }
                )
            )
        self._rounds = rounds
        self._totals = totals

    def on_message(
        self, *, round: int, src: int, dst: int, bits: int, kind: str
    ) -> None:
        if self.links:
            key = (src, dst)
            self._link_bits[key] = self._link_bits.get(key, 0) + bits

    def on_fault(self, *, round: int, src: int, dst: int, kind: str, bits: int) -> None:
        self._faults[kind] = self._faults.get(kind, 0) + 1
        self._round_faults += 1

    def on_phases(self, *, round: int, seconds: dict) -> None:
        for phase, secs in seconds.items():
            self._phases[phase] = self._phases.get(phase, 0.0) + secs

    def on_run_end(self, *, rounds: int, counters: tuple) -> None:
        self._crunch_rounds()
        self._final_rounds = rounds
        # Engines hand over freshly-built per-node dicts at run end (the
        # observer protocol gives the collector ownership); copying all
        # n of them again would cost more than the rest of this method.
        self._counters = counters
        self._metrics = RunMetrics(
            n=self._n,
            bandwidth=self._bandwidth,
            engine=self._engine,
            rounds=rounds,
            message_bits=self._totals[0],
            bulk_bits=self._totals[1],
            unicast_messages=self._totals[2],
            broadcast_messages=self._totals[3],
            bulk_messages=self._totals[4],
            per_round=tuple(self._rounds),
            sent_bits=tuple(self._sent),
            received_bits=tuple(self._received),
            counters=self._counters,
            link_bits=dict(self._link_bits) if self.links else None,
            phases=dict(self._phases) if self.profile else None,
            faults=dict(self._faults),
        )

    def run_metrics(self) -> RunMetrics | None:
        return self._metrics


def summarise_metrics(all_metrics: Iterable[RunMetrics]) -> dict[str, Any]:
    """Aggregate a collection of :class:`RunMetrics` (e.g. one sweep).

    Returns run counts plus total/mean bit volumes and the overall
    maximum routed payload load — the cross-worker rollup ``run_sweep``
    exposes.
    """
    metrics = [m for m in all_metrics if m is not None]
    if not metrics:
        return {"runs": 0}
    total_bits = sum(m.message_bits for m in metrics)
    total_bulk = sum(m.bulk_bits for m in metrics)
    total_rounds = sum(m.rounds for m in metrics)
    total_faults = sum(m.total_faults for m in metrics)
    extra = {"total_faults": total_faults} if total_faults else {}
    return {
        **extra,
        "runs": len(metrics),
        "total_rounds": total_rounds,
        "mean_rounds": total_rounds / len(metrics),
        "total_message_bits": total_bits,
        "total_bulk_bits": total_bulk,
        "mean_message_bits": total_bits / len(metrics),
        "max_routed_payload_load": max(m.routed_payload_load() for m in metrics),
        "max_node_load_bits": max(m.max_node_load()[1] for m in metrics),
    }
