"""The engine-to-observer event protocol.

An :class:`Observer` is the single integration point between an
execution backend and the observability layer: the engine calls the
observer's hooks while it runs, the observer turns those calls into
metrics (:mod:`repro.obs.metrics`), trace events (:mod:`repro.obs.trace`)
or phase profiles (:mod:`repro.obs.profile`).

Two capability flags keep the fast engine's hot path honest:

* ``wants_messages`` — the observer needs one callback *per delivered
  message* (:meth:`Observer.on_message`).  The fast engine only expands
  its batched outboxes into explicit per-message form when an attached
  observer asks for this; the default metrics collector does not.
* ``wants_timing`` — the observer wants per-round phase timings
  (:meth:`Observer.on_phases`); engines only touch the wall clock when
  an attached observer asks.

``run(..., observer=...)`` accepts ``None`` (the default: a fresh
:class:`~repro.obs.metrics.MetricsCollector`, so every run carries
metrics), ``False``/``"off"`` (no observation at all), ``"metrics"`` /
``True`` (explicitly the default collector), or any :class:`Observer`
instance.  :func:`resolve_observer` implements that mapping and
:func:`describe_observer` renders it into cache-key material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..clique.errors import CliqueError

__all__ = [
    "CompositeObserver",
    "Observer",
    "RoundStats",
    "describe_observer",
    "resolve_observer",
]


@dataclass
class RoundStats:
    """Aggregate delivery statistics for one completed round.

    ``sent_bits`` / ``received_bits`` are *this round's* per-node bit
    deltas (bulk included), not running totals.  ``broadcast_messages``
    counts expanded recipient-messages, so on the reference engine —
    which sees a broadcast only as ``n - 1`` queued unicasts — it is
    always zero and the messages land in ``unicast_messages`` instead;
    totals agree across backends.
    """

    round: int
    unicast_messages: int
    broadcast_messages: int
    bulk_messages: int
    message_bits: int
    bulk_bits: int
    sent_bits: Sequence[int]
    received_bits: Sequence[int]

    @property
    def messages(self) -> int:
        """Total messages delivered this round (bulk included)."""
        return self.unicast_messages + self.broadcast_messages + self.bulk_messages


class Observer:
    """Base observer: every hook is a no-op.

    Subclasses override the hooks they need and flip the capability
    flags they rely on.  Observers must tolerate being reused across
    sequential runs — :meth:`on_run_start` is the reset point.
    """

    #: The engine must report every delivered message via :meth:`on_message`.
    wants_messages = False
    #: The engine must time its phases and call :meth:`on_phases`.
    wants_timing = False
    #: The engine must report node halts via :meth:`on_halt`.
    wants_halts = False

    def on_run_start(self, *, n: int, bandwidth: int, engine: str) -> None:
        """A run begins on ``n`` nodes with per-link budget ``bandwidth``."""

    def on_round(self, stats: RoundStats) -> None:
        """Round ``stats.round`` finished delivering (before nodes advance)."""

    def on_message(
        self, *, round: int, src: int, dst: int, bits: int, kind: str
    ) -> None:
        """One message delivered (``kind`` is ``unicast``/``broadcast``/``bulk``).

        Only called when :attr:`wants_messages` is true.  In the
        synchronous model a send *is* its same-round delivery, so one
        event covers both sides.
        """

    def on_fault(self, *, round: int, src: int, dst: int, kind: str, bits: int) -> None:
        """One fault was injected into the message ``src -> dst``.

        ``kind`` is one of ``link_down`` / ``crash`` / ``drop`` /
        ``corrupt`` / ``duplicate`` (see :mod:`repro.faults`); ``bits``
        is the affected message's payload size.  Always called when a
        fault plan is active — fault accounting is part of the default
        metrics, so it does not hide behind :attr:`wants_messages`.
        """

    def on_halt(self, *, round: int, node: int) -> None:
        """``node`` returned (produced its output) after ``round`` rounds."""

    def on_phases(self, *, round: int, seconds: dict) -> None:
        """Wall-clock seconds per engine phase for one round.

        ``round`` 0 carries the pre-round ``spawn`` phase; rounds
        ``1..R`` carry ``deliver``/``advance`` (and ``validate`` where
        the engine separates it).  Only called when :attr:`wants_timing`
        is true.
        """

    def on_run_end(self, *, rounds: int, counters: tuple) -> None:
        """The run finished after ``rounds`` rounds with per-node counters.

        ``counters`` is handed over to the observer: engines pass a
        freshly-built tuple of dicts and never touch it again, so
        observers may retain it without copying.
        """

    def run_metrics(self):
        """The :class:`~repro.obs.metrics.RunMetrics` this observer
        collected, or ``None``.  Engines call this once, after
        :meth:`on_run_end`, to populate ``RunResult.metrics``."""
        return None

    def describe(self) -> dict:
        """JSON-able configuration (cache-key material)."""
        return {"observer": type(self).__name__}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class CompositeObserver(Observer):
    """Fan one engine's event stream out to several observers."""

    def __init__(self, *observers: Observer) -> None:
        self.observers = tuple(observers)
        self.wants_messages = any(o.wants_messages for o in self.observers)
        self.wants_timing = any(o.wants_timing for o in self.observers)
        self.wants_halts = any(o.wants_halts for o in self.observers)

    def on_run_start(self, **kw) -> None:
        for o in self.observers:
            o.on_run_start(**kw)

    def on_round(self, stats: RoundStats) -> None:
        for o in self.observers:
            o.on_round(stats)

    def on_message(self, **kw) -> None:
        for o in self.observers:
            if o.wants_messages:
                o.on_message(**kw)

    def on_fault(self, **kw) -> None:
        for o in self.observers:
            o.on_fault(**kw)

    def on_halt(self, **kw) -> None:
        for o in self.observers:
            o.on_halt(**kw)

    def on_phases(self, **kw) -> None:
        for o in self.observers:
            if o.wants_timing:
                o.on_phases(**kw)

    def on_run_end(self, **kw) -> None:
        for o in self.observers:
            o.on_run_end(**kw)

    def run_metrics(self):
        for o in self.observers:
            metrics = o.run_metrics()
            if metrics is not None:
                return metrics
        return None

    def describe(self) -> dict:
        return {
            "observer": "composite",
            "parts": [o.describe() for o in self.observers],
        }


def resolve_observer(spec: Any) -> Observer | None:
    """Turn an ``observer=`` argument into an observer (or ``None``).

    ``None``/``True``/``"metrics"`` mean the default metrics collector,
    ``False``/``"off"`` disable observation entirely, and an
    :class:`Observer` instance passes through unchanged.
    """
    from .metrics import MetricsCollector

    if spec is None or spec is True or spec == "metrics":
        return MetricsCollector()
    if spec is False or spec == "off":
        return None
    if isinstance(spec, Observer):
        return spec
    raise CliqueError(
        f"observer must be None, True, False, 'metrics', 'off' or an "
        f"Observer instance, got {spec!r}"
    )


def describe_observer(spec: Any) -> dict:
    """JSON-able description of an ``observer=`` spec (cache-key material).

    Runs that observe differently may produce different
    ``RunResult.metrics`` payloads, so the observer configuration is
    part of every run-cache key.
    """
    observer = spec if isinstance(spec, Observer) else resolve_observer(spec)
    if observer is None:
        return {"observer": "off"}
    return observer.describe()
