"""Run observability: metrics, tracing, and profiling for both engines.

The subsystem is organised around one integration point — the
:class:`~repro.obs.observer.Observer` protocol that engines emit into —
with three bundled consumers:

* :class:`~repro.obs.metrics.MetricsCollector` (the default, on for
  every run) builds a :class:`~repro.obs.metrics.RunMetrics` with
  per-round / per-node / per-link counters;
* :class:`~repro.obs.trace.Tracer` streams structured events into a
  ring buffer or JSONL file, with sampling;
* :class:`~repro.obs.profile.Profiler` collects wall-clock phase
  timings (spawn / deliver / advance / validate) per round.

Layering: this package sits beside ``repro.clique`` and below
``repro.engine`` — it imports nothing from the engines, and the clique
layer only reaches it lazily inside ``CongestedClique.run``.
"""

from .metrics import MetricsCollector, RoundMetrics, RunMetrics, summarise_metrics
from .observer import (
    CompositeObserver,
    Observer,
    RoundStats,
    describe_observer,
    resolve_observer,
)
from .profile import PhaseTimer, Profiler
from .trace import JSONLSink, RingBufferSink, TraceEvent, TraceSink, Tracer

__all__ = [
    "CompositeObserver",
    "JSONLSink",
    "MetricsCollector",
    "Observer",
    "PhaseTimer",
    "Profiler",
    "RingBufferSink",
    "RoundMetrics",
    "RoundStats",
    "RunMetrics",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "describe_observer",
    "resolve_observer",
    "summarise_metrics",
]
