"""Structured event tracing with pluggable sinks and sampling.

A :class:`Tracer` is an observer that turns the engine's event stream
into flat :class:`TraceEvent` records — round boundaries, per-message
deliveries, node outputs — and hands them to a :class:`TraceSink`.
Unlike transcripts (which capture the *payloads* for bit-exact replay),
a trace captures the *shape* of an execution for debugging: who talked
to whom, when, how much.

Sinks: :class:`RingBufferSink` keeps the last ``capacity`` events in
memory; :class:`JSONLSink` appends one JSON object per line to a file.
``sample=k`` keeps every ``k``-th message event (round/halt boundary
events are never sampled away, so the skeleton of the run is always
complete).

In the synchronous lockstep model a message sent in round *r* is
delivered in the same round, so the trace emits a single ``deliver``
event per message rather than a redundant send/deliver pair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, IO

from ..clique.errors import CliqueError
from .observer import Observer, RoundStats

__all__ = [
    "JSONLSink",
    "RingBufferSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``kind`` is one of ``run_start``, ``round_start``, ``deliver``,
    ``fault``, ``round_end``, ``output``, ``run_end``.  Unused fields
    are ``None``.  For ``fault`` events, ``channel`` carries the fault
    kind (``drop``, ``corrupt``, ``duplicate``, ``link_down``,
    ``crash``).
    """

    kind: str
    round: int
    src: int | None = None
    dst: int | None = None
    bits: int | None = None
    channel: str | None = None
    detail: Any = None

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "round": self.round}
        for key in ("src", "dst", "bits", "channel", "detail"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data


class TraceSink:
    """Receives trace events; subclasses implement :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any resources (idempotent)."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise CliqueError(f"ring buffer capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._buffer: list[TraceEvent] = []
        self._start = 0
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self._buffer[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return self._buffer[self._start :] + self._buffer[: self._start]

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLSink(TraceSink):
    """Appends one JSON object per event to ``path`` (or a file object)."""

    def __init__(self, path) -> None:
        self._fh: IO[str]
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, "w", encoding="utf-8")
            self._owns = True
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()


class Tracer(Observer):
    """Observer producing a structured event trace.

    Parameters
    ----------
    sink:
        Where events go (default: a fresh :class:`RingBufferSink`).
    sample:
        Keep every ``sample``-th *message* event (1 = keep all).
        Boundary events (round start/end, outputs) are always kept.
    """

    wants_messages = True
    wants_halts = True

    def __init__(self, sink: TraceSink | None = None, sample: int = 1) -> None:
        if sample < 1:
            raise CliqueError(f"sample must be >= 1, got {sample}")
        self.sink = sink if sink is not None else RingBufferSink()
        self.sample = sample
        self._seen_messages = 0

    def describe(self) -> dict:
        return {
            "observer": "tracer",
            "sink": type(self.sink).__name__,
            "sample": self.sample,
        }

    def on_run_start(self, *, n: int, bandwidth: int, engine: str) -> None:
        self._seen_messages = 0
        self.sink.emit(
            TraceEvent(
                kind="run_start",
                round=0,
                detail={"n": n, "bandwidth": bandwidth, "engine": engine},
            )
        )

    def on_message(
        self, *, round: int, src: int, dst: int, bits: int, kind: str
    ) -> None:
        self._seen_messages += 1
        if (self._seen_messages - 1) % self.sample:
            return
        self.sink.emit(
            TraceEvent(
                kind="deliver",
                round=round,
                src=src,
                dst=dst,
                bits=bits,
                channel=kind,
            )
        )

    def on_fault(self, *, round: int, src: int, dst: int, kind: str, bits: int) -> None:
        # Fault events are never sampled away: like round boundaries,
        # they are part of the run's skeleton, and there are at most as
        # many of them as injected faults.
        self.sink.emit(
            TraceEvent(
                kind="fault",
                round=round,
                src=src,
                dst=dst,
                bits=bits,
                channel=kind,
            )
        )

    def on_round(self, stats: RoundStats) -> None:
        self.sink.emit(
            TraceEvent(
                kind="round_end",
                round=stats.round,
                bits=stats.message_bits + stats.bulk_bits,
                detail={"messages": stats.messages},
            )
        )

    def on_halt(self, *, round: int, node: int) -> None:
        self.sink.emit(TraceEvent(kind="output", round=round, src=node))

    def on_run_end(self, *, rounds: int, counters: tuple) -> None:
        self.sink.emit(
            TraceEvent(
                kind="run_end",
                round=rounds,
                detail={"sampled_out": self._sampled_out()},
            )
        )
        self.sink.close()

    def _sampled_out(self) -> int:
        """How many message events the sampler dropped."""
        if self.sample == 1:
            return 0
        kept = (self._seen_messages + self.sample - 1) // self.sample
        return self._seen_messages - kept
