"""All-pairs shortest paths and transitive closure via matrix squaring.

APSP over nonnegative ``O(log n)``-bit weights reduces to
``ceil(log2 n)`` squarings of the weight matrix in the (min,+) semiring;
transitive closure to ``ceil(log2 n)`` Boolean squarings — the classical
reductions behind the "(min,+) MM -> APSP" and "Boolean MM -> transitive
closure" arrows of Figure 1.  Each squaring runs the cube-partitioned
:func:`~repro.algorithms.matmul.distributed_matmul`, so the total round
complexity is ``O(n^(1/3) log n)`` semiring-entry loads per link.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from ..clique.graph import INF
from ..clique.node import Node
from .matmul import BOOLEAN, MAXMIN, MINPLUS, distributed_matmul

__all__ = [
    "apsp_minplus",
    "transitive_closure_distributed",
    "widest_paths_distributed",
]


def apsp_minplus(node: Node) -> Generator[None, None, np.ndarray]:
    """APSP distance row via repeated (min,+) squaring.

    ``node.input`` is the weighted incidence row (INF = no edge; the
    engine supplies it from a weighted :class:`CliqueGraph`), and
    ``node.aux`` a dict with ``max_weight`` (common bound on edge
    weights) and optionally ``scheme``.  Returns node ``i``'s distance
    row ``dist[i, :]``.
    """
    n = node.n
    max_weight = int(node.aux["max_weight"])
    scheme = node.aux.get("scheme", "lenzen") if hasattr(node.aux, "get") else "lenzen"
    row = np.asarray(node.input, dtype=np.int64).copy()
    row[node.id] = 0
    # Distances are bounded by (n-1) * max_weight throughout.
    bound = max(1, (n - 1) * max_weight)
    squarings = max(1, math.ceil(math.log2(max(2, n))))
    for _ in range(squarings):
        row = yield from distributed_matmul(
            node, row, row, MINPLUS, bound, scheme=scheme
        )
        row[node.id] = min(int(row[node.id]), 0)
    return np.minimum(row, INF)


def transitive_closure_distributed(
    node: Node,
) -> Generator[None, None, np.ndarray]:
    """Reflexive-transitive closure row via repeated Boolean squaring.

    ``node.input`` is the (possibly directed) incidence row; returns the
    boolean reachability row of node ``i``.
    """
    n = node.n
    aux = node.aux or {}
    scheme = aux.get("scheme", "lenzen") if hasattr(aux, "get") else "lenzen"
    raw = np.asarray(node.input)
    if raw.ndim == 2:  # directed local view: (out-row, in-col)
        row = raw[0].astype(np.int64)
    else:
        row = raw.astype(np.int64)
    row = row.copy()
    row[node.id] = 1  # reflexive
    squarings = max(1, math.ceil(math.log2(max(2, n))))
    for _ in range(squarings):
        row = yield from distributed_matmul(
            node, row, row, BOOLEAN, 1, scheme=scheme
        )
        row[node.id] = 1
    return row.astype(bool)


def widest_paths_distributed(
    node: Node,
) -> Generator[None, None, np.ndarray]:
    """All-pairs *widest* (bottleneck) paths via the (max, min) semiring
    — the generic "Semiring MM" node of Figure 1 instantiated beyond the
    three flavours the paper names.

    ``node.input`` is the weighted incidence row read as edge
    *capacities* (INF = no edge = capacity 0); ``node.aux['max_capacity']``
    bounds finite capacities.  Returns node ``i``'s row of bottleneck
    capacities (``max_capacity`` on the diagonal, 0 for unreachable).
    """
    n = node.n
    max_cap = int(node.aux["max_capacity"])
    scheme = node.aux.get("scheme", "lenzen") if hasattr(node.aux, "get") else "lenzen"
    raw = np.asarray(node.input, dtype=np.int64)
    row = np.where(raw >= INF, 0, raw).astype(np.int64)
    row[node.id] = max_cap  # self-capacity: unbounded within the domain
    squarings = max(1, math.ceil(math.log2(max(2, n))))
    for _ in range(squarings):
        row = yield from distributed_matmul(
            node, row, row, MAXMIN, max_cap, scheme=scheme
        )
        row[node.id] = max_cap
    return row
