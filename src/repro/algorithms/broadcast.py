"""Whole-graph gathering — the trivial upper bounds.

Every decision problem is solvable in ``O(n / log n)`` rounds by having
each node broadcast its incidence row and deciding locally; this is the
baseline against which all other bounds are measured (and the reason the
time hierarchy theorem is stated for ``T(n) = O(n / log n)``).
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from ..clique.graph import INF, CliqueGraph
from ..clique.node import Node
from ..clique.primitives import all_broadcast
from .common import decode_bool_row, decode_uint_row, encode_bool_row, encode_uint_row

__all__ = ["gather_graph", "gather_weighted_graph", "decide_by_gathering"]


def gather_graph(node: Node) -> Generator[None, None, np.ndarray]:
    """All nodes learn the full (unweighted, undirected) adjacency matrix.

    Each node broadcasts its n-bit incidence row: ``ceil(n / B)`` rounds.
    ``node.input`` must be the incidence row (the engine's default when
    run on a :class:`CliqueGraph`).
    """
    n = node.n
    rows = yield from all_broadcast(node, encode_bool_row(node.input))
    adj = np.stack([decode_bool_row(r, n) for r in rows])
    # Symmetrise: each unordered pair was reported by both endpoints.
    return adj | adj.T


def gather_weighted_graph(
    node: Node, weight_width: int
) -> Generator[None, None, np.ndarray]:
    """All nodes learn the full weighted adjacency matrix.

    Weights (and the INF no-edge sentinel) are transported as
    ``weight_width``-bit values; INF maps to the all-ones code.
    """
    n = node.n
    sentinel = (1 << weight_width) - 1
    row = [
        sentinel if int(x) >= INF else int(x) for x in np.asarray(node.input)
    ]
    for x in row:
        if x != sentinel and x >= sentinel:
            raise ValueError(
                f"weight {x} does not fit in {weight_width}-bit encoding"
            )
    payloads = yield from all_broadcast(
        node, encode_uint_row(row, weight_width)
    )
    out = np.full((n, n), INF, dtype=np.int64)
    for v in range(n):
        vals = decode_uint_row(payloads[v], n, weight_width)
        for u, x in enumerate(vals):
            out[v, u] = INF if x == sentinel else x
    np.fill_diagonal(out, 0)
    return np.minimum(out, out.T)


def decide_by_gathering(
    predicate: Callable[[CliqueGraph], bool],
) -> Callable[[Node], Generator[None, None, int]]:
    """Build the trivial decision algorithm for ``predicate``: gather the
    graph in ``ceil(n/B)`` rounds, decide locally, output 0/1."""

    def program(node: Node) -> Generator[None, None, int]:
        adj = yield from gather_graph(node)
        return int(predicate(CliqueGraph(adj)))

    return program
