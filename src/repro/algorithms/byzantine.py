"""Byzantine-resilient broadcast — Dolev relay and Bracha broadcast.

The paper's model assumes honest nodes; these two classics price what
honest nodes must *pay* — in rounds and bits, honestly metered through
the normal message channel — to agree on a broadcast value when up to
``f`` senders are adversarial (the Byzantine tier of
:class:`~repro.faults.FaultPlan`: equivocation, forged identities,
selective delivery, limited broadcast).

Both protocols are written round-rigid: every node runs the same fixed,
data-independent round schedule and halts at the same round, so runs
are engine-comparable and seed-replayable under any fault plan.

* :func:`dolev_broadcast` — path-verified relay, 2 rounds.  A node
  accepts a value supported by ``f + 1`` internally-disjoint paths from
  the broadcaster (the direct link plus one per distinct relayer).
  Tolerates ``f`` lying *relayers* when ``n >= 2f + 2``; an equivocating
  broadcaster can still split honest nodes — that is Dolev's limit, not
  a bug, and exactly what :func:`bracha_broadcast` fixes.
* :func:`bracha_broadcast` — reliable broadcast, ``f + 5`` rounds
  (INIT, ECHO, then ``f + 3`` READY rounds).  A node sends READY after
  ``floor((n + f) / 2) + 1`` matching ECHOes or ``f + 1`` matching
  READYs (amplification), and accepts a value with ``2f + 1`` distinct
  READY senders.  With ``f < n / 3`` Byzantine *senders* all honest
  nodes agree: either all accept the same value or none accepts.

Messages are fixed-width: Dolev sends the bare ``value_width``-bit
value, Bracha prepends a 2-bit tag (INIT/ECHO/READY).  Honest-to-honest
links are reliable under Byzantine-only plans (the adversary rewrites
only Byzantine *outgoing* messages), which is the channel assumption
both arguments need.
"""

from __future__ import annotations

from typing import Generator

from ..clique.bits import BitString
from ..clique.errors import CliqueError
from ..clique.node import Node

__all__ = ["bracha_broadcast", "dolev_broadcast"]

#: Bracha message tags (2 bits; 0 is unused so an all-zero payload is
#: never a valid message).
TAG_INIT, TAG_ECHO, TAG_READY = 1, 2, 3


def _check_params(node: Node, broadcaster: int, f: int, width: int) -> None:
    if not 0 <= broadcaster < node.n:
        raise CliqueError(
            f"broadcaster {broadcaster} out of range for n={node.n}"
        )
    if f < 0:
        raise CliqueError(f"f must be >= 0, got {f}")
    if width < 1 or width > 62:
        raise CliqueError(
            f"value_width must be in 1..62 (payloads are column-width "
            f"limited), got {width}"
        )


def dolev_broadcast(
    node: Node,
    *,
    broadcaster: int = 0,
    f: int = 1,
    value_width: int = 8,
) -> Generator[None, None, int]:
    """Path-verified relay: accept with ``f + 1`` disjoint paths.

    Round 1: the broadcaster sends its ``value_width``-bit input to all.
    Round 2: every other node relays the value it heard directly.  A
    path ``broadcaster -> relayer -> me`` is internally disjoint from
    every other such path and from the direct link, so a value heard
    directly and from ``k`` distinct relayers has ``k + 1`` disjoint
    paths; with at most ``f`` Byzantine nodes, ``f + 1`` paths mean at
    least one was fully honest.  Requires ``n >= 2f + 2`` for an honest
    broadcaster's value to gather enough paths.

    Returns the accepted value, or ``-1`` when no value qualifies.  The
    broadcaster trivially accepts its own input.
    """
    _check_params(node, broadcaster, f, value_width)
    node.count("dolev_relayed", 0)
    node.count("dolev_accepted", 0)
    mask = (1 << value_width) - 1

    if node.id == broadcaster:
        node.send_to_all(BitString(int(node.input) & mask, value_width))
    yield

    direct = node.recv(broadcaster) if node.id != broadcaster else None
    if direct is not None and len(direct) == value_width:
        node.send_to_all(BitString(direct.value, value_width))
        node.count("dolev_relayed", 1)
    yield

    if node.id == broadcaster:
        node.count("dolev_accepted", 1)
        return int(node.input) & mask
    paths: dict[int, int] = {}
    if direct is not None and len(direct) == value_width:
        paths[direct.value] = 1
    for src, payload in node.inbox.items():
        if src == broadcaster or len(payload) != value_width:
            continue
        paths[payload.value] = paths.get(payload.value, 0) + 1
    best = -1
    for value in sorted(paths):
        if paths[value] >= f + 1 and (best < 0 or paths[value] > paths[best]):
            best = value
    if best >= 0:
        node.count("dolev_accepted", 1)
    return best


def bracha_broadcast(
    node: Node,
    *,
    broadcaster: int = 0,
    f: int = 1,
    value_width: int = 8,
) -> Generator[None, None, int]:
    """Bracha reliable broadcast under ``f < n / 3`` Byzantine senders.

    Fixed ``f + 5``-round schedule — INIT (round 1), ECHO (round 2),
    then ``f + 3`` READY rounds for the amplification cascade to settle.
    Own broadcasts count toward the sender's thresholds (a node "hears"
    itself), matching the standard presentation.

    Returns the accepted value (``2f + 1`` distinct READY senders; ties
    broken toward the smallest value), or ``-1`` when none qualifies.
    """
    _check_params(node, broadcaster, f, value_width)
    for key in ("bracha_echo_sent", "bracha_ready_sent", "bracha_accepted"):
        node.count(key, 0)
    mask = (1 << value_width) - 1
    width = 2 + value_width
    echo_threshold = (node.n + f) // 2 + 1
    amplify_threshold = f + 1
    accept_threshold = 2 * f + 1
    echo_from: dict[int, set[int]] = {}
    ready_from: dict[int, set[int]] = {}
    ready_value = -1

    def note(src: int, payload: BitString) -> None:
        if len(payload) != width:
            return
        tag = payload.value >> value_width
        value = payload.value & mask
        if tag == TAG_ECHO:
            echo_from.setdefault(value, set()).add(src)
        elif tag == TAG_READY:
            ready_from.setdefault(value, set()).add(src)

    # Round 1: INIT.
    own = int(node.input) & mask if node.id == broadcaster else -1
    if node.id == broadcaster:
        node.send_to_all(BitString((TAG_INIT << value_width) | own, width))
    yield

    # Round 2: ECHO whatever INIT arrived (the broadcaster echoes its
    # own value — it cannot message itself).
    init = node.recv(broadcaster)
    echo = -1
    if node.id == broadcaster:
        echo = own
    elif (
        init is not None
        and len(init) == width
        and init.value >> value_width == TAG_INIT
    ):
        echo = init.value & mask
    if echo >= 0:
        node.send_to_all(BitString((TAG_ECHO << value_width) | echo, width))
        node.count("bracha_echo_sent", 1)
        echo_from.setdefault(echo, set()).add(node.id)
    yield

    # Rounds 3 .. f + 5: the READY cascade.
    for _ in range(f + 3):
        for src, payload in node.inbox.items():
            note(src, payload)
        if ready_value < 0:
            triggered = [
                v for v, s in echo_from.items() if len(s) >= echo_threshold
            ] + [
                v for v, s in ready_from.items() if len(s) >= amplify_threshold
            ]
            if triggered:
                ready_value = min(triggered)
                node.send_to_all(
                    BitString((TAG_READY << value_width) | ready_value, width)
                )
                node.count("bracha_ready_sent", 1)
                ready_from.setdefault(ready_value, set()).add(node.id)
        yield

    for src, payload in node.inbox.items():
        note(src, payload)
    best = -1
    for value in sorted(ready_from):
        supporters = len(ready_from[value])
        if supporters >= accept_threshold and (
            best < 0 or supporters > len(ready_from[best])
        ):
            best = value
    if best >= 0:
        node.count("bracha_accepted", 1)
    return best
