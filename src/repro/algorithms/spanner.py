"""Spanners and spanner-based approximate APSP.

Section 7's fine-grained discussion: "we know that constant-approximation
APSP can be solved faster than the current matrix multiplication upper
bound, using the spanner constructions of Censor-Hillel et al. [11]".
This module implements the classical randomised 3-spanner of
Baswana & Sen (the k=2 case) in the congested clique and the resulting
3-approximate APSP:

1. shared randomness selects each node as a *centre* with probability
   ``1/sqrt(n)``,
2. every node broadcasts its cluster choice (an adjacent centre, or
   "unclustered") — one O(log n)-bit broadcast round,
3. spanner edges are then chosen *locally*: clustered nodes keep the
   edge to their centre plus one edge into every adjacent cluster;
   unclustered nodes keep all their edges (w.h.p. they have low degree),
4. the spanner (O(n^(3/2) log n) edges w.h.p.) is gathered by
   variable-length broadcasts in ``O(max_degree_in_spanner / B)`` ~
   O(sqrt(n) polylog) rounds, and every node solves APSP on it locally.

Stretch guarantee (tested): spanner distances are at most 3x the true
distances.  The round count is sublinear — the behaviour the paper's
"2-approximate APSP may beat matrix multiplication" conjecture builds on.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from ..clique.bits import BitReader, BitString, BitWriter, uint_width
from ..clique.graph import CliqueGraph
from ..clique.node import Node
from ..clique.primitives import (
    agree_uint_max,
    all_broadcast,
    broadcast_from,
)

__all__ = ["baswana_sen_3_spanner", "approx_apsp_via_spanner"]

_SEED_BITS = 64
#: Cluster code for "not adjacent to any centre".
_UNCLUSTERED = 0


def baswana_sen_3_spanner(
    node: Node, seed: int | None = None
) -> Generator[None, None, frozenset[tuple[int, int]]]:
    """Build a 3-spanner of the (unweighted, undirected) input graph.

    Returns the same spanner edge set at every node.  ``seed`` fixes the
    shared randomness (drawn by node 0 if omitted).
    """
    n = node.n
    vw = uint_width(n)  # cluster codes are centre_id + 1; 0 = unclustered
    row = np.asarray(node.input, dtype=bool)

    # Shared randomness: centres sampled with probability 1/sqrt(n).
    if node.id == 0:
        if seed is None:
            seed = int(np.random.default_rng().integers(1 << 63))
        payload = BitString(seed, _SEED_BITS)
    else:
        payload = None
    seed_bits = yield from broadcast_from(node, 0, payload, _SEED_BITS)
    rng = np.random.default_rng(seed_bits.value)
    p = 1.0 / math.sqrt(max(2, n))
    centres = rng.random(n) < p
    if not centres.any():
        centres[int(rng.integers(n))] = True  # avoid the empty corner case

    # Cluster choice: centres form their own cluster; others join the
    # lowest-id adjacent centre, if any.  One broadcast round makes all
    # memberships common knowledge.
    if centres[node.id]:
        my_cluster = node.id + 1
    else:
        adjacent_centres = [u for u in range(n) if row[u] and centres[u]]
        my_cluster = (adjacent_centres[0] + 1) if adjacent_centres else _UNCLUSTERED
    codes = yield from all_broadcast(node, BitString(my_cluster, vw))
    cluster = [c.value for c in codes]  # 0 = unclustered, else centre+1

    # Local spanner-edge selection.
    chosen: set[tuple[int, int]] = set()
    me = node.id
    if cluster[me] == _UNCLUSTERED:
        for u in range(n):
            if row[u]:
                chosen.add((min(me, u), max(me, u)))
    else:
        centre = cluster[me] - 1
        if centre != me:
            chosen.add((min(me, centre), max(me, centre)))
        # one edge into each adjacent foreign cluster
        seen_clusters: set[int] = set()
        for u in range(n):
            if not row[u]:
                continue
            cu = cluster[u]
            if cu == _UNCLUSTERED or cu == cluster[me]:
                continue  # unclustered neighbours kept all their edges
            if cu not in seen_clusters:
                seen_clusters.add(cu)
                chosen.add((min(me, u), max(me, u)))

    # Gather: everyone broadcasts its chosen edges (as the *other*
    # endpoint list, padded to the global maximum count).
    my_others = sorted(
        b if a == me else a for a, b in chosen
    )
    max_count = yield from agree_uint_max(node, len(my_others), 32)
    w = BitWriter()
    w.write_uint(len(my_others), 32)
    ow = uint_width(max(1, n - 1))
    for u in my_others:
        w.write_uint(u, ow)
    for _ in range(max_count - len(my_others)):
        w.write_uint(0, ow)
    payloads = yield from all_broadcast(node, w.finish())

    spanner: set[tuple[int, int]] = set()
    for v in range(n):
        r = BitReader(payloads[v])
        count = r.read_uint(32)
        for _ in range(count):
            u = r.read_uint(ow)
            spanner.add((min(v, u), max(v, u)))
    return frozenset(spanner)


def approx_apsp_via_spanner(
    node: Node, seed: int | None = None
) -> Generator[None, None, np.ndarray]:
    """3-approximate unweighted APSP: build the 3-spanner, gather it (its
    sparsity is the whole point), and solve exactly on it locally.

    Returns node ``i``'s row of spanner distances ``d~`` with
    ``d <= d~ <= 3 d`` (INF stays INF: a spanner preserves connectivity).
    """
    spanner = yield from baswana_sen_3_spanner(node, seed)
    n = node.n
    sub = CliqueGraph.from_edges(n, spanner)
    from ..problems.reference import apsp_matrix

    dist = apsp_matrix(sub)
    return dist[node.id]
