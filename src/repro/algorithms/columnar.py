"""Array-program ports of the hottest catalog algorithms.

These are the columnar (:class:`repro.engine.columnar.ArrayContext`)
forms of fan-out broadcasting, :func:`repro.clique.routing.route` (all
three schemes), cube-partitioned matrix multiplication and PSRS sorting.
Each port mirrors its generator twin *round for round and bit for bit*:
the same chunking (MSB-first at the per-link budget ``B``), the same
header exchanges, the same privileged bulk-channel usage — so
``repro.engine.diff`` can differentially gate the columnar engine
against the reference engine on identical round counts, outputs and bit
totals.

The collectives come in two accumulator flavours chosen by payload
width: payloads of at most 64 bits stay in ``(n, n)`` ``uint64``
matrices updated by whole-column shifts (the vectorised fast path),
wider payloads accumulate per-pair Python big ints (chunks themselves
always fit ``uint64`` because they are at most ``B`` bits — the ports
require ``B <= 64``).  Entry packing reuses the bulk bit-codec kernels
(:func:`repro.clique.bits.encode_uint_array` and friends) exactly like
the generator forms, so the wire bits are identical by construction.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Generator

import numpy as np

from ..clique.bits import BitReader, BitString, BitWriter, uint_width
from ..clique.errors import CliqueError, ProtocolViolation
from ..clique.primitives import chunks_needed
from ..clique.routing import (
    _LEN_WIDTH,
    _STATUS_PERIOD,
    ROUTE_SCHEMES,
    _relay_of,
    _relay_position,
    relay_min_bandwidth,
)
from ..engine.columnar import array_program
from .matmul import Semiring

__all__ = [
    "array_all_broadcast",
    "array_all_gather_uint",
    "array_agree_uint_max",
    "array_route",
    "fanout_array",
    "fanout_generator",
    "fanout_work_array",
    "fanout_work_generator",
    "routing_array",
    "routing_generator",
    "matmul_array",
    "sorting_array",
]

_I64 = np.int64
_U64 = np.uint64


def _require_narrow_links(ctx) -> None:
    if ctx.bandwidth > 64:
        raise CliqueError(
            f"columnar ports carry one chunk per uint64 lane and need a "
            f"per-link budget of at most 64 bits, got B={ctx.bandwidth}; "
            f"run this configuration on another engine"
        )


def _chunk_layout(k: int, b: int) -> list[int]:
    """Chunk widths of a ``k``-bit payload split at ``b`` (MSB first)."""
    if k <= 0:
        return []
    full, tail = divmod(k, b)
    return [b] * full + ([tail] if tail else [])


# ---------------------------------------------------------------------------
# Collectives
# ---------------------------------------------------------------------------


def array_all_broadcast(
    ctx, values, k: int
) -> Generator[None, None, list[list[int]]]:
    """Columnar :func:`repro.clique.primitives.all_broadcast`.

    Every node broadcasts a ``k``-bit payload (``values[v]`` for node
    ``v``); returns ``result[dst][src]`` with every reassembled payload
    (own payload included), raising :class:`ProtocolViolation` exactly
    like the generator form when a payload does not reassemble to ``k``
    bits.  Takes ``ceil(k / B)`` rounds.
    """
    _require_narrow_links(ctx)
    n, b = ctx.n, ctx.bandwidth
    vals = [int(v) for v in values]
    if k == 0:
        return [[0] * n for _ in range(n)]
    widths = _chunk_layout(k, b)
    small = k <= 64
    if small:
        acc = np.zeros((n, n), dtype=_U64)
    else:
        acc_py = [[0] * n for _ in range(n)]
    got = np.zeros((n, n), dtype=_I64)
    sent = 0
    for w in widths:
        shift = k - sent - w
        mask = (1 << w) - 1
        chunk = [(v >> shift) & mask for v in vals]
        sent += w
        ctx.broadcast(np.asarray(chunk, dtype=_U64), w)
        yield
        bs, bv, _bw = ctx.inbox_broadcast
        if bs.size:
            # Fast path: the emission columns are the delivery, and the
            # whole-column update covers the local own-payload append
            # (diagonal) with the identical value.
            if small:
                acc[:, bs] = (acc[:, bs] << _U64(w)) | bv
            else:
                bsl, bvl = bs.tolist(), bv.tolist()
                for dst in range(n):
                    row = acc_py[dst]
                    for j, s in enumerate(bsl):
                        row[s] = (row[s] << w) | bvl[j]
            got[:, bs] += w
        else:
            # Explicit path: broadcasts arrive expanded per recipient;
            # the own chunk never transits and is appended locally.
            src, dst, val, wid = ctx.inbox_messages
            if src.size:
                if small:
                    acc[dst, src] = (
                        acc[dst, src] << wid.astype(_U64)
                    ) | val
                else:
                    for i in range(src.size):
                        d, s = int(dst[i]), int(src[i])
                        acc_py[d][s] = (acc_py[d][s] << int(wid[i])) | int(
                            val[i]
                        )
                np.add.at(got, (dst, src), wid)
            diag = np.arange(n)
            if small:
                acc[diag, diag] = (acc[diag, diag] << _U64(w)) | np.asarray(
                    chunk, dtype=_U64
                )
            else:
                for v in range(n):
                    acc_py[v][v] = (acc_py[v][v] << w) | chunk[v]
            got[diag, diag] += w
    bad = got != k
    if bad.any():
        dst, src = np.argwhere(bad)[0]
        raise ProtocolViolation(
            f"all_broadcast: node {int(dst)} reassembled {int(got[dst, src])} "
            f"bits from node {int(src)}, expected {k}"
        )
    if small:
        return [[int(x) for x in row] for row in acc]
    return acc_py


def array_all_gather_uint(
    ctx, values, width: int
) -> Generator[None, None, list[list[int]]]:
    """Columnar ``all_gather_uint``: ``result[dst][src]`` uint values."""
    return (yield from array_all_broadcast(ctx, values, width))


def array_agree_uint_max(
    ctx, values, width: int
) -> Generator[None, None, list[int]]:
    """Columnar ``agree_uint_max``: each node's view of the maximum."""
    rows = yield from array_all_gather_uint(ctx, values, width)
    return [max(row) for row in rows]


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
#
# Flows are ``flows[src][dst] = (value, nbits)`` with arbitrary-precision
# values; the result is ``result[dst][src] = (value, nbits)``.


def array_route(
    ctx, flows: dict[int, dict[int, tuple[int, int]]], scheme: str = "lenzen"
) -> Generator[None, None, list[dict[int, tuple[int, int]]]]:
    """Columnar :func:`repro.clique.routing.route` — all three schemes.

    Mirrors the generator collective exactly: a sparse 32-bit length
    exchange on flow links, the per-node payload-load counters, then the
    scheme phase (``direct`` chunking, the ``lenzen`` cost-model bulk
    channel, or the executable ``relay`` store-and-forward protocol).
    """
    if scheme not in ROUTE_SCHEMES:
        raise ProtocolViolation(f"unknown routing scheme {scheme!r}")
    _require_narrow_links(ctx)
    n, b = ctx.n, ctx.bandwidth
    live: dict[int, dict[int, tuple[int, int]]] = {}
    self_flows: dict[int, tuple[int, int]] = {}
    for src in range(n):
        mine = {}
        for d, (value, nbits) in flows.get(src, {}).items():
            if nbits <= 0:
                continue
            if d == src:
                self_flows[src] = (value, nbits)
                continue
            if not 0 <= d < n:
                raise ProtocolViolation(f"flow destination {d} out of range")
            mine[d] = (value, nbits)
        live[src] = mine

    result: list[dict[int, tuple[int, int]]] = [{} for _ in range(n)]
    if n == 1:
        if 0 in self_flows:
            result[0][0] = self_flows[0]
        return result

    # ---- Phase 1: sparse length exchange (headers only on flow links).
    pairs = [(s, d) for s in range(n) for d in live[s]]
    hdr_src = np.asarray([p[0] for p in pairs], dtype=_I64)
    hdr_dst = np.asarray([p[1] for p in pairs], dtype=_I64)
    hdr_len = np.asarray(
        [live[s][d][1] for s, d in pairs], dtype=_U64
    )
    acc_len = np.zeros((n, n), dtype=_U64)
    got_len = np.zeros((n, n), dtype=_I64)
    sent_bits = 0
    for w in _chunk_layout(_LEN_WIDTH, b):
        shift = _LEN_WIDTH - sent_bits - w
        sent_bits += w
        if hdr_src.size:
            chunk = (hdr_len >> _U64(shift)) & _U64((1 << w) - 1)
            ctx.send(hdr_src, hdr_dst, chunk, w)
        yield
        src, dst, val, wid = ctx.inbox_messages
        if src.size:
            acc_len[dst, src] = (acc_len[dst, src] << wid.astype(_U64)) | val
            np.add.at(got_len, (dst, src), wid)
    in_lengths: list[dict[int, int]] = [
        {
            int(s): int(acc_len[dst, s])
            for s in np.nonzero(got_len[dst])[0]
        }
        for dst in range(n)
    ]

    out_col = np.asarray(
        [sum(nb for _v, nb in live[s].values()) for s in range(n)], dtype=_I64
    )
    in_col = np.asarray(
        [sum(in_lengths[dst].values()) for dst in range(n)], dtype=_I64
    )
    ctx.count("route_payload_out_bits", out_col)
    ctx.count("route_payload_in_bits", in_col)

    if scheme == "direct":
        yield from _array_route_direct(ctx, live, in_lengths, result)
    elif scheme == "lenzen":
        yield from _array_route_lenzen(ctx, live, in_lengths, result)
    else:
        yield from _array_route_relay(ctx, live, in_lengths, result)

    for src, payload in self_flows.items():
        result[src][src] = payload
    return result


def _array_route_direct(
    ctx, live, in_lengths, result
) -> Generator[None, None, None]:
    n, b = ctx.n, ctx.bandwidth
    my_rounds = [
        max(
            (
                chunks_needed(length, b)
                for length in (
                    list(in_lengths[v].values())
                    + [nb for _val, nb in live[v].values()]
                )
            ),
            default=0,
        )
        for v in range(n)
    ]
    totals = yield from array_agree_uint_max(ctx, my_rounds, _LEN_WIDTH)
    total_rounds = totals[0]

    chunked: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for s in range(n):
        for d, (value, nbits) in live[s].items():
            chunked[(s, d)] = [
                (c.value, len(c)) for c in BitString(value, nbits).split(b)
            ]
    acc: dict[tuple[int, int], tuple[int, int]] = {}
    for r in range(total_rounds):
        esrc, edst, evals, ewids = [], [], [], []
        for (s, d), chunks in chunked.items():
            if r < len(chunks):
                value, w = chunks[r]
                esrc.append(s)
                edst.append(d)
                evals.append(value)
                ewids.append(w)
        if esrc:
            ctx.send(
                np.asarray(esrc, dtype=_I64),
                np.asarray(edst, dtype=_I64),
                np.asarray(evals, dtype=_U64),
                np.asarray(ewids, dtype=_I64),
            )
        yield
        src, dst, val, wid = ctx.inbox_messages
        for i in range(src.size):
            key = (int(dst[i]), int(src[i]))
            value, bits = acc.get(key, (0, 0))
            acc[key] = (
                (value << int(wid[i])) | int(val[i]),
                bits + int(wid[i]),
            )
    for dst in range(n):
        for s, expected in in_lengths[dst].items():
            if expected <= 0:
                continue
            value, bits = acc.get((dst, s), (0, 0))
            if bits < expected:
                raise ProtocolViolation(
                    f"route: node {dst} received {bits} of "
                    f"{expected} bits from node {s}"
                )
            result[dst][s] = (value >> (bits - expected), expected)


def _array_route_lenzen(
    ctx, live, in_lengths, result
) -> Generator[None, None, None]:
    n, b = ctx.n, ctx.bandwidth
    loads = [
        max(
            sum(nb for _val, nb in live[v].values()),
            sum(in_lengths[v].values()),
        )
        for v in range(n)
    ]
    max_loads = yield from array_agree_uint_max(ctx, loads, _LEN_WIDTH)
    charged = max(0, math.ceil(max_loads[0] / (b * (n - 1))))
    if charged == 0:
        return
    for s in range(n):
        for d, (value, nbits) in live[s].items():
            ctx.bulk_send(s, d, value, nbits)
    yield
    received: dict[tuple[int, int], tuple[int, int]] = {}
    for src, dst, value, width in ctx.inbox_bulk:
        received[(dst, src)] = (value, width)
    for _ in range(charged - 1):
        yield
    for dst in range(n):
        for s, expected in in_lengths[dst].items():
            got = received.get((dst, s), (0, 0))[1]
            if expected > 0 and got != expected:
                raise ProtocolViolation(
                    f"route(lenzen): node {dst} expected {expected} bits "
                    f"from {s}, got {got}"
                )
    for (dst, s), (value, nbits) in received.items():
        if nbits > 0:
            result[dst][s] = (value, nbits)


def _array_route_relay(
    ctx, live, in_lengths, result
) -> Generator[None, None, None]:
    n, b = ctx.n, ctx.bandwidth
    if n == 2:
        yield from _array_route_direct(ctx, live, in_lengths, result)
        return
    node_w = uint_width(max(1, n - 1))
    payload_w = b - 1 - node_w
    if payload_w < 1:
        raise ProtocolViolation(
            f"relay routing needs bandwidth >= {relay_min_bandwidth(n)} bits "
            f"(got {b}); run with bandwidth_multiplier >= 2"
        )
    msg_w = 1 + node_w + payload_w
    peer_mask = (1 << node_w) - 1
    chunk_mask = (1 << payload_w) - 1

    spread = [
        {w: deque() for w in range(n) if w != me} for me in range(n)
    ]
    forward = [
        {d: deque() for d in range(n) if d != me} for me in range(n)
    ]
    expect = [
        {s: math.ceil(length / payload_w) for s, length in in_lengths[me].items()}
        for me in range(n)
    ]
    store = [
        {s: {} for s, c in expect[me].items() if c > 0} for me in range(n)
    ]
    seen = [dict() for _ in range(n)]
    remaining = [sum(expect[me].values()) for me in range(n)]

    for me in range(n):
        for d, (value, nbits) in live[me].items():
            chunks = [
                (c.value, len(c)) for c in BitString(value, nbits).split(payload_w)
            ]
            if chunks and chunks[-1][1] < payload_w:  # pad the tail chunk
                tv, tw = chunks[-1]
                chunks[-1] = (tv << (payload_w - tw), payload_w)
            for i, (cv, _cw) in enumerate(chunks):
                spread[me][_relay_of(me, d, i, n)].append((d, cv))

    def satisfied(me: int) -> bool:
        return (
            remaining[me] == 0
            and all(not q for q in spread[me].values())
            and all(not q for q in forward[me].values())
        )

    def accept(me: int, src: int, relay: int, chunk_val: int) -> None:
        if src not in store[me]:
            raise ProtocolViolation(
                f"route(relay): node {me} got unexpected chunk from {src}"
            )
        k = seen[me].get((src, relay), 0)
        seen[me][(src, relay)] = k + 1
        index = _relay_position(src, me, relay, n) + k * (n - 1)
        if index >= expect[me][src]:
            raise ProtocolViolation(
                f"route(relay): node {me} got chunk index {index} beyond "
                f"expected {expect[me][src]} from {src}"
            )
        if index in store[me][src]:
            raise ProtocolViolation(
                f"route(relay): node {me} got duplicate chunk {index} "
                f"from {src}"
            )
        store[me][src][index] = chunk_val
        remaining[me] -= 1

    data_round = 0
    while True:
        if data_round % (_STATUS_PERIOD + 1) == _STATUS_PERIOD:
            sat = [1 if satisfied(me) else 0 for me in range(n)]
            ctx.broadcast(np.asarray(sat, dtype=_U64), 1)
            yield
            data_round += 1
            ok = np.ones(n, dtype=bool)
            bs, bv, _bw = ctx.inbox_broadcast
            if bs.size:
                zeros = bs[bv == 0]
                if zeros.size == 1:
                    ok[:] = False
                    ok[int(zeros[0])] = True
                elif zeros.size > 1:
                    ok[:] = False
            src, dst, val, _wid = ctx.inbox_messages
            if src.size:
                np.logical_and.at(ok, dst, val == 1)
            done = [bool(sat[me]) and bool(ok[me]) for me in range(n)]
            if all(done):
                break
            if any(done):
                raise ProtocolViolation(
                    "route(relay): nodes disagree on completion (lossy "
                    "delivery is not survivable by the raw relay protocol)"
                )
            continue

        esrc, edst, evals = [], [], []
        for me in range(n):
            for peer in range(n):
                if peer == me:
                    continue
                if forward[me][peer]:
                    src0, cv = forward[me][peer].popleft()
                    raw = (((1 << node_w) | src0) << payload_w) | cv
                elif spread[me][peer]:
                    dstf, cv = spread[me][peer].popleft()
                    raw = (dstf << payload_w) | cv
                else:
                    continue
                esrc.append(me)
                edst.append(peer)
                evals.append(raw)
        if esrc:
            ctx.send(
                np.asarray(esrc, dtype=_I64),
                np.asarray(edst, dtype=_I64),
                np.asarray(evals, dtype=_U64),
                msg_w,
            )
        yield
        data_round += 1
        src, dst, val, _wid = ctx.inbox_messages
        for i in range(src.size):
            me, sender, raw = int(dst[i]), int(src[i]), int(val[i])
            tag = raw >> (msg_w - 1)
            peer_id = (raw >> payload_w) & peer_mask
            chunk_val = raw & chunk_mask
            if tag == 0:
                if peer_id == me:
                    accept(me, sender, me, chunk_val)
                else:
                    forward[me][peer_id].append((sender, chunk_val))
            else:
                accept(me, peer_id, sender, chunk_val)

    for me in range(n):
        for s, chunks in store[me].items():
            m = expect[me][s]
            for i in range(m):
                if i not in chunks:
                    raise ProtocolViolation(
                        f"route(relay): node {me} missing chunk {i} of flow "
                        f"from {s}"
                    )
            merged = 0
            for i in range(m):
                merged = (merged << payload_w) | chunks[i]
            length = in_lengths[me][s]
            result[me][s] = (merged >> (m * payload_w - length), length)


# ---------------------------------------------------------------------------
# Catalog ports
# ---------------------------------------------------------------------------


_FANOUT_MUL = 1103515245
_FANOUT_INC = 12345


def _fanout_width(bandwidth: int) -> int:
    return min(bandwidth, 48)


def fanout_generator(node) -> Generator[None, None, tuple[int, int]]:
    """Generator form of the fan-out stress program.

    ``node.aux`` rounds of all-to-all broadcasts of an evolving value;
    returns ``(messages received, xor fold of received values)`` — an
    output that is sensitive to every individual delivery, which makes
    the fault-plan parity diff an output-level check.
    """
    rounds = int(node.aux)
    w = _fanout_width(node.bandwidth)
    mask = (1 << w) - 1
    x = int(node.input) & mask
    count = 0
    fold = 0
    for r in range(rounds):
        node.send_to_all(BitString(x, w))
        yield
        for _src, msg in node.inbox.items():
            count += 1
            fold ^= msg.value
        x = (x * _FANOUT_MUL + _FANOUT_INC + r) & mask
    return (count, fold)


@array_program(shardable=True)
def fanout_array(ctx) -> Generator[None, None, list[tuple[int, int]]]:
    """Columnar twin of :func:`fanout_generator` — fully vectorised.

    Shardable: broadcasts are emitted for the owned senders only
    (identical columns to the classic full-range emission when the
    owned range is the whole clique), the evolving per-node value is
    deterministic from the global inputs so every shard advances the
    full vector, and the inbox is consumed by whole-column/scatter
    updates — valid on owned rows whatever slice arrives.
    """
    n = ctx.n
    lo, hi = ctx.lo, ctx.hi
    rounds = int(ctx.auxes[0])
    w = _fanout_width(ctx.bandwidth)
    mask = _U64((1 << w) - 1)
    x = np.asarray([int(v) for v in ctx.inputs], dtype=_U64) & mask
    count = np.zeros(n, dtype=_I64)
    fold = np.zeros(n, dtype=_U64)
    for r in range(rounds):
        ctx.broadcast(x[lo:hi], w, senders=ctx.ids[lo:hi])
        yield
        bs, bv, _bw = ctx.inbox_broadcast
        if bs.size:
            total = np.bitwise_xor.reduce(bv)
            fold ^= total
            fold[bs] ^= bv
            count += bs.size
            count[bs] -= 1
        src, dst, val, _wid = ctx.inbox_messages
        if src.size:
            np.add.at(count, dst, 1)
            np.bitwise_xor.at(fold, dst, val)
        x = (x * _U64(_FANOUT_MUL) + _U64(_FANOUT_INC + r)) & mask
    return [(int(count[v]), int(fold[v])) for v in range(n)]


# -- fanout_work: the compute-heavy shard-parallel stress program -----------
#
# ``fanout`` is communication-bound: O(n) vector work per round, nothing
# for extra cores to chew on.  ``fanout_work`` adds a per-node hidden
# state of ``state`` uint64 lanes put through ``passes`` xorshift-
# multiply mixing passes per round — O(n * state * passes) elementwise
# work that shard-parallel execution genuinely splits — and exchanges
# digests over a k-regular ring (unicast only, so the fast and explicit
# delivery paths agree message for message).  Both twins run their lane
# arithmetic through the same numpy uint64 helpers, so the wrapping
# semantics are identical by construction.

_WORK_SEED_A = 0x9E3779B97F4A7C15
_WORK_SEED_B = 0xBF58476D1CE4E5B9
_WORK_MUL = 0x2545F4914F6CDD1D
_WORK_RC_A = 0x9E3779B1
_WORK_RC_B = 0x85EBCA77
_M64 = (1 << 64) - 1


def _work_degree(n: int) -> int:
    return min(8, n - 1)


def _work_state(values, m: int) -> np.ndarray:
    """``(len(values), m)`` uint64 lane matrix seeded from the inputs."""
    vals = np.asarray([int(v) & _M64 for v in values], dtype=_U64)
    lanes = np.arange(m, dtype=_U64)
    return (
        vals[:, None] * _U64(_WORK_SEED_A)
        + lanes[None, :] * _U64(_WORK_SEED_B)
        + _U64(1)
    )


def _work_mix(state: np.ndarray, r: int, passes: int) -> np.ndarray:
    """``passes`` in-place xorshift-multiply rounds over the lane axis."""
    for p in range(passes):
        state ^= state << _U64(13)
        state ^= state >> _U64(7)
        state ^= state << _U64(17)
        state *= _U64(_WORK_MUL)
        state += _U64(((r + 1) * _WORK_RC_A + p * _WORK_RC_B) & _M64)
    return state


def _work_digest(state: np.ndarray, mask) -> np.ndarray:
    """Per-node ``w``-bit digest: lane xor-fold, avalanched, masked."""
    d = np.bitwise_xor.reduce(state, axis=-1)
    d ^= d >> _U64(29)
    return d & mask


def _work_params(aux) -> tuple[int, int, int]:
    aux = dict(aux)
    return (
        int(aux.get("rounds", 3)),
        int(aux.get("state", 16)),
        int(aux.get("passes", 2)),
    )


def fanout_work_generator(node) -> Generator[None, None, tuple[int, int]]:
    """Generator form of the compute-heavy fan-out stress program.

    Each round: mix the hidden lane state, unicast the digest to the
    ``min(8, n-1)`` next ring neighbours, then fold the received
    digests back into lane 0.  Returns ``(messages received, xor fold
    of received values ^ final digest)`` — sensitive to every delivery
    *and* every mixing pass.
    """
    n = node.n
    rounds, m, passes = _work_params(node.aux)
    w = _fanout_width(node.bandwidth)
    mask = _U64((1 << w) - 1)
    k = _work_degree(n)
    state = _work_state([node.input], m)[0]
    count = 0
    fold = 0
    for r in range(rounds):
        _work_mix(state, r, passes)
        digest = int(_work_digest(state, mask))
        for off in range(1, k + 1):
            node.send((node.id + off) % n, BitString(digest, w))
        yield
        rf = 0
        for _src, msg in node.inbox.items():
            count += 1
            fold ^= msg.value
            rf ^= msg.value
        state[0] ^= _U64(rf)
    _work_mix(state, rounds, passes)
    final = int(_work_digest(state, mask))
    return (count, fold ^ final)


@array_program(shardable=True)
def fanout_work_array(ctx) -> Generator[None, None, list[tuple[int, int]]]:
    """Columnar twin of :func:`fanout_work_generator`.

    Shardable: the lane state is held as an ``(owned, m)`` matrix —
    the part shard-parallel execution actually splits — digests go out
    src-major for the owned senders only, and the received digests are
    folded back with scatter reductions over owned destinations.
    """
    n = ctx.n
    lo, hi = ctx.lo, ctx.hi
    rounds, m, passes = _work_params(ctx.auxes[0])
    w = _fanout_width(ctx.bandwidth)
    mask = _U64((1 << w) - 1)
    k = _work_degree(n)
    state = _work_state(ctx.inputs[lo:hi], m)
    count = np.zeros(n, dtype=_I64)
    fold = np.zeros(n, dtype=_U64)
    offs = np.arange(1, k + 1, dtype=_I64)
    src_col = np.repeat(ctx.ids[lo:hi], k)
    dst_col = (src_col + np.tile(offs, hi - lo)) % n
    for r in range(rounds):
        _work_mix(state, r, passes)
        digest = _work_digest(state, mask)
        if k:
            ctx.send(src_col, dst_col, np.repeat(digest, k), w)
        yield
        src, dst, val, _wid = ctx.inbox_messages
        rf = np.zeros(n, dtype=_U64)
        if src.size:
            np.add.at(count, dst, 1)
            np.bitwise_xor.at(fold, dst, val)
            np.bitwise_xor.at(rf, dst, val)
        state[:, 0] ^= rf[lo:hi]
    _work_mix(state, rounds, passes)
    final = _work_digest(state, mask)
    return {
        v: (int(count[v]), int(fold[v]) ^ int(final[v - lo]))
        for v in range(lo, hi)
    }


def _flow_length(src: int, dst: int) -> int:
    return 24 + 8 * ((src + 2 * dst) % 5)


def _flow_value(src: int, dst: int, length: int) -> int:
    """Deterministic pseudo-random payload bits for the routing catalog."""
    x = ((src * 0x9E3779B1) ^ (dst * 0x85EBCA77) ^ 0x27220A95) & 0xFFFFFFFF
    out = 0
    for _ in range(math.ceil(length / 32)):
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        out = (out << 32) | x
    return out >> (32 * math.ceil(length / 32) - length)


def _routing_dsts(src: int, n: int) -> list[int]:
    return sorted({(src + 1) % n, (src + 5) % n})


def routing_generator(node) -> Generator[None, None, tuple]:
    """Generator form of the routing catalog entry (relay by default)."""
    n = node.n
    scheme = str(node.aux or "relay")
    from ..clique.routing import route

    flows = {
        d: BitString(_flow_value(node.id, d, _flow_length(node.id, d)),
                     _flow_length(node.id, d))
        for d in _routing_dsts(node.id, n)
    }
    received = yield from route(node, flows, scheme=scheme)
    return tuple(sorted((s, len(p), p.value) for s, p in received.items()))


def routing_array(ctx) -> Generator[None, None, list[tuple]]:
    """Columnar twin of :func:`routing_generator`."""
    n = ctx.n
    scheme = str(ctx.auxes[0] or "relay")
    flows = {
        src: {
            d: (
                _flow_value(src, d, _flow_length(src, d)),
                _flow_length(src, d),
            )
            for d in _routing_dsts(src, n)
        }
        for src in range(n)
    }
    received = yield from array_route(ctx, flows, scheme=scheme)
    return [
        tuple(sorted((s, nb, v) for s, (v, nb) in received[dst].items()))
        for dst in range(n)
    ]


def matmul_array(ctx) -> Generator[None, None, list[np.ndarray]]:
    """Columnar cube-partitioned matrix multiplication.

    Mirrors :func:`repro.algorithms.matmul.distributed_matmul` with the
    RING semiring: node ``v``'s input is ``(A[v], B[v])`` and its output
    ``C[v]``.  ``ctx.auxes[v]`` carries ``{"max_entry", "scheme"}``.
    """
    from .common import group_partition, int_ceil_root
    from .matmul import RING

    n = ctx.n
    aux = dict(ctx.auxes[0])
    semiring: Semiring = RING
    max_entry = int(aux["max_entry"])
    scheme = str(aux.get("scheme", "lenzen"))
    g = int_ceil_root(n, 3)
    blocks = group_partition(n, g)
    in_w = semiring.in_width(n, max_entry)
    acc_w = semiring.acc_width(n, max_entry)

    def block_of(i: int) -> int:
        size = math.ceil(n / g)
        return min(i // size, g - 1)

    def triple_of(t: int) -> tuple[int, int, int]:
        return (t // (g * g), (t // g) % g, t % g)

    # ---- Phase 1: distribute input blocks to the cube nodes.
    flows: dict[int, dict[int, tuple[int, int]]] = {}
    for me in range(n):
        a_row = np.asarray(ctx.inputs[me][0], dtype=np.int64)
        b_row = np.asarray(ctx.inputs[me][1], dtype=np.int64)
        my_block = block_of(me)
        mine: dict[int, tuple[int, int]] = {}
        for t in range(g**3):
            a, bb, c = triple_of(t)
            w = BitWriter()
            if a == my_block:
                w.write_bits(semiring.encode_entries(a_row[blocks[bb]], in_w))
            if bb == my_block:
                w.write_bits(semiring.encode_entries(b_row[blocks[c]], in_w))
            payload = w.finish()
            if len(payload) > 0:
                mine[t] = (payload.value, len(payload))
        flows[me] = mine
    received = yield from array_route(ctx, flows, scheme=scheme)

    # ---- Phase 2: local block multiply at cube nodes.
    partials: dict[int, np.ndarray] = {}
    for me in range(n):
        if me >= g**3:
            continue
        a, bb, c = triple_of(me)
        Ba, Bb, Bc = blocks[a], blocks[bb], blocks[c]
        a_block = np.full(
            (len(Ba), len(Bb)), semiring.identity, dtype=np.int64
        )
        b_block = np.full(
            (len(Bb), len(Bc)), semiring.identity, dtype=np.int64
        )
        for src, (value, nbits) in received[me].items():
            r = BitReader(BitString(value, nbits))
            src_block = block_of(src)
            if src_block == a:
                chunk = r.read_bits(len(Bb) * in_w)
                a_block[Ba.index(src)] = semiring.decode_entries(
                    chunk, len(Bb), in_w
                )
            if src_block == bb:
                chunk = r.read_bits(len(Bc) * in_w)
                b_block[Bb.index(src)] = semiring.decode_entries(
                    chunk, len(Bc), in_w
                )
        partials[me] = semiring.local_matmul(a_block, b_block)

    # ---- Phase 3: aggregate partial rows at the row owners.
    flows3: dict[int, dict[int, tuple[int, int]]] = {}
    for me, partial in partials.items():
        a, bb, c = triple_of(me)
        mine = {}
        for idx, i in enumerate(blocks[a]):
            payload = semiring.encode_entries(partial[idx], acc_w)
            mine[i] = (payload.value, len(payload))
        flows3[me] = mine
    received3 = yield from array_route(ctx, flows3, scheme=scheme)

    out: list[np.ndarray] = []
    for me in range(n):
        c_row = np.full(n, semiring.identity, dtype=np.int64)
        for t, (value, nbits) in received3[me].items():
            a, bb, c = triple_of(t)
            Bc = blocks[c]
            vals = semiring.decode_entries(
                BitString(value, nbits), len(Bc), acc_w
            )
            c_row[Bc] = semiring.combine(c_row[Bc], vals)
        out.append(c_row)
    return out


def sorting_array(ctx) -> Generator[None, None, list[list[int]]]:
    """Columnar PSRS sorting (twin of ``distributed_sort``).

    Node ``v``'s input is its key list; ``ctx.auxes[v]`` carries
    ``{"key_width", "scheme"}``.
    """
    from ..clique.bits import encode_uint_array

    n = ctx.n
    aux = dict(ctx.auxes[0])
    key_width = int(aux["key_width"])
    scheme = str(aux.get("scheme", "lenzen"))
    locals_: list[list[int]] = []
    for me in range(n):
        keys = [int(k) for k in ctx.inputs[me]]
        for k in keys:
            if k < 0 or k.bit_length() > key_width:
                raise ProtocolViolation(
                    f"key {k} does not fit in {key_width} bits"
                )
        locals_.append(sorted(keys))
    if n == 1:
        return [locals_[0]]

    # Step 2: publish n evenly spaced samples per node.
    pad = (1 << key_width) - 1
    payloads = []
    for local in locals_:
        if local:
            step = max(1, len(local) // n)
            samples = [local[min(i * step, len(local) - 1)] for i in range(n)]
        else:
            samples = [pad] * n
        payloads.append(encode_uint_array(samples, key_width).value)
    sample_rows = yield from array_all_broadcast(
        ctx, payloads, n * key_width
    )

    def unpack_samples(value: int) -> list[int]:
        mask = (1 << key_width) - 1
        return [
            (value >> ((n - 1 - i) * key_width)) & mask for i in range(n)
        ]

    def pack_keys(keys: list[int]) -> tuple[int, int]:
        w = BitWriter()
        w.write_uint(len(keys), 32)
        if keys:
            w.write_uints(keys, key_width)
        bits = w.finish()
        return (bits.value, len(bits))

    def unpack_keys(value: int, nbits: int) -> list[int]:
        r = BitReader(BitString(value, nbits))
        count = r.read_uint(32)
        return r.read_uints(count, key_width)

    # Step 3: route keys to their splitter bucket.
    flows: dict[int, dict[int, tuple[int, int]]] = {}
    for me in range(n):
        all_samples = sorted(
            s for row in sample_rows[me] for s in unpack_samples(row)
        )
        splitters = [all_samples[(j + 1) * n - 1] for j in range(n - 1)]
        buckets: dict[int, list[int]] = {j: [] for j in range(n)}
        for k in locals_[me]:
            buckets[bisect.bisect_left(splitters, k)].append(k)
        flows[me] = {
            j: pack_keys(ks) for j, ks in buckets.items() if ks
        }
    received = yield from array_route(ctx, flows, scheme=scheme)
    merged = [
        sorted(
            k
            for value, nbits in received[me].values()
            for k in unpack_keys(value, nbits)
        )
        for me in range(n)
    ]

    # Step 4: all-gather bucket sizes and re-route to rank owners.
    size_rows = yield from array_all_gather_uint(
        ctx, [len(m) for m in merged], 32
    )
    flows2: dict[int, dict[int, tuple[int, int]]] = {}
    for me in range(n):
        sizes = size_rows[me]
        total = sum(sizes)
        my_offset = sum(sizes[:me])
        quota = -(-total // n)
        rank_flows: dict[int, list[int]] = {}
        for pos, k in enumerate(merged[me]):
            rank = my_offset + pos
            owner = min(rank // quota, n - 1) if quota > 0 else 0
            rank_flows.setdefault(owner, []).append(k)
        flows2[me] = {d: pack_keys(ks) for d, ks in rank_flows.items() if ks}
    received2 = yield from array_route(ctx, flows2, scheme=scheme)
    return [
        sorted(
            k
            for value, nbits in received2[me].values()
            for k in unpack_keys(value, nbits)
        )
        for me in range(n)
    ]
