"""k-path detection in exp(k) rounds — colour coding.

Section 7.3 cites that a k-path can be found in exp(k) rounds [20, 35]
(complexity exponential in k but *independent of n*).  We implement the
classical Alon–Yuster–Zwick colour-coding scheme distributed over the
clique:

* shared randomness: node 0 broadcasts a seed; every node derives the
  same random colouring ``c : V -> [k]``,
* dynamic programming on colour sets: node ``v`` maintains the bitset
  ``dp_v = { S subseteq [k] : a colourful path with colour set S ends at
  v }`` and each of the ``k - 1`` DP phases exchanges everyone's
  ``2^k``-bit table (``ceil(2^k / B)`` rounds),
* a trial succeeds if some ``dp_v`` contains a full colour set; with
  ``e^k ln(1/delta)`` trials a k-path is found with probability
  ``1 - delta``.

Total rounds: ``O(trials * k * 2^k / log n)`` — exp(k), no n-dependence
in the exponent, matching the paper's FPT discussion.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from ..clique.bits import BitString
from ..clique.node import Node
from ..clique.primitives import all_broadcast, broadcast_from

__all__ = ["k_path_detection", "trials_for"]

_SEED_BITS = 64


def trials_for(k: int, failure_prob: float = 0.01) -> int:
    """Number of colour-coding trials for the given failure probability:
    a fixed k-path is colourful with probability ``p = k!/k^k >= e^-k``,
    so ``t`` trials miss with probability ``(1-p)^t``."""
    p = math.factorial(k) / (k**k)
    if p >= 1.0:
        return 1
    return max(1, math.ceil(math.log(failure_prob) / math.log(1.0 - p)))


def _colouring(seed: int, trial: int, n: int, k: int) -> list[int]:
    rng = np.random.default_rng((seed, trial))
    return rng.integers(0, k, size=n).tolist()


def k_path_detection(
    node: Node,
    k: int,
    trials: int | None = None,
    seed: int | None = None,
    failure_prob: float = 0.01,
) -> Generator[None, None, bool]:
    """Detect a simple path on ``k`` vertices (one-sided Monte Carlo:
    never reports a path that does not exist; misses one with probability
    at most ``failure_prob``).

    ``seed`` is drawn by node 0 if not given (pass one for reproducible
    tests).  Returns the same verdict at every node.
    """
    n = node.n
    if k <= 1:
        return n >= k
    if trials is None:
        trials = trials_for(k, failure_prob)

    # Shared randomness: node 0 broadcasts the seed.
    if node.id == 0:
        if seed is None:
            seed = int(np.random.default_rng().integers(1 << 63))
        payload = BitString(seed, _SEED_BITS)
    else:
        payload = None
    seed_bits = yield from broadcast_from(node, 0, payload, _SEED_BITS)
    common_seed = seed_bits.value

    row = np.asarray(node.input, dtype=bool)
    table_bits = 1 << k

    for trial in range(trials):
        colours = _colouring(common_seed, trial, n, k)
        my_colour = colours[node.id]
        # dp as an int bitmask over colour subsets S (bit S set iff a
        # colourful path with colour set S ends here).
        dp = 1 << (1 << my_colour)
        found = False
        for _phase in range(k - 1):
            payloads = yield from all_broadcast(
                node, BitString(dp, table_bits)
            )
            new_dp = dp
            for u in range(n):
                if not row[u]:
                    continue
                dp_u = payloads[u].value
                # extend any path ending at neighbour u by ourselves
                for s in range(1 << k):
                    if (dp_u >> s) & 1 and not (s >> my_colour) & 1:
                        new_dp |= 1 << (s | (1 << my_colour))
            dp = new_dp
        full = (1 << k) - 1
        mine = (dp >> full) & 1
        # 1-bit vote: did anyone complete a full colour set?
        node.send_to_all(BitString(mine, 1))
        yield
        found = bool(mine) or any(m.value == 1 for m in node.inbox.values())
        if found:
            return True
    return False
