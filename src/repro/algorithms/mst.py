"""Minimum spanning tree — Borůvka in the congested clique.

MST is the flagship problem of the congested clique upper-bound
literature (Lotker et al. O(log log n) [45], Ghaffari & Parter
O(log* n) [25]); the paper's related-work section leans on it.  We
implement the straightforward Borůvka variant: each phase, every node
broadcasts the lightest edge leaving its component; merges are computed
identically everywhere from the broadcasts.  Components at least halve
per phase, so there are at most ``ceil(log2 n)`` phases of
``ceil((1 + W + log n) / B)`` rounds each — ``O(log n)`` total.

(The O(log log n) algorithm needs randomised sparsification machinery
orthogonal to this paper's contribution; the registry notes the better
bound.)
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitReader, BitWriter, uint_width
from ..clique.graph import INF
from ..clique.node import Node
from ..clique.primitives import all_broadcast

__all__ = ["boruvka_mst"]


def boruvka_mst(
    node: Node,
) -> Generator[None, None, frozenset[tuple[int, int]]]:
    """MST (minimum spanning forest for disconnected graphs) of the
    weighted input graph; ``node.aux['max_weight']`` bounds edge weights.

    Returns the same edge set at every node.
    """
    n = node.n
    me = node.id
    max_weight = int(node.aux["max_weight"])
    ww = uint_width(max(1, max_weight))
    vw = uint_width(max(1, n - 1))
    row = np.asarray(node.input, dtype=np.int64)

    comp = list(range(n))
    mst: set[tuple[int, int]] = set()

    for _phase in range(max(1, n.bit_length())):
        # Lightest edge from me leaving my component, tie-broken by
        # (weight, min endpoint, max endpoint) for global determinism.
        best: tuple[int, int, int] | None = None
        for u in range(n):
            if u == me or row[u] >= INF:
                continue
            if comp[u] == comp[me]:
                continue
            cand = (int(row[u]), min(me, u), max(me, u))
            if best is None or cand < best:
                best = cand
        w = BitWriter()
        if best is None:
            w.write_bit(0)
            w.write_uint(0, ww)
            w.write_uint(0, vw)
        else:
            w.write_bit(1)
            w.write_uint(best[0], ww)
            other = best[1] if best[1] != me else best[2]
            w.write_uint(other, vw)
        payloads = yield from all_broadcast(node, w.finish())

        # Everyone reconstructs all proposals identically.
        proposals: dict[int, tuple[int, int, int]] = {}
        for v in range(n):
            r = BitReader(payloads[v])
            if not r.read_bit():
                continue
            weight = r.read_uint(ww)
            u = r.read_uint(vw)
            cand = (weight, min(v, u), max(v, u))
            c = comp[v]
            if c not in proposals or cand < proposals[c]:
                proposals[c] = cand
        if not proposals:
            break

        # Merge along chosen edges (identical computation at all nodes).
        parent = {c: c for c in set(comp)}

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        for weight, a, b in proposals.values():
            ra, rb = find(comp[a]), find(comp[b])
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
                mst.add((a, b))
        comp = [find(c) for c in comp]

    return frozenset(mst)
