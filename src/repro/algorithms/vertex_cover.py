r"""k-vertex cover in O(k) rounds — Theorem 11.

Buss kernelisation (Lemma 12) in the congested clique (Section 7.3):

* preprocessing (1 round): every node of degree >= k+1 joins the cover C
  and announces it with one bit; if |C| > k, reject;
* main phase (<= k broadcast rounds): every node outside C broadcasts its
  incident edges not covered by C — at most k of them, since its degree
  is at most k — and everyone solves the kernel ``G[V \ C]`` locally
  (bounded search tree of depth k - |C|).

Total: O(k) rounds, independent of n — the paper's point that vertex
cover is "fixed-parameter tractable" in the congested clique in the
strongest sense (delta(k-VC) = 0).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitReader, BitString, BitWriter, uint_width
from ..clique.node import Node
from ..clique.primitives import all_broadcast

__all__ = ["k_vertex_cover", "kernel_vertex_cover"]


def kernel_vertex_cover(
    edges: list[tuple[int, int]], budget: int
) -> list[int] | None:
    """Bounded search tree: a vertex cover of ``edges`` of size at most
    ``budget``, or ``None``.  Classic 2^k branching on an uncovered edge.
    """
    if not edges:
        return []
    if budget == 0:
        return None
    u, v = edges[0]
    for pick in (u, v):
        rest = [e for e in edges if pick not in e]
        sub = kernel_vertex_cover(rest, budget - 1)
        if sub is not None:
            return [pick] + sub
    return None


def k_vertex_cover(
    node: Node, k: int
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Theorem 11: find a vertex cover of size <= k (or report none).

    Returns ``(found, cover)``; every step is deterministic from common
    knowledge, so all nodes agree without an extra voting round.
    """
    n = node.n
    me = node.id
    row = np.asarray(node.input, dtype=bool)
    degree = int(row.sum())

    # ---- Preprocessing round: high-degree nodes join C.
    joins = degree >= k + 1
    node.send_to_all(BitString(1 if joins else 0, 1))
    yield
    cover_c = {v for v, m in node.inbox.items() if m.value == 1}
    if joins:
        cover_c.add(me)

    if len(cover_c) > k:
        # Lemma 12: every high-degree node is in any size-k cover.
        return False, None

    # ---- Main phase: nodes outside C broadcast their uncovered edges.
    # A node outside C has degree <= k, so at most k incident edges; we
    # broadcast them as (count, k * neighbour-id) with fixed width so all
    # payload lengths agree.
    vw = uint_width(max(1, n - 1))
    if me in cover_c:
        uncovered: list[int] = []
    else:
        uncovered = [
            u for u in range(n) if row[u] and u not in cover_c
        ]
    w = BitWriter()
    w.write_uint(len(uncovered), uint_width(max(1, k)))
    for u in uncovered:
        w.write_uint(u, vw)
    for _ in range(k - len(uncovered)):
        w.write_uint(0, vw)
    payloads = yield from all_broadcast(node, w.finish())

    kernel_edges: set[tuple[int, int]] = set()
    for v in range(n):
        if v in cover_c:
            continue
        r = BitReader(payloads[v])
        count = r.read_uint(uint_width(max(1, k)))
        for _ in range(count):
            u = r.read_uint(vw)
            kernel_edges.add((min(u, v), max(u, v)))

    sub = kernel_vertex_cover(sorted(kernel_edges), k - len(cover_c))
    if sub is None:
        return False, None
    return True, tuple(sorted(cover_c | set(sub)))
