"""Distributed matrix multiplication over semirings.

Implements the 3D ("cube partitioned") congested clique matrix
multiplication of Censor-Hillel et al. [10]: with ``g = floor(n^(1/3))``,
node ``(a, b, c) in [g]^3`` fetches the blocks ``A[Ba, Bb]`` and
``B[Bb, Bc]``, multiplies locally, and partial results are aggregated at
the row owners.  Per-node communication is ``O(n^(4/3))`` entries, so via
:func:`~repro.clique.routing.route` the round complexity is
``O(n^(1/3))`` entries-per-link — the paper's semiring MM bound.

The paper additionally cites ``delta(ring MM) <= 1 - 2/omega`` via
distributed Strassen-style block kernels [10, 41]; we expose ``omega`` in
the exponent registry but execute the cube algorithm for all semirings
(substitution documented in DESIGN.md — the communication schedule, the
object of study, is identical in structure).

Supported semirings: ``boolean`` (OR/AND), ``ring`` (+/*, unsigned), and
``minplus`` ((min, +) with an INF sentinel) — exactly the three flavours
in Figure 1 (Boolean MM, Ring MM, (min,+) MM / Semiring MM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from ..clique.bits import (
    BitReader,
    BitString,
    BitWriter,
    decode_uint_array,
    encode_uint_array,
    uint_width,
)
from ..clique.graph import INF
from ..clique.network import CongestedClique
from ..clique.node import Node
from ..clique.routing import route
from .common import group_partition, int_ceil_root

__all__ = [
    "Semiring",
    "BOOLEAN",
    "RING",
    "MINPLUS",
    "distributed_matmul",
    "run_matmul",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring with bit-exact wire encodings.

    ``local_matmul`` runs at a node (free local computation);
    ``combine`` accumulates partial result blocks (the semiring addition);
    ``in_width`` / ``acc_width`` give the wire widths for input entries
    and partial-result entries given the caller's ``max_entry`` bound.
    """

    name: str
    local_matmul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity: int  # additive identity (as an int64 value; INF for minplus)
    in_width: Callable[[int, int], int]
    acc_width: Callable[[int, int], int]
    uses_inf: bool = False

    def encode_entries(self, values: np.ndarray, width: int) -> BitString:
        """Pack entries at ``width`` bits each (INF -> the all-ones code)."""
        arr = np.asarray(values, dtype=np.int64).ravel()
        if arr.size == 0:
            return BitString.empty()
        if self.uses_inf:
            sentinel = (1 << width) - 1
            infinite = arr >= INF
            colliding = ~infinite & (arr >= sentinel)
            if colliding.any():
                bad = int(arr[int(np.argmax(colliding))])
                raise ValueError(
                    f"{self.name}: finite entry {bad} collides with the "
                    f"{width}-bit INF sentinel"
                )
            arr = np.where(infinite, np.int64(sentinel), arr)
        return encode_uint_array(arr, width)

    def decode_entries(self, bits: BitString, count: int, width: int) -> np.ndarray:
        """Unpack ``count`` entries of ``width`` bits each."""
        out = np.fromiter(
            decode_uint_array(bits, count, width), dtype=np.int64, count=count
        )
        if self.uses_inf:
            out[out == (1 << width) - 1] = INF
        return out


def _bool_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a.astype(np.int64) @ b.astype(np.int64) > 0).astype(np.int64)


def _minplus_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.full((a.shape[0], b.shape[1]), INF, dtype=np.int64)
    for i in range(a.shape[0]):
        sums = a[i][:, None] + b
        out[i] = np.minimum(sums.min(axis=0), INF)
    return out


BOOLEAN = Semiring(
    name="boolean",
    local_matmul=_bool_matmul,
    combine=lambda x, y: ((x + y) > 0).astype(np.int64),
    identity=0,
    in_width=lambda n, m: 1,
    acc_width=lambda n, m: 1,
)

RING = Semiring(
    name="ring",
    local_matmul=lambda a, b: a @ b,
    combine=lambda x, y: x + y,
    identity=0,
    in_width=lambda n, m: uint_width(m),
    acc_width=lambda n, m: 2 * uint_width(m) + uint_width(n),
)

MINPLUS = Semiring(
    name="minplus",
    local_matmul=_minplus_matmul,
    combine=np.minimum,
    identity=INF,
    in_width=lambda n, m: uint_width(m) + 1,  # +1 for the INF sentinel
    acc_width=lambda n, m: uint_width(2 * max(1, m)) + 1,
    uses_inf=True,
)


def _maxmin_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(max, min) product — the bottleneck/widest-path semiring."""
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.int64)
    for i in range(a.shape[0]):
        caps = np.minimum(a[i][:, None], b)
        out[i] = caps.max(axis=0)
    return out


MAXMIN = Semiring(
    name="maxmin",
    local_matmul=_maxmin_matmul,
    combine=np.maximum,
    identity=0,  # capacity 0 = no path
    in_width=lambda n, m: uint_width(m),
    acc_width=lambda n, m: uint_width(m),
)

SEMIRINGS = {
    "boolean": BOOLEAN,
    "ring": RING,
    "minplus": MINPLUS,
    "maxmin": MAXMIN,
}


def _triple_of(t: int, g: int) -> tuple[int, int, int]:
    return (t // (g * g), (t // g) % g, t % g)


def distributed_matmul(
    node: Node,
    a_row: np.ndarray,
    b_row: np.ndarray,
    semiring: Semiring,
    max_entry: int,
    scheme: str = "lenzen",
) -> Generator[None, None, np.ndarray]:
    """Compute ``C = A (x) B``; node ``i`` holds rows ``A[i]``/``B[i]`` and
    returns ``C[i]``.

    ``max_entry`` bounds every finite input entry (wire widths derive
    from it); all nodes must pass the same value.
    """
    n = node.n
    me = node.id
    g = int_ceil_root(n, 3)
    blocks = group_partition(n, g)
    in_w = semiring.in_width(n, max_entry)
    acc_w = semiring.acc_width(n, max_entry)
    a_row = np.asarray(a_row, dtype=np.int64)
    b_row = np.asarray(b_row, dtype=np.int64)

    def block_of(i: int) -> int:
        size = math.ceil(n / g)
        return min(i // size, g - 1)

    # ---- Phase 1: distribute input blocks to the cube nodes.
    my_block = block_of(me)
    flows: dict[int, BitString] = {}
    for t in range(g**3):
        a, b, c = _triple_of(t, g)
        w = BitWriter()
        if a == my_block:  # t needs our A row restricted to Bb
            w.write_bits(semiring.encode_entries(a_row[blocks[b]], in_w))
        if b == my_block:  # t needs our B row restricted to Bc
            w.write_bits(semiring.encode_entries(b_row[blocks[c]], in_w))
        payload = w.finish()
        if len(payload) > 0:
            flows[t] = payload
    received = yield from route(node, flows, scheme=scheme)

    # ---- Phase 2: local block multiply at cube nodes.
    partial = None
    if me < g**3:
        a, b, c = _triple_of(me, g)
        Ba, Bb, Bc = blocks[a], blocks[b], blocks[c]
        a_block = np.full((len(Ba), len(Bb)), semiring.identity, dtype=np.int64)
        b_block = np.full((len(Bb), len(Bc)), semiring.identity, dtype=np.int64)
        for src, bits in received.items():
            r = BitReader(bits)
            src_block = block_of(src)
            if src_block == a:
                chunk = r.read_bits(len(Bb) * in_w)
                a_block[Ba.index(src)] = semiring.decode_entries(
                    chunk, len(Bb), in_w
                )
            if src_block == b:
                chunk = r.read_bits(len(Bc) * in_w)
                b_block[Bb.index(src)] = semiring.decode_entries(
                    chunk, len(Bc), in_w
                )
        partial = semiring.local_matmul(a_block, b_block)

    # ---- Phase 3: aggregate partial rows at the row owners.
    flows3: dict[int, BitString] = {}
    if partial is not None:
        a, b, c = _triple_of(me, g)
        Ba = blocks[a]
        for idx, i in enumerate(Ba):
            flows3[i] = semiring.encode_entries(partial[idx], acc_w)
    received3 = yield from route(node, flows3, scheme=scheme)

    c_row = np.full(n, semiring.identity, dtype=np.int64)
    for t, bits in received3.items():
        a, b, c = _triple_of(t, g)
        Bc = blocks[c]
        vals = semiring.decode_entries(bits, len(Bc), acc_w)
        c_row[Bc] = semiring.combine(c_row[Bc], vals)
    return c_row


def run_matmul(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    max_entry: int | None = None,
    scheme: str = "lenzen",
    bandwidth_multiplier: int = 2,
):
    """Driver: run the distributed multiplication of square matrices
    ``a @ b`` on an ``n``-node clique; returns ``(C, RunResult)``."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("run_matmul needs square matrices of equal size")
    if max_entry is None:
        finite = [
            int(x)
            for m in (a, b)
            for x in m.ravel()
            if not (semiring.uses_inf and x >= INF)
        ]
        max_entry = max(finite, default=1) or 1

    def program(node: Node):
        row = yield from distributed_matmul(
            node,
            a[node.id],
            b[node.id],
            semiring,
            max_entry,
            scheme=scheme,
        )
        return row

    clique = CongestedClique(n, bandwidth_multiplier=bandwidth_multiplier)
    result = clique.run(program)
    c = np.stack([result.outputs[i] for i in range(n)])
    return c, result
