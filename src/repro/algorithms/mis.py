"""Maximal independent set and connected components.

Two classic distributed algorithms rounding out the "local problems"
corner of the congested clique literature the paper cites ([11, 30, 31],
Luby [46]):

* **Luby's MIS** with shared randomness: each phase, every undecided
  node draws a random priority; local maxima among undecided neighbours
  join the set and their neighbours drop out.  O(log n) phases with high
  probability; each phase costs two 1-bit-ish broadcast exchanges plus a
  priority broadcast.  The output is verified by the NCLIQUE(1)-
  labelling verifier of :mod:`repro.core.labelling_problems` in tests.

* **Connected components / spanning forest** by unit-weight Boruvka:
  every node learns its component's representative (the minimum member
  id) and the forest edges.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitString, BitWriter, uint_width
from ..clique.node import Node
from ..clique.primitives import all_broadcast, broadcast_from

__all__ = ["luby_mis", "connected_components"]

_SEED_BITS = 64


def luby_mis(
    node: Node, seed: int | None = None
) -> Generator[None, None, frozenset[int]]:
    """Luby's maximal independent set with shared randomness.

    Node 0 broadcasts a seed (pass ``seed`` for reproducibility); all
    nodes then derive identical per-phase priorities, so the evolution
    is common knowledge given the 1-bit state broadcasts.  Returns the
    same MIS at every node.  O(log n) phases w.h.p.
    """
    n = node.n
    if node.id == 0:
        if seed is None:
            seed = int(np.random.default_rng().integers(1 << 63))
        payload = BitString(seed, _SEED_BITS)
    else:
        payload = None
    seed_bits = yield from broadcast_from(node, 0, payload, _SEED_BITS)
    common_seed = seed_bits.value

    row = np.asarray(node.input, dtype=bool)
    in_set: set[int] = set()
    undecided = set(range(n))
    phase = 0
    while undecided:
        rng = np.random.default_rng((common_seed, phase))
        priority = rng.permutation(n)  # distinct priorities, shared
        # A node joins if it is undecided and beats all undecided
        # neighbours.  Everyone knows ``undecided`` (maintained from the
        # broadcasts below) and the shared priorities, but only each node
        # knows its own neighbourhood — so joins must be announced.
        i_join = False
        if node.id in undecided:
            i_join = all(
                priority[node.id] > priority[u]
                for u in range(n)
                if u != node.id and u in undecided and row[u]
            )
        bits = yield from all_broadcast(
            node, BitString(1 if i_join else 0, 1)
        )
        joined = {v for v in range(n) if bits[v].value == 1}
        in_set |= joined
        # Nodes adjacent to a joiner retire; they announce retirement so
        # the shared ``undecided`` set stays common knowledge.
        i_retire = (
            node.id in undecided
            and node.id not in joined
            and any(row[u] for u in joined)
        )
        bits = yield from all_broadcast(
            node, BitString(1 if i_retire else 0, 1)
        )
        retired = {v for v in range(n) if bits[v].value == 1}
        undecided -= joined
        undecided -= retired
        phase += 1
        if phase > 4 * n + 8:  # deterministic safety net
            raise RuntimeError("Luby MIS failed to converge")
    return frozenset(in_set)


def connected_components(
    node: Node,
) -> Generator[None, None, tuple[np.ndarray, frozenset[tuple[int, int]]]]:
    """Connected components by unit-weight Boruvka.

    Returns ``(component, forest)`` — identical at every node — where
    ``component[v]`` is the minimum node id in v's component and
    ``forest`` is a spanning forest.
    """
    n = node.n
    vw = uint_width(max(1, n - 1))
    row = np.asarray(node.input, dtype=bool)
    comp = list(range(n))
    forest: set[tuple[int, int]] = set()

    for _phase in range(max(1, n.bit_length())):
        # Propose the lexicographically-smallest edge leaving my comp.
        best: tuple[int, int] | None = None
        for u in range(n):
            if u != node.id and row[u] and comp[u] != comp[node.id]:
                cand = (min(node.id, u), max(node.id, u))
                if best is None or cand < best:
                    best = cand
        w = BitWriter()
        if best is None:
            w.write_bit(0)
            w.write_uint(0, vw)
        else:
            other = best[0] if best[0] != node.id else best[1]
            w.write_bit(1)
            w.write_uint(other, vw)
        payloads = yield from all_broadcast(node, w.finish())

        merged = False
        parent = {c: c for c in set(comp)}

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        for v in range(n):
            bits = payloads[v]
            if bits[0] == 0:
                continue
            u = bits[1 : 1 + vw].value
            ra, rb = find(comp[v]), find(comp[u])
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
                forest.add((min(v, u), max(v, u)))
                merged = True
        comp = [find(c) for c in comp]
        if not merged:
            break

    return np.array(comp), frozenset(forest)
