"""Subgraph detection — Dolev, Lenzen & Peled [16] ("Tri, tri again").

To find a size-``k`` subgraph, split the nodes into ``g = floor(n^(1/k))``
groups; assign each node ``v`` a label ``l(v) in [g]^k`` so that every
label occurs; node ``v`` learns *all edges inside* ``S_v`` (the union of
its ``k`` labelled groups) and checks candidate tuples locally.  Each
node receives ``|S_v|^2 <= (k n^(1-1/k))^2`` bits, so routing costs
``O(k^2 n^(1-2/k))`` rounds — the ``1 - 2/k`` family of Figure 1 (with
triangle = 3-IS detection at ``n^(1/3)``).

The same harness detects induced patterns (independent sets need
*non*-edges, so ``induced=True``) and non-induced ones (cycles, cliques).
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from ..clique.bits import BitString
from ..clique.graph import CliqueGraph
from ..clique.node import Node
from ..clique.routing import route
from .common import (
    agree_on_witness,
    decode_bool_row,
    encode_bool_row,
    group_of,
    group_partition,
    int_ceil_root,
    label_union,
    node_label,
)

__all__ = [
    "learn_subclique_edges",
    "detect_pattern",
    "triangle_detection",
    "k_independent_set_detection",
    "k_clique_detection",
    "k_cycle_detection",
]


def learn_subclique_edges(
    node: Node, k: int, scheme: str = "lenzen"
) -> Generator[None, None, tuple[list[int], np.ndarray, tuple[int, ...], list[list[int]]]]:
    """The communication core of the Dolev et al. scheme.

    Returns ``(S_v, M, label, groups)`` where ``M`` is the full adjacency
    submatrix induced on ``S_v`` (indexed in ``S_v`` order).
    """
    n = node.n
    me = node.id
    g = int_ceil_root(n, k)
    groups = group_partition(n, g)
    labels = [node_label(v, g, k) for v in range(n)]
    unions = [label_union(labels[v], groups) for v in range(n)]
    my_group = group_of(me, n, g)
    row = np.asarray(node.input, dtype=bool)

    flows: dict[int, BitString] = {}
    for v in range(n):
        if my_group in labels[v]:
            sub_row = row[unions[v]]
            flows[v] = encode_bool_row(sub_row)
    received = yield from route(node, flows, scheme=scheme)

    s_v = unions[me]
    pos = {u: i for i, u in enumerate(s_v)}
    m = np.zeros((len(s_v), len(s_v)), dtype=bool)
    for src, bits in received.items():
        m[pos[src]] = decode_bool_row(bits, len(s_v))
    # Our own row is local knowledge.
    if me in pos:
        m[pos[me]] = row[s_v]
    return s_v, m | m.T, labels[me], groups


def _match_pattern(
    s_v: Sequence[int],
    m: np.ndarray,
    label: tuple[int, ...],
    groups: list[list[int]],
    pattern: CliqueGraph,
    induced: bool,
) -> tuple[int, ...] | None:
    """Backtracking search for an ordered tuple ``(u_1..u_k)`` with
    ``u_i`` in the ``i``-th labelled group matching the pattern."""
    k = pattern.n
    pos = {u: i for i, u in enumerate(s_v)}
    candidate_lists = [[pos[u] for u in groups[j]] for j in label]
    pat = pattern.adjacency

    chosen: list[int] = []

    def ok(i: int, cand: int) -> bool:
        for j in range(i):
            if chosen[j] == cand:
                return False
            has = m[chosen[j], cand]
            want = bool(pat[j, i])
            if want and not has:
                return False
            if induced and not want and has:
                return False
        return True

    def backtrack(i: int) -> bool:
        if i == k:
            return True
        for cand in candidate_lists[i]:
            if ok(i, cand):
                chosen.append(cand)
                if backtrack(i + 1):
                    return True
                chosen.pop()
        return False

    if backtrack(0):
        return tuple(s_v[c] for c in chosen)
    return None


def detect_pattern(
    node: Node,
    pattern: CliqueGraph,
    induced: bool = False,
    scheme: str = "lenzen",
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Detect a size-``k`` pattern (``k = pattern.n``); returns the agreed
    ``(found, witness)`` at every node."""
    k = pattern.n
    s_v, m, label, groups = yield from learn_subclique_edges(node, k, scheme)
    witness = _match_pattern(s_v, m, label, groups, pattern, induced)
    return (
        yield from agree_on_witness(node, witness is not None, witness, k)
    )


def triangle_detection(
    node: Node, scheme: str = "lenzen"
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Triangle detection with a vectorised local check (einsum over the
    three group submatrices)."""
    s_v, m, label, groups = yield from learn_subclique_edges(node, 3, scheme)
    pos = {u: i for i, u in enumerate(s_v)}
    g1 = [pos[u] for u in groups[label[0]]]
    g2 = [pos[u] for u in groups[label[1]]]
    g3 = [pos[u] for u in groups[label[2]]]
    m12 = m[np.ix_(g1, g2)].astype(np.int64)
    m23 = m[np.ix_(g2, g3)].astype(np.int64)
    m13 = m[np.ix_(g1, g3)].astype(np.int64)
    hits = np.einsum("ij,jk,ik->ik", m12, m23, m13)
    witness = None
    if hits.any():
        i, kk = np.unravel_index(int(np.argmax(hits)), hits.shape)
        j = int(np.argmax(m12[i] & m23[:, kk]))
        witness = (s_v[g1[i]], s_v[g2[j]], s_v[g3[kk]])
    return (yield from agree_on_witness(node, witness is not None, witness, 3))


def k_independent_set_detection(
    node: Node, k: int, scheme: str = "lenzen"
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """k-IS detection: the induced empty pattern (Dolev et al. upper
    bound cited in Section 7: ``O(n^(1-2/k))`` rounds)."""
    return (
        yield from detect_pattern(
            node, CliqueGraph.empty(k), induced=True, scheme=scheme
        )
    )


def k_clique_detection(
    node: Node, k: int, scheme: str = "lenzen"
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """k-clique detection: the complete pattern, non-induced."""
    return (
        yield from detect_pattern(
            node, CliqueGraph.complete(k), induced=False, scheme=scheme
        )
    )


def k_cycle_detection(
    node: Node, k: int, scheme: str = "lenzen"
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Simple k-cycle detection (Figure 1's k-CYCLE node)."""
    cycle = CliqueGraph.from_edges(k, [(i, (i + 1) % k) for i in range(k)])
    return (
        yield from detect_pattern(node, cycle, induced=False, scheme=scheme)
    )
