"""Shared helpers for the distributed algorithms.

Group partitions, label tuples (the Dolev–Lenzen–Peled label scheme used
by Theorems 9 and the subgraph algorithms), incidence-row encodings, and
the standard decide-and-agree epilogue.
"""

from __future__ import annotations

import math
from typing import Generator, Sequence

import numpy as np

from ..clique.bits import (
    BitReader,
    BitString,
    BitWriter,
    decode_uint_array,
    encode_uint_array,
    uint_width,
)
from ..clique.node import Node
from ..clique.primitives import all_broadcast

__all__ = [
    "group_partition",
    "group_of",
    "node_label",
    "label_union",
    "encode_bool_row",
    "decode_bool_row",
    "encode_uint_row",
    "decode_uint_row",
    "agree_on_witness",
    "int_ceil_root",
]


def int_ceil_root(n: int, k: int) -> int:
    """Largest integer g with g**k <= n (i.e. floor(n^(1/k))), computed
    exactly (floating-point roots of large ints are unreliable)."""
    if n < 1:
        return 0
    g = max(1, int(round(n ** (1.0 / k))))
    while g**k > n:
        g -= 1
    while (g + 1) ** k <= n:
        g += 1
    return g


def group_partition(n: int, g: int) -> list[list[int]]:
    """Partition ``0..n-1`` into ``g`` contiguous groups of size
    ``ceil(n/g)`` (the last may be smaller)."""
    size = math.ceil(n / g)
    return [list(range(i * size, min((i + 1) * size, n))) for i in range(g)]


def group_of(v: int, n: int, g: int) -> int:
    """Index of the group containing node ``v`` under
    :func:`group_partition`."""
    size = math.ceil(n / g)
    return min(v // size, g - 1)


def node_label(v: int, g: int, k: int) -> tuple[int, ...]:
    """The label ``l(v) in [g]^k`` of node ``v``: digits of ``v mod g^k``
    in base ``g``.  Every possible label is assigned to some node as long
    as ``g^k <= n`` (paper Section 7.1 step 2)."""
    x = v % (g**k)
    digits = []
    for _ in range(k):
        digits.append(x % g)
        x //= g
    return tuple(digits)


def label_union(label: Sequence[int], groups: list[list[int]]) -> list[int]:
    """``S_v``: the (sorted, deduplicated) union of the labelled groups."""
    seen: set[int] = set()
    for j in label:
        seen.update(groups[j])
    return sorted(seen)


# ---------------------------------------------------------------------------
# row encodings


def encode_bool_row(row: np.ndarray) -> BitString:
    """Pack a boolean vector into a BitString (vectorised hot path —
    profiling showed the per-bit loop dominating subgraph detection)."""
    arr = np.asarray(row, dtype=bool)
    n = arr.size
    if n == 0:
        return BitString.empty()
    packed = np.packbits(arr)  # MSB-first, zero-padded at the tail
    value = int.from_bytes(packed.tobytes(), "big") >> ((-n) % 8)
    return BitString(value, n)


def decode_bool_row(bits: BitString, n: int) -> np.ndarray:
    """Unpack ``n`` leading bits into a boolean vector (vectorised)."""
    if n == 0:
        return np.zeros(0, dtype=bool)
    nbytes = (n + 7) // 8
    head = bits[:n]
    value = head.value << (8 * nbytes - n)
    raw = np.frombuffer(value.to_bytes(nbytes, "big"), dtype=np.uint8)
    return np.unpackbits(raw)[:n].astype(bool)


def encode_uint_row(row: Sequence[int], width: int) -> BitString:
    return encode_uint_array(row, width)


def decode_uint_row(bits: BitString, count: int, width: int) -> list[int]:
    return decode_uint_array(bits, count, width)


# ---------------------------------------------------------------------------
# decide-and-agree epilogue


def agree_on_witness(
    node: Node,
    found: bool,
    witness: Sequence[int] | None,
    k: int,
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Standard epilogue for search algorithms: every node broadcasts a
    ``found`` flag plus a k-tuple witness; all nodes agree on the witness
    of the lowest-id finder (or on "not found").

    Costs ``ceil((1 + k * ceil(log2 n)) / B)`` rounds.
    """
    n = node.n
    vw = uint_width(max(1, n - 1))
    w = BitWriter()
    w.write_bit(1 if found else 0)
    if found:
        if witness is None or len(witness) != k:
            raise ValueError("found=True requires a k-tuple witness")
        w.write_uint_seq(list(witness), vw)
    else:
        w.write_uint_seq([0] * k, vw)
    payloads = yield from all_broadcast(node, w.finish())
    for v in range(n):
        r = BitReader(payloads[v])
        if r.read_bit():
            return True, tuple(r.read_uint_seq(k, vw))
    return False, None
