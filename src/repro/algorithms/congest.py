"""CONGEST-model algorithms — the contrast class for the clique.

Section 3 defines the congested clique as CONGEST on a complete
topology; Section 2 explains why the clique is interesting — CONGEST
lower bounds come from graphs with *bottlenecks* (small cuts carrying
lots of information), which a clique never has.  These algorithms run
under ``CongestedClique(topology=G)`` and make that contrast measurable:

* :func:`congest_bfs` — BFS waves along topology edges:
  ``Theta(ecc(source))`` rounds, i.e. up to ``n - 1`` on a path, while
  the clique gathers the whole graph in ``ceil(n/B)`` rounds,
* :func:`congest_flood_count` — count the nodes by flood/echo-free
  aggregation (flooding a max takes diameter rounds per update).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitString
from ..clique.node import Node

__all__ = ["congest_bfs", "congest_flood_max"]

#: Distance sentinel for unreachable nodes.
UNREACHED = -1


def congest_bfs(node: Node) -> Generator[None, None, int]:
    """BFS distance from ``node.aux`` (the source id), CONGEST-style:
    each newly-reached node pings its *neighbours only*.  Returns the
    node's own distance (UNREACHED if the wave never arrives).

    Termination: runs for exactly ``n`` rounds (a node cannot know the
    eccentricity in advance without extra machinery), so the measured
    round count is n; the *wave arrival time* (the distance itself) is
    the quantity compared against the clique's gather in tests.
    """
    n = node.n
    source = int(node.aux)
    row = np.asarray(node.input, dtype=bool)
    dist = 0 if node.id == source else UNREACHED
    for r in range(n):
        if dist == r:
            for u in range(n):
                if row[u]:
                    node.send(u, BitString(1, 1))
        yield
        if dist == UNREACHED and node.inbox:
            dist = r + 1
    return dist


def congest_flood_max(node: Node) -> Generator[None, None, int]:
    """Every node holds a value (``node.aux``, which must fit in one
    B-bit message); all learn the maximum by iterative neighbour
    exchange.  Takes ``diameter`` rounds to stabilise; runs for n rounds
    (safe upper bound) like :func:`congest_bfs`.  Returns the maximum
    seen (== global max on connected topologies)."""
    n = node.n
    row = np.asarray(node.input, dtype=bool)
    width = node.bandwidth
    best = int(node.aux)
    if best.bit_length() > width:
        raise ValueError(
            f"value {best} does not fit in one {width}-bit message; run "
            f"with a larger bandwidth multiplier"
        )
    for _ in range(n):
        for u in range(n):
            if row[u]:
                node.send(u, BitString(best, width))
        yield
        for msg in node.inbox.values():
            best = max(best, msg.value)
    return best
