"""k-colourability.

Figure 1 places k-COL at exponent <= 1 via the blow-up reduction to
MaxIS ([46], implemented in :mod:`repro.reductions.col_to_is`); the
direct algorithm here is the same trivial gather-and-solve upper bound
(``O(n / log n)`` rounds), which is what the reduction also achieves
since MaxIS itself is solved by gathering.
"""

from __future__ import annotations

from typing import Generator

from ..clique.graph import CliqueGraph
from ..clique.node import Node
from ..problems.reference import is_k_colourable
from .broadcast import gather_graph

__all__ = ["decide_k_colouring", "find_k_colouring"]


def decide_k_colouring(node: Node, k: int) -> Generator[None, None, int]:
    """Decide k-colourability by gathering; every node outputs 0/1."""
    adj = yield from gather_graph(node)
    return int(is_k_colourable(CliqueGraph(adj), k))


def find_k_colouring(
    node: Node, k: int
) -> Generator[None, None, list[int] | None]:
    """Output a proper k-colouring (identical at every node) or None."""
    adj = yield from gather_graph(node)
    n = node.n
    colours = [-1] * n

    def backtrack(v: int) -> bool:
        if v == n:
            return True
        used = {colours[u] for u in range(v) if adj[u, v]}
        for c in range(k):
            if c not in used:
                colours[v] = c
                if backtrack(v + 1):
                    return True
                colours[v] = -1
        return False

    return list(colours) if backtrack(0) else None
