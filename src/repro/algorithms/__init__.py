"""Distributed congested clique algorithms — every upper bound the paper
states or uses (Sections 7.1–7.3 and Figure 1)."""

from .apsp import apsp_minplus, transitive_closure_distributed, widest_paths_distributed
from .bfs import UNREACHED, bfs_distances, bfs_tree
from .broadcast import decide_by_gathering, gather_graph, gather_weighted_graph
from .byzantine import bracha_broadcast, dolev_broadcast
from .coloring import decide_k_colouring, find_k_colouring
from .congest import congest_bfs, congest_flood_max
from .common import (
    agree_on_witness,
    group_of,
    group_partition,
    int_ceil_root,
    label_union,
    node_label,
)
from .dominating_set import k_dominating_set, local_dominating_check
from .independent_set import (
    k_independent_set,
    max_independent_set,
    min_vertex_cover,
)
from .kpath import k_path_detection, trials_for
from .matmul import (
    BOOLEAN,
    MAXMIN,
    MINPLUS,
    RING,
    Semiring,
    distributed_matmul,
    run_matmul,
)
from .mis import connected_components, luby_mis
from .mst import boruvka_mst
from .selection import distributed_median, distributed_select
from .spanner import approx_apsp_via_spanner, baswana_sen_3_spanner
from .sssp import bellman_ford_sssp, dist_width_for
from .subgraph import (
    detect_pattern,
    k_clique_detection,
    k_cycle_detection,
    k_independent_set_detection,
    learn_subclique_edges,
    triangle_detection,
)
from .vertex_cover import k_vertex_cover, kernel_vertex_cover

__all__ = [
    "BOOLEAN",
    "MAXMIN",
    "MINPLUS",
    "RING",
    "Semiring",
    "UNREACHED",
    "agree_on_witness",
    "approx_apsp_via_spanner",
    "apsp_minplus",
    "baswana_sen_3_spanner",
    "bellman_ford_sssp",
    "bfs_distances",
    "bfs_tree",
    "boruvka_mst",
    "bracha_broadcast",
    "congest_bfs",
    "congest_flood_max",
    "connected_components",
    "decide_by_gathering",
    "decide_k_colouring",
    "detect_pattern",
    "dist_width_for",
    "distributed_matmul",
    "distributed_median",
    "distributed_select",
    "dolev_broadcast",
    "find_k_colouring",
    "gather_graph",
    "gather_weighted_graph",
    "group_of",
    "group_partition",
    "int_ceil_root",
    "k_clique_detection",
    "k_cycle_detection",
    "k_dominating_set",
    "k_independent_set",
    "k_independent_set_detection",
    "k_path_detection",
    "k_vertex_cover",
    "kernel_vertex_cover",
    "label_union",
    "learn_subclique_edges",
    "local_dominating_check",
    "luby_mis",
    "max_independent_set",
    "min_vertex_cover",
    "node_label",
    "run_matmul",
    "transitive_closure_distributed",
    "trials_for",
    "triangle_detection",
    "widest_paths_distributed",
]
