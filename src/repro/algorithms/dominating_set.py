"""k-dominating set in O(n^(1-1/k)) rounds — Theorem 9.

The paper's algorithm (Section 7.1), a modification of Dolev et al.:

1. partition V into ``n^(1/k)`` groups of size ``O(n^(1-1/k))``,
2. assign every node a label in ``[n^(1/k)]^k`` so every label occurs,
3. node ``v`` learns *all edges incident to* ``S_v`` (the union of its
   labelled groups) — note "incident to", not "inside" as in subgraph
   detection — and locally checks whether some k-subset of ``S_v``
   dominates the whole graph.

If ``D = {v_1..v_k}`` dominates with ``v_i in S_{j_i}``, the node
labelled ``(j_1..j_k)`` sees all of D's incident edges and detects it.
Each node receives ``|S_v| * n <= k n^(2-1/k)`` bits, so the routing
cost is ``O(k n^(1-1/k))`` rounds — Theorem 9's bound.
"""

from __future__ import annotations

import itertools
from typing import Generator

import numpy as np

from ..clique.bits import BitString
from ..clique.node import Node
from ..clique.routing import route
from .common import (
    agree_on_witness,
    decode_bool_row,
    encode_bool_row,
    group_of,
    group_partition,
    int_ceil_root,
    label_union,
    node_label,
)

__all__ = ["k_dominating_set", "local_dominating_check"]


def local_dominating_check(
    s_v: list[int],
    incident_rows: np.ndarray,
    n: int,
    k: int,
) -> tuple[int, ...] | None:
    """Find a k-subset of ``S_v`` dominating all of ``V``, given the full
    incidence rows of every node in ``S_v`` (``incident_rows[i]`` is the
    n-bit row of ``s_v[i]``).  Returns the subset or ``None``.
    """
    size = len(s_v)
    # closed neighbourhoods as bitmasks over V
    masks = []
    for i in range(size):
        mask = 0
        row = incident_rows[i]
        for u in range(n):
            if row[u]:
                mask |= 1 << u
        mask |= 1 << s_v[i]
        masks.append(mask)
    full = (1 << n) - 1
    for combo in itertools.combinations(range(size), k):
        covered = 0
        for i in combo:
            covered |= masks[i]
        if covered == full:
            return tuple(s_v[i] for i in combo)
    return None


def k_dominating_set(
    node: Node, k: int, scheme: str = "lenzen"
) -> Generator[None, None, tuple[bool, tuple[int, ...] | None]]:
    """Theorem 9: find a dominating set of size ``k`` (or report none).

    Returns the agreed ``(found, witness)`` at every node.
    """
    n = node.n
    me = node.id
    g = int_ceil_root(n, k)
    groups = group_partition(n, g)
    labels = [node_label(v, g, k) for v in range(n)]
    my_group = group_of(me, n, g)
    row = np.asarray(node.input, dtype=bool)

    # Step 3 communication: our full incidence row goes to every node v
    # whose label mentions our group (we are in S_v).
    flows: dict[int, BitString] = {}
    encoded = encode_bool_row(row)
    for v in range(n):
        if my_group in labels[v]:
            flows[v] = encoded
    received = yield from route(node, flows, scheme=scheme)

    s_v = label_union(labels[me], groups)
    incident = np.zeros((len(s_v), n), dtype=bool)
    for i, u in enumerate(s_v):
        if u == me:
            incident[i] = row
        else:
            incident[i] = decode_bool_row(received[u], n)

    witness = local_dominating_check(s_v, incident, n, k)
    return (yield from agree_on_witness(node, witness is not None, witness, k))
