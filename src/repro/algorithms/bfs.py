"""BFS trees and unweighted SSSP — the "trivial" arrows of Figure 1.

The BFS frontier expands one layer per round: every node whose distance
equals the current layer announces itself with a single bit; every node
knows its own incident edges, so it can tell when a neighbour is first
announced and thereby learn its own distance.  Since each reachable node
announces exactly once (at round ``dist+1``), the full distance vector
becomes common knowledge for free.  Rounds: ``ecc(source) + 2``.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitString, uint_width
from ..clique.node import Node
from ..clique.primitives import all_gather_uint

__all__ = ["bfs_distances", "bfs_tree", "UNREACHED"]

#: Distance sentinel for unreachable nodes.
UNREACHED = -1


def bfs_distances(node: Node) -> Generator[None, None, np.ndarray]:
    """Unweighted single-source shortest path distances from the source
    given in ``node.aux`` (an int, common to all nodes).

    Returns the full distance vector (identical at every node);
    unreachable nodes get :data:`UNREACHED`.
    """
    n = node.n
    source = int(node.aux)
    neighbours = np.asarray(node.input, dtype=bool)
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    layer = 0
    while True:
        announcing = dist[node.id] == layer
        if announcing:
            node.send_to_all(BitString(1, 1))
        yield
        announced = set(node.inbox.keys())
        if announcing:
            announced.add(node.id)
        if not announced:
            break
        for u in announced:
            dist[u] = layer
        if dist[node.id] == UNREACHED and any(neighbours[u] for u in announced):
            dist[node.id] = layer + 1
        layer += 1
    return dist


def bfs_tree(node: Node) -> Generator[None, None, tuple[np.ndarray, np.ndarray]]:
    """BFS tree: distances plus a parent vector.

    The parent of the source and of unreachable nodes is ``-1``.  Costs
    one extra all-gather (each node reports its chosen parent) on top of
    :func:`bfs_distances`.
    """
    n = node.n
    dist = yield from bfs_distances(node)
    neighbours = np.asarray(node.input, dtype=bool)
    me = node.id
    parent_me = 0  # encoded as parent+1; 0 = none
    if dist[me] > 0:
        for u in range(n):
            if neighbours[u] and dist[u] == dist[me] - 1:
                parent_me = u + 1
                break
    parents = yield from all_gather_uint(node, parent_me, uint_width(n))
    parent = np.array([p - 1 for p in parents], dtype=np.int64)
    return dist, parent
