"""Weighted single-source shortest paths.

Distributed Bellman–Ford: every round each node broadcasts its tentative
distance and relaxes over its own incident edges.  With nonnegative
``O(log n)``-bit weights, distances fit in ``dist_width`` bits and the
algorithm converges within ``n - 1`` relaxation phases, each costing
``ceil(dist_width / B)`` rounds — the trivial ``O(n)`` upper bound the
paper's Figure 1 places above the SSSP family.

An early-exit variant stops as soon as a phase changes nothing (one extra
1-bit convergence vote per phase), so well-connected instances finish in
``O(hop-diameter)`` phases.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.bits import BitString, BitWriter, uint_width
from ..clique.graph import INF
from ..clique.node import Node
from ..clique.primitives import all_broadcast

__all__ = ["bellman_ford_sssp", "dist_width_for"]


def dist_width_for(n: int, max_weight: int) -> int:
    """Bit width sufficient for any finite distance plus an INF code."""
    return uint_width(max(1, (n - 1) * max_weight) + 1)


def bellman_ford_sssp(
    node: Node,
) -> Generator[None, None, np.ndarray]:
    """SSSP from ``node.aux['source']`` with ``node.aux['max_weight']``.

    ``node.input`` is the weighted incidence row (INF = no edge).
    Returns the full distance vector (INF for unreachable), identical at
    every node.
    """
    n = node.n
    source = int(node.aux["source"])
    max_weight = int(node.aux["max_weight"])
    width = dist_width_for(n, max_weight)
    sentinel = (1 << width) - 1

    row = np.asarray(node.input, dtype=np.int64)
    my_dist = 0 if node.id == source else INF
    known = np.full(n, INF, dtype=np.int64)

    for _phase in range(n):
        code = sentinel if my_dist >= INF else int(my_dist)
        payload = BitWriter().write_uint(code, width).finish()
        payloads = yield from all_broadcast(node, payload)
        changed = False
        for u in range(n):
            c = payloads[u].value
            d = INF if c == sentinel else c
            known[u] = d
            if u != node.id and row[u] < INF and d < INF:
                cand = d + int(row[u])
                if cand < my_dist:
                    my_dist = cand
                    changed = True
        # Convergence vote: stop when no node improved this phase.
        node.send_to_all(BitString(1 if changed else 0, 1))
        yield
        anyone_changed = changed or any(
            m.value == 1 for m in node.inbox.values()
        )
        if not anyone_changed:
            break

    known[node.id] = my_dist
    return known
