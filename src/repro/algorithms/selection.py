"""Order statistics via distributed sorting.

Selection (k-th smallest of the union of all nodes' keys) drops out of
the sorting primitive: after :func:`~repro.clique.sorting.distributed_sort`
node ``i`` holds the ranks ``[i*q, (i+1)*q)``, so the owner of the target
rank announces the answer — sorting cost plus two O(1)-round collectives.
This is the classic routing-and-sorting application Lenzen's paper [43]
(which the congested clique literature builds on) motivates.
"""

from __future__ import annotations

from typing import Generator

from ..clique.bits import BitReader, BitWriter
from ..clique.errors import ProtocolViolation
from ..clique.node import Node
from ..clique.primitives import all_broadcast, all_gather_uint
from ..clique.sorting import distributed_sort

__all__ = ["distributed_select", "distributed_median"]


def distributed_select(
    node: Node,
    keys: list[int],
    key_width: int,
    rank: int,
    scheme: str = "lenzen",
) -> Generator[None, None, int]:
    """The global ``rank``-th smallest key (0-based) of the union of all
    nodes' keys; returned at every node.

    Raises :class:`ProtocolViolation` if ``rank`` is out of range (all
    nodes detect this consistently from the gathered sizes).
    """
    mine = yield from distributed_sort(node, keys, key_width, scheme=scheme)
    sizes = yield from all_gather_uint(node, len(mine), 32)
    total = sum(sizes)
    if not 0 <= rank < total:
        raise ProtocolViolation(
            f"rank {rank} out of range for {total} keys"
        )
    # distributed_sort slices are contiguous in node order
    offset = sum(sizes[: node.id])
    has_it = offset <= rank < offset + len(mine)
    w = BitWriter()
    w.write_bit(1 if has_it else 0)
    w.write_uint(mine[rank - offset] if has_it else 0, key_width)
    payloads = yield from all_broadcast(node, w.finish())
    for v in range(node.n):
        r = BitReader(payloads[v])
        if r.read_bit():
            return r.read_uint(key_width)
    raise ProtocolViolation("no node claimed the target rank")


def distributed_median(
    node: Node,
    keys: list[int],
    key_width: int,
    scheme: str = "lenzen",
) -> Generator[None, None, int]:
    """The lower median of the union of all nodes' keys."""
    sizes = yield from all_gather_uint(node, len(keys), 32)
    total = sum(sizes)
    if total == 0:
        raise ProtocolViolation("median of an empty key set")
    return (
        yield from distributed_select(
            node, keys, key_width, (total - 1) // 2, scheme=scheme
        )
    )
