"""Independent set problems.

``k``-IS detection reuses the Dolev et al. harness (``O(n^(1-2/k))``
rounds, the bound cited in Figure 1).  Maximum independent set and
minimum vertex cover sit at exponent 1 in Figure 1: the whole graph is
gathered in ``ceil(n/B) = O(n / log n)`` rounds and solved locally (the
two problems are complements of each other — Gallai).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..clique.node import Node
from .broadcast import gather_graph
from .subgraph import k_independent_set_detection

__all__ = ["k_independent_set", "max_independent_set", "min_vertex_cover"]

k_independent_set = k_independent_set_detection


def _local_max_is(adj: np.ndarray) -> tuple[int, ...]:
    """Exact maximum independent set by branch and bound on the
    complement-clique formulation (fine for the gathered-graph regime)."""
    n = adj.shape[0]
    best: list[int] = []
    order = sorted(range(n), key=lambda v: int(adj[v].sum()))

    def expand(chosen: list[int], candidates: list[int]) -> None:
        nonlocal best
        if len(chosen) + len(candidates) <= len(best):
            return
        if not candidates:
            if len(chosen) > len(best):
                best = list(chosen)
            return
        v = candidates[0]
        rest = candidates[1:]
        # branch 1: include v
        expand(chosen + [v], [u for u in rest if not adj[v, u]])
        # branch 2: exclude v
        expand(chosen, rest)

    expand([], order)
    return tuple(sorted(best))


def max_independent_set(
    node: Node,
) -> Generator[None, None, tuple[int, ...]]:
    """MaxIS by gathering (exponent 1 in Figure 1).  Returns the same
    maximum independent set at every node."""
    adj = yield from gather_graph(node)
    return _local_max_is(adj)


def min_vertex_cover(
    node: Node,
) -> Generator[None, None, tuple[int, ...]]:
    """MinVC = V minus MaxIS (Gallai); same gathering cost."""
    adj = yield from gather_graph(node)
    mis = set(_local_max_is(adj))
    return tuple(v for v in range(node.n) if v not in mis)
