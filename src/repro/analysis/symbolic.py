"""Symbolic cost model with exact engine cross-validation.

Every diff-catalog algorithm registers a :class:`CostModel`: closed-form
sympy expressions for its round count and message/bulk bit volume,
assembled from the *same metered primitives the engines charge* —
``all_broadcast`` chunking at the per-link budget ``B``, the sparse
32-bit length headers and ``agree_uint_max`` exchange of
:func:`repro.clique.routing.route`, the Lenzen charged rounds
``ceil(max_load / (B (n-1)))``, and the exact wire widths of
:mod:`repro.clique.bits`.  The contract is **exactness, not
asymptotics**: :func:`validate_symbolic` evaluates each expression at
swept ``n`` values and compares against measured
:class:`~repro.obs.RunMetrics` rounds / message bits / bulk bits with
zero tolerance (faults off), plus a ``fit_metric_exponent`` consistency
check between the measured and predicted series.

Expressions are written over canonical symbols (``n``, ``B``, ``k``,
``L``, ``f``, ``R``, ...) plus *instance profile* symbols (route flow
counts, maximum node loads, bulk payload totals).  A model's ``binder``
resolves every symbol to an exact integer for a concrete config by pure
arithmetic mirrors of the wire format — group partitions, cube blocks,
PSRS bucket flows — without executing a single simulated round, which is
what makes ``repro predict --n 1000000`` feasible: the closed forms
extrapolate to clique sizes no engine run could touch (the Lingas-style
``N^{o(1)}``-round regime).

Data-dependent entries (``bfs``, ``kvc``, ``sorting``) regenerate the
exact seeded instance below :data:`MIRROR_LIMIT` nodes (validation
regime) and switch to a documented typical instance above it
(extrapolation regime); see each model's ``assumes``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Iterable, Sequence

import numpy as np
import sympy
from sympy import Integer, Max, Min, Symbol, ceiling, log

from ..clique.bits import uint_width
from ..clique.errors import CliqueError, did_you_mean

__all__ = [
    "COST_MODELS",
    "CostModel",
    "CostPoint",
    "DEFAULT_VALIDATION_NS",
    "MIRROR_LIMIT",
    "SymbolicCheck",
    "SymbolicReport",
    "cost_model",
    "cost_model_names",
    "describe_model",
    "get_cost_model",
    "missing_cost_models",
    "predict_points",
    "validate_symbolic",
]

# ---------------------------------------------------------------------------
# Canonical symbols
# ---------------------------------------------------------------------------

#: Clique size and per-link bits-per-round budget (``B = 2 ceil(log2 n)``
#: for the catalog's ``bandwidth_multiplier=2`` entries).
N = Symbol("n", integer=True, positive=True)
B = Symbol("B", integer=True, positive=True)
#: Problem parameters: subset size ``k``, payload width ``L`` (Byzantine
#: value width), fault budget ``f``, fan-out round count ``R``.
K = Symbol("k", integer=True, positive=True)
L = Symbol("L", integer=True, positive=True)
F = Symbol("f", integer=True, nonnegative=True)
R = Symbol("R", integer=True, nonnegative=True)
#: The matrix-multiplication exponent of the paper's ``delta(ring MM) <=
#: 1 - 2/omega`` bound.  It appears in documented exponents only — the
#: executed cube algorithm (and therefore the exact cost model) does not
#: depend on it.
OMEGA = Symbol("omega", positive=True)

#: Instance-profile symbols, bound by each model's arithmetic mirror:
#: per-route cross-flow counts, maximum per-node payload loads (bits) and
#: total cross-flow payload bits (the bulk channel volume).
F1, LOAD1, BULK1 = (
    Symbol("F1", integer=True, nonnegative=True),
    Symbol("load1", integer=True, nonnegative=True),
    Symbol("bulk1", integer=True, nonnegative=True),
)
F2, LOAD2, BULK2 = (
    Symbol("F2", integer=True, nonnegative=True),
    Symbol("load2", integer=True, nonnegative=True),
    Symbol("bulk2", integer=True, nonnegative=True),
)
#: BFS instance profile: source eccentricity and reachable-node count.
ECC = Symbol("ecc", integer=True, nonnegative=True)
REACH = Symbol("reach", integer=True, nonnegative=True)
#: k-VC branch indicator: 1 when the Buss kernel phase runs, 0 when the
#: preprocessing round already rejected (``|C| > k``).
MAIN = Symbol("main", integer=True, nonnegative=True)
#: Exact wire widths bound from config constants (``uint_width`` of
#: ``max_entry`` / distance bounds / ``key_width``).
W_IN = Symbol("w_in", integer=True, positive=True)
W_ACC = Symbol("w_acc", integer=True, positive=True)
W_KEY = Symbol("w_key", integer=True, positive=True)

#: ``repro.clique.routing._LEN_WIDTH``: the per-pair flow-length header.
HEADER = Integer(32)

#: ``uint_width(n - 1)`` — node-id width — as an exact symbolic form
#: (``max(1, ceil(log2 n))`` agrees with ``(n-1).bit_length()`` for all
#: ``n >= 1``).
VW = Max(1, ceiling(log(N, 2)))
#: Squaring count of the APSP/closure reduction:
#: ``max(1, ceil(log2 max(2, n)))``.
SQUARINGS = Max(1, ceiling(log(N, 2)))

#: Above this clique size the data-dependent binders (bfs/kvc/sorting)
#: stop regenerating the exact seeded instance and use the documented
#: typical instance instead; validation always runs far below it.
MIRROR_LIMIT = 4096


def _bc_rounds(width):
    """Rounds of ``all_broadcast`` for a ``width``-bit payload."""
    return ceiling(width / B)


def _bc_bits(width):
    """Message bits of ``all_broadcast``: every node unicasts ``width``
    bits to each of the other ``n - 1`` nodes (``send_to_all`` is metered
    as ``n - 1`` unicasts)."""
    return N * (N - 1) * width


def _route_rounds(load):
    """Rounds of one ``route(scheme="lenzen")`` call: the sparse 32-bit
    header exchange, the 32-bit ``agree_uint_max`` on the load, and the
    charged Lenzen rounds ``ceil(max_load / (B (n-1)))``."""
    return 2 * _bc_rounds(HEADER) + ceiling(load / (B * (N - 1)))


def _route_msg_bits(flows):
    """Message bits of one route call: one 32-bit header per cross flow
    plus the all-broadcast load agreement (payloads ride the bulk
    channel and are accounted separately)."""
    return HEADER * flows + _bc_bits(HEADER)


def _witness_width(kk):
    """``agree_on_witness`` payload: a found bit plus ``k`` node ids."""
    return 1 + kk * VW


# ---------------------------------------------------------------------------
# Cost model registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostPoint:
    """One exact evaluation of a cost model (or one measured run)."""

    n: int
    rounds: int
    message_bits: int
    bulk_bits: int

    @property
    def total_bits(self) -> int:
        return self.message_bits + self.bulk_bits

    def to_dict(self) -> dict:
        """JSON-able mapping of the point (all values exact ints)."""
        return {
            "n": self.n,
            "rounds": self.rounds,
            "message_bits": self.message_bits,
            "bulk_bits": self.bulk_bits,
            "total_bits": self.total_bits,
        }


@dataclass(frozen=True)
class CostModel:
    """Closed-form cost of one catalog algorithm.

    ``rounds`` / ``message_bits`` / ``bulk_bits`` are sympy expressions
    over the canonical and profile symbols above; ``binder`` maps a
    config dict (catalog-builder keys: ``n``, ``seed``, ``k``, ...) to
    an exact ``{Symbol: int}`` substitution covering every free symbol.
    ``domain`` pins config keys the closed form requires (e.g. the
    ``routing`` entry is only modelable under ``scheme="lenzen"`` — the
    relay scheme's round count is emergent).  ``assumes`` documents the
    modelled regime; ``exponent`` the paper-facing asymptotic (the one
    place :data:`OMEGA` may appear).
    """

    name: str
    rounds: sympy.Expr
    message_bits: sympy.Expr
    bulk_bits: sympy.Expr
    binder: Callable[[dict], dict]
    default_n: int = 9
    domain: dict = field(default_factory=dict)
    assumes: str = ""
    exponent: str = ""

    @property
    def total_bits(self) -> sympy.Expr:
        return self.message_bits + self.bulk_bits

    def config(self, config: dict | None = None) -> dict:
        """The effective config: caller keys, domain pins winning."""
        cfg = dict(config or {})
        cfg.update(self.domain)
        cfg.setdefault("n", self.default_n)
        cfg["algorithm"] = self.name
        return cfg

    def evaluate(self, config: dict | None = None) -> CostPoint:
        """Evaluate the closed forms exactly at one config point."""
        cfg = self.config(config)
        binding = self.binder(cfg)
        return CostPoint(
            n=int(cfg["n"]),
            rounds=_exact_int(self.rounds, binding, f"{self.name}.rounds"),
            message_bits=_exact_int(
                self.message_bits, binding, f"{self.name}.message_bits"
            ),
            bulk_bits=_exact_int(self.bulk_bits, binding, f"{self.name}.bulk_bits"),
        )


def _exact_int(expr, binding: dict, label: str) -> int:
    """Substitute and reduce to an exact integer (or raise)."""
    value = sympy.sympify(expr).subs(binding)
    if not value.is_Integer:
        value = sympy.simplify(value)
    if not value.is_Integer:
        raise CliqueError(
            f"symbolic {label} did not reduce to an exact integer: {value!r}"
        )
    return int(value)


#: Registry: algorithm name -> :class:`CostModel` (the analytic twin the
#: ``@algorithm`` catalog declares via its ``cost=`` key).
COST_MODELS: dict[str, CostModel] = {}


def cost_model(model: CostModel) -> CostModel:
    """Register one cost model (names must be unique)."""
    if model.name in COST_MODELS:
        raise CliqueError(f"cost model {model.name!r} already registered")
    COST_MODELS[model.name] = model
    return model


def cost_model_names() -> list[str]:
    """Sorted names of every registered cost model."""
    return sorted(COST_MODELS)


def get_cost_model(name: str) -> CostModel:
    """Look up a cost model, with the shared did-you-mean error style."""
    try:
        return COST_MODELS[name]
    except KeyError:
        known = cost_model_names()
        hint = did_you_mean(str(name), known)
        raise CliqueError(
            f"unknown cost model {name!r}; known: {known}{hint}"
        ) from None


def missing_cost_models() -> list[str]:
    """Catalog entries whose declared analytic twin is not registered.

    The ``@algorithm`` decorator records each entry's declared cost-model
    name in ``repro.engine.diff.COST_DECLARATIONS``; this returns the
    declarations without a matching :class:`CostModel` — the set the
    coverage test and the CI symbolic-gate require to be empty.
    """
    from ..engine.diff import COST_DECLARATIONS

    return sorted(
        model_name
        for model_name in set(COST_DECLARATIONS.values())
        if model_name not in COST_MODELS
    )


# ---------------------------------------------------------------------------
# Shared binder arithmetic (instance profile mirrors)
# ---------------------------------------------------------------------------


def _base_binding(cfg: dict) -> dict:
    from ..clique.network import default_bandwidth

    n_val = int(cfg["n"])
    b_val = int(
        cfg.get("bandwidth")
        or default_bandwidth(n_val, int(cfg.get("bandwidth_multiplier", 2)))
    )
    return {N: Integer(n_val), B: Integer(b_val)}


def _block_lengths(n: int, g: int) -> np.ndarray:
    """Sizes of the ``group_partition(n, g)`` groups (possibly 0-tailed)."""
    size = math.ceil(n / g)
    idx = np.arange(g)
    return np.maximum(0, np.minimum((idx + 1) * size, n) - idx * size).astype(
        np.int64
    )


def _label_profile(n: int, kk: int, per_dest_payload: bool) -> tuple[int, int, int]:
    """Route profile of the Dolev–Lenzen–Peled label scheme.

    Node ``u`` sends a flow to every ``v`` with ``group(u) in label(v)``
    (``u`` is then a member of ``S_v``).  ``per_dest_payload=False`` is
    the k-dominating-set wire format (a full ``n``-bit incidence row per
    flow); ``True`` is the subgraph/k-IS format (``|S_v|`` bits — the
    row restricted to ``S_v``).  Returns ``(cross_flows, max_load,
    bulk_bits)`` exactly as ``route(scheme="lenzen")`` meters them
    (self-flows excluded from every figure).
    """
    from ..algorithms.common import int_ceil_root

    g = int_ceil_root(n, kk)
    lengths = _block_lengths(n, g)
    size = math.ceil(n / g)
    v = np.arange(n, dtype=np.int64)
    x = v % (g**kk)
    digits = np.stack([(x // g**i) % g for i in range(kk)])  # (k, n)
    # Distinct-group membership per node: sort the k digits column-wise
    # and keep first occurrences.
    sorted_digits = np.sort(digits, axis=0)
    first = np.ones_like(sorted_digits, dtype=bool)
    first[1:] = sorted_digits[1:] != sorted_digits[:-1]
    # cnt[j] = #{v : group j appears in label(v)}
    cnt = np.bincount(sorted_digits[first], minlength=g)
    # |S_v| = sum of distinct labelled group sizes
    s_size = np.where(first, lengths[sorted_digits], 0).sum(axis=0)
    group_v = np.minimum(v // size, g - 1)
    member = (digits == group_v).any(axis=0)  # v in S_v
    senders = s_size - member  # cross senders into v

    if per_dest_payload:
        payload = s_size  # bits per flow into v
        # sv_sum[j] = sum of |S_v| over nodes v whose label mentions j
        sv_sum = np.bincount(
            sorted_digits[first],
            weights=np.broadcast_to(s_size, (kk, n))[first].astype(np.float64),
            minlength=g,
        ).astype(np.int64)
        out_bits = sv_sum[group_v] - member * s_size
        in_bits = payload * senders
        flows = int(senders[payload > 0].sum())
        bulk = int(in_bits.sum())
    else:
        out_bits = n * (cnt[group_v] - member)
        in_bits = n * senders
        flows = int(senders.sum())
        bulk = n * flows
    load = int(max(out_bits.max(), in_bits.max())) if n else 0
    return flows, load, bulk


def _cube_profile(n: int, in_w: int, acc_w: int) -> tuple[int, int, int, int, int, int]:
    """Route profiles of the cube-partitioned matrix multiplication.

    Phase 1 ships ``A``/``B`` blocks to the ``g^3`` cube nodes; phase 3
    ships partial ``C`` rows to their owners.  Returns ``(F1, load1,
    bulk1, F3, load3, bulk3)`` exactly as ``route`` meters them:
    zero-length flows skipped, self-flows excluded from flow counts,
    loads and bulk bits.
    """
    from ..algorithms.common import int_ceil_root

    g = int_ceil_root(n, 3)
    size = math.ceil(n / g)
    lengths = _block_lengths(n, g)
    cube = g**3
    t = np.arange(cube, dtype=np.int64)
    a, b_, c = t // (g * g), (t // g) % g, t % g
    blk_t = np.minimum(t // size, g - 1)
    nz = int(np.count_nonzero(lengths))

    # ---- Phase 1: node u (block m) -> cube node t=(a,b,c), payload
    # ((a==m)*len[b] + (b==m)*len[c]) * in_w.
    self_pay1 = (
        (a == blk_t) * lengths[b_] + (b_ == blk_t) * lengths[c]
    ) * in_w  # flow t -> t, for t < g^3
    out_all = 2 * g * n * in_w  # every node's total outgoing payload
    min_self1 = int(self_pay1.min()) if n == cube else 0
    max_out1 = out_all - min_self1
    in1 = (lengths[a] * lengths[b_] + lengths[b_] * lengths[c]) * in_w
    max_in1 = int((in1 - self_pay1).max()) if cube else 0
    # Flows (payload > 0) per source block m: a==m with len[b]>0, or
    # b==m with len[c]>0; inclusion-exclusion over the g^2 triples each.
    per_block = 2 * g * nz - (lengths > 0) * nz
    flows1 = int((lengths * per_block).sum()) - int(np.count_nonzero(self_pay1))
    bulk1 = n * out_all - int(self_pay1.sum())
    load1 = max(max_out1, max_in1)

    # ---- Phase 3: cube node t=(a,b,c) -> each row owner i in B_a,
    # payload len[c] * acc_w (skipped when len[c]==0).
    self_pay3 = (blk_t == a) * lengths[c] * acc_w
    out3 = lengths[a] * lengths[c] * acc_w - self_pay3
    max_out3 = int(out3.max()) if cube else 0
    in3_all = g * n * acc_w  # every node receives one flow per (b, c)
    min_self3 = int(self_pay3.min()) if n == cube else 0
    max_in3 = in3_all - min_self3
    flows3 = int((lengths[a] * (lengths[c] > 0)).sum()) - int(
        np.count_nonzero(self_pay3)
    )
    bulk3 = acc_w * g * n * n - int(self_pay3.sum())
    load3 = max(max_out3, max_in3)
    return flows1, load1, bulk1, flows3, load3, bulk3


def _route_stats(
    flow_src: np.ndarray, flow_dst: np.ndarray, flow_bits: np.ndarray, n: int
) -> tuple[int, int, int]:
    """``(cross_flows, max_load, bulk_bits)`` of an explicit flow list."""
    cross = (flow_src != flow_dst) & (flow_bits > 0)
    src, dst, bits = flow_src[cross], flow_dst[cross], flow_bits[cross]
    out = np.bincount(src, weights=bits.astype(np.float64), minlength=n)
    inc = np.bincount(dst, weights=bits.astype(np.float64), minlength=n)
    load = int(max(out.max(), inc.max())) if n else 0
    return int(cross.sum()), load, int(bits.sum())


def _sorting_profile(cfg: dict) -> tuple[int, int, int, int, int, int]:
    """Route profiles of PSRS sorting: the bucket route and the rank
    route, replayed exactly from the seeded key multiset.

    Below :data:`MIRROR_LIMIT` the keys are drawn with the catalog
    builder's exact per-node ``rng.integers`` call sequence; above it a
    single vectorised draw from the same seed is used (statistically
    identical, stream layout differs — the extrapolation regime).
    """
    from ..problems import generators as gen

    n = int(cfg["n"])
    kw = int(cfg.get("key_width", 10))
    kpn = int(cfg.get("keys_per_node", 3))
    rng = gen.rng_from(int(cfg.get("seed", 0)))
    if n <= MIRROR_LIMIT:
        keys = np.array(
            [rng.integers(0, 1 << kw, size=kpn) for _ in range(n)],
            dtype=np.int64,
        )
    else:
        keys = rng.integers(0, 1 << kw, size=(n, kpn)).astype(np.int64)
    keys.sort(axis=1)

    # Step 2 samples: node v publishes local[min(i*step, kpn-1)] for
    # i in range(n) — a weighted multiset over its kpn local keys.
    step = max(1, kpn // n)
    weights = np.zeros(kpn, dtype=np.int64)
    t_full = min(n, math.ceil((kpn - 1) / step) if kpn > 1 else 0)
    for i in range(t_full):
        weights[min(i * step, kpn - 1)] += 1
    weights[kpn - 1] += n - t_full
    vals = keys[:, weights > 0].ravel()
    wts = np.broadcast_to(weights[weights > 0], (n, int((weights > 0).sum())))
    wts = wts.ravel()
    order = np.argsort(vals, kind="stable")
    vals, wts = vals[order], wts[order]
    cum = np.cumsum(wts)
    # splitters[j] = the ((j+1)*n - 1)-th order statistic (0-indexed)
    targets = (np.arange(1, n) * n) - 1
    splitters = vals[np.searchsorted(cum, targets, side="right")]

    # Step 3: bucket route.
    flat = keys.ravel()
    owners = np.searchsorted(splitters, flat, side="left").astype(np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), kpn)
    pair = src * n + owners
    uniq, counts = np.unique(pair, return_counts=True)
    f_src, f_dst = uniq // n, uniq % n
    f_bits = 32 + counts.astype(np.int64) * kw
    flows1, load1, bulk1 = _route_stats(f_src, f_dst, f_bits, n)

    # Step 4: sizes all-gather, then the rank route.
    sizes = np.bincount(owners, minlength=n)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    total = int(sizes.sum())
    quota = -(-total // n)
    s2_src, s2_dst, s2_bits = [], [], []
    for j in range(n):
        size_j = int(sizes[j])
        if size_j == 0:
            continue
        off = int(offsets[j])
        first_owner = min(off // quota, n - 1) if quota > 0 else 0
        last_owner = min((off + size_j - 1) // quota, n - 1) if quota > 0 else 0
        for owner in range(first_owner, last_owner + 1):
            lo = off if owner == first_owner else owner * quota
            hi = (
                off + size_j
                if owner == last_owner or owner == n - 1
                else (owner + 1) * quota
            )
            hi = min(hi, off + size_j)
            count = hi - lo
            if count <= 0:
                continue
            s2_src.append(j)
            s2_dst.append(owner)
            s2_bits.append(32 + count * kw)
    flows2, load2, bulk2 = _route_stats(
        np.asarray(s2_src, dtype=np.int64),
        np.asarray(s2_dst, dtype=np.int64),
        np.asarray(s2_bits, dtype=np.int64),
        n,
    )
    return flows1, load1, bulk1, flows2, load2, bulk2


def _routing_profile(cfg: dict) -> tuple[int, int, int]:
    """Route profile of the fixed pseudo-random ``routing`` flows."""
    n = int(cfg["n"])
    src = np.arange(n, dtype=np.int64)
    d1, d2 = (src + 1) % n, (src + 5) % n
    len1 = 24 + 8 * ((src + 2 * d1) % 5)
    len2 = 24 + 8 * ((src + 2 * d2) % 5)
    keep2 = d2 != d1  # duplicate destination collapses to one flow
    flow_src = np.concatenate([src, src[keep2]])
    flow_dst = np.concatenate([d1, d2[keep2]])
    flow_bits = np.concatenate([len1, len2[keep2]])
    return _route_stats(flow_src, flow_dst, flow_bits, n)


def _bfs_profile(cfg: dict) -> tuple[int, int]:
    """``(ecc, reach)`` of the seeded BFS instance (typical instance —
    diameter 2, fully reachable — beyond :data:`MIRROR_LIMIT`)."""
    n = int(cfg["n"])
    if n > MIRROR_LIMIT:
        return 2, n
    from ..problems import generators as gen

    adj = gen.random_graph(
        n, float(cfg.get("p", 0.3)), int(cfg.get("seed", 0))
    ).adjacency.astype(bool)
    source = int(cfg.get("source", 0))
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    layer = 0
    while frontier.any():
        nxt = adj[frontier].any(axis=0) & (dist < 0)
        layer += 1
        dist[nxt] = layer
        frontier = nxt
    reach = int((dist >= 0).sum())
    ecc = int(dist.max()) if reach else 0
    return ecc, reach


def _kvc_main(cfg: dict) -> int:
    """1 when the Buss kernel phase runs, 0 when preprocessing rejects
    (beyond :data:`MIRROR_LIMIT`: a dense seeded instance rejects)."""
    n = int(cfg["n"])
    kk = int(cfg.get("k", 3))
    if n > MIRROR_LIMIT:
        return 0
    from ..problems import generators as gen

    adj = gen.random_graph(
        n, float(cfg.get("p", 0.3)), int(cfg.get("seed", 0))
    ).adjacency.astype(bool)
    high = int((adj.sum(axis=1) >= kk + 1).sum())
    return 0 if high > kk else 1


# ---------------------------------------------------------------------------
# The catalog's cost models
# ---------------------------------------------------------------------------


def _bind_broadcast(cfg: dict) -> dict:
    return _base_binding(cfg)


cost_model(
    CostModel(
        name="broadcast",
        rounds=_bc_rounds(N),
        message_bits=N * N * (N - 1),
        bulk_bits=Integer(0),
        binder=_bind_broadcast,
        default_n=9,
        assumes="every node all-broadcasts its n-bit incidence row",
        exponent="Theta(n / log n) rounds — the trivial upper bound",
    )
)


def _bind_bfs(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    ecc, reach = _bfs_profile(cfg)
    binding[ECC] = Integer(ecc)
    binding[REACH] = Integer(reach)
    return binding


cost_model(
    CostModel(
        name="bfs",
        rounds=ECC + 2,
        message_bits=REACH * (N - 1),
        bulk_bits=Integer(0),
        binder=_bind_bfs,
        default_n=9,
        assumes=(
            "each reachable node announces once (1 bit to all); beyond "
            f"n={MIRROR_LIMIT} the typical G(n,p) instance is assumed "
            "(ecc=2, all nodes reachable)"
        ),
        exponent="O(diameter) rounds",
    )
)


_KVC_WIDTH = Max(1, ceiling(log(K + 1, 2))) + K * VW  # count + k node ids

cost_model(
    CostModel(
        name="kvc",
        rounds=1 + MAIN * _bc_rounds(_KVC_WIDTH),
        message_bits=N * (N - 1) * (1 + MAIN * _KVC_WIDTH),
        bulk_bits=Integer(0),
        binder=lambda cfg: {
            **_base_binding(cfg),
            K: Integer(int(cfg.get("k", 3))),
            MAIN: Integer(_kvc_main(cfg)),
        },
        default_n=9,
        assumes=(
            "Buss kernelisation: 1 preprocessing round, then (unless "
            "|C| > k rejects) one all-broadcast of count + k node ids; "
            f"beyond n={MIRROR_LIMIT} the dense seeded instance rejects "
            "in round 1"
        ),
        exponent="O(k) rounds — delta(k-VC) = 0 (Theorem 11)",
    )
)


def _bind_kds(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    kk = int(cfg.get("k", 2))
    flows, load, bulk = _label_profile(int(cfg["n"]), kk, False)
    binding.update(
        {
            K: Integer(kk),
            F1: Integer(flows),
            LOAD1: Integer(load),
            BULK1: Integer(bulk),
        }
    )
    return binding


cost_model(
    CostModel(
        name="kds",
        rounds=_route_rounds(LOAD1) + _bc_rounds(_witness_width(K)),
        message_bits=_route_msg_bits(F1) + _bc_bits(_witness_width(K)),
        bulk_bits=BULK1,
        binder=_bind_kds,
        default_n=9,
        assumes=(
            "label-scheme route of full n-bit incidence rows into every "
            "S_v, then the decide-and-agree witness broadcast"
        ),
        exponent="O(k n^(1-1/k)) rounds (Theorem 9)",
    )
)


def _bind_label_subgraph(kk_default: int):
    def bind(cfg: dict) -> dict:
        binding = _base_binding(cfg)
        kk = kk_default
        flows, load, bulk = _label_profile(int(cfg["n"]), kk, True)
        binding.update(
            {
                K: Integer(kk),
                F1: Integer(flows),
                LOAD1: Integer(load),
                BULK1: Integer(bulk),
            }
        )
        return binding

    return bind


_SUBGRAPH_ASSUMES = (
    "label-scheme route of |S_v|-bit restricted rows into every S_v, "
    "then the decide-and-agree witness broadcast (k pinned to 3: the "
    "catalog entry detects triangles / 3-IS)"
)

cost_model(
    CostModel(
        name="subgraph",
        rounds=_route_rounds(LOAD1) + _bc_rounds(_witness_width(K)),
        message_bits=_route_msg_bits(F1) + _bc_bits(_witness_width(K)),
        bulk_bits=BULK1,
        binder=_bind_label_subgraph(3),
        default_n=9,
        assumes=_SUBGRAPH_ASSUMES,
        exponent="O(k^2 n^(1-2/k)) rounds — n^(1/3) for triangles",
    )
)

cost_model(
    CostModel(
        name="kis",
        rounds=_route_rounds(LOAD1) + _bc_rounds(_witness_width(K)),
        message_bits=_route_msg_bits(F1) + _bc_bits(_witness_width(K)),
        bulk_bits=BULK1,
        binder=_bind_label_subgraph(3),
        default_n=9,
        assumes=_SUBGRAPH_ASSUMES,
        exponent="O(n^(1-2/k)) rounds (Dolev et al., Figure 1)",
    )
)


_MATMUL_ROUNDS = (
    2 * (2 * _bc_rounds(HEADER))
    + ceiling(LOAD1 / (B * (N - 1)))
    + ceiling(LOAD2 / (B * (N - 1)))
)
_MATMUL_MSG = HEADER * (F1 + F2) + 2 * _bc_bits(HEADER)
_MATMUL_BULK = BULK1 + BULK2


def _bind_matmul(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    n_val = int(cfg["n"])
    max_entry = int(cfg.get("max_entry", 8))
    in_w = uint_width(max_entry)
    acc_w = 2 * uint_width(max_entry) + uint_width(n_val)
    f1, l1, k1, f3, l3, k3 = _cube_profile(n_val, in_w, acc_w)
    binding.update(
        {
            W_IN: Integer(in_w),
            W_ACC: Integer(acc_w),
            F1: Integer(f1),
            LOAD1: Integer(l1),
            BULK1: Integer(k1),
            F2: Integer(f3),
            LOAD2: Integer(l3),
            BULK2: Integer(k3),
        }
    )
    return binding


cost_model(
    CostModel(
        name="matmul",
        rounds=_MATMUL_ROUNDS,
        message_bits=_MATMUL_MSG,
        bulk_bits=_MATMUL_BULK,
        binder=_bind_matmul,
        default_n=8,
        assumes=(
            "cube-partitioned RING multiply: two lenzen routes (input "
            "scatter, partial-row aggregation) with wire widths "
            "w_in = width(max_entry), w_acc = 2 width(max_entry) + "
            "width(n)"
        ),
        exponent=(
            "O(n^(1/3)) rounds (semiring); delta(ring MM) <= 1 - 2/omega "
            "via fast rectangular MM — the cube schedule is executed"
        ),
    )
)


def _bind_apsp(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    n_val = int(cfg["n"])
    max_weight = int(cfg.get("max_weight", 15))
    bound = max(1, (n_val - 1) * max_weight)
    in_w = uint_width(bound) + 1  # +1 for the INF sentinel
    acc_w = uint_width(2 * max(1, bound)) + 1
    f1, l1, k1, f3, l3, k3 = _cube_profile(n_val, in_w, acc_w)
    binding.update(
        {
            W_IN: Integer(in_w),
            W_ACC: Integer(acc_w),
            F1: Integer(f1),
            LOAD1: Integer(l1),
            BULK1: Integer(k1),
            F2: Integer(f3),
            LOAD2: Integer(l3),
            BULK2: Integer(k3),
        }
    )
    return binding


cost_model(
    CostModel(
        name="apsp",
        rounds=SQUARINGS * _MATMUL_ROUNDS,
        message_bits=SQUARINGS * _MATMUL_MSG,
        bulk_bits=SQUARINGS * _MATMUL_BULK,
        binder=_bind_apsp,
        default_n=8,
        assumes=(
            "max(1, ceil(log2 n)) (min,+) squarings of the cube multiply "
            "with distance bound (n-1) max_weight; every squaring has the "
            "identical rigid flow structure"
        ),
        exponent="O(n^(1/3) log n) rounds (Figure 1: (min,+) MM -> APSP)",
    )
)


def _bind_sorting(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    kw = int(cfg.get("key_width", 10))
    f1, l1, k1, f2, l2, k2 = _sorting_profile(cfg)
    binding.update(
        {
            W_KEY: Integer(kw),
            F1: Integer(f1),
            LOAD1: Integer(l1),
            BULK1: Integer(k1),
            F2: Integer(f2),
            LOAD2: Integer(l2),
            BULK2: Integer(k2),
        }
    )
    return binding


cost_model(
    CostModel(
        name="sorting",
        rounds=_bc_rounds(N * W_KEY)
        + _route_rounds(LOAD1)
        + _bc_rounds(HEADER)
        + _route_rounds(LOAD2),
        message_bits=_bc_bits(N * W_KEY)
        + _route_msg_bits(F1)
        + _bc_bits(HEADER)
        + _route_msg_bits(F2),
        bulk_bits=BULK1 + BULK2,
        binder=_bind_sorting,
        default_n=8,
        assumes=(
            "PSRS: sample all-broadcast (n key_width bits), bucket route, "
            "32-bit size all-gather, rank route; the seeded key multiset "
            f"is replayed exactly below n={MIRROR_LIMIT} and drawn "
            "vectorised from the same seed above"
        ),
        exponent="O(n) sample rounds + O(load/(nB) + 1) routing (Lenzen)",
    )
)


cost_model(
    CostModel(
        name="fanout",
        rounds=R,
        message_bits=R * N * (N - 1) * Min(B, 48),
        bulk_bits=Integer(0),
        binder=lambda cfg: {
            **_base_binding(cfg),
            R: Integer(int(cfg.get("rounds", 3))),
        },
        default_n=8,
        assumes="R rounds of full-width (min(B, 48)-bit) all-broadcast",
        exponent="Theta(R) rounds",
    )
)


cost_model(
    CostModel(
        name="fanout_work",
        rounds=R,
        message_bits=R * N * Min(8, N - 1) * Min(B, 48),
        bulk_bits=Integer(0),
        binder=lambda cfg: {
            **_base_binding(cfg),
            R: Integer(int(cfg.get("rounds", 3))),
        },
        default_n=8,
        assumes=(
            "R rounds of min(B, 48)-bit ring digests to the min(8, N-1) "
            "next neighbours; lane mixing is local compute and free on "
            "the wire"
        ),
        exponent="Theta(R) rounds",
    )
)


def _bind_routing(cfg: dict) -> dict:
    binding = _base_binding(cfg)
    flows, load, bulk = _routing_profile(cfg)
    binding.update({F1: Integer(flows), LOAD1: Integer(load), BULK1: Integer(bulk)})
    return binding


cost_model(
    CostModel(
        name="routing",
        rounds=_route_rounds(LOAD1),
        message_bits=_route_msg_bits(F1),
        bulk_bits=BULK1,
        binder=_bind_routing,
        default_n=8,
        domain={"scheme": "lenzen"},
        assumes=(
            "pinned to scheme=lenzen (the relay scheme's store-and-"
            "forward round count is emergent, not closed-form); two "
            "fixed flows per node of 24..56 bits"
        ),
        exponent="O(max_load / (nB) + 1) rounds (Lenzen routing)",
    )
)


cost_model(
    CostModel(
        name="bracha",
        rounds=F + 5,
        message_bits=(N - 1) * (2 + L) * (2 * N + 1),
        bulk_bits=Integer(0),
        binder=lambda cfg: {
            **_base_binding(cfg),
            F: Integer(int(cfg.get("f", 1))),
            L: Integer(int(cfg.get("value_width", 8))),
        },
        default_n=9,
        assumes=(
            "honest (fault-free) run with floor((n+f)/2)+1 <= n: one "
            "INIT, a full ECHO round, and every node sends READY in the "
            "first cascade round"
        ),
        exponent="f + 5 rounds, Theta(n^2 L) bits",
    )
)


cost_model(
    CostModel(
        name="dolev",
        rounds=Integer(2),
        message_bits=N * (N - 1) * L,
        bulk_bits=Integer(0),
        binder=lambda cfg: {
            **_base_binding(cfg),
            L: Integer(int(cfg.get("value_width", 8))),
        },
        default_n=9,
        assumes=(
            "honest run: the broadcaster sends to all, every other node "
            "relays what it heard directly"
        ),
        exponent="2 rounds, Theta(n^2 L) bits",
    )
)


# ---------------------------------------------------------------------------
# Prediction and exact validation
# ---------------------------------------------------------------------------


def predict_points(
    name: str, ns: Sequence[int], config: dict | None = None
) -> list[CostPoint]:
    """Evaluate one model's closed forms at each clique size in ``ns``."""
    model = get_cost_model(name)
    return [model.evaluate({**(config or {}), "n": int(n)}) for n in ns]


def describe_model(name: str) -> dict:
    """JSON-able description of one model (expressions as text)."""
    model = get_cost_model(name)
    return {
        "algorithm": model.name,
        "rounds": sympy.sstr(model.rounds),
        "message_bits": sympy.sstr(model.message_bits),
        "bulk_bits": sympy.sstr(model.bulk_bits),
        "domain": dict(model.domain),
        "assumes": model.assumes,
        "exponent": model.exponent,
    }


#: Swept clique sizes of the exact gate: three sizes per algorithm, past
#: the first bandwidth step (``B = 2 ceil(log2 n)`` changes at 9 and 17).
DEFAULT_VALIDATION_NS = (8, 11, 16)

#: Quantities the fit-consistency check compares (measured vs predicted
#: series through the same ``fit_metric_exponent`` path).
_FIT_QUANTITIES = ("rounds", "total_bits")


@dataclass
class SymbolicCheck:
    """One (algorithm, n, engine) comparison: closed form vs metered."""

    algorithm: str
    n: int
    engine: str
    predicted: CostPoint
    measured: CostPoint
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class SymbolicReport:
    """The full exact-validation surface (the CI symbolic-gate payload)."""

    checks: list[SymbolicCheck] = field(default_factory=list)
    fits: list[dict] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and all(c.ok for c in self.checks)

    @property
    def mismatched(self) -> list[SymbolicCheck]:
        return [c for c in self.checks if not c.ok]

    def rows(self) -> list[dict]:
        """One table row per check (exact ints; fits appended)."""
        out = []
        for c in self.checks:
            out.append(
                {
                    "algorithm": c.algorithm,
                    "n": c.n,
                    "engine": c.engine,
                    "rounds": f"{c.predicted.rounds}/{c.measured.rounds}",
                    "message_bits": (
                        f"{c.predicted.message_bits}/{c.measured.message_bits}"
                    ),
                    "bulk_bits": f"{c.predicted.bulk_bits}/{c.measured.bulk_bits}",
                    "ok": c.ok,
                }
            )
        return out

    def table(self) -> str:
        """Plain-text report: per-check table plus the gate summary."""
        from .report import format_table

        lines = [
            format_table(
                self.rows(),
                title="symbolic cost model vs metered runs "
                "(predicted/measured)",
            )
        ]
        if self.fits:
            lines.append("")
            lines.append(
                format_table(self.fits, title="fit consistency (log-log slope)")
            )
        for err in self.errors:
            lines.append(f"ERROR: {err}")
        lines.append(self.summary())
        return "\n".join(lines)

    def markdown(self) -> str:
        """GitHub-flavoured table for ``$GITHUB_STEP_SUMMARY``."""
        lines = ["## Symbolic cost gate", ""]
        lines.append(
            "| algorithm | n | engine | rounds (pred/meas) | "
            "message bits | bulk bits | ok |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for r in self.rows():
            lines.append(
                f"| {r['algorithm']} | {r['n']} | {r['engine']} | "
                f"{r['rounds']} | {r['message_bits']} | {r['bulk_bits']} | "
                f"{'✅' if r['ok'] else '❌'} |"
            )
        if self.mismatched:
            lines.append("")
            lines.append("### Mismatches")
            for c in self.mismatched:
                for m in c.mismatches:
                    lines.append(f"- `{c.algorithm}` n={c.n} ({c.engine}): {m}")
        for err in self.errors:
            lines.append(f"- ERROR: {err}")
        lines.append("")
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line verdict: exact-check and failure counts."""
        bad = len(self.mismatched) + len(self.errors)
        if self.ok:
            return (
                f"symbolic gate: {len(self.checks)} checks exact, "
                f"{len(self.fits)} fit consistencies"
            )
        return f"symbolic gate: {bad} FAILURES in {len(self.checks)} checks"


def _measure(point: dict, engine) -> CostPoint:
    """Run one catalog point fault-free and read its metered costs."""
    from ..engine.diff import catalog_factory
    from ..engine.pool import run_spec
    from ..obs import MetricsCollector

    result, _ = run_spec(
        catalog_factory(dict(point)), engine, observer=MetricsCollector()
    )
    m = result.metrics
    return CostPoint(
        n=m.n,
        rounds=m.rounds,
        message_bits=m.message_bits,
        bulk_bits=m.bulk_bits,
    )


def _compare(predicted: CostPoint, measured: CostPoint) -> list[str]:
    issues = []
    for quantity in ("rounds", "message_bits", "bulk_bits", "total_bits"):
        a, b = getattr(predicted, quantity), getattr(measured, quantity)
        if a != b:
            issues.append(f"{quantity}: predicted={a} measured={b}")
    return issues


def validate_symbolic(
    names: Sequence[str] | None = None,
    ns: Sequence[int] = DEFAULT_VALIDATION_NS,
    config: dict | None = None,
    engines: Sequence = ("reference", "fast"),
) -> SymbolicReport:
    """The exact gate: closed forms vs metered runs, zero tolerance.

    For every named algorithm (default: the full catalog), every clique
    size in ``ns`` and every engine, the catalog point is executed
    fault-free with a metrics collector and the measured rounds /
    message bits / bulk bits / total bits must equal the model's
    evaluated closed forms **exactly**.  A ``fit_metric_exponent``
    consistency check then fits the measured and the predicted series
    (rounds and total bits) through the same estimator and requires
    identical slopes.  Unregistered declared models are reported as
    errors, so full-catalog runs enforce coverage.
    """
    from ..engine.diff import CATALOG
    from .fitting import fit_metric_exponent

    report = SymbolicReport()
    if names is None:
        names = sorted(CATALOG)
        for missing in missing_cost_models():
            report.errors.append(
                f"catalog algorithm {missing!r} declares no registered "
                f"cost model"
            )
    ns = tuple(int(n) for n in ns)
    for name in names:
        model = get_cost_model(name)
        measured_series: list[SimpleNamespace] = []
        predicted_series: list[SimpleNamespace] = []
        for n_val in ns:
            point = model.config({**(config or {}), "n": n_val})
            try:
                predicted = model.evaluate(point)
            except CliqueError as exc:
                report.errors.append(f"{name} n={n_val}: {exc}")
                continue
            for engine in engines:
                engine_name = getattr(engine, "name", None) or str(engine)
                measured = _measure(point, engine)
                report.checks.append(
                    SymbolicCheck(
                        algorithm=name,
                        n=n_val,
                        engine=engine_name,
                        predicted=predicted,
                        measured=measured,
                        mismatches=_compare(predicted, measured),
                    )
                )
                if engine is engines[0]:
                    measured_series.append(
                        SimpleNamespace(
                            n=n_val,
                            rounds=measured.rounds,
                            total_bits=measured.total_bits,
                        )
                    )
            predicted_series.append(
                SimpleNamespace(
                    n=n_val,
                    rounds=predicted.rounds,
                    total_bits=predicted.total_bits,
                )
            )
        if len({p.n for p in measured_series}) < 2:
            # A single swept size can't support an exponent fit; the
            # exact per-point comparison above is the whole gate then.
            continue
        for quantity in _FIT_QUANTITIES:
            try:
                fit_m = fit_metric_exponent(measured_series, quantity)
                fit_p = fit_metric_exponent(predicted_series, quantity)
            except ValueError as exc:
                report.errors.append(f"{name} fit({quantity}): {exc}")
                continue
            row = {
                "algorithm": name,
                "quantity": quantity,
                "measured_slope": round(fit_m.slope, 6),
                "predicted_slope": round(fit_p.slope, 6),
                "ok": fit_m.slope == fit_p.slope,
            }
            report.fits.append(row)
            if not row["ok"]:
                report.errors.append(
                    f"{name}: {quantity} exponent fit diverges "
                    f"(measured {fit_m.slope:.6f} vs predicted "
                    f"{fit_p.slope:.6f})"
                )
    return report


def collect_metrics(points: Iterable[dict], engine="reference"):
    """Metered :class:`~repro.obs.RunMetrics`-shaped cost points for a
    list of catalog config points (a convenience for notebooks/tests)."""
    return [_measure(dict(p), engine) for p in points]
