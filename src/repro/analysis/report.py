"""Plain-text table rendering shared by the benchmark harnesses.

Each experiment (E1-E14 in DESIGN.md) prints the rows it regenerates in
the same shape the paper reports them; this module keeps the formatting
in one place so the bench output is uniform and diffable.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "print_table", "magnitude"]

#: log10(2), for order-of-magnitude rendering of astronomic exact ints.
_LOG10_2 = 0.30102999566398114


def magnitude(x: int) -> str:
    """Render a (possibly astronomically large) nonnegative int compactly:
    exact below a million, ``~10^k`` above — without ever stringifying
    the full number (Python caps int->str conversions at 4300 digits)."""
    if x < 10**6:
        return str(x)
    return f"~10^{int(x.bit_length() * _LOG10_2)}"


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append(
            " | ".join(_fmt(r.get(c)).ljust(widths[c]) for c in cols)
        )
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Print :func:`format_table` output with a leading blank line."""
    print()
    print(format_table(rows, columns, title))
