"""Empirical exponent fitting.

The fine-grained framework of Section 7 measures problems by their round
exponent ``delta``; the benches estimate it from measured rounds at a few
sizes by least-squares in log-log space.  Because the simulator's round
counts include additive protocol overheads (length exchanges, headers)
that vanish only as ``n`` grows, fitted slopes are reported with the raw
data and should be read as indicative (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["ExponentFit", "fit_exponent", "fit_metric_exponent"]


@dataclass(frozen=True)
class ExponentFit:
    """Result of a log-log least squares fit ``rounds ~ c * n^slope``."""

    slope: float
    intercept: float
    r_squared: float
    ns: tuple[int, ...]
    rounds: tuple[int, ...]

    def predicted(self, n: int) -> float:
        """Round count the fit predicts at size ``n``."""
        return float(np.exp(self.intercept) * n**self.slope)


def fit_exponent(ns: Sequence[int], rounds: Sequence[int]) -> ExponentFit:
    """Fit ``log rounds = slope * log n + intercept``."""
    if len(ns) != len(rounds) or len(ns) < 2:
        raise ValueError("need at least two (n, rounds) points")
    if any(r <= 0 for r in rounds) or any(n <= 1 for n in ns):
        raise ValueError("need positive rounds and n > 1")
    x = np.log(np.asarray(ns, dtype=float))
    y = np.log(np.asarray(rounds, dtype=float))
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ExponentFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r2,
        ns=tuple(int(n) for n in ns),
        rounds=tuple(int(r) for r in rounds),
    )


def fit_metric_exponent(
    metrics: "Iterable",
    quantity: "str | Callable" = "routed_payload_load",
) -> ExponentFit:
    """Fit an exponent over :class:`repro.obs.RunMetrics` objects.

    ``quantity`` names a zero-argument :class:`RunMetrics` method or
    attribute (e.g. ``"routed_payload_load"``, ``"rounds"``,
    ``"message_bits"``) or is a callable ``metrics -> value``; the mean
    per clique size is fitted against ``n`` in log-log space.  This is
    the one path the experiments use to turn collected run metrics into
    a fitted exponent — replacing the hand-rolled per-benchmark load
    accounting.
    """
    if callable(quantity):
        measure = quantity
    else:

        def measure(m):
            attr = getattr(m, quantity)
            return attr() if callable(attr) else attr

    by_n: dict[int, list[float]] = {}
    for m in metrics:
        if m is None:
            continue
        by_n.setdefault(m.n, []).append(float(measure(m)))
    if len(by_n) < 2:
        raise ValueError(
            f"need metrics at >= 2 distinct clique sizes, got {sorted(by_n)}"
        )
    ns = sorted(by_n)
    means = [sum(by_n[n]) / len(by_n[n]) for n in ns]
    return fit_exponent(ns, [max(1, round(mean)) for mean in means])
