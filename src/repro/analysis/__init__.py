"""Measurement analysis: exponent fitting and report tables."""

from .fitting import ExponentFit, fit_exponent, fit_metric_exponent
from .report import format_table, print_table

__all__ = [
    "ExponentFit",
    "fit_exponent",
    "fit_metric_exponent",
    "format_table",
    "print_table",
]
