"""Measurement analysis: exponent fitting, report tables, and the
symbolic cost model.

The :mod:`.symbolic` names are re-exported lazily (PEP 562): importing
:mod:`repro.analysis` stays cheap, and sympy is only pulled in when a
symbolic name is actually touched (``repro predict``, the symbolic
gate, or the ``symbolic-validate`` bench workload).
"""

from .fitting import ExponentFit, fit_exponent, fit_metric_exponent
from .report import format_table, magnitude, print_table

__all__ = [
    "CostModel",
    "CostPoint",
    "ExponentFit",
    "SymbolicReport",
    "cost_model_names",
    "fit_exponent",
    "fit_metric_exponent",
    "format_table",
    "get_cost_model",
    "magnitude",
    "predict_points",
    "print_table",
    "validate_symbolic",
]

_SYMBOLIC_NAMES = frozenset(
    {
        "CostModel",
        "CostPoint",
        "SymbolicReport",
        "cost_model_names",
        "get_cost_model",
        "predict_points",
        "validate_symbolic",
    }
)


def __getattr__(name: str):
    if name in _SYMBOLIC_NAMES:
        from . import symbolic

        return getattr(symbolic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
