"""Delivery-time fault injection shared by every engine.

A :class:`FaultInjector` is the small piece of *per-run* state wrapped
around a pure :class:`~repro.faults.plan.FaultPlan`: the crash-window
memo (so a plan's O(round) ``node_down`` query stays O(1) amortised)
and the one-round carryover buffer for duplicated messages.  Engines
hold exactly one injector per run and consult it at two points:

* :meth:`inject_pending` — at the start of each round's delivery phase,
  before any real message lands, so a real same-link message wins the
  inbox slot over a stale duplicate;
* :meth:`deliver` — once per queued bandwidth-checked message; the
  return value (possibly corrupted payload, or ``None`` for a lost
  message) replaces the payload the engine would have delivered;
* :meth:`finish_round` — after the round's real deliveries, to land
  forged-identity messages buffered by the Byzantine tier into inbox
  slots genuine messages did not claim.  Engines without Byzantine
  plans may still call it unconditionally — it is a no-op then.

Because every decision ultimately comes from the plan's coordinate
hashes, two engines delivering the same logical messages in different
orders inject byte-identical faults — the property that lets
:mod:`repro.engine.diff` differentially test faulty runs across
backends.

Accounting contract (mirrors "the sender pays"): the engine charges the
sender's ``sent_bits`` and the run's ``total_message_bits`` for every
*queued* message, faulty or not — bandwidth is consumed at send time in
a synchronous network.  Receiver-side effects (``received_bits``, the
inbox slot) happen only for messages that actually arrive; duplicate
redeliveries charge the receiver only.  Every injected fault is
reported through ``Observer.on_fault``.
"""

from __future__ import annotations

import math
from typing import Any

from ..clique.bits import BitString
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-run fault state over a pure :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The fault schedule.
    n:
        Clique size (crash triggers are scanned per node per round).
    observer:
        The run's resolved observer (or ``None``); receives one
        ``on_fault`` event per injected fault and — when it wants
        per-message callbacks — an ``on_message`` event for each
        duplicate redelivery.
    """

    def __init__(self, plan: FaultPlan, n: int, observer: Any = None) -> None:
        self.plan = plan
        self.n = n
        self.observer = observer
        #: round -> {(src, dst): payload} duplicates awaiting redelivery.
        self._pending: dict[int, dict[tuple[int, int], BitString]] = {}
        #: node -> last round it is down (math.inf = never restarts).
        self._down_until: dict[int, float] = {}
        self._scanned_round = 0
        #: The fixed adversarial node set (empty when the tier is off).
        self.byzantine: frozenset[int] = plan.byzantine_nodes(n)
        self._behaviours = frozenset(plan.byzantine_behaviours())
        #: Forged messages buffered until :meth:`finish_round`, as
        #: ``(forged_src, dst, real_src, payload)`` tuples.
        self._forged: list[tuple[int, int, int, BitString]] = []
        #: (round, src) -> reachable set memo for limited broadcast.
        self._limit_memo: dict[tuple[int, int], frozenset[int]] = {}

    # -- crash schedule (memoised form of plan.node_down) ----------------

    def node_down(self, round: int, node: int) -> bool:
        """Whether ``node`` is fail-silent during ``round`` (memoised)."""
        plan = self.plan
        if plan.crash_rate == 0.0:
            return False
        while self._scanned_round < round:
            self._scanned_round += 1
            r = self._scanned_round
            for v in range(self.n):
                if plan.crashes_at(r, v):
                    until = (
                        math.inf
                        if plan.crash_restart_rounds is None
                        else r + plan.crash_restart_rounds - 1
                    )
                    if until > self._down_until.get(v, -1):
                        self._down_until[v] = until
        return self._down_until.get(node, -1) >= round

    # -- delivery hooks ---------------------------------------------------

    def inject_pending(
        self,
        round: int,
        inboxes: list[dict[int, BitString]],
        received_bits: list[int],
    ) -> None:
        """Redeliver duplicates scheduled for ``round``.

        Must run before the engine delivers the round's real messages:
        inbox slots are per ordered pair, and a genuine message must
        shadow a stale duplicate on the same link.  A duplicate aimed at
        a node that is down this round is silently lost (its fault event
        was already emitted when it was scheduled).
        """
        pending = self._pending.pop(round, None)
        if not pending:
            return
        obs = self.observer
        per_message = obs is not None and obs.wants_messages
        for (src, dst), payload in pending.items():
            if self.node_down(round, dst):
                continue
            plen = len(payload)
            inboxes[dst][src] = payload
            received_bits[dst] += plen
            if per_message:
                obs.on_message(
                    round=round,
                    src=src,
                    dst=dst,
                    bits=plen,
                    kind="duplicate",
                )

    def deliver(
        self, round: int, src: int, dst: int, payload: BitString
    ) -> BitString | None:
        """The payload that actually arrives for this message, if any.

        Checks faults from the most to the least structural: a dead
        link or crashed endpoint loses the message before a per-message
        drop is even considered; corruption and duplication apply only
        to messages that arrive.
        """
        plan = self.plan
        plen = len(payload)
        if plan.link_down(src, dst):
            self._emit(round, src, dst, "link_down", plen)
            return None
        if self.node_down(round, src) or self.node_down(round, dst):
            self._emit(round, src, dst, "crash", plen)
            return None
        if src in self.byzantine:
            behaviours = self._behaviours
            if "selective" in behaviours and plan.byz_selective_drops(
                round, src, dst
            ):
                self._emit(round, src, dst, "byz_selective", plen)
                return None
            if "limited" in behaviours:
                key = (round, src)
                reachable = self._limit_memo.get(key)
                if reachable is None:
                    reachable = plan.byz_limited_reachable(round, src, self.n)
                    self._limit_memo[key] = reachable
                if dst not in reachable:
                    self._emit(round, src, dst, "byz_limited", plen)
                    return None
            if "equivocate" in behaviours and plan.byz_equivocates(
                round, src, dst
            ):
                payload = plan.equivocate_payload(round, src, dst, payload)
                self._emit(round, src, dst, "byz_equivocate", plen)
            if "forge" in behaviours and plan.byz_forges(round, src, dst):
                forged = plan.forged_src(round, src, dst, self.byzantine)
                if forged is not None:
                    self._forged.append((forged, dst, src, payload))
                    self._emit(round, src, dst, "byz_forge", plen)
                    return None
        if plan.drops(round, src, dst):
            self._emit(round, src, dst, "drop", plen)
            return None
        if plan.corrupts(round, src, dst):
            payload = plan.corrupt_payload(round, src, dst, payload)
            self._emit(round, src, dst, "corrupt", plen)
        if plan.duplicates(round, src, dst):
            self._pending.setdefault(round + 1, {})[(src, dst)] = payload
            self._emit(round, src, dst, "duplicate", plen)
        return payload

    def finish_round(
        self,
        round: int,
        inboxes: list[dict[int, BitString]],
        received_bits: list[int],
    ) -> None:
        """Land buffered forged messages after the round's real deliveries.

        Forged messages claim another Byzantine node's identity, so they
        occupy *that* node's inbox slot — but only when it is still
        empty: a genuine message (and every non-forged fault outcome)
        always wins.  The buffer is applied in sorted
        ``(forged_src, dst, real_src)`` order, making the result
        independent of the engine's per-message delivery order.  No-op
        when nothing was forged, so engines may call it unconditionally.
        """
        if not self._forged:
            return
        obs = self.observer
        per_message = obs is not None and obs.wants_messages
        self._forged.sort()
        for forged, dst, _real, payload in self._forged:
            if forged in inboxes[dst]:
                continue
            plen = len(payload)
            inboxes[dst][forged] = payload
            received_bits[dst] += plen
            if per_message:
                obs.on_message(
                    round=round,
                    src=forged,
                    dst=dst,
                    bits=plen,
                    kind="forged",
                )
        self._forged.clear()

    def _emit(self, round: int, src: int, dst: int, kind: str, bits: int) -> None:
        if self.observer is not None:
            self.observer.on_fault(round=round, src=src, dst=dst, kind=kind, bits=bits)
