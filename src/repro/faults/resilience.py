"""Resilience over unreliable delivery: ack/retransmit at honest cost.

:func:`resilient` wraps a node program so it tolerates message drops
(and the duplicates/stale frames retransmission itself creates): each
*logical* round of the inner program is simulated by a fixed window of
*physical* rounds during which every logical message is sent, acked,
and — while unacknowledged — retransmitted on a capped-exponential
schedule.  The wrapped program is an ordinary node program running on
an ordinary engine, so every retransmitted frame pays real simulated
rounds and real bits: the overhead of resilience is measured by the
same ``RunMetrics`` accounting as the algorithm itself, never waved
away.

Protocol
--------
All nodes run the same data-independent schedule, which keeps the
lockstep model intact (no node ever waits on another).  One logical
round becomes ``W`` physical rounds, where ``W - 2`` is the last
retransmission offset (the final attempt still needs one round to
arrive and one for its ack to return).  Within a window, physical
round ``p`` of a node:

1. sends an ack frame to every peer whose data arrived in round
   ``p - 1`` (piggybacked onto a data frame for the same peer when one
   is due),
2. if ``p`` is a retransmission offset, resends every still-unacked
   logical message,
3. yields; on resume it decodes incoming frames — stale-parity frames
   (leftovers of the previous window, e.g. network duplicates) are
   discarded, first copies of data are recorded and owed an ack,
   retransmitted copies are re-acked (the first ack may itself have
   been dropped).

Every frame carries a 3-bit header ``[parity][has_data][has_ack]``;
``parity`` alternates per window, which is all the sequence numbering a
lockstep protocol needs — any frame surviving from the previous window
shows the flipped bit.  The wrapped program therefore sees a link
bandwidth 3 bits smaller than the physical one.

Retransmission offsets follow capped exponential backoff: gaps
``min(timeout * 2**i, backoff_cap)`` between attempts, so a message
survives unless *all* ``max_attempts`` copies are dropped
(``drop_rate ** max_attempts`` — under 3e-6 at the defaults and a 20%
drop rate).  With ``strict=True`` a message still unacknowledged when
its window closes raises :class:`~repro.clique.errors.FaultInjected`
instead of hoping the data arrived.

Scope: the wrapper masks *omission* faults — drops, duplicates and the
stale frames they leave behind.  It does not checksum payloads
(corruption passes through) and cannot outlast permanent link failures
or crashes; those need redundant routing, which is an algorithm-level
concern.  The privileged bulk channel is unsupported (it is reliable
by fiat and its cost accounting would be falsified by blind
retransmission), so ``_bulk_send`` raises — which excludes the
router-based catalog algorithms from resilient wrapping.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..clique.bits import BitReader, BitString, BitWriter
from ..clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    FaultInjected,
    InvalidAddress,
    ProtocolViolation,
)

__all__ = ["HEADER_BITS", "attempt_offsets", "resilient"]

#: Frame header width: [parity][has_data][has_ack].
HEADER_BITS = 3


def attempt_offsets(
    timeout: int, max_attempts: int, backoff_cap: int
) -> tuple[int, ...]:
    """Physical-round offsets of the data (re)transmission attempts.

    The first attempt is at offset 0; successive gaps are
    ``min(timeout * 2**i, backoff_cap)``.  ``timeout`` must be at least
    2 — an ack takes two physical rounds to come back (one for the data
    to arrive, one for the ack), so retransmitting sooner would resend
    messages that are already safely delivered.
    """
    if timeout < 2:
        raise CliqueError(
            f"resilient timeout must be >= 2 rounds (data + ack each "
            f"take one round), got {timeout}"
        )
    if max_attempts < 1:
        raise CliqueError(f"resilient max_attempts must be >= 1, got {max_attempts}")
    if backoff_cap < timeout:
        raise CliqueError(
            f"resilient backoff_cap ({backoff_cap}) must be >= the "
            f"timeout ({timeout})"
        )
    offsets = [0]
    for i in range(max_attempts - 1):
        offsets.append(offsets[-1] + min(timeout * (1 << i), backoff_cap))
    return tuple(offsets)


def _encode_frame(parity: int, payload: BitString | None, has_ack: bool) -> BitString:
    w = BitWriter()
    w.write_bit(parity)
    w.write_bit(1 if payload is not None else 0)
    w.write_bit(1 if has_ack else 0)
    if payload is not None:
        w.write_bits(payload)
    return w.finish()


def _decode_frame(
    frame: BitString,
) -> tuple[int, BitString | None, bool] | None:
    """``(parity, payload | None, has_ack)``, or ``None`` if garbled."""
    if len(frame) < HEADER_BITS:
        return None
    r = BitReader(frame)
    parity = r.read_bit()
    has_data = r.read_bit()
    has_ack = bool(r.read_bit())
    payload = r.read_rest() if has_data else None
    if has_data and len(payload) == 0:
        # Inner programs cannot send empty messages, so a dataless data
        # frame is a corruption artifact; count the message as lost.
        return None
    return parity, payload, has_ack


class _ResilientNode:
    """Node-like facade handed to the wrapped program.

    Mirrors the :class:`~repro.clique.node.Node` interface over a
    *logical* round structure: sends queue logical messages for the next
    window, ``inbox``/``round`` reflect logical rounds, and the visible
    bandwidth is the physical one minus the frame header.  Counters
    delegate to the physical node so measurement flows into
    ``RunResult`` unchanged.
    """

    __slots__ = (
        "_node",
        "id",
        "n",
        "bandwidth",
        "input",
        "aux",
        "_out",
        "_inbox",
        "_round",
    )

    def __init__(self, node: Any) -> None:
        if node.bandwidth <= HEADER_BITS:
            raise CliqueError(
                f"resilient wrapping needs bandwidth > {HEADER_BITS} bits "
                f"for the frame header, got {node.bandwidth}"
            )
        self._node = node
        self.id = node.id
        self.n = node.n
        self.bandwidth = node.bandwidth - HEADER_BITS
        self.input = node.input
        self.aux = node.aux
        self._out: dict[int, BitString] = {}
        self._inbox: dict[int, BitString] = {}
        self._round = 0

    @property
    def counters(self) -> dict:
        return self._node.counters

    def count(self, key: str, amount: int) -> None:
        self._node.count(key, amount)

    def send(self, dst: int, payload: BitString) -> None:
        if dst == self.id:
            raise InvalidAddress(f"node {self.id} addressed itself")
        if not 0 <= dst < self.n:
            raise InvalidAddress(
                f"node {self.id} addressed nonexistent node {dst} "
                f"(n={self.n})"
            )
        if len(payload) > self.bandwidth:
            raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
        if len(payload) == 0:
            raise ProtocolViolation(
                f"node {self.id} sent an empty message to {dst}; "
                f"omit the send instead"
            )
        if dst in self._out:
            raise DuplicateMessage(self.id, dst)
        self._out[dst] = payload

    def send_to_all(self, payload: BitString) -> None:
        for dst in range(self.n):
            if dst != self.id:
                self.send(dst, payload)

    def _bulk_send(self, dst: int, payload: BitString) -> None:
        raise ProtocolViolation(
            "the resilient wrapper does not support the privileged bulk "
            "channel: it is reliable by fiat and retransmission would "
            "falsify its cost accounting"
        )

    @property
    def inbox(self) -> Mapping[int, BitString]:
        return self._inbox

    def recv(self, src: int) -> BitString | None:
        return self._inbox.get(src)

    @property
    def round(self) -> int:
        return self._round

    def __repr__(self) -> str:
        return (f"ResilientNode(id={self.id}, n={self.n}, round={self._round})")


def _run_window(
    node: Any,
    outgoing: dict[int, BitString],
    parity: int,
    offsets: tuple[int, ...],
    window: int,
    strict: bool,
) -> Any:
    """Simulate one logical round; returns the logical inbox.

    A sub-generator (driven via ``yield from``) spanning exactly
    ``window`` physical rounds.
    """
    pending = dict(outgoing)
    acked: set[int] = set()
    ack_owed: set[int] = set()
    logical_inbox: dict[int, BitString] = {}
    offset_set = frozenset(offsets)
    attempts = 0
    for p in range(window):
        frames: dict[int, tuple[BitString | None, bool]] = {
            dst: (None, True) for dst in ack_owed
        }
        ack_owed = set()
        if p in offset_set:
            for dst, payload in pending.items():
                if dst in acked:
                    continue
                frames[dst] = (payload, dst in frames)
                attempts += 1
        for dst, (payload, has_ack) in frames.items():
            node.send(dst, _encode_frame(parity, payload, has_ack))
        yield
        for src, frame in node.inbox.items():
            decoded = _decode_frame(frame)
            if decoded is None or decoded[0] != parity:
                continue
            _, data, has_ack = decoded
            if has_ack:
                acked.add(src)
            if data is not None:
                if src not in logical_inbox:
                    logical_inbox[src] = data
                # Ack first copies and retransmissions alike — the ack
                # for the first copy may itself have been dropped.
                ack_owed.add(src)
    if pending:
        retransmits = attempts - len(pending)
        if retransmits > 0:
            node.count("resilient_retransmits", retransmits)
        unacked = [dst for dst in pending if dst not in acked]
        if unacked:
            node.count("resilient_unacked", len(unacked))
            if strict:
                dst = min(unacked)
                raise FaultInjected(
                    f"node {node.id}: message to node {dst} still "
                    f"unacknowledged after {len(offsets)} attempts",
                    kind="unacked",
                    round=node.round,
                    src=node.id,
                    dst=dst,
                )
    return logical_inbox


def resilient(
    program: Any,
    *,
    timeout: int = 2,
    max_attempts: int = 8,
    backoff_cap: int = 8,
    strict: bool = False,
) -> Any:
    """Wrap ``program`` with the ack/retransmit window protocol.

    Parameters
    ----------
    program:
        Any node program (generator function taking a node).
    timeout:
        Physical rounds before the first retransmission (>= 2).
    max_attempts:
        Total transmission attempts per logical message per window.
    backoff_cap:
        Upper bound on the gap between consecutive attempts.
    strict:
        Raise :class:`FaultInjected` when a message stays unacked for a
        whole window instead of continuing optimistically.

    The returned program multiplies round cost by the window length
    (``attempt_offsets(...)[-1] + 2``) and message cost by the attempt
    count actually needed — all of it visible in ``RunMetrics``.
    """
    offsets = attempt_offsets(timeout, max_attempts, backoff_cap)
    window = offsets[-1] + 2

    def wrapped(node: Any):
        proxy = _ResilientNode(node)
        gen = program(proxy)
        parity = 0
        try:
            next(gen)
        except StopIteration as stop:
            if proxy._out:
                yield from _run_window(
                    node, proxy._out, parity, offsets, window, strict
                )
            return stop.value
        while True:
            outgoing, proxy._out = proxy._out, {}
            logical_inbox = yield from _run_window(
                node, outgoing, parity, offsets, window, strict
            )
            parity ^= 1
            proxy._inbox = logical_inbox
            proxy._round += 1
            try:
                next(gen)
            except StopIteration as stop:
                if proxy._out:
                    # The inner program queued sends in its final step;
                    # flush them so peers still receive (and ack) them.
                    yield from _run_window(
                        node, proxy._out, parity, offsets, window, strict
                    )
                return stop.value

    wrapped.__name__ = f"resilient_{getattr(program, '__name__', 'program')}"
    wrapped.__qualname__ = wrapped.__name__
    return wrapped
