"""Deterministic, seed-replayable fault plans.

A :class:`FaultPlan` is a *pure* description of an unreliable network:
every decision it makes — drop this message, flip that bit, duplicate,
fail this link, crash that node — is a deterministic function of
``(seed, round, src, dst)`` computed by hashing those coordinates.  No
wall clock, no mutable RNG state: replaying a run with the same plan and
the same program reproduces the exact same faults, which is what makes
faulty runs debuggable and cacheable.

Fault model (what "faults" mean in a synchronous clique)
--------------------------------------------------------
The congested clique of the paper is perfectly reliable; a fault plan
relaxes that into a round-synchronous omission/corruption adversary:

* **drop** — a message queued for delivery this round vanishes.
* **corrupt** — one bit of the payload is flipped.  The payload length
  is unchanged, so a corrupted message always stays within the per-link
  bandwidth budget.
* **duplicate** — the network delivers a second, spurious copy of the
  message *one round late* (the only place "late" can mean anything in
  a lockstep model).
* **link failure** — an (unordered) link is dead for the whole run;
  every message across it, in either direction, is lost.
* **crash / crash-restart** — a node goes fail-silent: while down, all
  of its incoming and outgoing messages are lost.  Local computation is
  free and unobservable in this model, so the node's program keeps
  running; only its connectivity dies.  With ``crash_restart_rounds``
  set, a crashed node comes back after that many rounds (and may crash
  again); with ``None`` the crash is permanent.

Faults apply to the bandwidth-checked message channel only.  The
privileged bulk channel (``Node._bulk_send``) is the cost-model router
fiction of Lemma 2 — injecting faults there would corrupt the
accounting it stands for, so it is reliable by fiat.

Engines consult the plan at delivery time through
:class:`repro.faults.inject.FaultInjector`, which adds the per-run
state (duplicate carryover, crash-window memoisation) and reports every
injected fault through the :class:`repro.obs.Observer` protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from ..clique.bits import BitString
from ..clique.errors import CliqueError

__all__ = ["FaultPlan"]

#: Rate fields of a plan, also the spelling accepted by
#: :meth:`FaultPlan.from_spec` (short aliases included).
_RATE_FIELDS = (
    "drop_rate",
    "corrupt_rate",
    "duplicate_rate",
    "link_failure_rate",
    "crash_rate",
)

_SPEC_ALIASES = {
    "drop": "drop_rate",
    "corrupt": "corrupt_rate",
    "dup": "duplicate_rate",
    "duplicate": "duplicate_rate",
    "link": "link_failure_rate",
    "crash": "crash_rate",
    "restart": "crash_restart_rounds",
    "seed": "seed",
}

#: 2**64 as a float divisor, mapping 64 hash bits onto [0, 1).
_SCALE = float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule, parameterised by per-event rates.

    All rates are probabilities in ``[0, 1]`` evaluated against a hash
    of ``(seed, kind, coordinates)``; a rate of ``0`` means the fault
    kind never fires and a plan whose rates are all zero is
    observationally identical to running with no plan at all (the
    property the zero-rate differential tests pin down).
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    link_failure_rate: float = 0.0
    crash_rate: float = 0.0
    #: Rounds a crashed node stays down before its links heal;
    #: ``None`` means a crash is permanent.
    crash_restart_rounds: int | None = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise CliqueError(f"FaultPlan.{name} must be in [0, 1], got {rate!r}")
        if self.crash_restart_rounds is not None and self.crash_restart_rounds < 1:
            raise CliqueError(
                f"crash_restart_rounds must be >= 1 (or None for permanent "
                f"crashes), got {self.crash_restart_rounds!r}"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec like ``"drop=0.2,corrupt=0.01,seed=7"``.

        Keys are the field names or their short aliases (``drop``,
        ``corrupt``, ``dup``, ``link``, ``crash``, ``restart``, ``seed``).
        """
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            field = _SPEC_ALIASES.get(key.strip(), key.strip())
            if not sep or field not in {f.name for f in fields(cls)}:
                raise CliqueError(
                    f"bad fault-plan spec entry {part!r}; expected "
                    f"key=value with key one of {sorted(_SPEC_ALIASES)}"
                )
            try:
                if field in ("seed", "crash_restart_rounds"):
                    kwargs[field] = int(value)
                else:
                    kwargs[field] = float(value)
            except ValueError:
                raise CliqueError(f"bad fault-plan value in {part!r}") from None
        return cls(**kwargs)

    # -- introspection ---------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True when no fault kind can ever fire."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    def describe(self) -> dict:
        """JSON-able configuration (cache-key material)."""
        desc = {"fault_plan": "hash", "seed": self.seed}
        for name in _RATE_FIELDS:
            desc[name] = getattr(self, name)
        desc["crash_restart_rounds"] = self.crash_restart_rounds
        return desc

    # -- the hash oracle -------------------------------------------------

    def _u01(self, kind: str, *coords: int) -> float:
        """A uniform draw in [0, 1), pure in ``(seed, kind, coords)``."""
        h = hashlib.blake2b(digest_size=8)
        h.update(str(self.seed).encode())
        h.update(b"\x00" + kind.encode())
        for c in coords:
            h.update(b"\x00" + str(c).encode())
        return int.from_bytes(h.digest(), "big") / _SCALE

    # -- per-link / per-node schedule ------------------------------------

    def link_down(self, src: int, dst: int) -> bool:
        """Whether the (unordered) link ``{src, dst}`` is dead all run."""
        if self.link_failure_rate == 0.0:
            return False
        a, b = (src, dst) if src <= dst else (dst, src)
        return self._u01("link", a, b) < self.link_failure_rate

    def crashes_at(self, round: int, node: int) -> bool:
        """Whether ``node`` suffers a crash *trigger* in ``round``."""
        if self.crash_rate == 0.0:
            return False
        return self._u01("crash", round, node) < self.crash_rate

    def node_down(self, round: int, node: int) -> bool:
        """Whether ``node`` is down (fail-silent) during ``round``.

        A node is down in round ``r`` iff some crash trigger fired in a
        round ``r0 <= r`` that has not healed yet: permanently when
        ``crash_restart_rounds`` is ``None``, else while
        ``r < r0 + crash_restart_rounds``.  Pure but O(round) — the
        injector memoises per-run.
        """
        if self.crash_rate == 0.0:
            return False
        if self.crash_restart_rounds is None:
            first = 1
        else:
            first = max(1, round - self.crash_restart_rounds + 1)
        return any(self.crashes_at(r0, node) for r0 in range(first, round + 1))

    # -- per-message decisions -------------------------------------------

    def drops(self, round: int, src: int, dst: int) -> bool:
        """Whether the message ``src -> dst`` of ``round`` is dropped."""
        return (
            self.drop_rate > 0.0
            and self._u01("drop", round, src, dst) < self.drop_rate
        )

    def corrupts(self, round: int, src: int, dst: int) -> bool:
        """Whether the message ``src -> dst`` of ``round`` is corrupted."""
        return (
            self.corrupt_rate > 0.0
            and self._u01("corrupt", round, src, dst) < self.corrupt_rate
        )

    def duplicates(self, round: int, src: int, dst: int) -> bool:
        """Whether a spurious copy is redelivered one round late."""
        return (
            self.duplicate_rate > 0.0
            and self._u01("dup", round, src, dst) < self.duplicate_rate
        )

    def corrupt_payload(
        self, round: int, src: int, dst: int, payload: BitString
    ) -> BitString:
        """Flip one deterministically chosen bit of ``payload``.

        Length-preserving, so the corrupted message still fits the
        per-link bandwidth budget it was validated against.
        """
        n_bits = len(payload)
        if n_bits == 0:
            return payload
        index = int(self._u01("corrupt-bit", round, src, dst) * n_bits)
        index = min(index, n_bits - 1)
        mask = 1 << (n_bits - 1 - index)
        return BitString(payload.value ^ mask, n_bits)

    def __repr__(self) -> str:
        active = {
            name: getattr(self, name)
            for name in _RATE_FIELDS
            if getattr(self, name)
        }
        extra = (
            f", restart={self.crash_restart_rounds}"
            if self.crash_restart_rounds is not None
            else ""
        )
        return f"FaultPlan(seed={self.seed}, {active or 'zero-rate'}{extra})"
