"""Deterministic, seed-replayable fault plans.

A :class:`FaultPlan` is a *pure* description of an unreliable network:
every decision it makes — drop this message, flip that bit, duplicate,
fail this link, crash that node — is a deterministic function of
``(seed, round, src, dst)`` computed by hashing those coordinates.  No
wall clock, no mutable RNG state: replaying a run with the same plan and
the same program reproduces the exact same faults, which is what makes
faulty runs debuggable and cacheable.

Fault model (what "faults" mean in a synchronous clique)
--------------------------------------------------------
The congested clique of the paper is perfectly reliable; a fault plan
relaxes that into a round-synchronous omission/corruption adversary:

* **drop** — a message queued for delivery this round vanishes.
* **corrupt** — one bit of the payload is flipped.  The payload length
  is unchanged, so a corrupted message always stays within the per-link
  bandwidth budget.
* **duplicate** — the network delivers a second, spurious copy of the
  message *one round late* (the only place "late" can mean anything in
  a lockstep model).
* **link failure** — an (unordered) link is dead for the whole run;
  every message across it, in either direction, is lost.
* **crash / crash-restart** — a node goes fail-silent: while down, all
  of its incoming and outgoing messages are lost.  Local computation is
  free and unobservable in this model, so the node's program keeps
  running; only its connectivity dies.  With ``crash_restart_rounds``
  set, a crashed node comes back after that many rounds (and may crash
  again); with ``None`` the crash is permanent.

Adversarial tier (Byzantine behaviours)
---------------------------------------
The omission/corruption faults above are honest-but-unlucky: the
network misbehaves uniformly.  The *Byzantine* tier instead corrupts a
fixed set of ``byzantine_f`` nodes (chosen by seed-keyed hash ranking,
see :meth:`FaultPlan.byzantine_nodes`) whose **outgoing** messages the
adversary rewrites at delivery time.  ``byzantine`` names the active
behaviours, ``+``-separated:

* **equivocate** — different receivers of the same round's messages see
  *different* payloads: per ``(round, src, dst)`` the payload has one
  deterministically chosen bit flipped (length-preserving, so the
  message stays within the bandwidth budget it was validated against).
* **forge** (alias ``lie``) — the message claims a forged sender: it is
  delivered into the receiver's inbox slot of another *Byzantine* node.
  Channels are authenticated in the standard model, so the adversary
  can only borrow identities it controls — colluding Byzantine nodes
  masquerade as each other, never as honest nodes.  A genuine message
  on the forged slot always wins.
* **selective** — selective delivery: each outgoing message is dropped
  for a hash-chosen subset of receivers.
* **limited** — limited broadcast: at most ``byzantine_limit`` of the
  sender's outgoing messages per round are delivered (the surviving
  destinations are chosen by hash ranking); the rest are dropped.

``equivocate``, ``forge`` and ``selective`` fire per message with
probability ``byzantine_rate``; ``limited`` is a hard per-round cap.
All decisions remain pure functions of ``(seed, round, src, dst)``, so
the reference, fast, sharded and columnar engines — and any replay —
inject byte-identical adversarial behaviour.  Byzantine *receivers*
are not modelled here: programs are honest, and what a Byzantine node
does with its inbox is an algorithm-level concern.

Faults apply to the bandwidth-checked message channel only.  The
privileged bulk channel (``Node._bulk_send``) is the cost-model router
fiction of Lemma 2 — injecting faults there would corrupt the
accounting it stands for, so it is reliable by fiat.

Engines consult the plan at delivery time through
:class:`repro.faults.inject.FaultInjector`, which adds the per-run
state (duplicate carryover, crash-window memoisation) and reports every
injected fault through the :class:`repro.obs.Observer` protocol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from ..clique.bits import BitString
from ..clique.errors import CliqueError

__all__ = ["BYZANTINE_BEHAVIOURS", "FaultPlan"]

#: The adversarial behaviour vocabulary of the Byzantine tier.
BYZANTINE_BEHAVIOURS = ("equivocate", "forge", "selective", "limited")

#: Accepted spellings for behaviours in ``byzantine=`` specs.
_BEHAVIOUR_ALIASES = {"lie": "forge", "equivocation": "equivocate"}

#: Rate fields of a plan, also the spelling accepted by
#: :meth:`FaultPlan.from_spec` (short aliases included).
_RATE_FIELDS = (
    "drop_rate",
    "corrupt_rate",
    "duplicate_rate",
    "link_failure_rate",
    "crash_rate",
)

_SPEC_ALIASES = {
    "drop": "drop_rate",
    "corrupt": "corrupt_rate",
    "dup": "duplicate_rate",
    "duplicate": "duplicate_rate",
    "link": "link_failure_rate",
    "crash": "crash_rate",
    "restart": "crash_restart_rounds",
    "seed": "seed",
    "byzantine": "byzantine",
    "byz": "byzantine",
    "f": "byzantine_f",
    "byz_rate": "byzantine_rate",
    "limit": "byzantine_limit",
}

#: 2**64 as a float divisor, mapping 64 hash bits onto [0, 1).
_SCALE = float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule, parameterised by per-event rates.

    All rates are probabilities in ``[0, 1]`` evaluated against a hash
    of ``(seed, kind, coordinates)``; a rate of ``0`` means the fault
    kind never fires and a plan whose rates are all zero is
    observationally identical to running with no plan at all (the
    property the zero-rate differential tests pin down).
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    link_failure_rate: float = 0.0
    crash_rate: float = 0.0
    #: Rounds a crashed node stays down before its links heal;
    #: ``None`` means a crash is permanent.
    crash_restart_rounds: int | None = None
    #: Active adversarial behaviours, ``+``-separated (see module docs);
    #: ``""`` means no Byzantine tier.
    byzantine: str = ""
    #: Number of Byzantine nodes (``0`` disables the tier even when
    #: behaviours are named, which makes honest/adversarial twin runs a
    #: one-field sweep).
    byzantine_f: int = 0
    #: Per-message firing probability of equivocate/forge/selective.
    byzantine_rate: float = 0.5
    #: Outgoing messages a ``limited`` Byzantine sender may deliver per
    #: round.
    byzantine_limit: int = 1

    def __post_init__(self) -> None:
        for name in (*_RATE_FIELDS, "byzantine_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise CliqueError(f"FaultPlan.{name} must be in [0, 1], got {rate!r}")
        if self.crash_restart_rounds is not None and self.crash_restart_rounds < 1:
            raise CliqueError(
                f"crash_restart_rounds must be >= 1 (or None for permanent "
                f"crashes), got {self.crash_restart_rounds!r}"
            )
        if self.byzantine_f < 0:
            raise CliqueError(
                f"byzantine_f must be >= 0, got {self.byzantine_f!r}"
            )
        if self.byzantine_limit < 0:
            raise CliqueError(
                f"byzantine_limit must be >= 0, got {self.byzantine_limit!r}"
            )
        # Normalise the behaviour spelling once so every query is a
        # frozenset lookup; frozen dataclass, hence object.__setattr__.
        object.__setattr__(
            self, "byzantine", "+".join(self.byzantine_behaviours())
        )

    def byzantine_behaviours(self) -> tuple[str, ...]:
        """The validated, canonically-ordered behaviour tuple."""
        names = [b.strip() for b in self.byzantine.split("+") if b.strip()]
        resolved = []
        for name in names:
            canon = _BEHAVIOUR_ALIASES.get(name, name)
            if canon not in BYZANTINE_BEHAVIOURS:
                from ..clique.errors import did_you_mean

                known = sorted(set(BYZANTINE_BEHAVIOURS) | set(_BEHAVIOUR_ALIASES))
                hint = did_you_mean(name, known)
                raise CliqueError(
                    f"unknown Byzantine behaviour {name!r}; known "
                    f"behaviours: {known}{hint}"
                )
            if canon not in resolved:
                resolved.append(canon)
        return tuple(b for b in BYZANTINE_BEHAVIOURS if b in resolved)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec like ``"drop=0.2,corrupt=0.01,seed=7"``.

        Keys are the field names or their short aliases (``drop``,
        ``corrupt``, ``dup``, ``link``, ``crash``, ``restart``, ``seed``,
        ``byzantine``/``byz``, ``f``, ``byz_rate``, ``limit``).  Unknown
        keys fail with a nearest-match suggestion, mirroring
        :func:`repro.engine.base.resolve_engine`.
        """
        from ..clique.errors import did_you_mean

        field_names = {f.name for f in fields(cls)}
        known = sorted(set(_SPEC_ALIASES) | field_names)
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            field = _SPEC_ALIASES.get(key.strip(), key.strip())
            if not sep or field not in field_names:
                hint = did_you_mean(key.strip(), known) if sep else ""
                raise CliqueError(
                    f"bad fault-plan spec entry {part!r}; expected "
                    f"key=value with key one of {known}{hint}"
                )
            try:
                if field in ("seed", "crash_restart_rounds", "byzantine_f",
                             "byzantine_limit"):
                    kwargs[field] = int(value)
                elif field == "byzantine":
                    kwargs[field] = value.strip()
                else:
                    kwargs[field] = float(value)
            except ValueError:
                raise CliqueError(f"bad fault-plan value in {part!r}") from None
        return cls(**kwargs)

    # -- introspection ---------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """True when no fault kind can ever fire."""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and not self.byzantine_active
        )

    @property
    def byzantine_active(self) -> bool:
        """True when the adversarial tier can rewrite any message."""
        return bool(self.byzantine) and self.byzantine_f > 0

    def describe(self) -> dict:
        """JSON-able configuration (cache-key material).

        Byzantine keys appear only when the tier is active, so plans
        predating the adversarial tier keep their cache keys.
        """
        desc = {"fault_plan": "hash", "seed": self.seed}
        for name in _RATE_FIELDS:
            desc[name] = getattr(self, name)
        desc["crash_restart_rounds"] = self.crash_restart_rounds
        if self.byzantine_active:
            desc["byzantine"] = self.byzantine
            desc["byzantine_f"] = self.byzantine_f
            desc["byzantine_rate"] = self.byzantine_rate
            desc["byzantine_limit"] = self.byzantine_limit
        return desc

    # -- the hash oracle -------------------------------------------------

    def _u01(self, kind: str, *coords: int) -> float:
        """A uniform draw in [0, 1), pure in ``(seed, kind, coords)``."""
        h = hashlib.blake2b(digest_size=8)
        h.update(str(self.seed).encode())
        h.update(b"\x00" + kind.encode())
        for c in coords:
            h.update(b"\x00" + str(c).encode())
        return int.from_bytes(h.digest(), "big") / _SCALE

    # -- per-link / per-node schedule ------------------------------------

    def link_down(self, src: int, dst: int) -> bool:
        """Whether the (unordered) link ``{src, dst}`` is dead all run."""
        if self.link_failure_rate == 0.0:
            return False
        a, b = (src, dst) if src <= dst else (dst, src)
        return self._u01("link", a, b) < self.link_failure_rate

    def crashes_at(self, round: int, node: int) -> bool:
        """Whether ``node`` suffers a crash *trigger* in ``round``."""
        if self.crash_rate == 0.0:
            return False
        return self._u01("crash", round, node) < self.crash_rate

    def node_down(self, round: int, node: int) -> bool:
        """Whether ``node`` is down (fail-silent) during ``round``.

        A node is down in round ``r`` iff some crash trigger fired in a
        round ``r0 <= r`` that has not healed yet: permanently when
        ``crash_restart_rounds`` is ``None``, else while
        ``r < r0 + crash_restart_rounds``.  Pure but O(round) — the
        injector memoises per-run.
        """
        if self.crash_rate == 0.0:
            return False
        if self.crash_restart_rounds is None:
            first = 1
        else:
            first = max(1, round - self.crash_restart_rounds + 1)
        return any(self.crashes_at(r0, node) for r0 in range(first, round + 1))

    # -- per-message decisions -------------------------------------------

    def drops(self, round: int, src: int, dst: int) -> bool:
        """Whether the message ``src -> dst`` of ``round`` is dropped."""
        return (
            self.drop_rate > 0.0
            and self._u01("drop", round, src, dst) < self.drop_rate
        )

    def corrupts(self, round: int, src: int, dst: int) -> bool:
        """Whether the message ``src -> dst`` of ``round`` is corrupted."""
        return (
            self.corrupt_rate > 0.0
            and self._u01("corrupt", round, src, dst) < self.corrupt_rate
        )

    def duplicates(self, round: int, src: int, dst: int) -> bool:
        """Whether a spurious copy is redelivered one round late."""
        return (
            self.duplicate_rate > 0.0
            and self._u01("dup", round, src, dst) < self.duplicate_rate
        )

    def corrupt_payload(
        self, round: int, src: int, dst: int, payload: BitString
    ) -> BitString:
        """Flip one deterministically chosen bit of ``payload``.

        Length-preserving, so the corrupted message still fits the
        per-link bandwidth budget it was validated against.
        """
        n_bits = len(payload)
        if n_bits == 0:
            return payload
        index = int(self._u01("corrupt-bit", round, src, dst) * n_bits)
        index = min(index, n_bits - 1)
        mask = 1 << (n_bits - 1 - index)
        return BitString(payload.value ^ mask, n_bits)

    # -- the adversarial tier --------------------------------------------

    def byzantine_nodes(self, n: int) -> frozenset[int]:
        """The fixed Byzantine set for an ``n``-node run.

        The ``byzantine_f`` nodes with the smallest seed-keyed hash rank
        (ties broken by node id), so the set is pure in ``(seed, n)`` and
        identical across engines.  Capped at ``n`` when ``f > n``.
        """
        if not self.byzantine_active or n <= 0:
            return frozenset()
        ranked = sorted(range(n), key=lambda v: (self._u01("byz-node", v), v))
        return frozenset(ranked[: min(self.byzantine_f, n)])

    def byz_selective_drops(self, round: int, src: int, dst: int) -> bool:
        """Selective delivery: drop ``src -> dst`` for this receiver?"""
        return self._u01("byz-select", round, src, dst) < self.byzantine_rate

    def byz_limited_reachable(self, round: int, src: int, n: int) -> frozenset[int]:
        """Limited broadcast: the receivers ``src`` can reach this round.

        The ``byzantine_limit`` receivers with the smallest
        per-``(round, src, dst)`` hash rank (ties by id) out of all
        ``n - 1`` possible destinations.  Pure in the coordinates alone —
        no engine needs to assemble the sender's actual destination
        list, so per-message delivery order cannot matter.
        """
        others = [d for d in range(n) if d != src]
        if self.byzantine_limit >= len(others):
            return frozenset(others)
        ranked = sorted(
            others, key=lambda d: (self._u01("byz-limit", round, src, d), d)
        )
        return frozenset(ranked[: self.byzantine_limit])

    def byz_equivocates(self, round: int, src: int, dst: int) -> bool:
        """Equivocation: does this receiver see a rewritten payload?"""
        return self._u01("byz-equiv", round, src, dst) < self.byzantine_rate

    def equivocate_payload(
        self, round: int, src: int, dst: int, payload: BitString
    ) -> BitString:
        """The equivocated payload: one hash-chosen bit flipped.

        Length-preserving (stays within the validated bandwidth budget)
        and keyed by ``dst``, so different receivers of the same round's
        broadcast see *different* values — the defining equivocation.
        """
        n_bits = len(payload)
        if n_bits == 0:
            return payload
        index = int(self._u01("byz-equiv-bit", round, src, dst) * n_bits)
        index = min(index, n_bits - 1)
        mask = 1 << (n_bits - 1 - index)
        return BitString(payload.value ^ mask, n_bits)

    def byz_forges(self, round: int, src: int, dst: int) -> bool:
        """Lying sender: does this message claim a forged ``src``?"""
        return self._u01("byz-forge", round, src, dst) < self.byzantine_rate

    def forged_src(
        self, round: int, src: int, dst: int, byzantine: frozenset[int]
    ) -> int | None:
        """The identity a forged message claims, or ``None`` for no-op.

        Channels are authenticated, so candidates are the *other*
        Byzantine nodes (excluding the receiver — a node never hears a
        message "from itself").  With no candidate the forge is a no-op
        and the message passes through genuinely.
        """
        candidates = sorted(byzantine - {src, dst})
        if not candidates:
            return None
        pick = int(self._u01("byz-forge-src", round, src, dst) * len(candidates))
        return candidates[min(pick, len(candidates) - 1)]

    def __repr__(self) -> str:
        active = {
            name: getattr(self, name)
            for name in _RATE_FIELDS
            if getattr(self, name)
        }
        extra = (
            f", restart={self.crash_restart_rounds}"
            if self.crash_restart_rounds is not None
            else ""
        )
        if self.byzantine_active:
            extra += f", byzantine={self.byzantine!r}, f={self.byzantine_f}"
        return f"FaultPlan(seed={self.seed}, {active or 'zero-rate'}{extra})"
