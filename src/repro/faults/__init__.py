"""Deterministic fault injection and resilience for the clique simulator.

Three layers, each usable on its own:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) — a pure, seed-keyed
  description of an unreliable network: drops, corruption, duplication,
  link failures, crashes, plus an adversarial tier of Byzantine sender
  behaviours (equivocation, forged identities, selective delivery,
  limited broadcast).  Every decision is a hash of
  ``(seed, round, src, dst)``, so faulty runs replay bit-identically.
* :class:`FaultInjector` (:mod:`repro.faults.inject`) — the per-run
  adapter engines consult at delivery time; surfaces every injected
  fault through the ``Observer`` protocol.
* :func:`resilient` (:mod:`repro.faults.resilience`) — wraps any node
  program with ack/retransmit windows so it tolerates drops, at honest
  simulated round and bit cost.

``run(..., fault_plan=...)`` (and ``run_algorithm`` / ``run_spec`` /
``run_sweep`` / ``repro sweep --fault-plan``) accept a plan instance or
a spec string like ``"drop=0.2,seed=7"``.

Layering: this package sits between the clique substrate and the
engines — it imports :mod:`repro.clique` only, and the engines import
it; the observability layer knows faults only as events.
"""

from .inject import FaultInjector
from .plan import BYZANTINE_BEHAVIOURS, FaultPlan
from .resilience import HEADER_BITS, attempt_offsets, resilient

__all__ = [
    "BYZANTINE_BEHAVIOURS",
    "FaultInjector",
    "FaultPlan",
    "HEADER_BITS",
    "attempt_offsets",
    "resilient",
    "resolve_fault_plan",
]


def resolve_fault_plan(spec) -> FaultPlan | None:
    """Turn a ``fault_plan=`` argument into a :class:`FaultPlan` or ``None``.

    Accepts ``None`` (no faults), a plan instance, or a spec string for
    :meth:`FaultPlan.from_spec`.
    """
    from ..clique.errors import CliqueError

    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, str):
        return FaultPlan.from_spec(spec)
    raise CliqueError(
        f"fault_plan must be None, a FaultPlan or a spec string like "
        f"'drop=0.2,seed=7', got {spec!r}"
    )
