"""NCLIQUE(1)-labelling problems — the paper's LCL analogue (Section 8).

The conclusions define the search-problem counterpart of NCLIQUE(1): a
set ``L`` of pairs ``(G, z)`` where ``z`` is an output labelling and
membership is decidable in constant rounds; the task is to *find* a
``z`` with ``(G, z) in L``.  "This class captures many natural graph
problems of interest, but we do not have lower bounds for any problem in
this class."

We implement the class executably: each problem bundles a constant-round
distributed *verifier* (a node program reading its own output label from
``node.aux['output']``) with a centralised reference solver, plus three
canonical instances mirroring the classical LCL search problems the
paper names as analogues (colouring, maximal independent set) and
maximal matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Sequence

from ..clique.bits import BitString, uint_width
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram

__all__ = [
    "LabellingProblem",
    "colouring_search_problem",
    "maximal_independent_set_problem",
    "maximal_matching_problem",
]


@dataclass(frozen=True)
class LabellingProblem:
    """An NCLIQUE(1)-labelling (search) problem."""

    name: str
    #: Constant-round verifier; node reads its label from
    #: ``node.aux["output"]`` and outputs 1 iff its local checks pass.
    verifier: NodeProgram
    #: Output label size in bits, as a function of n.
    label_size: Callable[[int], int]
    #: Centralised solver: graph -> labelling (list of BitStrings) or None.
    solver: Callable[[CliqueGraph], list[BitString] | None]

    def verify(
        self,
        graph: CliqueGraph,
        labelling: Sequence[BitString],
        *,
        bandwidth_multiplier: int = 1,
    ) -> bool:
        """Run the distributed verifier; valid iff all nodes accept."""
        n = graph.n

        def aux(v: int) -> dict:
            return {"output": labelling[v]}

        clique = CongestedClique(n, bandwidth_multiplier=bandwidth_multiplier)
        result = clique.run(self.verifier, graph, aux=aux)
        return all(o == 1 for o in result.outputs.values())

    def solve_and_verify(self, graph: CliqueGraph) -> bool | None:
        """Solve centrally and check distributedly; None = no solution."""
        labelling = self.solver(graph)
        if labelling is None:
            return None
        return self.verify(graph, labelling)


# ---------------------------------------------------------------------------
# proper k-colouring (search form)


def colouring_search_problem(k: int) -> LabellingProblem:
    """Search form of proper k-colouring (output = own colour)."""
    cw = uint_width(max(1, k - 1))

    def verifier(node) -> Generator[None, None, int]:
        from ..clique.primitives import all_broadcast

        label: BitString = node.aux["output"]
        if len(label) != cw:
            yield from all_broadcast(node, BitString.zeros(cw))
            return 0
        colours = yield from all_broadcast(node, label)
        if label.value >= k:
            return 0
        row = node.input
        for u in range(node.n):
            if u != node.id and row[u] and colours[u] == label:
                return 0
        return 1

    def solver(graph: CliqueGraph) -> list[BitString] | None:
        from ..problems.catalog import k_colouring_problem

        colours = k_colouring_problem(k).certifier(graph)
        if colours is None:
            return None
        return [BitString(c, cw) for c in colours]

    return LabellingProblem(
        name=f"{k}-colouring-search",
        verifier=verifier,
        label_size=lambda n: cw,
        solver=solver,
    )


# ---------------------------------------------------------------------------
# maximal independent set (the Naor-Stockmeyer flagship)


def maximal_independent_set_problem() -> LabellingProblem:
    """Maximal independent set: output = membership bit; the verifier
    checks independence and maximality in one broadcast round."""

    def verifier(node) -> Generator[None, None, int]:
        from ..clique.primitives import all_broadcast

        label: BitString = node.aux["output"]
        if len(label) != 1:
            yield from all_broadcast(node, BitString.zeros(1))
            return 0
        bits = yield from all_broadcast(node, label)
        in_set = label.value == 1
        row = node.input
        neighbour_in_set = any(
            row[u] and bits[u].value == 1
            for u in range(node.n)
            if u != node.id
        )
        if in_set and neighbour_in_set:
            return 0  # not independent
        if not in_set and not neighbour_in_set:
            return 0  # not maximal
        return 1

    def solver(graph: CliqueGraph) -> list[BitString]:
        chosen: set[int] = set()
        for v in range(graph.n):  # greedy MIS always exists
            if not any(graph.has_edge(v, u) for u in chosen):
                chosen.add(v)
        return [
            BitString(1 if v in chosen else 0, 1) for v in range(graph.n)
        ]

    return LabellingProblem(
        name="maximal-independent-set",
        verifier=verifier,
        label_size=lambda n: 1,
        solver=solver,
    )


# ---------------------------------------------------------------------------
# maximal matching


def maximal_matching_problem() -> LabellingProblem:
    """Output label: partner id + 1 (0 = unmatched).  Checks: claims are
    symmetric, claimed edges exist, and no edge joins two unmatched
    nodes (maximality)."""

    def verifier(node) -> Generator[None, None, int]:
        from ..clique.primitives import all_broadcast

        n = node.n
        pw = uint_width(n)  # values 0..n
        label: BitString = node.aux["output"]
        if len(label) != pw:
            yield from all_broadcast(node, BitString.zeros(pw))
            return 0
        claims = yield from all_broadcast(node, label)
        partners = [c.value - 1 for c in claims]  # -1 = unmatched
        me = node.id
        mine = partners[me]
        row = node.input
        if mine >= n or (mine >= 0 and mine == me):
            return 0
        if mine >= 0:
            if not row[mine]:
                return 0  # claimed a non-edge
            if partners[mine] != me:
                return 0  # asymmetric claim
        else:
            # maximality: every neighbour must be matched
            for u in range(n):
                if u != me and row[u] and partners[u] < 0:
                    return 0
        return 1

    def solver(graph: CliqueGraph) -> list[BitString]:
        partner = [-1] * graph.n
        for u, v in graph.edges():  # greedy maximal matching
            if partner[u] < 0 and partner[v] < 0:
                partner[u], partner[v] = v, u
        pw = uint_width(graph.n)
        return [BitString(p + 1, pw) for p in partner]

    return LabellingProblem(
        name="maximal-matching",
        verifier=verifier,
        label_size=lambda n: uint_width(n),
        solver=solver,
    )
