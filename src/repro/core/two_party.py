"""Two-party communication complexity — the lower-bound substrate.

The paper's Section 2: for the *broadcast* congested clique, "lower
bounds have been proven using communication complexity arguments [19]",
while CONGEST lower bounds "are generally based on reductions from known
lower bounds in communication complexity".  This module implements that
substrate executably:

* exact deterministic communication complexity of small boolean
  functions (memoised protocol-tree search over rectangle splits),
* the fooling-set lower bound,
* the Drucker-Kuhn-Oshman style simulation: a broadcast congested
  clique algorithm yields a two-party protocol for any cut of the
  nodes — each broadcast message crosses the cut once — so
  ``T(n) >= (D(f) - 1) / (n * B)`` for any function ``f`` embeddable
  across a cut, giving genuinely *executable* lower-bound reasoning for
  the broadcast variant of the model.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Generator, Sequence

import numpy as np

from ..clique.bits import BitString
from ..clique.network import RunResult

__all__ = [
    "exact_communication_complexity",
    "fooling_set_bound",
    "equality_matrix",
    "disjointness_matrix",
    "bcc_cut_bits",
    "bcc_round_lower_bound",
    "equality_bcc_program",
]


def exact_communication_complexity(matrix: np.ndarray) -> int:
    """Exact deterministic CC of ``f(x, y) = matrix[x, y]`` in bits.

    Standard recursion on combinatorial rectangles: a monochromatic
    rectangle costs 0; otherwise one bit is spent and either side may
    split its part into two nonempty halves.  Exponential — intended for
    matrices up to ~8x8 (EQ_3, DISJ_2, ...).
    """
    m = np.asarray(matrix, dtype=np.int8)
    rows0 = frozenset(range(m.shape[0]))
    cols0 = frozenset(range(m.shape[1]))

    @lru_cache(maxsize=None)
    def cost(rows: frozenset, cols: frozenset) -> int:
        values = {int(m[r, c]) for r in rows for c in cols}
        if len(values) <= 1:
            return 0
        best = math.inf
        for side, index_set in (("row", rows), ("col", cols)):
            members = sorted(index_set)
            # all 2-partitions of the speaking side (canonical: fix the
            # first member in part A to kill the symmetric double count)
            first, rest = members[0], members[1:]
            for mask in range(1 << len(rest)):
                part_a = {first} | {
                    rest[i] for i in range(len(rest)) if mask >> i & 1
                }
                part_b = index_set - part_a
                if not part_b:
                    continue
                if side == "row":
                    sub = 1 + max(
                        cost(frozenset(part_a), cols),
                        cost(frozenset(part_b), cols),
                    )
                else:
                    sub = 1 + max(
                        cost(rows, frozenset(part_a)),
                        cost(rows, frozenset(part_b)),
                    )
                best = min(best, sub)
        return int(best)

    return cost(rows0, cols0)


def fooling_set_bound(matrix: np.ndarray, value: int = 1) -> int:
    """log2 of a greedily-built fooling set for the given value: pairs
    (x_i, y_i) with f(x_i, y_i) = value such that mixing any two breaks
    monochromaticity.  ``D(f) >= log2 |fooling set|``.

    The greedy is order-sensitive, so two candidate orders are tried:
    natural, and "spread" pairs first (x | y covering many bits — the
    order that recovers the classical complementary-pair fooling set for
    disjointness).  The larger set wins.
    """
    m = np.asarray(matrix, dtype=np.int8)
    cells = [
        (x, y)
        for x in range(m.shape[0])
        for y in range(m.shape[1])
        if m[x, y] == value
    ]

    def greedy(order) -> int:
        chosen: list[tuple[int, int]] = []
        for x, y in order:
            ok = True
            for (a, b) in chosen:
                if m[a, y] == value and m[x, b] == value:
                    ok = False
                    break
            if ok:
                chosen.append((x, y))
        return len(chosen)

    spread = sorted(cells, key=lambda xy: -bin(xy[0] | xy[1]).count("1"))
    best = max(greedy(cells), greedy(spread)) if cells else 1
    return max(0, math.ceil(math.log2(max(1, best))))


def equality_matrix(k: int) -> np.ndarray:
    """EQ_k: f(x, y) = 1 iff x == y (2^k x 2^k identity)."""
    return np.eye(1 << k, dtype=np.int8)


def disjointness_matrix(k: int) -> np.ndarray:
    """DISJ_k: f(x, y) = 1 iff the k-bit sets x and y are disjoint."""
    size = 1 << k
    out = np.zeros((size, size), dtype=np.int8)
    for x in range(size):
        for y in range(size):
            out[x, y] = int((x & y) == 0)
    return out


# ---------------------------------------------------------------------------
# BCC -> two-party simulation


def bcc_cut_bits(result: RunResult, cut: Sequence[int]) -> int:
    """Two-party cost of simulating a *broadcast* congested clique run
    across the node cut ``cut`` (Alice's side).

    In the broadcast model every message is one identical payload sent
    to all peers, so Alice and Bob can each replay the whole run if every
    broadcast is announced across the cut exactly once; the two-party
    cost is the total broadcast bits.  (For non-broadcast runs this
    over-counts, which is exactly why the simulation argument only gives
    lower bounds for the broadcast variant [19].)
    """
    alice = set(cut)
    total = 0
    n = len(result.sent_bits)
    for v in range(n):
        # per-broadcast payload = sent_bits / (n - 1) identical copies
        if result.sent_bits[v]:
            total += result.sent_bits[v] // max(1, n - 1)
    return total


def bcc_round_lower_bound(cc_bits: int, n: int, bandwidth: int) -> int:
    """Rounds any broadcast congested clique algorithm needs if its
    transcript must solve a two-party problem of complexity ``cc_bits``:
    each round contributes at most ``n * B`` broadcast bits, so
    ``T >= ceil((cc_bits - 1) / (n B))`` (the -1 pays for announcing the
    output)."""
    return max(0, math.ceil((cc_bits - 1) / (n * bandwidth)))


def equality_bcc_program(k: int):
    """A broadcast algorithm for EQUALITY embedded across a cut: node 0
    holds Alice's k-bit string, node 1 holds Bob's (via ``node.aux``);
    node 0 broadcasts its string, node 1 compares and broadcasts the
    verdict; everyone outputs it.  ``ceil(k/B) + 1`` rounds — within the
    simulation bound's ``n B`` factor of the D(EQ_k) >= k lower bound.
    """

    def program(node) -> Generator[None, None, int]:
        from ..clique.bits import BitWriter
        from ..clique.primitives import chunks_needed

        b = node.bandwidth
        # Phase 1: node 0 broadcasts its k-bit string, uniformly chunked
        # (the scatter-based broadcast_from is unicast and would violate
        # the broadcast-only restriction).
        payload = BitString(int(node.aux), k) if node.id == 0 else None
        collected = BitWriter()
        for r in range(chunks_needed(k, b)):
            if node.id == 0:
                chunk = payload[r * b : min((r + 1) * b, k)]
                node.send_to_all(chunk)
            yield
            if node.id != 0 and 0 in node.inbox:
                collected.write_bits(node.inbox[0])
        x = payload if node.id == 0 else collected.finish()

        # Phase 2: node 1 broadcasts the verdict bit.
        if node.id == 1:
            node.send_to_all(
                BitString(1 if x.value == int(node.aux) else 0, 1)
            )
        yield
        if node.id == 1:
            return 1 if x.value == int(node.aux) else 0
        return node.inbox[1].value

    return program
