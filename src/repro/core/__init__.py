"""The paper's complexity-theory machinery: protocols and counting
(Lemma 1), time hierarchies (Theorems 2, 4, 8), nondeterminism and the
normal form (Theorem 3), the decision hierarchy and its collapse
(Theorem 7), the canonical edge labelling family (Theorem 6), and the
fine-grained exponent landscape (Section 7 / Figure 1)."""

from .classes import (
    CLIQUE,
    NCLIQUE,
    ClassDescriptor,
    Pi,
    Sigma,
    contains_structurally,
    quantifier_prefix,
)
from .counting import (
    log2_num_functions,
    log2_num_protocols,
    max_hard_round_budget,
    protocols_fewer_than_functions,
    theorem2_parameters,
    theorem4_inequality,
    theorem8_inequality,
)
from .edge_labelling import EdgeLabellingProblem, compile_verifier
from .exponents import (
    OMEGA,
    ExponentRegistry,
    ProblemEntry,
    ReductionEdge,
    figure1_registry,
)
from .hierarchy import (
    evaluate_alternation,
    run_k_labelling,
    sigma2_decides,
    sigma2_honest_guess,
    sigma2_universal_algorithm,
)
from .labelling_problems import (
    LabellingProblem,
    colouring_search_problem,
    maximal_independent_set_problem,
    maximal_matching_problem,
)
from .nondeterminism import (
    Labelling,
    NondeterministicAlgorithm,
    all_labellings,
    decide_nondeterministic,
    run_with_labelling,
)
from .normal_form import (
    normal_form_label_bound,
    simulate_node_locally,
    to_normal_form,
    transcript_labelling,
)
from .randomness import (
    MonteCarloAlgorithm,
    estimate_acceptance,
    monte_carlo_to_nondeterministic,
    run_with_randomness,
)
from .protocols import (
    computable_functions,
    first_hard_function,
    function_from_index,
    index_of_function,
    nondet_computable_functions,
)
from .time_hierarchy import (
    TimeHierarchyMiniature,
    decider_program,
    separation_table,
    time_hierarchy_miniature,
)
from .verifiers import (
    VerifiedProblem,
    hamiltonian_path_verifier,
    k_colouring_verifier,
    k_dominating_set_verifier,
    k_independent_set_verifier,
    k_vertex_cover_verifier,
    triangle_verifier,
)

__all__ = [
    "CLIQUE",
    "ClassDescriptor",
    "EdgeLabellingProblem",
    "ExponentRegistry",
    "Labelling",
    "LabellingProblem",
    "MonteCarloAlgorithm",
    "NCLIQUE",
    "NondeterministicAlgorithm",
    "OMEGA",
    "Pi",
    "ProblemEntry",
    "ReductionEdge",
    "Sigma",
    "TimeHierarchyMiniature",
    "VerifiedProblem",
    "all_labellings",
    "compile_verifier",
    "colouring_search_problem",
    "computable_functions",
    "contains_structurally",
    "decide_nondeterministic",
    "decider_program",
    "estimate_acceptance",
    "evaluate_alternation",
    "figure1_registry",
    "first_hard_function",
    "function_from_index",
    "hamiltonian_path_verifier",
    "index_of_function",
    "k_colouring_verifier",
    "k_dominating_set_verifier",
    "k_independent_set_verifier",
    "k_vertex_cover_verifier",
    "log2_num_functions",
    "maximal_independent_set_problem",
    "maximal_matching_problem",
    "monte_carlo_to_nondeterministic",
    "log2_num_protocols",
    "max_hard_round_budget",
    "nondet_computable_functions",
    "normal_form_label_bound",
    "protocols_fewer_than_functions",
    "quantifier_prefix",
    "run_k_labelling",
    "run_with_labelling",
    "run_with_randomness",
    "separation_table",
    "sigma2_decides",
    "sigma2_honest_guess",
    "sigma2_universal_algorithm",
    "simulate_node_locally",
    "theorem2_parameters",
    "theorem4_inequality",
    "theorem8_inequality",
    "time_hierarchy_miniature",
    "to_normal_form",
    "transcript_labelling",
    "triangle_verifier",
]
