"""Lemma 1 and the counting inequalities behind Theorems 2, 4 and 8.

Lemma 1 (Applebaum et al. [1]): the number of distinct
``(n, b, L, t)``-protocols is at most ``2^(2bn) * 2^(2^(L+bt) (n-1))``,
while the number of functions ``{0,1}^(nL) -> {0,1}`` is ``2^(2^(nL))``.
All quantities here are *exact* log2 values as Python ints, so the
inequalities can be checked at any scale (the doubly-exponential gap is
the entire content of the lower bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "log2_num_protocols",
    "log2_num_functions",
    "protocols_fewer_than_functions",
    "max_hard_round_budget",
    "theorem2_parameters",
    "theorem4_inequality",
    "theorem8_inequality",
]


def log2_num_protocols(n: int, b: int, L: int, t: int) -> int:
    """log2 of Lemma 1's protocol-count upper bound.

    A node's behaviour is a function of its ``L`` input bits plus the
    ``b * t * (n-1)`` bits it can receive, which is the reading of
    Lemma 1 consistent with the paper's ``t < L/b - 1`` remark and with
    the Theorem 4/8 arithmetic (and validated against exact exhaustive
    protocol counts at miniature scale in the tests).
    """
    if min(n, b) < 1 or L < 0 or t < 0:
        raise ValueError("need n,b >= 1 and L,t >= 0")
    return 2 * b * n + (n - 1) * (1 << (L + b * t * (n - 1)))


def log2_num_functions(n: int, L: int) -> int:
    """log2 of the number of functions {0,1}^(nL) -> {0,1}."""
    return 1 << (n * L)


def protocols_fewer_than_functions(n: int, b: int, L: int, t: int) -> bool:
    """Whether Lemma 1 already implies a hard function exists at these
    parameters (#protocols < #functions)."""
    return log2_num_protocols(n, b, L, t) < log2_num_functions(n, L)


def max_hard_round_budget(n: int, b: int, L: int) -> int:
    """The largest ``t`` for which Lemma 1 still yields a hard function,
    i.e. ``max { t : #protocols(t) < #functions }`` (or -1 if none).

    The paper's remark: this is roughly ``L/b - 1``.
    """
    t = -1
    while protocols_fewer_than_functions(n, b, L, t + 1):
        t += 1
    return t


@dataclass(frozen=True)
class HierarchyParameters:
    """Parameter audit for one of the hierarchy constructions."""

    n: int
    L: int
    protocol_rounds: int
    log2_protocols: int
    log2_functions: int

    @property
    def hard_function_exists(self) -> bool:
        return self.log2_protocols < self.log2_functions

    @property
    def log2_gap(self) -> int:
        return self.log2_functions - self.log2_protocols


def theorem2_parameters(n: int, T: int) -> HierarchyParameters:
    """The Theorem 2 construction at size ``n``: ``L = T log n``, and the
    hard function must evade ``(n, log n, L, T/2)``-protocols.

    Requires ``T < n / (4 log n)`` (the proof's standing assumption) for
    the numbers to be meaningful; we only compute, not enforce.
    """
    log_n = max(1, math.ceil(math.log2(n)))
    L = T * log_n
    t = max(0, T // 2)
    return HierarchyParameters(
        n=n,
        L=L,
        protocol_rounds=t,
        log2_protocols=log2_num_protocols(n, log_n, L, t),
        log2_functions=log2_num_functions(n, L),
    )


@dataclass(frozen=True)
class NondetInequality:
    """The Theorem 4 bookkeeping: ``M + L + T(n-1) log n < (3/4) n L``."""

    n: int
    T: int
    L: int
    M: int
    lhs: int
    rhs: int

    @property
    def holds(self) -> bool:
        return self.lhs < self.rhs


def theorem4_inequality(n: int, T: int) -> NondetInequality:
    """Theorem 4's parameter check with ``L = T log n`` and
    ``M = (1/4) T n log n``: the nondeterministic protocols at round
    budget ``T/4`` are outnumbered when
    ``M + L + (T/4)(n-1) log n < (3/4) n L``.  To stay exact over the
    integers, ``lhs``/``rhs`` are stored scaled by 4:
    ``4M + 4L + T(n-1)log n < 3 n L``."""
    log_n = max(1, math.ceil(math.log2(n)))
    L = T * log_n
    M = (T * n * log_n) // 4
    lhs = 4 * M + 4 * L + T * (n - 1) * log_n
    rhs = 3 * n * L
    return NondetInequality(n=n, T=T, L=L, M=M, lhs=lhs, rhs=rhs)


@dataclass(frozen=True)
class LogHierarchyInequality:
    """Theorem 8's bookkeeping for level ``k``:
    ``k M + L + (1/4) T^2 (n-1) log n < (3/4) n L``."""

    n: int
    T: int
    k: int
    L: int
    M: int
    lhs: int
    rhs: int

    @property
    def holds(self) -> bool:
        return self.lhs < self.rhs


def theorem8_inequality(n: int, T: int, k: int) -> LogHierarchyInequality:
    """Theorem 8's parameter check with ``L = T^2 log n`` and
    ``M = (1/4) T n log n``, for hierarchy level ``k <= T``.  Scaled by 4
    to stay exact: ``4kM + 4L + T^2 (n-1) log n < 3 n L``."""
    log_n = max(1, math.ceil(math.log2(n)))
    L = T * T * log_n
    M = (T * n * log_n) // 4
    lhs = 4 * k * M + 4 * L + T * T * (n - 1) * log_n
    rhs = 3 * n * L
    return LogHierarchyInequality(n=n, T=T, k=k, L=L, M=M, lhs=lhs, rhs=rhs)
