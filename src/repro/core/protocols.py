"""Non-uniform (n, b, L, t)-protocols — Section 3, "Counting arguments".

A protocol has ``n`` nodes, per-link bandwidth ``b`` bits/round, ``L``
private input bits per node, and ``t`` rounds; it computes a function
``f : {0,1}^(nL) -> {0,1}``.  The paper's lower bounds (Theorems 2, 4, 8)
rest on Lemma 1: there are so few protocols that most functions have
none.  The proofs are non-constructive at scale, but — exactly as the
decider in Theorem 2 step (2) prescribes — the hard function can be found
by *exhaustive enumeration* when the parameter space is small.  This
module implements that enumeration for one-round protocols:

* in a one-round protocol, node ``v``'s message to ``u`` depends only on
  ``x_v``; afterwards ``v``'s *view* is ``(x_v, (m_{u->v}(x_u))_u)``,
* a function ``f`` is computable with agreed outputs iff it is constant
  on each block of the join (transitive closure) of the per-node view
  partitions,
* a function is computable with *accept = all output 1* semantics
  (needed for nondeterministic protocols) iff its yes-set is exactly the
  intersection of its per-node block saturations.

Enumerable miniatures: ``(n=2, b=1, L=2, t=1)`` (256 message combos,
65536 candidate functions) and ``(n=3, b=1, L=1, t=1)``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

__all__ = [
    "enumerate_message_schemes",
    "views_for_scheme",
    "computable_functions",
    "acceptance_computable",
    "first_hard_function",
    "nondet_computable_functions",
    "function_from_index",
    "index_of_function",
    "two_round_protocol_computes",
]


# ---------------------------------------------------------------------------
# function <-> index encoding
#
# The paper selects "a first function under the lexicographical ordering
# when interpreting functions {0,1}^(nL) -> {0,1} as bit vectors of length
# 2^(nL)".  We fix the convention: input x = (x_1..x_n) has index
# int(x_1 || x_2 || ... || x_n) (node-major, MSB-first), and the bit
# vector (f(0), f(1), ..)'s first entry is the most significant bit of the
# function index, so ascending index = lexicographic order on bit vectors.


def function_from_index(idx: int, num_inputs: int) -> tuple[int, ...]:
    """Truth table (length ``num_inputs``) of the function with the given
    lexicographic index."""
    return tuple(
        (idx >> (num_inputs - 1 - i)) & 1 for i in range(num_inputs)
    )


def index_of_function(table: Sequence[int]) -> int:
    """Lexicographic index of a truth table (inverse of
    :func:`function_from_index`)."""
    idx = 0
    for bit in table:
        idx = (idx << 1) | bit
    return idx


# ---------------------------------------------------------------------------
# one-round protocol enumeration


def enumerate_message_schemes(n: int, L: int, b: int) -> Iterator[dict]:
    """All assignments of one-round message functions.

    A scheme maps each ordered pair ``(v, u)`` to a function
    ``{0,1}^L -> {0,1}^b`` represented as a tuple of 2^L message values.
    The total count is ``(2^b)^(2^L)`` per ordered pair — guard your
    parameters (this is exhaustive enumeration, the point of the
    miniature).
    """
    num_inputs = 1 << L
    per_pair = [
        tuple(combo)
        for combo in itertools.product(range(1 << b), repeat=num_inputs)
    ]
    pairs = [(v, u) for v in range(n) for u in range(n) if u != v]
    for assignment in itertools.product(per_pair, repeat=len(pairs)):
        yield dict(zip(pairs, assignment))


def views_for_scheme(n: int, L: int, scheme: dict) -> list[list[tuple]]:
    """For each node ``v``, the view of every global input.

    Global inputs are indexed node-major (see module docstring); the view
    of node ``v`` on input ``x`` is ``(x_v, messages received)``.
    Returns ``views[v][x_index]``.
    """
    num_local = 1 << L
    inputs = list(itertools.product(range(num_local), repeat=n))
    views: list[list[tuple]] = []
    for v in range(n):
        v_views = []
        for x in inputs:
            received = tuple(
                scheme[(u, v)][x[u]] for u in range(n) if u != v
            )
            v_views.append((x[v], received))
        views.append(v_views)
    return views


def _join_partition(n_inputs: int, views: list[list[tuple]]) -> list[int]:
    """Blocks of the join of the per-node view partitions (union-find):
    two global inputs are equivalent if connected by same-view steps."""
    parent = list(range(n_inputs))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for v_views in views:
        groups: dict[tuple, int] = {}
        for idx, view in enumerate(v_views):
            if view in groups:
                ra, rb = find(groups[view]), find(idx)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
            else:
                groups[view] = idx
    return [find(i) for i in range(n_inputs)]


def computable_functions(n: int, L: int, b: int) -> set[int]:
    """Indices of all functions computable by some one-round
    ``(n, b, L, 1)``-protocol with agreed outputs."""
    num_inputs = 1 << (n * L)
    computable: set[int] = set()
    for scheme in enumerate_message_schemes(n, L, b):
        views = views_for_scheme(n, L, scheme)
        roots = _join_partition(num_inputs, views)
        blocks: dict[int, list[int]] = {}
        for idx, r in enumerate(roots):
            blocks.setdefault(r, []).append(idx)
        block_list = list(blocks.values())
        # All functions constant per block.
        for choice in itertools.product((0, 1), repeat=len(block_list)):
            table = [0] * num_inputs
            for bit, members in zip(choice, block_list):
                if bit:
                    for m in members:
                        table[m] = 1
            computable.add(index_of_function(table))
    return computable


def first_hard_function(n: int, L: int, b: int) -> tuple[int, ...] | None:
    """The lexicographically-first function with no one-round agreed-
    output ``(n, b, L, 1)``-protocol — the f_n of the Theorem 2 proof at
    miniature scale.  ``None`` if every function is computable."""
    num_inputs = 1 << (n * L)
    computable = computable_functions(n, L, b)
    for idx in range(1 << num_inputs):
        if idx not in computable:
            return function_from_index(idx, num_inputs)
    return None


# ---------------------------------------------------------------------------
# acceptance semantics (for nondeterministic protocols)


def acceptance_computable(
    yes_set: frozenset[int], views: list[list[tuple]], n_inputs: int
) -> bool:
    """Is there a per-node output choice with ``accept = all output 1``
    whose acceptance set is exactly ``yes_set``?

    Node ``v`` must output 1 on every input in the yes-set, hence on every
    input sharing a view with one; acceptance holds exactly on the
    intersection of these per-node saturations, so the function is
    computable iff that intersection adds nothing.
    """
    if not yes_set:
        return True  # reject everything: any node outputs constant 0
    intersection = None
    for v_views in views:
        yes_views = {v_views[i] for i in yes_set}
        saturation = {
            i for i in range(n_inputs) if v_views[i] in yes_views
        }
        intersection = (
            saturation if intersection is None else intersection & saturation
        )
    return intersection == set(yes_set)


def nondet_computable_functions(n: int, L: int, M: int, b: int) -> set[int]:
    """Indices of functions ``f : {0,1}^(nL) -> {0,1}`` that have a
    one-round nondeterministic ``(n, b, M+L, 1)``-protocol (Theorem 4's
    notion): ``f(x) = 1`` iff some guess ``z in {0,1}^(nM)`` makes the
    deterministic protocol accept ``(z_1 x_1, .., z_n x_n)``.
    """
    ext_L = M + L
    n_ext_inputs = 1 << (n * ext_L)
    n_inputs = 1 << (n * L)
    guesses = list(itertools.product(range(1 << M), repeat=n))
    xs = list(itertools.product(range(1 << L), repeat=n))

    def ext_index(z: tuple[int, ...], x: tuple[int, ...]) -> int:
        idx = 0
        for zv, xv in zip(z, x):
            idx = (idx << ext_L) | (zv << L) | xv
        return idx

    computable: set[int] = set()
    for scheme in enumerate_message_schemes(n, ext_L, b):
        views = views_for_scheme(n, ext_L, scheme)
        for f_idx in range(1 << n_inputs):
            if f_idx in computable:
                continue
            table = function_from_index(f_idx, n_inputs)
            yes_xs = [x for i, x in enumerate(xs) if table[i]]
            no_xs = [x for i, x in enumerate(xs) if not table[i]]
            # choose an accepting guess for each yes-instance; the
            # acceptance set is then the saturation of those points and
            # must avoid every no-instance column.
            forbidden = {
                ext_index(z, x) for z in guesses for x in no_xs
            }
            found = False
            for assignment in itertools.product(guesses, repeat=len(yes_xs)):
                required = frozenset(
                    ext_index(z, x) for z, x in zip(assignment, yes_xs)
                )
                # saturate per node, intersect
                acc = None
                for v_views in views:
                    req_views = {v_views[i] for i in required}
                    sat = {
                        i
                        for i in range(n_ext_inputs)
                        if v_views[i] in req_views
                    }
                    acc = sat if acc is None else acc & sat
                acc = acc or set()
                if acc & forbidden:
                    continue
                found = True
                break
            if found:
                computable.add(f_idx)
    return computable


# ---------------------------------------------------------------------------
# constructive upper bound: two rounds suffice when L <= 2b


def two_round_protocol_computes(
    f_table: Sequence[int], n: int, L: int, b: int
) -> bool:
    """Verify constructively that the trivial two-round protocol (each
    node streams its input bits, ``ceil(L / b)`` rounds) computes ``f``
    when ``ceil(L / b) <= 2``: after the rounds every node knows the full
    input and outputs ``f``.  Returns whether the protocol's outputs
    match ``f`` on every input (it always does — this executes the
    protocol rather than trusting the argument).
    """
    import math

    rounds = math.ceil(L / b)
    if rounds > 2:
        return False
    inputs = list(itertools.product(range(1 << L), repeat=n))
    for i, x in enumerate(inputs):
        for v in range(n):
            # Simulate the streaming: u sends b bits of x_u per round
            # (MSB-first); v reassembles every other node's input.
            learned = []
            for u in range(n):
                if u == v:
                    learned.append(x[v])
                    continue
                acc = 0
                got = 0
                for r in range(rounds):
                    width = min(b, L - r * b)
                    chunk = (x[u] >> (L - r * b - width)) & ((1 << width) - 1)
                    acc = (acc << width) | chunk
                    got += width
                assert got == L
                learned.append(acc)
            if tuple(learned) != x:
                return False
            # Output rule: evaluate f on the reconstructed input.
            recon_index = inputs.index(tuple(learned))
            if f_table[recon_index] != f_table[i]:
                return False
    return True
