"""Fine-grained complexity — Section 7 and Figure 1.

The *problem exponent* is ``delta(L) = inf { d : L solvable in O(n^d)
rounds }``.  Figure 1 maps the landscape: an arrow to ``L1`` from ``L2``
means ``delta(L1) <= delta(L2)``.  This module encodes the figure as a
directed reduction graph with sourced edges and direct upper bounds, and
propagates bounds through the graph (so e.g. ``delta(triangle) <=
delta(Boolean MM) <= delta(ring MM) <= 1 - 2/omega`` comes out of the
registry by relaxation, exactly as the paper composes its citations).

Every edge and direct bound carries its paper source; the benchmark
``benchmarks/test_e1_figure1_landscape.py`` regenerates the figure as an
edge table and checks measured round exponents against the registry.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Best known matrix multiplication exponent cited by the paper [41].
OMEGA = 2.3728639

__all__ = [
    "OMEGA",
    "ProblemEntry",
    "ReductionEdge",
    "ExponentRegistry",
    "figure1_registry",
]


@dataclass(frozen=True)
class ProblemEntry:
    """A problem node of Figure 1."""

    key: str
    display: str
    #: Direct upper bound on delta (None if only via reductions).
    direct_upper: float | None = None
    #: Human-readable form of the bound (e.g. "1 - 2/omega").
    bound_formula: str = ""
    source: str = ""


@dataclass(frozen=True)
class ReductionEdge:
    """delta(frm) <= delta(to): an arrow *to* ``frm`` *from* ``to``."""

    frm: str
    to: str
    source: str = ""
    note: str = ""


class ExponentRegistry:
    """Problems + reduction arrows + bound propagation."""

    def __init__(self) -> None:
        self.problems: dict[str, ProblemEntry] = {}
        self.edges: list[ReductionEdge] = []

    def add_problem(self, entry: ProblemEntry) -> None:
        """Register a problem node."""
        if entry.key in self.problems:
            raise ValueError(f"duplicate problem {entry.key}")
        self.problems[entry.key] = entry

    def add_reduction(self, frm: str, to: str, source: str = "", note: str = "") -> None:
        """Register an arrow ``delta(frm) <= delta(to)``."""
        for key in (frm, to):
            if key not in self.problems:
                raise ValueError(f"unknown problem {key!r}")
        self.edges.append(ReductionEdge(frm=frm, to=to, source=source, note=note))

    def delta_upper(self, key: str) -> float:
        """Best upper bound on delta(key) via direct bounds + arrows.

        Relaxation over the reduction graph (Bellman–Ford style; the
        graph may have cycles from equivalences, which relaxation handles
        naturally).  Every problem has the trivial gather bound 1.
        """
        best = {k: 1.0 for k in self.problems}
        for k, entry in self.problems.items():
            if entry.direct_upper is not None:
                best[k] = min(best[k], entry.direct_upper)
        for _ in range(len(self.problems)):
            changed = False
            for e in self.edges:
                if best[e.to] < best[e.frm]:
                    best[e.frm] = best[e.to]
                    changed = True
            if not changed:
                break
        if key not in best:
            raise KeyError(key)
        return best[key]

    def all_bounds(self) -> dict[str, float]:
        """Propagated delta upper bounds for every problem."""
        return {k: self.delta_upper(k) for k in self.problems}

    def arrows(self) -> list[ReductionEdge]:
        """All registered reduction arrows."""
        return list(self.edges)

    def table(self) -> list[dict]:
        """Figure 1 as rows: problem, propagated bound, provenance."""
        bounds = self.all_bounds()
        rows = []
        for key, entry in sorted(self.problems.items()):
            rows.append(
                {
                    "problem": entry.display,
                    "key": key,
                    "delta_upper": round(bounds[key], 4),
                    "direct_bound": entry.bound_formula or "-",
                    "source": entry.source or "-",
                }
            )
        return rows


def figure1_registry(k: int = 3, omega: float = OMEGA) -> ExponentRegistry:
    """Figure 1 instantiated for parameter ``k`` (>= 3) and the matrix
    multiplication exponent ``omega``.

    Problems, bounds, and arrows follow Section 7's enumerated
    relationships; all 26 nodes of the figure are present.
    """
    if k < 3:
        raise ValueError("Figure 1 is drawn for k >= 3")
    r = ExponentRegistry()
    P = ProblemEntry

    mm_bound = 1 - 2 / omega

    # --- matrix multiplication family
    r.add_problem(P("ring-mm", "Ring MM", mm_bound, "1 - 2/omega", "Censor-Hillel et al. [10], Le Gall [41]"))
    r.add_problem(P("boolean-mm", "Boolean MM"))
    r.add_problem(P("minplus-mm", "(min,+) MM"))
    r.add_problem(P("semiring-mm", "Semiring MM", 1 / 3, "1/3", "Censor-Hillel et al. [10]"))
    r.add_problem(P("transitive-closure", "Transitive closure"))

    # --- subgraph detection family
    r.add_problem(P("triangle", "Triangle / 3-IS"))
    r.add_problem(P("size3-subgraph", "size 3 subgraph"))
    r.add_problem(
        P("k-cycle", f"{k}-cycle", 1 - 2 / k, "1 - 2/k", "Censor-Hillel et al. [10], Dolev et al. [16]")
    )
    r.add_problem(
        P("size-k-subgraph", f"size {k} subgraph", 1 - 2 / k, "1 - 2/k", "Dolev et al. [16]")
    )
    r.add_problem(P("k-is", f"{k}-IS", 1 - 2 / k, "1 - 2/k", "Dolev et al. [16]"))
    r.add_problem(P("k-ds", f"{k}-DS", 1 - 1 / k, "1 - 1/k", "Theorem 9"))

    # --- APSP family (w/uw = weighted/unweighted, d/ud = directed or not)
    r.add_problem(P("apsp-w-d", "APSP w/d", 1.0, "1", "trivial (gather)"))
    r.add_problem(P("apsp-uw-ud", "APSP uw/ud"))
    r.add_problem(P("apsp-w-ud", "APSP w/ud"))
    r.add_problem(P("apsp-uw-d", "APSP uw/d", 0.2096, "0.2096", "Le Gall [42]"))
    r.add_problem(P("apsp-w-ud-2eps", "APSP w/ud (2-eps)-approx"))
    r.add_problem(P("apsp-w-ud-1eps", "APSP w/ud (1+eps)-approx"))
    r.add_problem(
        P(
            "apsp-uw-ud-3approx",
            "APSP uw/ud 3-approx (spanner)",
            0.5,
            "1/2 (3-spanner gather)",
            "Censor-Hillel et al. [11] / Baswana-Sen",
        )
    )

    # --- SSSP family
    r.add_problem(P("bfs-tree", "BFS tree"))
    r.add_problem(P("sssp-uw-ud", "SSSP uw/ud"))
    r.add_problem(P("sssp-w-ud", "SSSP w/ud"))
    r.add_problem(P("sssp-w-d", "SSSP w/d"))
    r.add_problem(
        P("sssp-w-ud-1eps", "SSSP w/ud (1+eps)-approx", 0.0, "n^o(1)", "Becker et al. [5]")
    )
    r.add_problem(P("sssp-uw-d", "SSSP uw/d"))

    # --- global optimisation / colouring
    r.add_problem(P("max-is", "MaxIS", 1.0, "1", "trivial (gather)"))
    r.add_problem(P("min-vc", "MinVC"))
    r.add_problem(P("k-col", f"{k}-COL"))
    r.add_problem(P("k-vc", f"{k}-VC", 0.0, "O(k) rounds", "Theorem 11"))

    # ------------------------------------------------------------------ arrows
    # delta(frm) <= delta(to)

    # matrix multiplication chain
    r.add_reduction("boolean-mm", "ring-mm", "[10]", "boolean via integer ring")
    r.add_reduction("transitive-closure", "boolean-mm", "[10]", "log n squarings")
    r.add_reduction("minplus-mm", "semiring-mm", "", "(min,+) is a semiring")
    r.add_reduction("apsp-w-d", "minplus-mm", "[10]", "log n squarings")

    # subgraph detection <-> Boolean MM (Censor-Hillel et al.)
    r.add_reduction("triangle", "boolean-mm", "[10]", "trace of A^3")
    r.add_reduction("size3-subgraph", "triangle", "[10]")
    r.add_reduction("triangle", "size3-subgraph", "[10]")
    r.add_reduction("k-cycle", "size-k-subgraph", "[10]")

    # Dor-Halperin-Zwick: Boolean MM <= (2-eps)-approx APSP
    r.add_reduction("boolean-mm", "apsp-w-ud-2eps", "Dor et al. [17]")
    # approx APSP via ring MM (Censor-Hillel et al.)
    r.add_reduction("apsp-w-ud-1eps", "ring-mm", "[10]")

    # Theorem 10: k-IS <= k-DS
    r.add_reduction("k-is", "k-ds", "Theorem 10", "O(k^(2d+4)) overhead")

    # trivial containments in the APSP family
    r.add_reduction("apsp-uw-ud", "apsp-w-ud", "", "unweighted is weighted")
    r.add_reduction("apsp-w-ud", "apsp-w-d", "", "undirected is directed")
    r.add_reduction("apsp-uw-ud", "apsp-uw-d", "", "undirected is directed")
    r.add_reduction("apsp-uw-d", "apsp-w-d", "", "unweighted is weighted")
    r.add_reduction("apsp-w-ud-2eps", "apsp-w-ud", "", "exact refines approx")
    r.add_reduction("apsp-w-ud-1eps", "apsp-w-ud-2eps", "", "eps' < eps")

    # SSSP <= APSP and internal containments
    r.add_reduction("sssp-w-d", "apsp-w-d")
    r.add_reduction("sssp-w-ud", "apsp-w-ud")
    r.add_reduction("sssp-uw-ud", "apsp-uw-ud")
    r.add_reduction("sssp-uw-d", "apsp-uw-d")
    r.add_reduction("sssp-uw-ud", "sssp-w-ud", "", "unweighted is weighted")
    r.add_reduction("sssp-w-ud", "sssp-w-d", "", "undirected is directed")
    r.add_reduction("sssp-uw-d", "sssp-w-d", "", "unweighted is weighted")
    r.add_reduction("sssp-uw-ud", "sssp-uw-d", "", "undirected is directed")
    r.add_reduction("sssp-w-ud-1eps", "sssp-w-ud", "", "exact refines approx")
    r.add_reduction("bfs-tree", "sssp-uw-ud", "", "BFS tree from distances")

    # MaxIS / MinVC / k-COL / k-IS
    r.add_reduction("min-vc", "max-is", "", "complement sets (Gallai)")
    r.add_reduction("max-is", "min-vc", "", "complement sets (Gallai)")
    r.add_reduction("k-col", "max-is", "[46]", "k-fold blow-up")
    r.add_reduction("k-is", "max-is", "", "size of MaxIS answers k-IS")

    return r
