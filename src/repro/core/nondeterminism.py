"""The nondeterministic congested clique — Section 5.

A *labelling* ``z`` assigns each node a bit-string label; a
nondeterministic algorithm is a deterministic node program that
additionally reads its label (we pass it as ``node.aux["label"]``, with
any problem-specific auxiliary input under other keys).  The algorithm
*decides* ``L`` when ``G in L  iff  exists z : A(G, z) = 1`` where
``A(G, z) = 1`` means every node outputs 1.

For small label spaces the existential quantifier is evaluated by
exhaustive search (:func:`decide_nondeterministic`); for the natural
problems of Section 6.1 the certificate is produced by a centralised
prover (the problem's ``certifier``) and only *verified* distributedly —
both paths exercise the same verifier programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..clique.bits import BitString
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram

__all__ = [
    "Labelling",
    "NondeterministicAlgorithm",
    "all_labellings",
    "run_with_labelling",
    "decide_nondeterministic",
]

#: A labelling: one BitString per node, indexed by node id.
Labelling = tuple[BitString, ...]


def all_labellings(n: int, max_bits: int) -> Iterable[Labelling]:
    """Every labelling assigning each node a label of exactly
    ``max_bits`` bits (fixed-width labels lose no generality up to
    padding, and keep the search space regular).  There are
    ``2^(n * max_bits)`` of them — miniature use only.
    """
    per_node = [
        BitString(v, max_bits) for v in range(1 << max_bits)
    ]
    return itertools.product(per_node, repeat=n)


@dataclass(frozen=True)
class NondeterministicAlgorithm:
    """A nondeterministic algorithm: a verifier program plus its
    declared running time and labelling size (both as functions of n)."""

    name: str
    #: Node program; reads ``node.aux["label"]`` (a BitString).
    program: NodeProgram
    #: Declared labelling size S(n) in bits.
    label_size: Callable[[int], int]
    #: Declared running time T(n) in rounds (used by the normal form).
    running_time: Callable[[int], int]


def run_with_labelling(
    algo: NondeterministicAlgorithm,
    graph: CliqueGraph,
    labelling: Sequence[BitString],
    *,
    aux_extra: Any = None,
    bandwidth_multiplier: int = 1,
    record_transcripts: bool = False,
):
    """One deterministic run of the verifier under a fixed labelling.

    Returns the engine :class:`RunResult`; acceptance is
    ``all(outputs) == 1``.
    """
    n = graph.n
    for v, label in enumerate(labelling):
        if len(label) > algo.label_size(n):
            raise ValueError(
                f"label of node {v} has {len(label)} bits, exceeding the "
                f"declared labelling size {algo.label_size(n)}"
            )

    def aux(v: int) -> dict:
        d = {"label": labelling[v]}
        if aux_extra is not None:
            d["extra"] = aux_extra
        return d

    clique = CongestedClique(
        n,
        bandwidth_multiplier=bandwidth_multiplier,
        record_transcripts=record_transcripts,
    )
    return clique.run(algo.program, graph, aux=aux)


def accepts(result) -> bool:
    return all(out == 1 for out in result.outputs.values())


def decide_nondeterministic(
    algo: NondeterministicAlgorithm,
    graph: CliqueGraph,
    *,
    label_bits: int | None = None,
    bandwidth_multiplier: int = 1,
) -> tuple[bool, Labelling | None]:
    """Exhaustive evaluation of ``exists z : A(G, z) = 1``.

    Searches all labellings of exactly ``label_bits`` bits per node
    (default: the algorithm's declared size) — exponential, for miniature
    instances.  Returns ``(accepted, witnessing labelling or None)``.
    """
    n = graph.n
    bits = label_bits if label_bits is not None else algo.label_size(n)
    for labelling in all_labellings(n, bits):
        result = run_with_labelling(
            algo,
            graph,
            labelling,
            bandwidth_multiplier=bandwidth_multiplier,
        )
        if accepts(result):
            return True, labelling
    return False, None
