"""Time hierarchy constructions — Theorems 2, 4 and 8.

The proofs build, for each n, a hard function ``f_n`` that exists by
counting (Lemma 1) and define the language ``L`` via the ``L``-bit input
prefixes; the ``CLIQUE(T)`` decider broadcasts the prefixes and finds
``f_n`` by exhaustive enumeration.  Since enumerating all functions
``{0,1}^(nL) -> {0,1}`` is doubly exponential, the *executable*
reproduction runs the entire pipeline at miniature parameters
(``n = 2, b = 1, L = 2``):

* :func:`find_hard_function_miniature` enumerates all one-round
  protocols and picks the lexicographically-first function with none —
  precisely the proof's selection rule,
* :func:`decider_program` is the theorem's step (1)+(2) algorithm (each
  node broadcasts its prefix, then evaluates ``f_n`` locally), run on the
  real simulator,
* :func:`time_hierarchy_miniature` packages the full separation audit:
  the chosen function is *not* computable in one round, *is* decided by
  the broadcast decider in ``ceil(L/b) = 2`` rounds, and the decider is
  correct on every input.

At realistic scales the same statements are certified by the counting
inequalities (:mod:`repro.core.counting`) — the non-constructive part of
the paper, reproduced as exact arithmetic.  The input prefixes live in
``node.aux`` (``L`` private bits per node), matching the paper's private
input bit convention (Section 3); at miniature sizes a graph on n nodes
cannot carry 2 private bits per node, so the language is stated over
input-labelled cliques (substitution documented in DESIGN.md).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Generator, Sequence

from ..clique.bits import BitString
from ..clique.network import CongestedClique
from ..clique.node import Node
from ..clique.primitives import all_broadcast
from .counting import (
    theorem2_parameters,
    theorem4_inequality,
    theorem8_inequality,
)
from .protocols import (
    computable_functions,
    first_hard_function,
    index_of_function,
    two_round_protocol_computes,
)

__all__ = [
    "decider_program",
    "decider_rounds",
    "find_hard_function_miniature",
    "evaluate_language",
    "TimeHierarchyMiniature",
    "time_hierarchy_miniature",
    "separation_table",
]


def find_hard_function_miniature(
    n: int = 2, L: int = 2, b: int = 1
) -> tuple[int, ...]:
    """The f_n of Theorem 2's proof at miniature scale (exhaustive)."""
    f = first_hard_function(n, L, b)
    if f is None:
        raise ValueError(
            f"every function is one-round computable at (n={n}, L={L}, "
            f"b={b}); pick parameters with L > b"
        )
    return f


def decider_program(f_table: Sequence[int], L: int):
    """Theorem 2 step (1)+(2): broadcast the L-bit prefixes, evaluate f_n
    locally.  ``node.aux`` holds the node's L input bits (an int)."""

    def program(node: Node) -> Generator[None, None, int]:
        x_mine = BitString(int(node.aux), L)
        prefixes = yield from all_broadcast(node, x_mine)
        index = 0
        for v in range(node.n):
            index = (index << L) | prefixes[v].value
        return int(f_table[index])

    return program


def decider_rounds(L: int, bandwidth: int) -> int:
    """Rounds the broadcast decider needs: ``ceil(L / B)``."""
    return math.ceil(L / bandwidth)


def evaluate_language(
    f_table: Sequence[int],
    n: int,
    L: int,
    bandwidth: int,
) -> dict[tuple[int, ...], int]:
    """Run the decider on *every* input assignment; return the decided
    table ``{(x_1..x_n): verdict}`` (all nodes must agree on each)."""
    program = decider_program(f_table, L)
    out: dict[tuple[int, ...], int] = {}
    for x in itertools.product(range(1 << L), repeat=n):
        clique = CongestedClique(n, bandwidth=bandwidth)
        result = clique.run(program, None, aux=list(x))
        out[x] = result.common_output()
    return out


@dataclass(frozen=True)
class TimeHierarchyMiniature:
    """Audit record of the executable Theorem 2 miniature."""

    n: int
    L: int
    b: int
    f_index: int
    f_table: tuple[int, ...]
    one_round_computable: bool
    decider_correct: bool
    decider_rounds: int
    num_computable_one_round: int
    num_functions: int

    @property
    def separates(self) -> bool:
        """CLIQUE(1 round) is strictly inside CLIQUE(decider_rounds)."""
        return (
            not self.one_round_computable
            and self.decider_correct
            and self.decider_rounds > 1
        )


def time_hierarchy_miniature(
    n: int = 2, L: int = 2, b: int = 1
) -> TimeHierarchyMiniature:
    """Execute the full Theorem 2 pipeline at miniature scale."""
    f = find_hard_function_miniature(n, L, b)
    computable = computable_functions(n, L, b)
    f_index = index_of_function(f)

    decided = evaluate_language(f, n, L, bandwidth=b)
    inputs = list(itertools.product(range(1 << L), repeat=n))
    correct = all(
        decided[x] == f[i] for i, x in enumerate(inputs)
    )
    # Constructive upper bound double-check: the trivial streaming
    # protocol also computes f in ceil(L/b) rounds.
    assert two_round_protocol_computes(f, n, L, b)

    return TimeHierarchyMiniature(
        n=n,
        L=L,
        b=b,
        f_index=f_index,
        f_table=f,
        one_round_computable=f_index in computable,
        decider_correct=correct,
        decider_rounds=decider_rounds(L, b),
        num_computable_one_round=len(computable),
        num_functions=1 << (1 << (n * L)),
    )


def separation_table(
    ns: Sequence[int], which: str = "theorem2"
) -> list[dict]:
    """Counting-certificate rows for the large-scale (non-constructive)
    separations: one row per n with the relevant inequality audit.

    ``which`` is ``theorem2``, ``theorem4`` or ``theorem8``.
    """
    rows = []
    for n in ns:
        log_n = max(1, math.ceil(math.log2(n)))
        T = max(2, n // (8 * log_n))
        if which == "theorem2":
            p = theorem2_parameters(n, T)
            rows.append(
                {
                    "n": n,
                    "T": T,
                    "L": p.L,
                    "log2_protocols": p.log2_protocols,
                    "log2_functions": p.log2_functions,
                    "hard_function_exists": p.hard_function_exists,
                }
            )
        elif which == "theorem4":
            q = theorem4_inequality(n, T)
            rows.append(
                {
                    "n": n,
                    "T": T,
                    "L": q.L,
                    "M": q.M,
                    "lhs(x4)": q.lhs,
                    "rhs(x4)": q.rhs,
                    "holds": q.holds,
                }
            )
        elif which == "theorem8":
            T8 = max(2, math.isqrt(n) // 4)
            for k in (1, 2, T8):
                q = theorem8_inequality(n, T8, k)
                rows.append(
                    {
                        "n": n,
                        "T": T8,
                        "k": k,
                        "lhs(x4)": q.lhs,
                        "rhs(x4)": q.rhs,
                        "holds": q.holds,
                    }
                )
        else:
            raise ValueError(f"unknown table {which!r}")
    return rows
