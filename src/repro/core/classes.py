"""Complexity class descriptors — CLIQUE, NCLIQUE, Sigma_k / Pi_k.

These are lightweight, self-documenting records tying the classes of the
paper to the executable machinery that witnesses membership:

* ``CLIQUE(T)`` membership is witnessed by a deterministic node program
  plus a round bound,
* ``NCLIQUE(T)`` by a :class:`~repro.core.nondeterminism.NondeterministicAlgorithm`,
* ``Sigma_k`` / ``Pi_k`` by a k-labelling program plus the quantifier
  prefix (``unlimited`` or ``logarithmic`` labelling regime).

They are used by the benchmarks and examples to present results in the
paper's vocabulary, and assert basic structural facts (Sigma_k in
Delta_k in Sigma_{k+1}, complement flips Sigma/Pi).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ClassDescriptor",
    "CLIQUE",
    "NCLIQUE",
    "Sigma",
    "Pi",
    "quantifier_prefix",
    "contains_structurally",
]


@dataclass(frozen=True)
class ClassDescriptor:
    """A point in the paper's class landscape."""

    family: str  # "CLIQUE" | "NCLIQUE" | "Sigma" | "Pi"
    #: Round bound descriptor, e.g. "1", "T", "n^(1/3)"; for Sigma/Pi the
    #: level k.
    parameter: str
    #: labelling regime for hierarchy classes: "unlimited" | "log"
    regime: str = ""

    def __str__(self) -> str:
        if self.family in ("Sigma", "Pi"):
            sup = "log" if self.regime == "log" else ""
            return f"{self.family}{sup}_{self.parameter}"
        return f"{self.family}({self.parameter})"


def CLIQUE(parameter: str) -> ClassDescriptor:
    """The deterministic class CLIQUE(T) (Section 3)."""
    return ClassDescriptor("CLIQUE", parameter)


def NCLIQUE(parameter: str) -> ClassDescriptor:
    """The nondeterministic class NCLIQUE(T) (Section 5)."""
    return ClassDescriptor("NCLIQUE", parameter)


def Sigma(k: int, regime: str = "unlimited") -> ClassDescriptor:
    """Level k of the Sigma hierarchy (Section 6.2)."""
    return ClassDescriptor("Sigma", str(k), regime)


def Pi(k: int, regime: str = "unlimited") -> ClassDescriptor:
    """Level k of the Pi hierarchy (Section 6.2)."""
    return ClassDescriptor("Pi", str(k), regime)


def quantifier_prefix(desc: ClassDescriptor) -> list[str]:
    """The alternation prefix of a hierarchy class (Section 6.2)."""
    if desc.family not in ("Sigma", "Pi"):
        raise ValueError(f"{desc} is not a hierarchy class")
    k = int(desc.parameter)
    first = "exists" if desc.family == "Sigma" else "forall"
    prefix = []
    current = first
    for _ in range(k):
        prefix.append(current)
        current = "forall" if current == "exists" else "exists"
    return prefix


def contains_structurally(
    inner: ClassDescriptor, outer: ClassDescriptor
) -> bool:
    """The containments the paper lists as "basic properties":
    Sigma_k, Pi_k are contained in both Sigma_{k+1} and Pi_{k+1} (within
    a regime), CLIQUE(T) in NCLIQUE(T), and every class in itself."""
    if inner == outer:
        return True
    if (
        inner.family == "CLIQUE"
        and outer.family == "NCLIQUE"
        and inner.parameter == outer.parameter
    ):
        return True
    if inner.family in ("Sigma", "Pi") and outer.family in ("Sigma", "Pi"):
        if inner.regime != outer.regime:
            return False
        ki, ko = int(inner.parameter), int(outer.parameter)
        if ko > ki:
            return True
        if ko == ki:
            return inner.family == outer.family
    return False
